"""The search-evaluation service (``repro.service``).

Covers the guarantees the service makes:

* **Wire fidelity** — the versioned NDJSON codec round-trips co-design
  points and evaluations exactly (``==``, no tolerances), and rejects
  mismatched versions and malformed frames.
* **Bit-identical remote scoring** — >= 8 concurrent clients each get
  the same evaluations a local ``evaluate_many`` produces for their
  request, while the scheduler coalesces the traffic.
* **Graceful shutdown** — the ``shutdown`` verb drains every queued
  request (none dropped, none double-run) before the endpoint goes away.
* **Backpressure** — the bounded in-flight points budget queues a flood
  instead of letting it balloon the scheduler queue.

CI runs this module inside the tier-1 suite and as a dedicated service
job; everything here is spawn-safe and tolerant of 1-CPU hosts (no
timing assertions — only counters and exact values).
"""

from __future__ import annotations

import socket
import threading
import time

import numpy as np
import pytest

from repro.accel.config import random_config
from repro.nas.encoding import CoDesignPoint, encode
from repro.nas.space import DnnSpace
from repro.search.evaluator import BatchEvaluator, Evaluation
from repro.service import (
    ProtocolError,
    RemoteEvaluator,
    ServiceClient,
    ServiceError,
    parse_endpoint,
    start_service,
)
from repro.service import protocol


def _population(n: int, seed: int = 211) -> list[CoDesignPoint]:
    rng = np.random.default_rng(seed)
    space = DnnSpace()
    return [
        CoDesignPoint(space.sample(rng, name=f"svc{seed}_{i}"), random_config(rng))
        for i in range(n)
    ]


# ---------------------------------------------------------------------------
# Wire codec
# ---------------------------------------------------------------------------


class TestWireCodec:
    def test_point_roundtrip_exact(self):
        for point in _population(6, seed=3):
            wire = protocol.point_to_wire(point)
            back = protocol.point_from_wire(wire)
            assert back == point
            assert back.genotype.name == point.genotype.name
            assert encode(back) == encode(point)

    def test_point_roundtrip_through_json_frame(self):
        point = _population(1, seed=5)[0]
        frame = protocol.encode_message(
            {"v": protocol.WIRE_VERSION, "point": protocol.point_to_wire(point)}
        )
        message = protocol.decode_message(frame)
        assert protocol.point_from_wire(message["point"]) == point

    def test_evaluation_roundtrip_is_bit_exact(self):
        # repr-based JSON floats survive the wire unchanged — including
        # values with no short decimal form.
        awkward = Evaluation(
            accuracy=1.0 / 3.0,
            latency_ms=0.1 + 0.2,
            energy_mj=1.2345678901234567e-5,
        )
        frame = protocol.encode_message(
            {
                "v": protocol.WIRE_VERSION,
                "evaluation": protocol.evaluation_to_wire(awkward),
            }
        )
        message = protocol.decode_message(frame)
        assert protocol.evaluation_from_wire(message["evaluation"]) == awkward

    def test_version_mismatch_rejected(self):
        frame = protocol.encode_message({"v": protocol.WIRE_VERSION + 1, "op": "stats"})
        with pytest.raises(ProtocolError, match="version"):
            protocol.decode_message(frame)

    def test_malformed_frames_rejected(self):
        with pytest.raises(ProtocolError):
            protocol.decode_message(b"not json\n")
        with pytest.raises(ProtocolError):
            protocol.decode_message(b"[1, 2, 3]\n")
        with pytest.raises(ProtocolError):
            protocol.point_from_wire({"tokens": "nope"})
        with pytest.raises(ProtocolError):
            protocol.point_from_wire({"tokens": [1, 2, 3]})  # wrong length
        with pytest.raises(ProtocolError):
            protocol.evaluation_from_wire({"accuracy": 0.5})

    def test_parse_endpoint(self):
        assert parse_endpoint("10.1.2.3:7777") == ("10.1.2.3", 7777)
        assert parse_endpoint(":8000") == ("127.0.0.1", 8000)
        with pytest.raises(ValueError):
            parse_endpoint("no-port")

    def test_parse_endpoint_rejects_bad_ports(self):
        with pytest.raises(ValueError, match="1-65535"):
            parse_endpoint("127.0.0.1:0")
        with pytest.raises(ValueError, match="1-65535"):
            parse_endpoint("127.0.0.1:70000")
        with pytest.raises(ValueError):
            parse_endpoint("127.0.0.1:-1")  # not digits
        # The boundaries themselves are fine.
        assert parse_endpoint("h:1") == ("h", 1)
        assert parse_endpoint("h:65535") == ("h", 65535)

    def test_parse_endpoint_rejects_ipv6_brackets_clearly(self):
        for endpoint in ("[::1]:8000", "[fe80::1]:7777", "::1:8000"):
            with pytest.raises(ValueError, match="IPv6"):
                parse_endpoint(endpoint)


# ---------------------------------------------------------------------------
# Live service
# ---------------------------------------------------------------------------


class _GatedEvaluator:
    """Blocks inside evaluate_many until released (drain/backpressure)."""

    def __init__(self, inner):
        self.inner = inner
        self.entered = threading.Event()
        self.release = threading.Event()
        self.calls: list[int] = []

    def evaluate_many(self, points):
        self.calls.append(len(points))
        self.entered.set()
        assert self.release.wait(60.0), "gate was never released"
        return self.inner.evaluate_many(points)


class _FailingEvaluator:
    def __init__(self, inner):
        self.inner = inner
        self.fail = True

    def evaluate_many(self, points):
        if self.fail:
            raise ValueError("injected evaluator failure")
        return self.inner.evaluate_many(points)


def _poll(predicate, timeout: float = 20.0) -> None:
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return
        time.sleep(0.02)
    raise AssertionError("condition never became true")


class TestSearchService:
    def test_eight_concurrent_clients_bit_identical(self, smoke_context):
        """The acceptance bar: >= 8 concurrent clients all receive results
        ``==`` a cold in-process ``evaluate_many``.

        Each client sends the same 12-point batch, so however the ticks
        land, the unique cold set the evaluator materialises matches the
        local call exactly (the evaluator dedups unique candidates before
        the GP, and repeats are cache hits) — no timing dependence.
        """
        fast = smoke_context.fast_evaluator
        points = _population(12, seed=7)
        reference = BatchEvaluator(fast).evaluate_many(points)
        results: list = [None] * 8
        failures: list = []
        with start_service(BatchEvaluator(fast), tick_s=0.005) as handle:
            host, port = handle.address

            def client(i: int) -> None:
                try:
                    with ServiceClient(host, port) as c:
                        results[i] = c.evaluate_many(points)
                except BaseException as exc:  # pragma: no cover
                    failures.append(exc)

            threads = [
                threading.Thread(target=client, args=(i,)) for i in range(8)
            ]
            for t in threads:
                t.start()
            for t in threads:
                t.join(120.0)
            assert failures == []
            with ServiceClient(host, port) as c:
                stats = c.stats()
        assert results == [reference] * 8, (
            "remote scoring must be bit-identical to in-process "
            "evaluate_many for every concurrent client"
        )
        assert stats["scheduler"]["requests"] == 8
        assert stats["scheduler"]["points_in"] == 8 * len(points)
        assert stats["scheduler"]["errors"] == 0
        assert 1 <= stats["scheduler"]["ticks"] <= 8

    def test_overlapping_chunks_after_warmup_are_exact_slices(self, smoke_context):
        """Warm traffic: once one client has scored the population, every
        concurrent chunk request is served as exact slices of it."""
        fast = smoke_context.fast_evaluator
        points = _population(20, seed=17)
        reference = BatchEvaluator(fast).evaluate_many(points)
        chunks = [points[(3 * i) % 15 : (3 * i) % 15 + 5] for i in range(8)]
        expected = [reference[(3 * i) % 15 : (3 * i) % 15 + 5] for i in range(8)]
        results: list = [None] * 8
        failures: list = []
        with start_service(BatchEvaluator(fast), tick_s=0.002) as handle:
            host, port = handle.address
            with ServiceClient(host, port) as warm:
                assert warm.evaluate_many(points) == reference

            def client(i: int) -> None:
                try:
                    with ServiceClient(host, port) as c:
                        results[i] = c.evaluate_many(chunks[i])
                except BaseException as exc:  # pragma: no cover
                    failures.append(exc)

            threads = [
                threading.Thread(target=client, args=(i,)) for i in range(8)
            ]
            for t in threads:
                t.start()
            for t in threads:
                t.join(120.0)
        assert failures == []
        assert results == expected

    def test_evaluate_single_and_stats_verbs(self, smoke_context):
        fast = smoke_context.fast_evaluator
        point = _population(1, seed=11)[0]
        reference = BatchEvaluator(fast).evaluate(point)
        with start_service(BatchEvaluator(fast)) as handle:
            with ServiceClient(*handle.address) as client:
                assert client.evaluate(point) == reference
                stats = client.stats()
        assert stats["wire_version"] == protocol.WIRE_VERSION
        assert stats["evaluator"]["type"] == "BatchEvaluator"
        assert stats["evaluator"]["misses"] >= 1
        assert stats["service"]["requests"] == 2

    def test_graceful_shutdown_drains_queued_requests(self, smoke_context):
        """Shutdown while requests are mid-flight and queued: every client
        still gets its full, correct answer; nothing is dropped."""
        fast = smoke_context.fast_evaluator
        gated = _GatedEvaluator(BatchEvaluator(fast))
        # Identical requests: however the drain ticks coalesce them, the
        # unique cold set matches the local call, so parity stays exact.
        chunk = _population(2, seed=13)
        reference = BatchEvaluator(fast).evaluate_many(chunk)
        results: list = [None] * 4
        failures: list = []
        handle = start_service(gated, tick_s=0.0)
        host, port = handle.address

        def client(i: int) -> None:
            try:
                with ServiceClient(host, port) as c:
                    results[i] = c.evaluate_many(chunk)
            except BaseException as exc:  # pragma: no cover
                failures.append(exc)

        threads = [threading.Thread(target=client, args=(i,)) for i in range(4)]
        for t in threads:
            t.start()
        assert gated.entered.wait(30.0), "no request reached the evaluator"
        with ServiceClient(host, port) as c:
            # All four requests must be queued before the shutdown lands
            # (later arrivals would be rejected by design, not drained).
            _poll(lambda: c.stats()["scheduler"]["requests"] == 4)
            ack = c.shutdown()
        assert ack.get("closing") is True
        gated.release.set()
        for t in threads:
            t.join(120.0)
        handle.shutdown()
        assert failures == []
        assert results == [reference] * 4, (
            "graceful shutdown must drain queued requests with correct "
            "results — no drops, no double runs"
        )
        # The endpoint is really gone afterwards.
        with pytest.raises(OSError):
            socket.create_connection((host, port), timeout=2.0).close()
        # Every queued point was evaluated exactly once (no double runs).
        assert sum(gated.calls) == 4 * len(chunk)

    def test_stats_and_shutdown_racing_a_drain(self, smoke_context):
        """stats/health/shutdown/evaluate hammered from pre-connected
        clients WHILE the service drains: every call either gets a valid
        answer, a typed "closed" error, or a clean connection error —
        never a hang, a crash, or a malformed frame."""
        from repro.resilience import RetryPolicy
        from repro.service.client import ServiceError

        fast = smoke_context.fast_evaluator
        gated = _GatedEvaluator(BatchEvaluator(fast))
        chunk = _population(2, seed=31)
        handle = start_service(gated, tick_s=0.0)
        host, port = handle.address
        no_retry = RetryPolicy(max_attempts=1)

        def fresh_client() -> ServiceClient:
            return ServiceClient(host, port, retry=no_retry)

        blocker = fresh_client()
        block_thread = threading.Thread(
            target=lambda: blocker.evaluate_many(chunk)
        )
        # Pre-connect the racers BEFORE the drain starts: the listener
        # closes the moment shutdown is requested, so only connections
        # that already exist can race the drain at all.
        racers = [fresh_client() for _ in range(6)]
        outcomes: list = []
        lock = threading.Lock()

        def race(i: int, client: ServiceClient) -> None:
            try:
                if i % 3 == 0:
                    outcome = ("stats", client.stats())
                elif i % 3 == 1:
                    outcome = ("health", client.health())
                else:
                    outcome = ("evaluate", client.evaluate_many(chunk))
            except ServiceError as exc:
                outcome = ("service-error", exc)
            except (ConnectionError, OSError) as exc:
                outcome = ("conn-error", exc)
            with lock:
                outcomes.append(outcome)

        try:
            block_thread.start()
            assert gated.entered.wait(30.0), "no request reached the evaluator"
            with fresh_client() as c:
                ack = c.shutdown()  # the drain starts NOW
            assert ack.get("closing") is True
            threads = [
                threading.Thread(target=race, args=(i, client))
                for i, client in enumerate(racers)
            ]
            for t in threads:
                t.start()
            for t in threads:
                t.join(60.0)
            assert all(not t.is_alive() for t in threads), (
                "a request racing the drain hung"
            )
        finally:
            gated.release.set()
            block_thread.join(120.0)
            handle.shutdown()
            blocker.close()
            for client in racers:
                client.close()
        assert len(outcomes) == 6
        for kind, payload in outcomes:
            if kind == "stats":
                assert payload["service"]["closing"] is True
            elif kind == "health":
                assert payload["status"] == "closing"
                assert payload["closing"] is True
            elif kind == "evaluate":
                # Landed before the drain flag was set: a full answer.
                assert len(payload) == len(chunk)
            elif kind == "service-error":
                assert payload.kind == "closed", payload
            else:
                assert kind == "conn-error"
        # The blocked request itself was drained, not dropped.
        assert sum(gated.calls) >= len(chunk)

    def test_backpressure_bounds_inflight_points(self, smoke_context):
        """With a 4-point budget, a 12-point flood queues instead of all
        reaching the scheduler at once."""
        fast = smoke_context.fast_evaluator
        gated = _GatedEvaluator(BatchEvaluator(fast))
        chunk = _population(2, seed=29)
        reference = BatchEvaluator(fast).evaluate_many(chunk)
        results: list = [None] * 6
        failures: list = []
        with start_service(
            gated, tick_s=0.0, max_inflight_points=4
        ) as handle:
            host, port = handle.address

            def client(i: int) -> None:
                try:
                    with ServiceClient(host, port) as c:
                        results[i] = c.evaluate_many(chunk)
                except BaseException as exc:  # pragma: no cover
                    failures.append(exc)

            threads = [
                threading.Thread(target=client, args=(i,)) for i in range(6)
            ]
            for t in threads:
                t.start()
            assert gated.entered.wait(30.0)
            with ServiceClient(host, port) as c:
                # The budget admits exactly 2 two-point requests; the other
                # 4 requests queue on the budget, NOT in the scheduler.
                _poll(lambda: c.stats()["service"]["queued_requests"] == 4)
                stats = c.stats()
                assert stats["service"]["inflight_points"] == 4
                assert stats["scheduler"]["points_in"] == 4
            gated.release.set()
            for t in threads:
                t.join(120.0)
            with ServiceClient(host, port) as c:
                final = c.stats()
        assert failures == []
        assert results == [reference] * 6
        assert final["scheduler"]["points_in"] == 12
        assert final["service"]["peak_inflight_points"] <= 4

    def test_evaluator_error_is_reported_and_service_survives(self, smoke_context):
        fast = smoke_context.fast_evaluator
        failing = _FailingEvaluator(BatchEvaluator(fast))
        points = _population(2, seed=41)
        reference = BatchEvaluator(fast).evaluate_many(points)
        with start_service(failing) as handle:
            with ServiceClient(*handle.address) as client:
                with pytest.raises(ServiceError) as excinfo:
                    client.evaluate_many(points)
                assert excinfo.value.kind == "ValueError"
                failing.fail = False
                assert client.evaluate_many(points) == reference
                stats = client.stats()
        assert stats["scheduler"]["errors"] == 1
        assert stats["scheduler"]["ticks"] == 2

    def test_unknown_op_and_bad_version_get_error_responses(self, smoke_context):
        fast = smoke_context.fast_evaluator
        with start_service(BatchEvaluator(fast)) as handle:
            with ServiceClient(*handle.address) as client:
                with pytest.raises(ServiceError) as excinfo:
                    client._call("sudo")
                assert excinfo.value.kind == "protocol"
            # A raw frame with the wrong version is rejected, not parsed.
            with socket.create_connection(handle.address, timeout=10.0) as sock:
                sock.sendall(b'{"v": 999, "id": 1, "op": "stats"}\n')
                raw = sock.makefile("rb").readline()
            response = protocol.decode_message(raw)
            assert response["ok"] is False
            assert response["error"]["type"] == "protocol"

    @pytest.mark.slow
    def test_service_over_parallel_evaluator(self, smoke_context):
        """The production shape: service -> scheduler -> ParallelEvaluator
        -> worker pool, still bit-identical to in-process scoring."""
        from repro.parallel import ParallelEvaluator

        fast = smoke_context.fast_evaluator
        points = _population(10, seed=43)
        reference = BatchEvaluator(fast).evaluate_many(points)
        evaluator = ParallelEvaluator(fast, workers=2, min_dispatch=2)
        try:
            with start_service(evaluator, tick_s=0.005) as handle:
                host, port = handle.address
                results: list = [None, None]
                failures: list = []

                def client(i: int) -> None:
                    try:
                        with ServiceClient(host, port) as c:
                            results[i] = c.evaluate_many(points)
                    except BaseException as exc:  # pragma: no cover
                        failures.append(exc)

                threads = [
                    threading.Thread(target=client, args=(i,)) for i in range(2)
                ]
                for t in threads:
                    t.start()
                for t in threads:
                    t.join(240.0)
                assert failures == []
            assert results == [reference, reference]
        finally:
            evaluator.close()


# ---------------------------------------------------------------------------
# RemoteEvaluator (the --endpoint client adapter)
# ---------------------------------------------------------------------------


class TestRemoteEvaluator:
    def test_drop_in_evaluator_shape(self, smoke_context):
        fast = smoke_context.fast_evaluator
        points = _population(6, seed=47)
        local = BatchEvaluator(fast)
        reference = local.evaluate_many(points)
        tokens = [encode(p) for p in points]
        reference_tokens = BatchEvaluator(fast).evaluate_tokens(tokens)
        with start_service(BatchEvaluator(fast)) as handle:
            host, port = handle.address
            with RemoteEvaluator(f"{host}:{port}") as remote:
                assert remote.evaluate_many(points) == reference
                assert remote.evaluate(points[0]) == reference[0]
                assert remote.evaluate_tokens(tokens) == reference_tokens
                # Cache accounting reads proxy the server-side evaluator.
                assert remote.misses == len(points)
                assert remote.hits > 0
                assert 0.0 <= remote.hit_rate <= 1.0
                assert remote.cache_size > 0

    @pytest.mark.slow
    def test_report_endpoint_mode_matches_local(self, smoke_context):
        """The report path scored through a live service equals the local
        report for every experiment number (the trailing efficiency
        section embeds wall-clock and cache state, which differ by
        design).  Both runs start from a cold evaluator so the call
        compositions — and therefore every score — line up exactly."""
        from dataclasses import replace

        from repro.experiments.report import generate_report

        fast = smoke_context.fast_evaluator
        local_context = replace(
            smoke_context, batch_evaluator=BatchEvaluator(fast), workers=1
        )
        local = generate_report("smoke", seed=0, context=local_context,
                                iterations=4, correlation_models=2)
        with start_service(BatchEvaluator(fast)) as handle:
            host, port = handle.address
            remote = generate_report(
                "smoke", seed=0, context=smoke_context,
                iterations=4, correlation_models=2,
                endpoint=f"{host}:{port}",
            )
        assert "Search service: endpoint" in remote

        def sections(report: str) -> dict[str, str]:
            parts = report.split("\n## ")
            return {part.split("\n", 1)[0]: part for part in parts[1:]}

        local_sections, remote_sections = sections(local), sections(remote)
        assert set(local_sections) == set(remote_sections)
        for name in local_sections:
            # Fig. 4 embeds a wall-clock speedup column (and never touches
            # the evaluator); the efficiency and metrics sections differ
            # by design (they describe the engine, not the results).
            if name.startswith(("Fig. 4", "Evaluator efficiency", "Metrics")):
                continue
            assert remote_sections[name] == local_sections[name], (
                f"section {name!r} must be identical when scoring goes "
                "through the service"
            )
