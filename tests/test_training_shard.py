"""Sharded Step-3 training (``repro.parallel.training``) + dispatch tuning.

Covers the new parallel task type and the adaptive dispatch threshold:

* **Bit-exact parity** — ``train_accuracies`` results are ``==`` to the
  serial loop at workers 1/2/3, with and without per-candidate seeds and
  the ``train_fast`` kernels (no tolerances).
* **Crash resilience** — killing a training worker respawns the pool and
  the in-flight jobs are resubmitted, never lost.
* **Payload** — the replica round-trips through pickle with a
  bit-identical dataset, so worker-side training is literally the serial
  code path.
* **Adaptive dispatch** — ``DispatchTuner`` estimates the break-even
  cold-batch size from measured per-item and round-trip costs.

CI runs this module inside the tier-1 suite and in the dedicated
parallel job, so the multiprocess training path is exercised on every
push.
"""

from __future__ import annotations

import os
import pickle
import signal

import numpy as np
import pytest

from repro.accel.config import random_config
from repro.nas.encoding import CoDesignPoint
from repro.nas.space import DnnSpace
from repro.parallel import DispatchTuner, TrainingJob, TrainingPool, train_accuracies
from repro.parallel.training import training_payload
from repro.search.evaluator import AccurateEvaluator


def _points(n: int, seed: int = 123) -> list[CoDesignPoint]:
    rng = np.random.default_rng(seed)
    space = DnnSpace()
    return [
        CoDesignPoint(space.sample(rng, name=f"train{seed}_{i}"), random_config(rng))
        for i in range(n)
    ]


@pytest.fixture(scope="module")
def accurate(tiny_dataset) -> AccurateEvaluator:
    """A smoke-scale accurate evaluator (1-epoch trainings)."""
    return AccurateEvaluator(
        tiny_dataset, num_cells=3, stem_channels=4, train_epochs=1, seed=0
    )


@pytest.fixture(scope="module")
def serial_reference(accurate) -> tuple[list[CoDesignPoint], list[float]]:
    points = _points(3, seed=11)
    return points, accurate.train_accuracies(points, workers=1)


# ---------------------------------------------------------------------------
# Payload
# ---------------------------------------------------------------------------


class TestTrainingPayload:
    def test_replica_roundtrip_is_bit_identical(self, accurate):
        replica = pickle.loads(training_payload(accurate))
        assert np.array_equal(
            replica.dataset.train.images, accurate.dataset.train.images
        )
        assert replica.train_epochs == accurate.train_epochs
        assert replica.seed == accurate.seed
        point = _points(1, seed=17)[0]
        assert replica.train_accuracy(point) == accurate.train_accuracy(point)

    def test_per_candidate_seed_override(self, accurate):
        point = _points(1, seed=19)[0]
        default = accurate.train_accuracy(point)
        assert accurate.train_accuracy(point, seed=accurate.seed) == default
        # A different seed is a different (deterministic) training run.
        assert accurate.train_accuracy(point, seed=99) == accurate.train_accuracy(
            point, seed=99
        )


# ---------------------------------------------------------------------------
# Sharded vs serial bit-equality
# ---------------------------------------------------------------------------


class TestShardedTraining:
    def test_workers1_is_the_serial_loop(self, accurate, serial_reference):
        points, reference = serial_reference
        assert [accurate.train_accuracy(p) for p in points] == reference

    def test_two_workers_bit_identical(self, accurate, serial_reference):
        points, reference = serial_reference
        assert accurate.train_accuracies(points, workers=2) == reference

    @pytest.mark.slow
    def test_three_workers_bit_identical(self, accurate, serial_reference):
        points, reference = serial_reference
        assert accurate.train_accuracies(points, workers=3) == reference

    def test_seeded_jobs_bit_identical(self, accurate):
        points = _points(3, seed=23)
        seeds = [7, 8, 9]
        serial = accurate.train_accuracies(points, workers=1, seeds=seeds)
        assert serial == [
            accurate.train_accuracy(p, seed=s) for p, s in zip(points, seeds)
        ]
        assert accurate.train_accuracies(points, workers=2, seeds=seeds) == serial

    def test_train_fast_sharding_bit_identical(self, tiny_dataset):
        fast_eval = AccurateEvaluator(
            tiny_dataset,
            num_cells=3,
            stem_channels=4,
            train_epochs=1,
            seed=0,
            train_fast=True,
        )
        points = _points(3, seed=29)
        serial = fast_eval.train_accuracies(points, workers=1)
        assert fast_eval.train_accuracies(points, workers=2) == serial

    def test_empty_and_validation(self, accurate):
        assert accurate.train_accuracies([], workers=2) == []
        with pytest.raises(ValueError):
            accurate.train_accuracies(_points(2, seed=31), seeds=[1])

    def test_explicit_pool_is_reused_and_left_open(self, accurate, serial_reference):
        points, reference = serial_reference
        with TrainingPool(accurate, workers=2) as pool:
            first = train_accuracies(accurate, points, pool=pool)
            assert first == reference
            batches = pool.batches
            assert train_accuracies(accurate, points, pool=pool) == reference
            assert pool.batches == batches + 1, "the caller's pool serves again"
            assert pool.live


# ---------------------------------------------------------------------------
# Crash recovery
# ---------------------------------------------------------------------------


class TestTrainingCrashRecovery:
    def test_worker_kill_resubmits_jobs(self, accurate, serial_reference):
        points, reference = serial_reference
        with TrainingPool(accurate, workers=2) as pool:
            jobs = [TrainingJob(point=p) for p in points]
            assert pool.run_jobs(jobs) == reference
            pids = pool.worker_pids()
            assert len(pids) == 2
            os.kill(pids[0], signal.SIGKILL)
            # The dispatch that hits the broken pool respawns it and
            # resubmits the full job list — nothing is lost.
            assert pool.run_jobs(jobs) == reference
            assert pool.restarts >= 1
            # The healed pool keeps serving.
            assert pool.run_jobs(jobs[:1]) == reference[:1]


# ---------------------------------------------------------------------------
# Adaptive dispatch threshold
# ---------------------------------------------------------------------------


class TestDispatchTuner:
    def test_initial_threshold_until_calibrated(self):
        tuner = DispatchTuner(workers=4)
        assert tuner.threshold == 2
        tuner.observe_local(4, 0.04)  # 10 ms/item
        assert tuner.threshold == 2, "needs a pool sample too"

    def test_break_even_formula(self):
        tuner = DispatchTuner(workers=2, ema=1.0)
        tuner.observe_local(10, 0.1)  # 10 ms/item
        # 16 items across 2 workers -> busiest shard 8 items = 80 ms of
        # compute; 120 ms wall => 40 ms fixed overhead.
        tuner.observe_pool(16, 0.12)
        assert tuner.pool_overhead_s == pytest.approx(0.04)
        # n* = 0.04 * 2 / (0.01 * 1) = 8
        assert tuner.threshold == 8

    def test_threshold_clamps(self):
        tuner = DispatchTuner(workers=2, ema=1.0, floor=2, ceiling=16)
        tuner.observe_local(1, 1.0)  # very expensive items
        tuner.observe_pool(2, 1.0)  # no measurable overhead
        assert tuner.threshold == 2
        cheap = DispatchTuner(workers=2, ema=1.0, floor=2, ceiling=16)
        cheap.observe_local(100, 0.001)  # 10 us/item
        cheap.observe_pool(4, 1.0)  # huge overhead
        assert cheap.threshold == 16

    def test_single_size_pool_observations_cannot_calibrate(self):
        # Pool-only sessions collect (busiest, seconds) observations, but
        # one shard size leaves overhead vs per-item cost unidentifiable.
        tuner = DispatchTuner(workers=2)
        for _ in range(5):
            tuner.observe_pool(8, 1.0)
        assert tuner.pool_samples == 5
        assert tuner.fit_item_s is None and tuner.fit_overhead_s is None
        assert tuner.threshold == 2, "stays at the configured initial"

    def test_pool_only_least_squares_recovers_both_costs(self):
        # seconds = 0.09 + busiest * 0.008, exactly linear -> exact fit.
        tuner = DispatchTuner(workers=2)
        for items in (4, 8, 16, 32):  # busiest shards 2, 4, 8, 16
            busiest = -(-items // 2)
            tuner.observe_pool(items, 0.09 + busiest * 0.008)
        assert tuner.fit_overhead_s == pytest.approx(0.09)
        assert tuner.fit_item_s == pytest.approx(0.008)
        # Same break-even formula as the direct estimates:
        # n* = 0.09 * 2 / (0.008 * 1) = 22.5 -> next whole batch size.
        assert tuner.threshold == 23

    def test_pool_only_fit_clamps_negative_solutions(self):
        # A decreasing seconds-vs-size relation (noise, cache warming)
        # must not yield a negative per-item cost.
        tuner = DispatchTuner(workers=2, ceiling=64)
        tuner.observe_pool(4, 1.0)
        tuner.observe_pool(32, 0.1)
        assert tuner.fit_item_s == 0.0
        assert tuner.threshold == 64, "zero item cost -> pool never pays off"

    def test_direct_estimates_take_precedence_over_the_fit(self):
        tuner = DispatchTuner(workers=2, ema=1.0)
        for items in (4, 16):
            busiest = -(-items // 2)
            tuner.observe_pool(items, 0.9 + busiest * 0.08)  # fitted: slow
        fitted = tuner.threshold
        assert fitted == 23  # n* = 0.9 * 2 / (0.08 * 1) = 22.5
        tuner.observe_local(10, 0.1)  # direct: 10x cheaper items
        tuner.observe_pool(16, 0.12)  # direct overhead 40 ms
        assert tuner.threshold == 8, "directly measured costs win"

    def test_pool_only_observation_window_is_bounded(self):
        tuner = DispatchTuner(workers=2)
        for i in range(100):
            tuner.observe_pool(2 + (i % 3), 0.01)
        assert len(tuner._pool_obs) == 64
        assert tuner.pool_samples == 100

    def test_ema_blends(self):
        tuner = DispatchTuner(workers=2, ema=0.5)
        tuner.observe_local(1, 0.1)
        tuner.observe_local(1, 0.2)
        assert tuner.local_item_s == pytest.approx(0.15)

    def test_validation(self):
        with pytest.raises(ValueError):
            DispatchTuner(workers=1)
        with pytest.raises(ValueError):
            DispatchTuner(workers=2, ema=0.0)


class TestAdaptiveMinDispatch:
    def test_auto_is_default_and_exposes_tuner(self, smoke_context):
        from repro.parallel import ParallelEvaluator

        evaluator = ParallelEvaluator(smoke_context.fast_evaluator, workers=2)
        assert evaluator.min_dispatch == "auto"
        assert evaluator.tuner is not None
        assert evaluator.dispatch_threshold == 2, "uncalibrated = old default"
        evaluator.close()

    def test_fixed_min_dispatch_disables_tuner(self, smoke_context):
        from repro.parallel import ParallelEvaluator

        evaluator = ParallelEvaluator(
            smoke_context.fast_evaluator, workers=2, min_dispatch=5
        )
        assert evaluator.tuner is None
        assert evaluator.dispatch_threshold == 5
        evaluator.close()

    def test_rejects_bad_min_dispatch(self, smoke_context):
        from repro.parallel import ParallelEvaluator

        with pytest.raises(ValueError):
            ParallelEvaluator(
                smoke_context.fast_evaluator, workers=2, min_dispatch="sometimes"
            )

    def test_local_runs_calibrate_per_item_cost(self, smoke_context):
        from repro.parallel import ParallelEvaluator
        from repro.search.evaluator import BatchEvaluator

        evaluator = ParallelEvaluator(
            smoke_context.fast_evaluator, workers=2
        )
        try:
            points = _points(1, seed=37)
            reference = BatchEvaluator(
                smoke_context.fast_evaluator
            ).evaluate_many(points)
            assert evaluator.evaluate_many(points) == reference
            assert evaluator.pool is None, "below threshold stays in-process"
            assert evaluator.tuner.local_samples == 1
            assert evaluator.tuner.local_item_s > 0
        finally:
            evaluator.close()

    def test_first_large_cold_batch_is_a_calibration_probe(self, smoke_context):
        """Without the probe, a session whose cold batches are always >=
        the threshold would never measure the in-process per-item cost and
        'auto' would silently stay at the fixed default forever."""
        from repro.parallel import ParallelEvaluator
        from repro.search.evaluator import BatchEvaluator

        evaluator = ParallelEvaluator(smoke_context.fast_evaluator, workers=2)
        try:
            points = _points(4, seed=41)
            reference = BatchEvaluator(
                smoke_context.fast_evaluator
            ).evaluate_many(points)
            assert evaluator.tuner.wants_probe(len(points))
            assert evaluator.evaluate_many(points) == reference
            assert evaluator.pool is None, "the probe runs in-process"
            assert evaluator.tuner.local_samples == 1
            # Calibrated: the next large cold batch goes to the pool.
            assert not evaluator.tuner.wants_probe(4)
            more = _points(4, seed=43)
            reference_more = BatchEvaluator(
                smoke_context.fast_evaluator
            ).evaluate_many(more)
            assert evaluator.evaluate_many(more) == reference_more
            assert evaluator.pool is not None and evaluator.pool.batches == 1
        finally:
            evaluator.close()


# ---------------------------------------------------------------------------
# Stack wiring
# ---------------------------------------------------------------------------


class TestStackWiring:
    def test_yoso_config_has_training_knobs(self):
        from repro.search.yoso import YosoConfig

        config = YosoConfig()
        assert config.train_fast is False, "paper fidelity by default"
        assert config.workers == 1

    def test_get_context_train_fast_key(self, smoke_context):
        from repro.experiments import get_context

        context = get_context("smoke", seed=0, train_fast=True)
        assert context is not smoke_context, "train_fast is part of the key"
        assert context.train_fast
        assert context.fast_evaluator is smoke_context.fast_evaluator, (
            "Step-1 artefacts are shared across kernel modes"
        )
        assert get_context("smoke", seed=0, train_fast=True) is context

    def test_table2_training_rescore_row(self, smoke_context):
        """The training-rescore path trains the pooled top-N stand-alone
        (serial here: the smoke context has workers=1) and yields a row."""
        from repro.experiments.table2 import _yoso_row
        from repro.search.reward import ENERGY_FOCUS

        rescorer = AccurateEvaluator(
            smoke_context.dataset,
            simulator=smoke_context.simulator,
            num_cells=smoke_context.scale.hypernet_cells,
            stem_channels=smoke_context.scale.hypernet_channels,
            train_epochs=1,
            seed=0,
        )
        row = _yoso_row(
            "Yoso_eer",
            ENERGY_FOCUS,
            5,
            smoke_context,
            8,  # iterations
            2,  # topn
            restarts=1,
            rescorer=rescorer,
        )
        assert row.method == "single-stage"
        assert 0.0 <= row.test_error <= 100.0

    @pytest.mark.slow
    def test_finalize_sharded_training_matches_serial(self):
        """The whole pipeline's Step 3 is worker-count invariant (the
        quick_codesign invariance test covers Steps 1-3; this pins the
        rescored accuracies specifically)."""
        from repro import quick_codesign

        serial = quick_codesign("smoke", seed=21, workers=1)
        sharded = quick_codesign("smoke", seed=21, workers=2)
        assert [c.accurate for c in sharded.rescored] == [
            c.accurate for c in serial.rescored
        ]
