"""The compact-cache training kernels (the ``train_fast`` mode).

Three layers of guarantees, mirroring docs/PERFORMANCE.md ("Training
path"):

* **Kernel-level parity** — every ``*_fast`` forward/backward pair matches
  its standard counterpart at relative 1e-6 (float64; conv/max-pool
  forwards and pool backwards are bitwise identical), across kernel
  sizes, strides and the stored-columns vs chunked-recompute regimes.
* **Gradcheck** — fast-kernel gradients match central-difference numerical
  gradients, independently of the standard kernels.
* **Mode wiring** — the ``train_fast`` scope latches per layer forward,
  nests correctly, is off by default, and a ``CellNetwork(train_fast=
  True)`` trains end-to-end with gradients matching the standard network
  at relative 1e-5 (float32 round-off accumulated across the whole DAG).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.nn import functional as F
from repro.nn import layers as L

from tests.conftest import numerical_gradient

REL = 1e-6


def rand(shape, seed=0):
    return np.random.default_rng(seed).normal(size=shape).astype(np.float64)


def rel_err(a: np.ndarray, b: np.ndarray) -> float:
    scale = np.max(np.abs(b))
    if scale == 0.0:
        return float(np.max(np.abs(a - b)))
    return float(np.max(np.abs(a - b)) / scale)


# Geometry grid: stride-1 "same" ops (the normal-cell shapes, transposed
# grad_x path), stride-2 (reduction cells, col2im path) and 1x1 pointwise.
CONV_CASES = [
    (8, 8, 1, 1, 0),
    (8, 12, 1, 2, 0),  # FactorizedReduce-style strided pointwise
    (8, 8, 3, 1, 1),
    (8, 8, 5, 1, 2),
    (8, 12, 3, 2, 1),
    (8, 8, 5, 2, 2),
]


class TestConvParity:
    @pytest.mark.parametrize("c,k,r,stride,pad", CONV_CASES)
    def test_forward_and_grads_match_standard(self, c, k, r, stride, pad):
        x = rand((3, c, 10, 10), seed=1)
        w = rand((k, c, r, r), seed=2)
        out_s, cache_s = F.conv2d_forward(x, w, stride, pad)
        out_f, cache_f = F.conv2d_forward_fast(x, w, stride, pad)
        assert np.array_equal(out_s, out_f), "conv fast forward is bitwise"
        g = rand(out_s.shape, seed=3)
        gx_s, gw_s = F.conv2d_backward(g, cache_s)
        gx_f, gw_f = F.conv2d_backward_fast(g, cache_f)
        assert rel_err(gx_f, gx_s) <= REL
        assert rel_err(gw_f, gw_s) <= REL

    def test_chunked_recompute_regime(self, monkeypatch):
        """Columns over the cache budget are recomputed chunk by chunk in
        backward — same gradients, no stored column tensor."""
        monkeypatch.setattr(F, "_TRAIN_CACHE_ELEMS", 1)
        monkeypatch.setattr(F, "_INFER_CHUNK_ELEMS", 500)
        x = rand((5, 4, 8, 8), seed=4)
        w = rand((6, 4, 3, 3), seed=5)
        out_s, cache_s = F.conv2d_forward(x, w, 1, 1)
        out_f, cache_f = F.conv2d_forward_fast(x, w, 1, 1)
        assert cache_f[4] is None, "over-budget columns must not be stored"
        assert np.array_equal(out_s, out_f)
        g = rand(out_s.shape, seed=6)
        gx_s, gw_s = F.conv2d_backward(g, cache_s)
        gx_f, gw_f = F.conv2d_backward_fast(g, cache_f)
        assert rel_err(gx_f, gx_s) <= REL
        assert rel_err(gw_f, gw_s) <= REL

    def test_stored_columns_are_float32(self):
        x = rand((2, 4, 8, 8), seed=7)
        w = rand((4, 4, 3, 3), seed=8)
        _, cache = F.conv2d_forward_fast(x, w, 1, 1)
        assert cache[4] is not None and cache[4].dtype == np.float32

    def test_gradcheck_numerical(self):
        x = rand((2, 3, 6, 6), seed=9)
        w = rand((4, 3, 3, 3), seed=10)
        g = rand((2, 4, 6, 6), seed=11)

        def loss():
            out, _ = F.conv2d_forward_fast(x, w, 1, 1)
            return float(np.sum(out * g))

        _, cache = F.conv2d_forward_fast(x, w, 1, 1)
        gx, gw = F.conv2d_backward_fast(g, cache)
        assert np.allclose(gx, numerical_gradient(loss, x), rtol=1e-4, atol=1e-5)
        assert np.allclose(gw, numerical_gradient(loss, w), rtol=1e-4, atol=1e-5)


class TestDepthwiseParity:
    @pytest.mark.parametrize("r,stride", [(3, 1), (5, 1), (3, 2), (5, 2)])
    def test_forward_and_grads_match_standard(self, r, stride):
        pad = F.pad_same(r)
        x = rand((3, 6, 10, 10), seed=12)
        w = rand((6, r, r), seed=13)
        out_s, cache_s = F.depthwise_conv2d_forward(x, w, stride, pad)
        out_f, cache_f = F.depthwise_conv2d_forward_fast(x, w, stride, pad)
        assert rel_err(out_f, out_s) <= REL
        g = rand(out_s.shape, seed=14)
        gx_s, gw_s = F.depthwise_conv2d_backward(g, cache_s)
        gx_f, gw_f = F.depthwise_conv2d_backward_fast(g, cache_f)
        assert rel_err(gx_f, gx_s) <= REL
        assert rel_err(gw_f, gw_s) <= REL

    def test_chunked_recompute_regime(self, monkeypatch):
        monkeypatch.setattr(F, "_TRAIN_CACHE_ELEMS", 1)
        monkeypatch.setattr(F, "_INFER_CHUNK_ELEMS", 500)
        x = rand((5, 4, 8, 8), seed=15)
        w = rand((4, 3, 3), seed=16)
        out_s, cache_s = F.depthwise_conv2d_forward(x, w, 1, 1)
        out_f, cache_f = F.depthwise_conv2d_forward_fast(x, w, 1, 1)
        assert cache_f[4] is None
        assert rel_err(out_f, out_s) <= REL
        g = rand(out_s.shape, seed=17)
        gx_s, gw_s = F.depthwise_conv2d_backward(g, cache_s)
        gx_f, gw_f = F.depthwise_conv2d_backward_fast(g, cache_f)
        assert rel_err(gx_f, gx_s) <= REL
        assert rel_err(gw_f, gw_s) <= REL

    def test_gradcheck_numerical(self):
        x = rand((2, 3, 6, 6), seed=18)
        w = rand((3, 3, 3), seed=19)
        g = rand((2, 3, 6, 6), seed=20)

        def loss():
            out, _ = F.depthwise_conv2d_forward_fast(x, w, 1, 1)
            return float(np.sum(out * g))

        _, cache = F.depthwise_conv2d_forward_fast(x, w, 1, 1)
        gx, gw = F.depthwise_conv2d_backward_fast(g, cache)
        assert np.allclose(gx, numerical_gradient(loss, x), rtol=1e-4, atol=1e-5)
        assert np.allclose(gw, numerical_gradient(loss, w), rtol=1e-4, atol=1e-5)


class TestPoolParity:
    @pytest.mark.parametrize("stride", [1, 2])
    def test_maxpool_bitwise(self, stride):
        x = rand((3, 5, 9, 9), seed=21)
        out_s, cache_s = F.maxpool2d_forward(x, 3, stride, 1)
        out_f, cache_f = F.maxpool2d_forward_fast(x, 3, stride, 1)
        assert np.array_equal(out_s, out_f)
        g = rand(out_s.shape, seed=22)
        assert np.array_equal(
            F.maxpool2d_backward(g, cache_s), F.maxpool2d_backward_fast(g, cache_f)
        )

    def test_maxpool_tie_routing_matches_argmax(self):
        """Repeated window maxima route the gradient to the FIRST max in
        scan order, exactly like the standard kernel's argmax."""
        x = np.ones((1, 1, 4, 4), dtype=np.float64)  # every window all-ties
        out_s, cache_s = F.maxpool2d_forward(x, 3, 1, 1)
        out_f, cache_f = F.maxpool2d_forward_fast(x, 3, 1, 1)
        assert np.array_equal(out_s, out_f)
        g = rand(out_s.shape, seed=23)
        assert np.array_equal(
            F.maxpool2d_backward(g, cache_s), F.maxpool2d_backward_fast(g, cache_f)
        )

    @pytest.mark.parametrize("stride", [1, 2])
    def test_avgpool(self, stride):
        x = rand((3, 5, 9, 9), seed=24)
        out_s, cache_s = F.avgpool2d_forward(x, 3, stride, 1)
        out_f, cache_f = F.avgpool2d_forward_fast(x, 3, stride, 1)
        assert rel_err(out_f, out_s) <= REL
        g = rand(out_s.shape, seed=25)
        assert np.array_equal(
            F.avgpool2d_backward(g, cache_s), F.avgpool2d_backward_fast(g, cache_f)
        ), "avgpool fast backward is bitwise (same adds, same order)"

    def test_maxpool_cache_is_boolean(self):
        x = rand((2, 3, 8, 8), seed=26)
        _, cache = F.maxpool2d_forward_fast(x, 3, 1, 1)
        assert cache[0].dtype == np.bool_


class TestBatchNormParity:
    def test_forward_backward_and_running_stats(self):
        x = rand((6, 5, 7, 7), seed=27)
        gamma = rand((5,), seed=28)
        beta = rand((5,), seed=29)
        rm_s, rv_s = np.zeros(5), np.ones(5)
        rm_f, rv_f = np.zeros(5), np.ones(5)
        out_s, cache_s = F.batchnorm_forward(
            x, gamma, beta, rm_s, rv_s, 0.1, 1e-5, True
        )
        out_f, cache_f = F.batchnorm_forward_fast(
            x, gamma, beta, rm_f, rv_f, 0.1, 1e-5, True
        )
        assert rel_err(out_f, out_s) <= REL
        assert rel_err(rm_f, rm_s) <= REL and rel_err(rv_f, rv_s) <= REL
        g = rand(out_s.shape, seed=30)
        gx_s, gg_s, gb_s = F.batchnorm_backward(g, cache_s)
        gx_f, gg_f, gb_f = F.batchnorm_backward_fast(g, cache_f)
        assert rel_err(gx_f, gx_s) <= REL
        assert rel_err(gg_f, gg_s) <= REL
        assert np.array_equal(gb_f, gb_s)

    def test_eval_mode_delegates_to_standard(self):
        x = rand((4, 3, 6, 6), seed=31)
        gamma, beta = np.ones(3), np.zeros(3)
        rm, rv = rand((3,), seed=32) * 0.1, np.abs(rand((3,), seed=33)) + 0.5
        out_s, _ = F.batchnorm_forward(x, gamma, beta, rm, rv, 0.1, 1e-5, False)
        out_f, cache = F.batchnorm_forward_fast(
            x, gamma, beta, rm, rv, 0.1, 1e-5, False
        )
        assert np.array_equal(out_s, out_f)
        assert cache is None


class TestTrainFastScope:
    def test_off_by_default_and_nests(self):
        assert not L.train_fast_enabled()
        with L.train_fast():
            assert L.train_fast_enabled()
            with L.train_fast(False):
                assert not L.train_fast_enabled()
            assert L.train_fast_enabled()
        assert not L.train_fast_enabled()

    def test_layer_latches_kernel_choice_per_forward(self):
        """A forward inside the scope pairs with the fast backward even if
        the scope has been exited before backward runs."""
        conv = L.Conv2d(3, 4, kernel=3, rng=np.random.default_rng(0))
        x = rand((2, 3, 6, 6), seed=34)
        with L.train_fast():
            conv(x)
        assert conv._fast and len(conv._cache) == 5  # fast cache layout
        conv.backward(rand((2, 4, 6, 6), seed=35))  # dispatches fast kernel

    def test_default_path_unchanged(self):
        conv = L.Conv2d(3, 4, kernel=3, rng=np.random.default_rng(0))
        x = rand((2, 3, 6, 6), seed=36)
        conv(x)
        assert not conv._fast
        assert len(conv._cache) == 5 and conv._cache[0].ndim == 3  # im2col cols

    def test_eval_mode_forward_skips_caches(self):
        conv = L.Conv2d(3, 4, kernel=3, rng=np.random.default_rng(0))
        pool = L.MaxPool2d(3)
        relu = L.ReLU()
        conv.eval(), pool.eval(), relu.eval()
        x = rand((2, 3, 6, 6), seed=37)
        with L.train_fast():
            out = conv(x)
            pool(out)
            relu(out)
        assert conv._cache is None and pool._cache is None and relu._mask is None

    def test_layer_grads_match_standard(self):
        """Layer-by-layer: standard vs fast gradients at relative 1e-6."""
        rng = np.random.default_rng(0)
        x = rand((3, 4, 8, 8), seed=38)
        g = None
        for build in (
            lambda: L.Conv2d(4, 4, kernel=3, rng=np.random.default_rng(1)),
            lambda: L.Conv2d(4, 4, kernel=1, pad=0, rng=np.random.default_rng(1)),
            lambda: L.DepthwiseConv2d(4, kernel=3, rng=np.random.default_rng(1)),
            lambda: L.MaxPool2d(3),
            lambda: L.AvgPool2d(3),
            lambda: L.BatchNorm2d(4),
        ):
            layer_s, layer_f = build(), build()
            out_s = layer_s(x)
            g = rand(out_s.shape, seed=39)
            gx_s = layer_s.backward(g)
            with L.train_fast():
                out_f = layer_f(x)
            gx_f = layer_f.backward(g)
            assert rel_err(out_f, out_s) <= REL, type(layer_s).__name__
            assert rel_err(gx_f, gx_s) <= REL, type(layer_s).__name__
            for p_s, p_f in zip(layer_s.parameters(), layer_f.parameters()):
                assert rel_err(p_f.grad, p_s.grad) <= REL, type(layer_s).__name__


class TestCellNetworkTrainFast:
    def test_end_to_end_gradients_match(self, genotype, tiny_dataset):
        from repro.nas.network import CellNetwork

        x = tiny_dataset.train.images[:16]
        y = tiny_dataset.train.labels[:16]

        def grads(train_fast):
            net = CellNetwork(
                genotype,
                num_cells=3,
                stem_channels=4,
                rng=np.random.default_rng(0),
                train_fast=train_fast,
            )
            logits = net(x)
            _, grad = F.softmax_cross_entropy(logits, y)
            net.backward(grad)
            return logits, [p.grad.copy() for p in net.parameters()]

        logits_s, grads_s = grads(False)
        logits_f, grads_f = grads(True)
        # float32 end to end: round-off accumulates across the DAG, so the
        # bar is 1e-5 here; the rel-1e-6 kernel parity is pinned above in
        # float64.
        assert rel_err(logits_f, logits_s) <= 1e-5
        for a, b in zip(grads_f, grads_s):
            # atol floors the comparison for numerically-zero gradients
            # (classifier bias entries at ~1e-8 are pure round-off).
            assert np.allclose(a, b, rtol=1e-4, atol=1e-6)

    def test_train_network_mode_flag(self, genotype, tiny_dataset):
        from repro.nas.network import CellNetwork
        from repro.nas.train import train_network

        net = CellNetwork(
            genotype, num_cells=3, stem_channels=4, rng=np.random.default_rng(2)
        )
        result = train_network(
            net, tiny_dataset, epochs=1, batch_size=32, seed=0, train_fast=True
        )
        assert 0.0 <= result.val_accuracy <= 1.0
        assert not L.train_fast_enabled(), "scope must not leak"

    def test_train_fast_deterministic(self, genotype, tiny_dataset):
        from repro.nas.network import CellNetwork
        from repro.nas.train import train_network

        runs = []
        for _ in range(2):
            net = CellNetwork(
                genotype,
                num_cells=3,
                stem_channels=4,
                rng=np.random.default_rng(3),
                train_fast=True,
            )
            runs.append(
                train_network(net, tiny_dataset, epochs=1, batch_size=32, seed=5)
            )
        assert runs[0].final_train_loss == runs[1].final_train_loss
        assert runs[0].val_accuracy == runs[1].val_accuracy
