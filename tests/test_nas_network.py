"""Tests for concrete cell networks: shapes, DAG backward, training signal."""

from __future__ import annotations

import numpy as np
import pytest

from repro.nas.genotype import CellGenotype, NodeSpec
from repro.nas.network import Cell, CellNetwork
from repro.nas.ops import OP_NAMES, build_op, op_index, OPS
from repro.nas.space import DnnSpace
from repro.nn import functional as F


def x32(shape, seed=0):
    return np.random.default_rng(seed).normal(size=shape).astype(np.float32)


class TestOps:
    @pytest.mark.parametrize("name", OP_NAMES)
    def test_build_all_ops_stride1(self, name, rng):
        op = build_op(name, 4, 4, 1, rng)
        out = op(x32((2, 4, 8, 8)))
        assert out.shape == (2, 4, 8, 8)

    @pytest.mark.parametrize("name", OP_NAMES)
    def test_build_all_ops_stride2(self, name, rng):
        op = build_op(name, 4, 4, 2, rng)
        out = op(x32((2, 4, 8, 8)))
        assert out.shape == (2, 4, 4, 4)

    @pytest.mark.parametrize("name", OP_NAMES)
    def test_backward_all_ops(self, name, rng):
        op = build_op(name, 3, 3, 1, rng)
        x = x32((1, 3, 6, 6))
        out = op(x)
        gx = op.backward(np.ones_like(out))
        assert gx.shape == x.shape

    def test_channel_change(self, rng):
        for name in OP_NAMES:
            op = build_op(name, 4, 8, 1, rng)
            assert op(x32((1, 4, 6, 6))).shape == (1, 8, 6, 6)

    def test_unknown_op_rejected(self, rng):
        with pytest.raises(KeyError):
            build_op("conv9x9", 4, 4, 1, rng)

    def test_op_index_bijection(self):
        for i, op in enumerate(OPS):
            assert op_index(op.name) == i

    def test_pool_ops_have_no_weights_when_channels_match(self, rng):
        op = build_op("maxpool3x3", 4, 4, 1, rng)
        weighted = [p for p in op.parameters() if p.weight_decay]
        assert not weighted  # only BN gamma/beta (flagged no-decay)


class TestCell:
    def test_normal_cell_shapes(self, simple_cell, rng):
        cell = Cell(simple_cell, 8, 8, 16, reduction=False, reduction_prev=False, rng=rng)
        s0 = x32((2, 8, 8, 8))
        s1 = x32((2, 8, 8, 8), seed=1)
        out = cell(s0, s1)
        assert out.shape == (2, cell.out_channels, 8, 8)
        assert cell.out_channels == 16 * len(simple_cell.loose_ends())

    def test_reduction_cell_halves_spatial(self, simple_cell, rng):
        cell = Cell(simple_cell, 8, 8, 16, reduction=True, reduction_prev=False, rng=rng)
        out = cell(x32((1, 8, 8, 8)), x32((1, 8, 8, 8), seed=1))
        assert out.shape[2:] == (4, 4)

    def test_reduction_prev_aligns_spatial(self, simple_cell, rng):
        # Previous cell halved: s0 is twice the size of s1.
        cell = Cell(simple_cell, 8, 16, 16, reduction=False, reduction_prev=True, rng=rng)
        out = cell(x32((1, 8, 8, 8)), x32((1, 16, 4, 4), seed=1))
        assert out.shape[2:] == (4, 4)

    def test_backward_returns_both_input_grads(self, simple_cell, rng):
        cell = Cell(simple_cell, 4, 4, 8, reduction=False, reduction_prev=False, rng=rng)
        s0, s1 = x32((1, 4, 6, 6)), x32((1, 4, 6, 6), seed=2)
        out = cell(s0, s1)
        g0, g1 = cell.backward(np.ones_like(out))
        assert g0.shape == s0.shape
        assert g1.shape == s1.shape

    def test_backward_before_forward_raises(self, simple_cell, rng):
        cell = Cell(simple_cell, 4, 4, 8, reduction=False, reduction_prev=False, rng=rng)
        with pytest.raises(RuntimeError):
            cell.backward(np.ones((1, 8, 4, 4), dtype=np.float32))

    def test_all_used_ops_get_gradients(self, simple_cell, rng):
        cell = Cell(simple_cell, 4, 4, 8, reduction=False, reduction_prev=False, rng=rng)
        out = cell(x32((1, 4, 6, 6)), x32((1, 4, 6, 6), seed=3))
        cell.backward(np.ones_like(out))
        # Every conv/linear weight in the cell must have received gradient:
        # the fixture cell consumes every node, so every op is on-path.
        weighted = [p for p in cell.parameters() if p.weight_decay]
        assert weighted
        touched = sum(1 for p in weighted if np.any(p.grad != 0))
        assert touched == len(weighted)


class TestCellNetwork:
    def test_forward_shape(self, random_genotype, rng):
        net = CellNetwork(random_genotype, num_cells=4, stem_channels=8, rng=rng)
        assert net(x32((2, 3, 16, 16))).shape == (2, 10)

    def test_channel_doubling_at_reductions(self, genotype, rng):
        net = CellNetwork(genotype, num_cells=6, stem_channels=8, rng=rng)
        reductions = [c for c in net.cells if c.reduction]
        assert len(reductions) == 2  # paper: 4 normal + 2 reduction
        channel_seq = [c.channels for c in net.cells]
        assert channel_seq == [8, 8, 16, 16, 32, 32]

    def test_backward_full_chain(self, genotype, rng):
        net = CellNetwork(genotype, num_cells=3, stem_channels=4, rng=rng)
        x = x32((2, 3, 8, 8))
        logits = net(x)
        loss, grad = F.softmax_cross_entropy(logits, np.array([1, 2]))
        gx = net.backward(grad)
        assert gx.shape == x.shape
        assert np.isfinite(gx).all()

    def test_gradient_descends_loss(self, genotype, rng):
        """One SGD step along the computed gradient must reduce the loss."""
        from repro.nn.optim import SGD

        net = CellNetwork(genotype, num_cells=3, stem_channels=4, rng=rng)
        x = x32((8, 3, 8, 8), seed=4)
        y = np.random.default_rng(5).integers(0, 10, 8)
        opt = SGD(net.parameters(), lr=0.05, momentum=0.0, weight_decay=0.0,
                  skip_zero_grad=False)
        logits = net(x)
        loss0, grad = F.softmax_cross_entropy(logits, y)
        net.backward(grad)
        opt.step()
        # Re-evaluate on the same batch (training-mode BN, same stats source).
        loss1, _ = F.softmax_cross_entropy(net(x), y)
        assert loss1 < loss0

    def test_param_count_grows_with_cells(self, genotype, rng):
        small = CellNetwork(genotype, num_cells=3, stem_channels=4, rng=rng)
        large = CellNetwork(genotype, num_cells=6, stem_channels=4, rng=rng)
        assert large.num_parameters() > small.num_parameters()

    def test_deterministic_given_rng(self, genotype):
        a = CellNetwork(genotype, num_cells=3, stem_channels=4,
                        rng=np.random.default_rng(11))
        b = CellNetwork(genotype, num_cells=3, stem_channels=4,
                        rng=np.random.default_rng(11))
        x = x32((2, 3, 8, 8), seed=6)
        assert np.array_equal(a(x), b(x))

    def test_many_random_genotypes_run(self):
        space = DnnSpace()
        rng = np.random.default_rng(21)
        x = x32((1, 3, 8, 8), seed=7)
        for _ in range(8):
            g = space.sample(rng)
            net = CellNetwork(g, num_cells=3, stem_channels=4, rng=rng)
            logits = net(x)
            assert logits.shape == (1, 10)
            assert np.isfinite(logits).all()
            net.backward(np.ones_like(logits))
