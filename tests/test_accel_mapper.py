"""Tests for the global-buffer tiling mapper."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.accel.config import AcceleratorConfig
from repro.accel.mapper import TILE_GRID, Tiling, choose_tiling
from repro.accel.workload import LayerWorkload


def cfg(gbuf_kb=256):
    return AcceleratorConfig(16, 16, gbuf_kb, 256, "OS")


SMALL = LayerWorkload("small", "conv", 8, 8, 8, 3, 1)
BIG = LayerWorkload("big", "conv", 256, 256, 64, 5, 1)


class TestChooseTiling:
    def test_small_layer_fits_untiled(self):
        t = choose_tiling(SMALL, cfg(1024))
        assert t.feasible
        assert (t.nc, t.nk, t.ns) == (1, 1, 1)
        # Untiled: every datatype crosses DRAM exactly once.
        assert t.dram_ifmap_bytes == SMALL.ifmap_bytes
        assert t.dram_weight_bytes == SMALL.weight_bytes
        assert t.dram_ofmap_bytes == SMALL.ofmap_bytes

    def test_traffic_at_least_one_pass(self):
        for layer in (SMALL, BIG):
            t = choose_tiling(layer, cfg(108))
            assert t.dram_ifmap_bytes >= layer.ifmap_bytes
            assert t.dram_weight_bytes >= layer.weight_bytes
            assert t.dram_ofmap_bytes >= layer.ofmap_bytes

    def test_big_layer_needs_tiling(self):
        t = choose_tiling(BIG, cfg(108))
        assert t.nc * t.nk * t.ns > 1

    def test_larger_gbuf_never_increases_traffic(self):
        small_buf = choose_tiling(BIG, cfg(108)).dram_bytes
        large_buf = choose_tiling(BIG, cfg(1024)).dram_bytes
        assert large_buf <= small_buf

    @given(gbuf=st.sampled_from([108, 196, 256, 512, 1024]))
    @settings(deadline=None)
    def test_chosen_tile_fits_budget(self, gbuf):
        t = choose_tiling(BIG, cfg(gbuf))
        if t.feasible:
            tile_set = (
                BIG.ifmap_bytes / (t.nc * t.ns)
                + BIG.weight_bytes / (t.nc * t.nk)
                + BIG.ofmap_bytes / (t.nk * t.ns)
            )
            assert tile_set <= gbuf * 1024 * 0.9 + 1e-6

    def test_tile_counts_from_grid(self):
        t = choose_tiling(BIG, cfg(196))
        assert t.nc in TILE_GRID and t.nk in TILE_GRID and t.ns in TILE_GRID

    def test_weightless_layer_no_weight_traffic(self):
        pool = LayerWorkload("pool", "pool", 64, 64, 32, 3, 1)
        t = choose_tiling(pool, cfg(108))
        assert t.dram_weight_bytes == 0.0

    def test_infeasible_marks_flag(self):
        huge = LayerWorkload("huge", "conv", 4096, 4096, 64, 5, 1)
        t = choose_tiling(huge, cfg(1))  # 1 KB buffer: nothing fits
        assert not t.feasible
        assert t.dram_bytes > huge.total_bytes

    def test_dram_bytes_property(self):
        t = Tiling(1, 2, 3, 10.0, 20.0, 30.0, True)
        assert t.dram_bytes == 60.0

    def test_psum_spill_formula(self):
        """With nc input-channel tiles, the ofmap crosses DRAM 2*nc-1 times."""
        t = choose_tiling(BIG, cfg(108))
        assert t.dram_ofmap_bytes == BIG.ofmap_bytes * (2 * t.nc - 1)
