"""Tests for the non-GP regressors of the Fig. 4 comparison."""

from __future__ import annotations

import numpy as np
import pytest

from repro.predict.knn import KNNRegressor
from repro.predict.linear import (
    LinearRegressor,
    PolynomialRidgeRegressor,
    RidgeRegressor,
)
from repro.predict.metrics import r2
from repro.predict.mlp import MLPRegressor
from repro.predict.tree import DecisionTreeRegressor, RandomForestRegressor


def linear_data(n=80, seed=0, noise=0.0):
    rng = np.random.default_rng(seed)
    x = rng.normal(size=(n, 3))
    y = 2.0 * x[:, 0] - 1.0 * x[:, 1] + 0.5 + noise * rng.normal(size=n)
    return x, y


def quadratic_data(n=150, seed=1):
    rng = np.random.default_rng(seed)
    x = rng.normal(size=(n, 2))
    y = x[:, 0] ** 2 + x[:, 0] * x[:, 1]
    return x, y


class TestLinear:
    def test_recovers_exact_linear_function(self):
        x, y = linear_data()
        pred = LinearRegressor().fit(x, y).predict(x)
        assert r2(y, pred) > 0.9999

    def test_extrapolates_linearly(self):
        x, y = linear_data()
        model = LinearRegressor().fit(x, y)
        far = np.array([[10.0, 0.0, 0.0]])
        assert model.predict(far)[0] == pytest.approx(20.5, rel=1e-3)

    def test_cannot_fit_quadratic(self):
        x, y = quadratic_data()
        pred = LinearRegressor().fit(x, y).predict(x)
        assert r2(y, pred) < 0.6


class TestRidge:
    def test_matches_ols_at_zero_alpha(self):
        x, y = linear_data(noise=0.1)
        ols = LinearRegressor().fit(x, y).predict(x)
        ridge = RidgeRegressor(alpha=1e-10).fit(x, y).predict(x)
        assert np.allclose(ols, ridge, atol=1e-5)

    def test_shrinks_with_large_alpha(self):
        x, y = linear_data()
        pred = RidgeRegressor(alpha=1e6).fit(x, y).predict(x)
        # Heavy shrinkage: prediction collapses toward the mean.
        assert np.std(pred) < 0.1 * np.std(y)

    def test_rejects_negative_alpha(self):
        with pytest.raises(ValueError):
            RidgeRegressor(alpha=-1.0)


class TestPolynomialRidge:
    def test_fits_quadratic(self):
        x, y = quadratic_data()
        pred = PolynomialRidgeRegressor(alpha=1e-6).fit(x, y).predict(x)
        assert r2(y, pred) > 0.99

    def test_beats_plain_linear_on_quadratic(self):
        x, y = quadratic_data()
        lin = r2(y, LinearRegressor().fit(x, y).predict(x))
        poly = r2(y, PolynomialRidgeRegressor().fit(x, y).predict(x))
        assert poly > lin


class TestKNN:
    def test_exact_on_training_points_k1(self):
        x, y = linear_data(n=30)
        pred = KNNRegressor(k=1).fit(x, y).predict(x)
        assert np.allclose(pred, y, atol=1e-6)

    def test_interpolates_locally(self):
        x = np.linspace(0, 1, 50)[:, None]
        y = np.sin(2 * np.pi * x[:, 0])
        model = KNNRegressor(k=3).fit(x, y)
        test = np.array([[0.25]])
        assert model.predict(test)[0] == pytest.approx(1.0, abs=0.1)

    def test_k_larger_than_dataset_clamped(self):
        x, y = linear_data(n=4)
        pred = KNNRegressor(k=100).fit(x, y).predict(x)
        assert np.isfinite(pred).all()

    def test_rejects_bad_k(self):
        with pytest.raises(ValueError):
            KNNRegressor(k=0)


class TestDecisionTree:
    def test_fits_step_function(self):
        x = np.linspace(0, 1, 100)[:, None]
        y = (x[:, 0] > 0.5).astype(float)
        pred = DecisionTreeRegressor(max_depth=3).fit(x, y).predict(x)
        assert r2(y, pred) > 0.95

    def test_depth_limit_respected(self):
        x, y = quadratic_data()
        shallow = DecisionTreeRegressor(max_depth=1).fit(x, y)

        def depth(node):
            if node.is_leaf:
                return 0
            return 1 + max(depth(node.left), depth(node.right))

        assert depth(shallow._root) <= 1

    def test_constant_target_single_leaf(self):
        x = np.random.default_rng(0).normal(size=(20, 2))
        y = np.full(20, 3.0)
        tree = DecisionTreeRegressor().fit(x, y)
        assert tree._root.is_leaf
        assert np.allclose(tree.predict(x), 3.0)

    def test_deeper_fits_better(self):
        x, y = quadratic_data()
        shallow = r2(y, DecisionTreeRegressor(max_depth=2).fit(x, y).predict(x))
        deep = r2(y, DecisionTreeRegressor(max_depth=8).fit(x, y).predict(x))
        assert deep >= shallow

    def test_rejects_bad_depth(self):
        with pytest.raises(ValueError):
            DecisionTreeRegressor(max_depth=0)


class TestRandomForest:
    def test_fits_nonlinear(self):
        x, y = quadratic_data()
        pred = RandomForestRegressor(n_trees=15, seed=0).fit(x, y).predict(x)
        assert r2(y, pred) > 0.8

    def test_deterministic_given_seed(self):
        x, y = quadratic_data()
        a = RandomForestRegressor(n_trees=5, seed=3).fit(x, y).predict(x[:5])
        b = RandomForestRegressor(n_trees=5, seed=3).fit(x, y).predict(x[:5])
        assert np.array_equal(a, b)

    def test_ensemble_smoother_than_single_tree(self):
        rng = np.random.default_rng(4)
        x = rng.normal(size=(100, 2))
        y = x[:, 0] + 0.5 * rng.normal(size=100)
        x_test = rng.normal(size=(50, 2))
        y_test = x_test[:, 0]
        tree = DecisionTreeRegressor(max_depth=10, min_leaf=1).fit(x, y)
        forest = RandomForestRegressor(n_trees=20, seed=0).fit(x, y)
        tree_mse = np.mean((tree.predict(x_test) - y_test) ** 2)
        forest_mse = np.mean((forest.predict(x_test) - y_test) ** 2)
        assert forest_mse < tree_mse

    def test_rejects_bad_n_trees(self):
        with pytest.raises(ValueError):
            RandomForestRegressor(n_trees=0)


class TestMLP:
    def test_fits_linear(self):
        x, y = linear_data()
        pred = MLPRegressor(epochs=200, seed=0).fit(x, y).predict(x)
        assert r2(y, pred) > 0.95

    def test_fits_nonlinear(self):
        x, y = quadratic_data()
        pred = MLPRegressor(epochs=300, seed=0).fit(x, y).predict(x)
        assert r2(y, pred) > 0.8

    def test_deterministic_given_seed(self):
        x, y = linear_data(n=30)
        a = MLPRegressor(epochs=20, seed=1).fit(x, y).predict(x[:5])
        b = MLPRegressor(epochs=20, seed=1).fit(x, y).predict(x[:5])
        assert np.array_equal(a, b)
