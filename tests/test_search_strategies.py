"""Tests for the evolution and bandit search baselines plus mutation ops."""

from __future__ import annotations

import numpy as np
import pytest

from repro.nas.encoding import CoDesignPoint, SEQUENCE_LENGTH, random_sequence, token_vocab_sizes
from repro.nas.mutate import crossover_sequences, hamming_distance, mutate_sequence
from repro.search.bandit import BanditSearch
from repro.search.evaluator import Evaluation
from repro.search.evolution import EvolutionSearch
from repro.search.reward import RewardSpec

SPEC = RewardSpec(0.5, -0.4, 0.5, -0.4, t_lat_ms=1.0, t_eer_mj=1.0)


def dataflow_evaluator(point: CoDesignPoint) -> Evaluation:
    """Learnable signal: WS dataflow is much better."""
    acc = 0.9 if point.config.dataflow == "WS" else 0.2
    return Evaluation(accuracy=acc, latency_ms=1.0, energy_mj=1.0)


class TestMutation:
    def test_single_mutation_changes_one_position(self, rng):
        tokens = random_sequence(rng)
        child = mutate_sequence(tokens, rng, n_mutations=1)
        assert hamming_distance(tokens, child) == 1

    def test_mutated_token_stays_in_vocab(self, rng):
        vocab = token_vocab_sizes()
        tokens = random_sequence(rng)
        for _ in range(20):
            tokens = mutate_sequence(tokens, rng)
            assert all(0 <= t < v for t, v in zip(tokens, vocab))

    def test_parent_not_modified(self, rng):
        tokens = random_sequence(rng)
        copy = list(tokens)
        mutate_sequence(tokens, rng)
        assert tokens == copy

    def test_multiple_mutations(self, rng):
        tokens = random_sequence(rng)
        child = mutate_sequence(tokens, rng, n_mutations=5)
        # Up to 5 (same position may be hit twice), at least 1.
        assert 1 <= hamming_distance(tokens, child) <= 5

    def test_invalid_args(self, rng):
        with pytest.raises(ValueError):
            mutate_sequence([0, 1], rng)
        with pytest.raises(ValueError):
            mutate_sequence(random_sequence(rng), rng, n_mutations=0)

    def test_crossover_positions_from_parents(self, rng):
        a = random_sequence(rng)
        b = random_sequence(rng)
        child = crossover_sequences(a, b, rng)
        assert all(c in (x, y) for c, x, y in zip(child, a, b))
        assert len(child) == SEQUENCE_LENGTH

    def test_hamming_requires_equal_length(self):
        with pytest.raises(ValueError):
            hamming_distance([0], [0, 1])


class TestEvolutionSearch:
    def test_seeds_population_then_evolves(self):
        search = EvolutionSearch(dataflow_evaluator, SPEC, population_size=6,
                                 tournament_size=3, seed=0)
        search.run(6)
        assert len(search._population) == 6
        search.run(10)
        assert len(search._population) == 6  # aging keeps size constant

    def test_improves_on_learnable_signal(self):
        search = EvolutionSearch(dataflow_evaluator, SPEC, population_size=10,
                                 tournament_size=4, seed=1)
        history = search.run(80)
        rewards = history.rewards()
        assert rewards[-20:].mean() > rewards[:10].mean()
        assert search.population_best == pytest.approx(rewards.max())

    def test_deterministic(self):
        runs = []
        for _ in range(2):
            s = EvolutionSearch(dataflow_evaluator, SPEC, population_size=4,
                                tournament_size=2, seed=5)
            runs.append([x.tokens for x in s.run(10).samples])
        assert runs[0] == runs[1]

    def test_invalid_args(self):
        with pytest.raises(ValueError):
            EvolutionSearch(dataflow_evaluator, SPEC, population_size=1)
        with pytest.raises(ValueError):
            EvolutionSearch(dataflow_evaluator, SPEC, population_size=4,
                            tournament_size=9)
        search = EvolutionSearch(dataflow_evaluator, SPEC)
        with pytest.raises(ValueError):
            search.run(0)
        with pytest.raises(ValueError):
            _ = EvolutionSearch(dataflow_evaluator, SPEC).population_best


class TestBanditSearch:
    def test_tries_every_arm_first(self):
        search = BanditSearch(dataflow_evaluator, SPEC, seed=0)
        vocab = token_vocab_sizes()
        # After max(vocab) pulls every arm of every position has been tried.
        search.run(max(vocab))
        for counts in search._counts:
            assert np.all(counts >= 1)

    def test_converges_to_good_dataflow_arm(self):
        search = BanditSearch(dataflow_evaluator, SPEC, exploration=0.3, seed=1)
        search.run(100)
        from repro.nas.encoding import decode

        greedy = decode(search.greedy_tokens())
        assert greedy.config.dataflow == "WS"

    def test_history_and_rewards_recorded(self):
        search = BanditSearch(dataflow_evaluator, SPEC, seed=2)
        history = search.run(12)
        assert len(history) == 12
        assert set(np.round(history.rewards(), 6)) <= {
            round(SPEC.reward(0.9, 1, 1), 6), round(SPEC.reward(0.2, 1, 1), 6)
        }

    def test_invalid_args(self):
        with pytest.raises(ValueError):
            BanditSearch(dataflow_evaluator, SPEC, exploration=-1.0)
        with pytest.raises(ValueError):
            BanditSearch(dataflow_evaluator, SPEC).run(0)

    def test_deterministic(self):
        runs = []
        for _ in range(2):
            s = BanditSearch(dataflow_evaluator, SPEC, seed=7)
            runs.append([x.tokens for x in s.run(8).samples])
        assert runs[0] == runs[1]
