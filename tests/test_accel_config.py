"""Tests for the accelerator configuration space (Table 1)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.accel.config import (
    DATAFLOW_CHOICES,
    GBUF_KB_CHOICES,
    PE_CHOICES,
    RBUF_B_CHOICES,
    AcceleratorConfig,
    Dataflow,
    enumerate_configs,
    hw_space_size,
    random_config,
)


class TestAcceleratorConfig:
    def test_num_pes(self, hw_config):
        assert hw_config.num_pes == 256

    def test_gbuf_bytes(self, hw_config):
        assert hw_config.gbuf_bytes == 256 * 1024

    def test_describe_matches_table2_format(self):
        cfg = AcceleratorConfig(16, 32, 512, 512, "OS")
        assert cfg.describe() == "16*32/512KB/512B/OS"

    def test_dict_roundtrip(self, hw_config):
        assert AcceleratorConfig.from_dict(hw_config.to_dict()) == hw_config

    def test_rejects_unknown_dataflow(self):
        with pytest.raises(ValueError):
            AcceleratorConfig(8, 8, 108, 64, "XYZ")

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"pe_rows": 0},
            {"pe_cols": -1},
            {"gbuf_kb": 0},
            {"rbuf_bytes": 0},
        ],
    )
    def test_rejects_non_positive_dims(self, kwargs):
        base = dict(pe_rows=8, pe_cols=8, gbuf_kb=108, rbuf_bytes=64, dataflow="WS")
        base.update(kwargs)
        with pytest.raises(ValueError):
            AcceleratorConfig(**base)

    def test_frozen(self, hw_config):
        with pytest.raises(Exception):
            hw_config.pe_rows = 32  # type: ignore[misc]


class TestChoiceLists:
    def test_pe_range_matches_paper(self):
        # Table 1: PE array size range 8x8 ... 16x32.
        assert PE_CHOICES[0] == (8, 8)
        assert PE_CHOICES[-1] == (16, 32)

    def test_table2_configs_representable(self):
        # Every configuration reported in Table 2 must be in the space.
        for rows, cols in [(16, 32), (14, 16), (16, 20), (16, 16)]:
            assert (rows, cols) in PE_CHOICES
        for kb in [108, 196, 256, 512]:
            assert kb in GBUF_KB_CHOICES
        for b in [128, 256, 512, 1024]:
            assert b in RBUF_B_CHOICES

    def test_gbuf_range(self):
        assert min(GBUF_KB_CHOICES) == 108
        assert max(GBUF_KB_CHOICES) == 1024

    def test_rbuf_range(self):
        assert min(RBUF_B_CHOICES) == 64
        assert max(RBUF_B_CHOICES) == 1024

    def test_four_dataflows(self):
        assert set(DATAFLOW_CHOICES) == {"WS", "OS", "RS", "NLR"}
        assert Dataflow.ALL == DATAFLOW_CHOICES


class TestEnumeration:
    def test_size_formula(self):
        configs = list(enumerate_configs())
        assert len(configs) == hw_space_size()
        assert hw_space_size() == 8 * 5 * 5 * 4

    def test_all_distinct(self):
        configs = list(enumerate_configs())
        assert len(set(configs)) == len(configs)

    def test_enumeration_covers_random_samples(self):
        universe = set(enumerate_configs())
        rng = np.random.default_rng(0)
        for _ in range(50):
            assert random_config(rng) in universe

    @given(st.integers(0, 10_000))
    @settings(deadline=None, max_examples=25)
    def test_random_config_valid(self, seed):
        cfg = random_config(np.random.default_rng(seed))
        assert (cfg.pe_rows, cfg.pe_cols) in PE_CHOICES
        assert cfg.gbuf_kb in GBUF_KB_CHOICES
        assert cfg.rbuf_bytes in RBUF_B_CHOICES
        assert cfg.dataflow in DATAFLOW_CHOICES
