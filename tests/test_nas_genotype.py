"""Tests for cell genotypes: validation, loose ends, serialisation."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.nas.genotype import NUM_COMPUTED, NUM_NODES, CellGenotype, Genotype, NodeSpec
from repro.nas.ops import OP_NAMES
from repro.nas.space import DnnSpace


def valid_cells():
    """Hypothesis strategy producing valid CellGenotype instances."""

    @st.composite
    def build(draw):
        nodes = []
        for i in range(2, 2 + NUM_COMPUTED):
            nodes.append(
                NodeSpec(
                    draw(st.integers(0, i - 1)),
                    draw(st.integers(0, i - 1)),
                    draw(st.sampled_from(OP_NAMES)),
                    draw(st.sampled_from(OP_NAMES)),
                )
            )
        return CellGenotype(nodes=tuple(nodes))

    return build()


class TestNodeSpec:
    def test_valid(self):
        NodeSpec(0, 1, "conv3x3", "maxpool3x3").validate(2)

    def test_forward_reference_rejected(self):
        with pytest.raises(ValueError):
            NodeSpec(2, 0, "conv3x3", "conv3x3").validate(2)

    def test_self_reference_rejected(self):
        with pytest.raises(ValueError):
            NodeSpec(3, 0, "conv3x3", "conv3x3").validate(3)

    def test_negative_input_rejected(self):
        with pytest.raises(ValueError):
            NodeSpec(-1, 0, "conv3x3", "conv3x3").validate(2)

    def test_unknown_op_rejected(self):
        with pytest.raises(KeyError):
            NodeSpec(0, 1, "conv7x7", "conv3x3").validate(2)


class TestCellGenotype:
    def test_requires_exact_node_count(self):
        with pytest.raises(ValueError):
            CellGenotype(nodes=(NodeSpec(0, 1, "conv3x3", "conv3x3"),))

    def test_constructor_validates_nodes(self):
        nodes = [NodeSpec(0, 1, "conv3x3", "conv3x3") for _ in range(NUM_COMPUTED)]
        nodes[0] = NodeSpec(5, 0, "conv3x3", "conv3x3")  # invalid at position 2
        with pytest.raises(ValueError):
            CellGenotype(nodes=tuple(nodes))

    def test_last_node_always_loose(self, simple_cell):
        assert (NUM_NODES - 1) in simple_cell.loose_ends()

    def test_loose_ends_exact(self, simple_cell):
        # Fixture wiring: nodes 2,3,4,5 are consumed; only node 6 is loose.
        assert simple_cell.loose_ends() == (6,)

    def test_chain_cell_single_loose_end(self):
        """A pure chain (each node feeds the next) has one loose end."""
        nodes = tuple(
            NodeSpec(i - 1, i - 1, "conv3x3", "conv3x3")
            for i in range(2, 2 + NUM_COMPUTED)
        )
        assert CellGenotype(nodes=nodes).loose_ends() == (NUM_NODES - 1,)

    def test_parallel_cell_all_loose(self):
        """If every node reads only the cell inputs, all computed are loose."""
        nodes = tuple(
            NodeSpec(0, 1, "conv3x3", "conv3x3") for _ in range(NUM_COMPUTED)
        )
        assert CellGenotype(nodes=nodes).loose_ends() == tuple(range(2, NUM_NODES))

    def test_op_counts_total(self, simple_cell):
        counts = simple_cell.op_counts()
        assert sum(counts.values()) == 2 * NUM_COMPUTED
        assert set(counts) == set(OP_NAMES)

    def test_serialisation_roundtrip(self, simple_cell):
        assert CellGenotype.from_dict(simple_cell.to_dict()) == simple_cell

    @given(valid_cells())
    @settings(deadline=None, max_examples=50)
    def test_roundtrip_property(self, cell):
        assert CellGenotype.from_dict(cell.to_dict()) == cell

    @given(valid_cells())
    @settings(deadline=None, max_examples=50)
    def test_loose_ends_invariants(self, cell):
        loose = cell.loose_ends()
        assert loose  # never empty
        assert all(2 <= i < NUM_NODES for i in loose)
        assert (NUM_NODES - 1) in loose
        # Loose nodes are exactly those never used as an input.
        assert set(loose).isdisjoint(cell.used_inputs())


class TestGenotype:
    def test_json_roundtrip(self, genotype):
        restored = Genotype.from_json(genotype.to_json())
        assert restored.normal == genotype.normal
        assert restored.reduce == genotype.reduce
        assert restored.name == genotype.name

    def test_op_counts_sums_both_cells(self, genotype):
        counts = genotype.op_counts()
        assert sum(counts.values()) == 4 * NUM_COMPUTED

    def test_sampled_genotypes_valid(self):
        space = DnnSpace()
        rng = np.random.default_rng(42)
        for _ in range(25):
            g = space.sample(rng)
            # Constructors validate; additionally check loose ends exist.
            assert g.normal.loose_ends()
            assert g.reduce.loose_ends()

    def test_default_name(self, simple_cell):
        g = Genotype(normal=simple_cell, reduce=simple_cell)
        assert g.name == "unnamed"
