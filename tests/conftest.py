"""Shared fixtures for the YOSO reproduction test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.accel.config import AcceleratorConfig
from repro.nas.genotype import CellGenotype, Genotype, NodeSpec
from repro.nas.space import DnnSpace
from repro.nn.data import SyntheticCifar


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(0)


@pytest.fixture
def simple_cell() -> CellGenotype:
    """A hand-written valid cell used across tests."""
    return CellGenotype(
        nodes=(
            NodeSpec(0, 1, "conv3x3", "dwconv3x3"),
            NodeSpec(1, 2, "maxpool3x3", "conv3x3"),
            NodeSpec(0, 3, "avgpool3x3", "dwconv5x5"),
            NodeSpec(2, 4, "conv5x5", "maxpool3x3"),
            NodeSpec(1, 5, "dwconv3x3", "avgpool3x3"),
        )
    )


@pytest.fixture
def genotype(simple_cell: CellGenotype) -> Genotype:
    return Genotype(normal=simple_cell, reduce=simple_cell, name="fixture")


@pytest.fixture
def random_genotype(rng: np.random.Generator) -> Genotype:
    return DnnSpace().sample(rng, name="random-fixture")


@pytest.fixture
def hw_config() -> AcceleratorConfig:
    return AcceleratorConfig(
        pe_rows=16, pe_cols=16, gbuf_kb=256, rbuf_bytes=256, dataflow="OS"
    )


@pytest.fixture(scope="session")
def tiny_dataset() -> SyntheticCifar:
    """A session-wide small dataset (8x8 images) for training tests."""
    return SyntheticCifar(
        image_size=8, train_size=96, val_size=48, test_size=48, seed=0
    )


@pytest.fixture(scope="session")
def smoke_context():
    """The shared smoke-scale experiment context (mirrors benchmarks/).

    ``get_context`` caches per (scale, seed) process-wide, so every test —
    including the CLI commands invoked with ``--scale smoke`` — shares one
    trained HyperNet and one set of GP predictors.
    """
    from repro.experiments import get_context

    return get_context("smoke", seed=0)


def numerical_gradient(f, x: np.ndarray, eps: float = 1e-3) -> np.ndarray:
    """Central-difference gradient of scalar f w.r.t. array x (float64)."""
    grad = np.zeros_like(x, dtype=np.float64)
    it = np.nditer(x, flags=["multi_index"])
    while not it.finished:
        idx = it.multi_index
        old = x[idx]
        x[idx] = old + eps
        fp = f()
        x[idx] = old - eps
        fm = f()
        x[idx] = old
        grad[idx] = (fp - fm) / (2 * eps)
        it.iternext()
    return grad
