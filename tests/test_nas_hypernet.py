"""Tests for the one-shot HyperNet and its uniform-sampling trainer."""

from __future__ import annotations

import numpy as np
import pytest

from repro.nas.hypernet import HyperNet, HyperNetTrainer, MixedCell
from repro.nas.space import DnnSpace
from repro.nn import functional as F


def x32(shape, seed=0):
    return np.random.default_rng(seed).normal(size=shape).astype(np.float32)


@pytest.fixture(scope="module")
def hypernet():
    return HyperNet(num_cells=3, stem_channels=4, num_classes=10,
                    rng=np.random.default_rng(0))


class TestHyperNetStructure:
    def test_contains_all_edge_ops(self, hypernet):
        cell: MixedCell = hypernet.cells[0]
        # nodes 2..6, node i has i predecessors, 6 ops each.
        expected = sum(i for i in range(2, 7)) * 6
        assert len(cell.edge_ops) == expected

    def test_reduction_positions(self, hypernet):
        flags = [c.reduction for c in hypernet.cells]
        assert flags == [False, True, True] or sum(flags) >= 1

    def test_preprocess_variants_cover_all_loose_counts(self, hypernet):
        # Later cells must accept widths base*1 .. base*5.
        last = hypernet.cells[-1]
        assert len(last.preprocess1) == 5

    def test_classifier_variants(self, hypernet):
        assert len(hypernet.classifiers) == 5


class TestHyperNetForward:
    def test_forward_many_paths(self, hypernet):
        rng = np.random.default_rng(1)
        x = x32((2, 3, 8, 8))
        for _ in range(10):
            g = hypernet.sample_genotype(rng)
            logits = hypernet.forward(x, g)
            assert logits.shape == (2, 10)
            assert np.isfinite(logits).all()

    def test_same_path_same_output(self, hypernet):
        rng = np.random.default_rng(2)
        g = hypernet.sample_genotype(rng)
        x = x32((2, 3, 8, 8), seed=1)
        assert np.array_equal(hypernet.forward(x, g), hypernet.forward(x, g))

    def test_different_paths_differ(self, hypernet):
        rng = np.random.default_rng(3)
        g1 = hypernet.sample_genotype(rng)
        g2 = hypernet.sample_genotype(rng)
        assert g1.to_json() != g2.to_json()
        x = x32((2, 3, 8, 8), seed=2)
        assert not np.array_equal(hypernet.forward(x, g1), hypernet.forward(x, g2))

    def test_backward_before_forward_raises(self):
        hn = HyperNet(num_cells=3, stem_channels=4, rng=np.random.default_rng(4))
        with pytest.raises(RuntimeError):
            hn.backward(np.ones((2, 10), dtype=np.float32))

    def test_evaluate_returns_fraction(self, hypernet):
        rng = np.random.default_rng(5)
        g = hypernet.sample_genotype(rng)
        images = x32((16, 3, 8, 8), seed=3)
        labels = np.random.default_rng(6).integers(0, 10, 16)
        acc = hypernet.evaluate(g, images, labels, batch_size=8)
        assert 0.0 <= acc <= 1.0


class TestEvaluateMany:
    """The batched accuracy path must be a drop-in for scalar evaluation."""

    def _population(self, n, seed=4):
        rng = np.random.default_rng(seed)
        space = DnnSpace()
        return [space.sample(rng) for _ in range(n)]

    def test_matches_scalar_evaluate(self, hypernet):
        genotypes = self._population(12)
        images = x32((24, 3, 8, 8), seed=5)
        labels = np.random.default_rng(5).integers(0, 10, size=24)
        scalar = [
            hypernet.evaluate(g, images, labels, batch_size=12) for g in genotypes
        ]
        batched = hypernet.evaluate_many(genotypes, images, labels, batch_size=12)
        # Exact equality is deliberate: a round-off tolerance of 1/len(y)
        # would have masked real grouping bugs during development, and the
        # fixtures are deterministic per environment.  If a platform's
        # BLAS ever flips a near-tied argmax, this failing loudly is the
        # desired signal, not noise.
        assert batched == scalar

    def test_batch_order_invariance(self, hypernet):
        """Same genotype set, any order -> identical accuracies."""
        genotypes = self._population(10, seed=6)
        images = x32((16, 3, 8, 8), seed=6)
        labels = np.random.default_rng(6).integers(0, 10, size=16)
        forward = hypernet.evaluate_many(genotypes, images, labels, batch_size=16)
        perm = list(reversed(range(10)))
        shuffled = hypernet.evaluate_many(
            [genotypes[i] for i in perm], images, labels, batch_size=16
        )
        assert [forward[i] for i in perm] == shuffled

    def test_duplicates_deduplicated(self, hypernet):
        genotypes = self._population(3, seed=7)
        images = x32((8, 3, 8, 8), seed=7)
        labels = np.random.default_rng(7).integers(0, 10, size=8)
        doubled = hypernet.evaluate_many(
            genotypes + genotypes, images, labels, batch_size=8
        )
        assert doubled[:3] == doubled[3:]

    def test_genotype_batch_chunking_invariant(self, hypernet):
        genotypes = self._population(9, seed=8)
        images = x32((8, 3, 8, 8), seed=8)
        labels = np.random.default_rng(8).integers(0, 10, size=8)
        whole = hypernet.evaluate_many(
            genotypes, images, labels, batch_size=8, genotype_batch=9
        )
        chunked = hypernet.evaluate_many(
            genotypes, images, labels, batch_size=8, genotype_batch=2
        )
        assert whole == chunked

    def test_forward_many_matches_forward(self, hypernet):
        """Stacked logits track the scalar forward to float32 round-off."""
        genotypes = self._population(6, seed=9)
        x = x32((8, 3, 8, 8), seed=9)
        batched = hypernet.forward_many(x, genotypes)
        for g, logits in zip(genotypes, batched):
            np.testing.assert_allclose(
                logits, hypernet.forward(x, g), rtol=1e-4, atol=1e-5
            )

    def test_empty_and_single(self, hypernet):
        images = x32((8, 3, 8, 8), seed=10)
        labels = np.random.default_rng(10).integers(0, 10, size=8)
        assert hypernet.evaluate_many([], images, labels) == []
        (g,) = self._population(1, seed=10)
        single = hypernet.evaluate_many([g], images, labels, batch_size=8)
        assert single == [hypernet.evaluate(g, images, labels, batch_size=8)]

    def test_rejects_bad_genotype_batch(self, hypernet):
        images = x32((8, 3, 8, 8), seed=11)
        labels = np.random.default_rng(11).integers(0, 10, size=8)
        with pytest.raises(ValueError):
            hypernet.evaluate_many(
                self._population(2), images, labels, genotype_batch=0
            )


class TestPathIsolation:
    def test_backward_touches_only_path_parameters(self):
        hn = HyperNet(num_cells=3, stem_channels=4, rng=np.random.default_rng(7))
        rng = np.random.default_rng(8)
        g = hn.sample_genotype(rng)
        x = x32((4, 3, 8, 8), seed=4)
        hn.zero_grad()
        logits = hn.forward(x, g)
        _, grad = F.softmax_cross_entropy(logits, np.array([0, 1, 2, 3]))
        hn.backward(grad)
        # Count edge-op modules whose params received gradient: must equal
        # the number of ops on the sampled path (2 per computed node per cell
        # for ops with weights; pooling edges have only BN params which also
        # receive gradient).
        for cell in hn.cells:
            spec = g.reduce if cell.reduction else g.normal
            used = set()
            for offset, node in enumerate(spec.nodes):
                used.add((offset + 2, node.input1, node.op1))
                used.add((offset + 2, node.input2, node.op2))
            for key, op in cell.edge_ops.items():
                touched = any(np.any(p.grad != 0) for p in op.parameters())
                if key in used:
                    assert touched, f"on-path op {key} got no gradient"
                else:
                    assert not touched, f"off-path op {key} got gradient"


class TestHyperNetTrainer:
    def test_one_epoch_runs_and_records(self, tiny_dataset):
        hn = HyperNet(num_cells=3, stem_channels=4, rng=np.random.default_rng(9))
        trainer = HyperNetTrainer(hn, epochs=1, seed=0)
        history = trainer.fit(tiny_dataset, batch_size=32)
        assert len(history) == 1
        assert history[0].loss > 0
        assert 0.0 <= history[0].accuracy <= 1.0

    def test_lr_follows_cosine(self, tiny_dataset):
        hn = HyperNet(num_cells=3, stem_channels=4, rng=np.random.default_rng(10))
        trainer = HyperNetTrainer(hn, epochs=3, lr_max=0.05, lr_min=0.001, seed=0)
        trainer.fit(tiny_dataset, batch_size=48)
        lrs = [h.lr for h in trainer.history]
        assert lrs[0] == pytest.approx(0.05)
        assert lrs[-1] == pytest.approx(0.001)
        assert lrs[0] > lrs[1] > lrs[2]

    def test_training_reduces_loss(self, tiny_dataset):
        hn = HyperNet(num_cells=3, stem_channels=4, rng=np.random.default_rng(11))
        trainer = HyperNetTrainer(hn, epochs=4, lr_max=0.02, seed=0)
        trainer.fit(tiny_dataset, batch_size=48, augment=False)
        losses = [h.loss for h in trainer.history]
        assert losses[-1] < losses[0]


class TestUniformSampling:
    def test_sampling_matches_eq6_marginals(self):
        """Input choice ~ U{0..i-1} and op choice ~ U{ops} (Eq. 6)."""
        space = DnnSpace()
        rng = np.random.default_rng(12)
        n = 3000
        # Node index 2 (first computed): inputs in {0, 1}.
        first_inputs = []
        ops = []
        for _ in range(n):
            cell = space.sample_cell(rng)
            first_inputs.append(cell.nodes[0].input1)
            ops.append(cell.nodes[0].op1)
        frac0 = np.mean([i == 0 for i in first_inputs])
        assert abs(frac0 - 0.5) < 0.05
        from collections import Counter

        counts = Counter(ops)
        for name, c in counts.items():
            assert abs(c / n - 1 / 6) < 0.05, name
