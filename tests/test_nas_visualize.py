"""Tests for genotype visualisation and graph analysis."""

from __future__ import annotations

import networkx as nx
import pytest

from repro.nas.genotype import NUM_COMPUTED, CellGenotype, NodeSpec
from repro.nas.visualize import (
    cell_depth,
    cell_graph,
    cell_to_dot,
    describe_cell,
    describe_genotype,
    genotype_to_dot,
)


def chain_cell():
    return CellGenotype(nodes=tuple(
        NodeSpec(i - 1, i - 1, "conv3x3", "conv3x3")
        for i in range(2, 2 + NUM_COMPUTED)
    ))


def parallel_cell():
    return CellGenotype(nodes=tuple(
        NodeSpec(0, 1, "conv3x3", "maxpool3x3") for _ in range(NUM_COMPUTED)
    ))


class TestCellGraph:
    def test_is_dag(self, simple_cell):
        graph = cell_graph(simple_cell)
        assert nx.is_directed_acyclic_graph(graph)

    def test_node_count(self, simple_cell):
        graph = cell_graph(simple_cell)
        assert graph.number_of_nodes() == 8  # 7 nodes + "out"

    def test_edge_ops_recorded(self, simple_cell):
        graph = cell_graph(simple_cell)
        assert graph.edges[0, 2]["op"] == "conv3x3"
        assert graph.edges[1, 2]["op"] == "dwconv3x3"

    def test_loose_ends_feed_out(self, simple_cell):
        graph = cell_graph(simple_cell)
        preds = set(graph.predecessors("out"))
        assert preds == set(simple_cell.loose_ends())


class TestCellDepth:
    def test_chain_is_deepest(self):
        assert cell_depth(chain_cell()) == NUM_COMPUTED + 1

    def test_parallel_is_shallowest(self):
        assert cell_depth(parallel_cell()) == 2

    def test_fixture_depth_in_between(self, simple_cell):
        assert 2 <= cell_depth(simple_cell) <= NUM_COMPUTED + 1


class TestDot:
    def test_cell_dot_valid_structure(self, simple_cell):
        dot = cell_to_dot(simple_cell)
        assert dot.startswith("digraph")
        assert dot.rstrip().endswith("}")
        assert "in0" in dot and "concat" in dot
        assert "conv3x3" in dot

    def test_genotype_dot_contains_both_cells(self, genotype):
        dot = genotype_to_dot(genotype)
        assert "digraph normal" in dot
        assert "digraph reduce" in dot


class TestDescribe:
    def test_cell_description(self, simple_cell):
        text = describe_cell(simple_cell)
        assert text.count("\n") == NUM_COMPUTED  # one line per node + out line
        assert "out = concat(" in text
        assert "depth=" in text

    def test_genotype_description(self, genotype):
        text = describe_genotype(genotype)
        assert "[normal]" in text and "[reduce]" in text
        assert genotype.name in text
