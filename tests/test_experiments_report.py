"""Tests for the one-shot report generator."""

from __future__ import annotations

import pytest

from repro.experiments import get_context
from repro.experiments.report import generate_report, main


@pytest.fixture(scope="module")
def report():
    context = get_context("smoke", 0)
    return generate_report("smoke", 0, context=context, iterations=8,
                           correlation_models=2)


class TestGenerateReport:
    def test_contains_every_section(self, report):
        for heading in (
            "Fig. 4", "Fig. 5(a)", "Fig. 5(b)", "Fig. 6(a)", "Fig. 6(b)",
            "Fig. 6(c)", "Table 2", "Search-strategy ablation",
        ):
            assert heading in report, heading

    def test_contains_key_results(self, report):
        assert "gaussian_process" in report
        assert "Yoso_eer" in report
        assert "pearson r" in report
        assert "energy ratio" in report

    def test_markdown_structure(self, report):
        assert report.startswith("# YOSO reproduction report")
        assert report.count("## ") >= 7

    def test_cli_writes_file(self, tmp_path, capsys):
        out = tmp_path / "report.md"
        code = main(["--scale", "smoke", "--iterations", "6", "--output", str(out)])
        assert code == 0
        text = out.read_text()
        assert "YOSO reproduction report" in text
        assert "Table 2" in text
