"""Tests for the one-shot report generator.

The full report regenerates every experiment, so this module is one of the
heaviest in the tier-1 suite: it shares the session-scoped smoke context
(one HyperNet training for the whole run) and generates the module-scoped
report once for all structural assertions.
"""

from __future__ import annotations

import pytest

from repro.experiments.report import generate_report, main

pytestmark = pytest.mark.slow


@pytest.fixture(scope="module")
def report(smoke_context):
    return generate_report("smoke", 0, context=smoke_context, iterations=8,
                           correlation_models=2)


class TestGenerateReport:
    def test_contains_every_section(self, report):
        for heading in (
            "Fig. 4", "Fig. 5(a)", "Fig. 5(b)", "Fig. 6(a)", "Fig. 6(b)",
            "Fig. 6(c)", "Table 2", "Search-strategy ablation",
        ):
            assert heading in report, heading

    def test_contains_key_results(self, report):
        assert "gaussian_process" in report
        assert "Yoso_eer" in report
        assert "pearson r" in report
        assert "energy ratio" in report

    def test_markdown_structure(self, report):
        assert report.startswith("# YOSO reproduction report")
        assert report.count("## ") >= 7

    def test_cli_writes_file(self, tmp_path, capsys, smoke_context):
        out = tmp_path / "report.md"
        code = main(["--scale", "smoke", "--iterations", "6", "--output", str(out)])
        assert code == 0
        text = out.read_text()
        assert "YOSO reproduction report" in text
        assert "Table 2" in text
