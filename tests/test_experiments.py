"""Smoke-scale integration tests for the experiment harnesses.

These exercise every ``run_*`` entry point end to end at the smallest scale
and assert structural invariants; the quantitative shape claims are asserted
in ``benchmarks/`` at demo scale.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.experiments import (
    demo_thresholds,
    format_table,
    get_context,
    mean_distance_to_front,
    pareto_front,
    run_fig4,
    run_fig5a,
    run_fig5b,
    run_fig6_tradeoff,
    run_fig6a,
    run_table2,
)
from repro.scale import SMOKE


@pytest.fixture(scope="module")
def ctx(smoke_context):
    return smoke_context


class TestContext:
    def test_cached(self, ctx):
        assert get_context("smoke", 0) is ctx

    def test_artifacts_present(self, ctx):
        assert ctx.hypernet is not None
        assert len(ctx.hypernet_history) == SMOKE.hypernet_epochs
        assert len(ctx.samples) == SMOKE.predictor_samples
        assert ctx.t_lat_ms > 0 and ctx.t_eer_mj > 0

    def test_demo_thresholds_midrange(self, ctx):
        t_lat, t_eer = demo_thresholds(SMOKE, simulator=ctx.simulator)
        assert 0 < t_lat < 10
        assert 0 < t_eer < 10

    def test_paper_scale_uses_paper_thresholds(self):
        from repro.scale import PAPER

        t_lat, t_eer = demo_thresholds(PAPER)
        assert (t_lat, t_eer) == (1.2, 9.0)


class TestFormatTable:
    def test_alignment(self):
        out = format_table(["a", "bb"], [["1", "2"], ["333", "4"]])
        lines = out.splitlines()
        assert len(lines) == 4
        assert lines[0].startswith("a")

    def test_rejects_ragged_rows(self):
        with pytest.raises(ValueError):
            format_table(["a"], [["1", "2"]])


class TestParetoUtilities:
    def test_front_of_dominated_set(self):
        pts = np.array([[1.0, 1.0], [2.0, 0.5], [0.5, 2.0], [3.0, 3.0]])
        front = pareto_front(pts)
        # (1,1) is dominated by nothing with lower cost & higher quality...
        # front must contain (0.5, 2.0) and (3.0, 3.0) boundary points.
        assert [0.5, 2.0] in front.tolist()
        assert [3.0, 3.0] in front.tolist()
        assert [2.0, 0.5] not in front.tolist()  # dominated by (1,1)? no --
        # (1,1) has lower cost and higher quality than (2.0, 0.5): dominated.

    def test_front_single_point(self):
        front = pareto_front(np.array([[1.0, 1.0]]))
        assert front.shape == (1, 2)

    def test_front_sorted_by_cost(self):
        rng = np.random.default_rng(0)
        pts = rng.random((50, 2))
        front = pareto_front(pts)
        assert np.all(np.diff(front[:, 0]) >= 0)
        # Quality strictly increases along the front.
        assert np.all(np.diff(front[:, 1]) > 0)

    def test_front_points_not_dominated(self):
        rng = np.random.default_rng(1)
        pts = rng.random((100, 2))
        front = pareto_front(pts)
        for f in front:
            dominated = np.any((pts[:, 0] < f[0]) & (pts[:, 1] > f[1]))
            assert not dominated

    def test_distance_zero_on_front(self):
        pts = np.array([[1.0, 2.0], [2.0, 3.0]])
        assert mean_distance_to_front(pts, pts) == pytest.approx(0.0)

    def test_distance_positive_off_front(self):
        front = np.array([[1.0, 2.0]])
        pts = np.array([[2.0, 1.0]])
        assert mean_distance_to_front(pts, front) > 0

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            pareto_front(np.zeros((3,)))
        with pytest.raises(ValueError):
            mean_distance_to_front(np.zeros((2, 2)), np.zeros((0, 2)))


class TestFig4:
    def test_runs_and_reports_both_targets(self):
        result = run_fig4("smoke", seed=0)
        targets = {r.target for r in result.rows}
        assert targets == {"energy", "latency"}
        assert len(result.rows) == 12  # 6 models x 2 targets
        assert result.n_train == SMOKE.predictor_train

    def test_best_returns_lowest_mse(self):
        result = run_fig4("smoke", seed=0)
        best = result.best("energy")
        assert all(
            best.mse <= r.mse for r in result.rows if r.target == "energy"
        )

    def test_to_text_renders(self):
        result = run_fig4("smoke", seed=0)
        text = result.to_text()
        assert "gaussian_process" in text
        assert "MSE" in text


class TestFig5:
    def test_fig5a_curve(self, ctx):
        result = run_fig5a("smoke", 0)
        assert len(result.epochs) == SMOKE.hypernet_epochs
        assert all(0 <= a <= 1 for a in result.accuracy)

    def test_fig5b_shapes(self, ctx):
        result = run_fig5b("smoke", 0, context=ctx, n_models=3)
        assert len(result.hypernet_accuracy) == 3
        assert len(result.standalone_accuracy) == 3
        assert -1.0 <= result.spearman_rho <= 1.0
        assert "pearson" in result.to_text()


class TestFig6:
    def test_fig6a_structure(self, ctx):
        result = run_fig6a("smoke", 0, context=ctx, iterations=12)
        assert len(result.rl) == 12
        assert len(result.random) == 12
        assert result.rl_best > 0
        assert len(result.rl_curve()) == 2  # every 10th of 12

    def test_fig6_tradeoff_energy(self, ctx):
        result = run_fig6_tradeoff("energy", "smoke", 0, context=ctx, iterations=12)
        scatter = result.scatter()
        assert scatter.shape[1] == 2
        assert result.front().shape[1] == 2
        distances = result.front_distance_by_phase(phases=2)
        assert len(distances) == 2
        assert all(d >= 0 for d in distances)

    def test_fig6_tradeoff_latency_metric(self, ctx):
        result = run_fig6_tradeoff("latency", "smoke", 0, context=ctx, iterations=12)
        assert result.metric == "latency_ms"

    def test_invalid_which(self, ctx):
        with pytest.raises(ValueError):
            run_fig6_tradeoff("area", "smoke", 0, context=ctx, iterations=5)


@pytest.fixture(scope="module")
def table2_result(ctx):
    return run_table2("smoke", 0, context=ctx, iterations=8, topn=2)


class TestTable2:
    def test_structure(self, table2_result):
        result = table2_result
        models = [r.model for r in result.rows]
        assert "Yoso_lat" in models and "Yoso_eer" in models
        assert "TwoStage_energy" in models and "TwoStage_latency" in models
        assert len(result.rows) == 10
        assert len(result.two_stage_rows()) == 6
        assert len(result.nas_rows()) == 2
        assert len(result.energy_ratios()) == 6
        assert len(result.latency_ratios()) == 6
        assert all(v > 0 for v in result.energy_ratios().values())
        text = result.to_text()
        assert "Yoso_eer" in text and "Fig7" in text

    def test_nas_ratios_positive(self, table2_result):
        assert table2_result.nas_energy_ratio() > 0
        assert table2_result.nas_latency_ratio() > 0

    def test_reward_of_consistent(self, table2_result):
        from repro.search.reward import BALANCED

        spec = BALANCED.scaled(table2_result.t_lat_ms, table2_result.t_eer_mj)
        row = table2_result.row("Yoso_eer")
        expected = spec.reward(
            1.0 - row.test_error / 100.0, row.latency_ms, row.energy_mj
        )
        assert table2_result.reward_of("Yoso_eer", spec) == pytest.approx(expected)

    def test_row_lookup(self, table2_result):
        assert table2_result.row("yoso_lat").model == "Yoso_lat"
        with pytest.raises(KeyError):
            table2_result.row("ResNet")
