"""Cross-module property-based tests (hypothesis) on system invariants."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.accel.config import random_config
from repro.accel.simulator import SystolicArraySimulator
from repro.nas.encoding import CoDesignPoint, decode, random_sequence
from repro.nas.space import DnnSpace
from repro.predict.features import FEATURE_DIM, feature_vector
from repro.search.reward import RewardSpec

_SIM = SystolicArraySimulator()
_SPACE = DnnSpace()


def _point(seed: int) -> CoDesignPoint:
    rng = np.random.default_rng(seed)
    return CoDesignPoint(genotype=_SPACE.sample(rng), config=random_config(rng))


class TestSimulatorInvariants:
    @given(seed=st.integers(0, 10_000))
    @settings(deadline=None, max_examples=15)
    def test_positive_finite_outputs(self, seed):
        point = _point(seed)
        report = _SIM.simulate_genotype(point.genotype, point.config,
                                        num_cells=3, stem_channels=4, image_size=8)
        assert np.isfinite(report.latency_ms) and report.latency_ms > 0
        assert np.isfinite(report.energy_mj) and report.energy_mj > 0

    @given(seed=st.integers(0, 10_000))
    @settings(deadline=None, max_examples=10)
    def test_energy_at_least_mac_floor(self, seed):
        """Total energy can never drop below the bare MAC energy."""
        point = _point(seed)
        report = _SIM.simulate_genotype(point.genotype, point.config,
                                        num_cells=3, stem_channels=4, image_size=8)
        mac_floor_mj = report.total_macs * _SIM.energy_model.mac_pj * 1e-9
        assert report.energy_mj >= mac_floor_mj

    @given(seed=st.integers(0, 10_000))
    @settings(deadline=None, max_examples=10)
    def test_latency_at_least_ideal_compute(self, seed):
        """Latency can never beat MACs / peak-throughput."""
        point = _point(seed)
        report = _SIM.simulate_genotype(point.genotype, point.config,
                                        num_cells=3, stem_channels=4, image_size=8)
        ideal_cycles = report.total_macs / point.config.num_pes
        assert report.latency_ms >= _SIM.energy_model.cycles_to_ms(ideal_cycles)


class TestFeatureInvariants:
    @given(seed=st.integers(0, 10_000))
    @settings(deadline=None, max_examples=20)
    def test_finite_fixed_length(self, seed):
        vec = feature_vector(_point(seed), num_cells=3, stem_channels=4,
                             image_size=8)
        assert vec.shape == (FEATURE_DIM,)
        assert np.isfinite(vec).all()

    @given(seed=st.integers(0, 10_000))
    @settings(deadline=None, max_examples=10)
    def test_encoding_feature_consistency(self, seed):
        """decode(encode(p)) must map to the identical feature vector."""
        from repro.nas.encoding import encode

        point = _point(seed)
        roundtrip = decode(encode(point))
        a = feature_vector(point, num_cells=3, stem_channels=4, image_size=8)
        b = feature_vector(roundtrip, num_cells=3, stem_channels=4, image_size=8)
        assert np.array_equal(a, b)


def _specs():
    return st.builds(
        RewardSpec,
        alpha1=st.floats(0.1, 1.0),
        omega1=st.floats(-1.0, -0.05),
        alpha2=st.floats(0.1, 1.0),
        omega2=st.floats(-1.0, -0.05),
        t_lat_ms=st.floats(0.5, 2.0),
        t_eer_mj=st.floats(4.0, 16.0),
    )


class TestRewardInvariants:
    @given(spec=_specs(), acc=st.floats(0.01, 1.0))
    @settings(deadline=None, max_examples=40)
    def test_monotone_in_each_metric(self, spec, acc):
        base = spec.reward(acc, 1.0, 8.0)
        assert spec.reward(acc, 0.5, 8.0) > base  # faster is better
        assert spec.reward(acc, 1.0, 4.0) > base  # greener is better
        # More accurate is better — asserted strictly only when the bump
        # is resolvable: for acc within one ulp of 1.0 the clamped +0.1
        # bump changes the reward product by less than machine epsilon.
        bumped = min(1.0, acc + 0.1)
        if bumped - acc > 1e-9:
            assert spec.reward(bumped, 1.0, 8.0) > base

    @given(spec=_specs())
    @settings(deadline=None, max_examples=20)
    def test_positive_for_positive_accuracy(self, spec):
        assert spec.reward(0.5, 1.0, 5.0) > 0

    @given(spec=_specs())
    @settings(deadline=None, max_examples=20)
    def test_zero_accuracy_zero_reward(self, spec):
        assert spec.reward(0.0, 1.0, 5.0) == 0.0


class TestSequenceInvariants:
    @given(seed=st.integers(0, 100_000))
    @settings(deadline=None, max_examples=30)
    def test_random_sequences_simulate(self, seed):
        """Every decodable sequence must be a simulatable machine."""
        rng = np.random.default_rng(seed)
        point = decode(random_sequence(rng))
        report = _SIM.simulate_genotype(point.genotype, point.config,
                                        num_cells=3, stem_channels=4, image_size=8)
        assert report.energy_mj > 0
