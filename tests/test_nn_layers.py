"""Tests for the layer library: shapes, semantics, backward consistency."""

from __future__ import annotations

import numpy as np
import pytest

from repro.nn.layers import (
    AvgPool2d,
    BatchNorm2d,
    Conv2d,
    DepthwiseConv2d,
    FactorizedReduce,
    GlobalAvgPool,
    Identity,
    Linear,
    MaxPool2d,
    PoolBN,
    ReLU,
    ReLUConvBN,
    SeparableConv2d,
    Sequential,
)


def x32(shape, seed=0):
    return np.random.default_rng(seed).normal(size=shape).astype(np.float32)


def directional_check(module, x, rtol=0.15):
    """Finite-difference check of d(sum of output)/d(params) along the
    analytic gradient direction (float32-tolerant)."""
    out = module(x)
    module.backward(np.ones_like(out))
    params = [p for p in module.parameters() if np.any(p.grad != 0)]
    assert params, "no parameter received gradient"
    direction = [p.grad.astype(np.float64) for p in params]
    norm = np.sqrt(sum(float(np.sum(d * d)) for d in direction))
    eps = 1e-3 / max(norm, 1e-8)
    originals = [p.data.copy() for p in params]
    for p, d in zip(params, direction):
        p.data = (p.data.astype(np.float64) + eps * d).astype(np.float32)
    out_plus = module(x)
    for p, d in zip(params, direction):
        p.data = (p.data.astype(np.float64) - 2 * eps * d).astype(np.float32)
    out_minus = module(x)
    for p, o in zip(params, originals):
        p.data = o
    measured = float(out_plus.sum() - out_minus.sum()) / (2 * eps)
    expected = norm**2
    assert np.isclose(measured, expected, rtol=rtol), (measured, expected)


class TestConvLayers:
    def test_conv_shape_and_backward_shape(self):
        conv = Conv2d(3, 8, 3, rng=np.random.default_rng(0))
        x = x32((2, 3, 8, 8))
        out = conv(x)
        assert out.shape == (2, 8, 8, 8)
        gx = conv.backward(np.ones_like(out))
        assert gx.shape == x.shape
        assert np.any(conv.weight.grad != 0)

    def test_conv_stride2_halves(self):
        conv = Conv2d(3, 4, 3, stride=2)
        assert conv(x32((1, 3, 8, 8))).shape == (1, 4, 4, 4)

    def test_conv_gradient_direction(self):
        directional_check(Conv2d(2, 3, 3, rng=np.random.default_rng(1)), x32((2, 2, 6, 6)))

    def test_depthwise_shape(self):
        dw = DepthwiseConv2d(4, 3)
        assert dw(x32((2, 4, 6, 6))).shape == (2, 4, 6, 6)

    def test_depthwise_gradient_direction(self):
        directional_check(DepthwiseConv2d(3, 3, rng=np.random.default_rng(2)), x32((2, 3, 6, 6)))

    def test_separable_composition(self):
        sep = SeparableConv2d(3, 6, 5, stride=2, rng=np.random.default_rng(3))
        out = sep(x32((1, 3, 8, 8)))
        assert out.shape == (1, 6, 4, 4)
        gx = sep.backward(np.ones_like(out))
        assert gx.shape == (1, 3, 8, 8)

    def test_separable_param_count(self):
        sep = SeparableConv2d(4, 8, 3)
        # depthwise 4*9 + pointwise 8*4*1*1
        assert sep.num_parameters() == 4 * 9 + 8 * 4


class TestNormAndActivation:
    def test_bn_train_normalises(self):
        bn = BatchNorm2d(3)
        x = x32((16, 3, 4, 4), seed=4) * 3 + 1
        out = bn(x)
        assert np.allclose(out.mean(axis=(0, 2, 3)), 0.0, atol=1e-4)

    def test_bn_eval_differs_from_train(self):
        bn = BatchNorm2d(3)
        x = x32((16, 3, 4, 4), seed=5) * 2 + 3
        out_train = bn(x)
        bn.eval()
        out_eval = bn(x)
        assert not np.allclose(out_train, out_eval)

    def test_bn_params_no_weight_decay(self):
        bn = BatchNorm2d(2)
        assert all(not p.weight_decay for p in bn.parameters())

    def test_relu_masks_backward(self):
        relu = ReLU()
        x = np.array([[-1.0, 2.0]], dtype=np.float32)
        relu(x)
        g = relu.backward(np.ones((1, 2), dtype=np.float32))
        assert g.tolist() == [[0.0, 1.0]]


class TestPoolLayers:
    def test_maxpool_default_same_size(self):
        assert MaxPool2d(3)(x32((1, 2, 6, 6))).shape == (1, 2, 6, 6)

    def test_avgpool_stride2(self):
        assert AvgPool2d(3, stride=2)(x32((1, 2, 8, 8))).shape == (1, 2, 4, 4)

    def test_pool_backward_shapes(self):
        for pool in (MaxPool2d(3), AvgPool2d(3)):
            x = x32((2, 3, 6, 6), seed=6)
            out = pool(x)
            assert pool.backward(np.ones_like(out)).shape == x.shape

    def test_global_avgpool(self):
        gap = GlobalAvgPool()
        x = x32((2, 5, 4, 4), seed=7)
        out = gap(x)
        assert out.shape == (2, 5)
        assert gap.backward(np.ones_like(out)).shape == x.shape


class TestCompositeLayers:
    def test_relu_conv_bn_order(self):
        block = ReLUConvBN(3, 4, 3)
        assert isinstance(block[0], ReLU)
        assert isinstance(block[1], Conv2d)
        assert isinstance(block[2], BatchNorm2d)

    def test_relu_conv_bn_separable(self):
        block = ReLUConvBN(3, 4, 3, separable=True)
        assert isinstance(block[1], SeparableConv2d)

    def test_poolbn_channel_change_adds_1x1(self):
        same = PoolBN("max", 4, 4)
        change = PoolBN("max", 4, 8)
        assert len(same) == 2  # pool + bn
        assert len(change) == 3  # pool + 1x1 conv + bn
        assert change(x32((1, 4, 6, 6))).shape == (1, 8, 6, 6)

    def test_poolbn_rejects_unknown_kind(self):
        with pytest.raises(ValueError):
            PoolBN("median", 4, 4)

    def test_factorized_reduce_halves(self):
        fr = FactorizedReduce(4, 8)
        assert fr(x32((1, 4, 8, 8))).shape == (1, 8, 4, 4)

    def test_identity_passthrough(self):
        ident = Identity()
        x = x32((2, 3, 4, 4), seed=8)
        assert ident(x) is x
        assert ident.backward(x) is x

    def test_sequential_backward_reverses(self):
        net = Sequential(Conv2d(2, 3, 3), ReLU(), Conv2d(3, 2, 3))
        x = x32((1, 2, 5, 5), seed=9)
        out = net(x)
        gx = net.backward(np.ones_like(out))
        assert gx.shape == x.shape

    def test_sequential_indexing(self):
        net = Sequential(ReLU(), ReLU())
        assert len(net) == 2
        assert isinstance(net[0], ReLU)
