"""Tests for the Eq. 2 multi-objective reward."""

from __future__ import annotations

import pytest

from repro.search.reward import (
    BALANCED,
    ENERGY_FOCUS,
    LATENCY_FOCUS,
    PAPER_T_EER_MJ,
    PAPER_T_LAT_MS,
    RewardSpec,
)


class TestRewardMath:
    def test_at_thresholds_reward_is_weighted_accuracy(self):
        # (x/t)^omega == 1 at the threshold, so R = (a1 + a2) * A.
        spec = RewardSpec(0.5, -0.4, 0.5, -0.4, t_lat_ms=1.2, t_eer_mj=9.0)
        r = spec.reward(0.9, 1.2, 9.0)
        assert r == pytest.approx(0.9)

    def test_hand_computed_value(self):
        spec = RewardSpec(0.6, -0.4, 0.3, -0.2, t_lat_ms=1.0, t_eer_mj=1.0)
        # energy 2.0 -> 2^-0.4; latency 0.5 -> 0.5^-0.2
        expected = 0.6 * 0.8 * 2.0**-0.4 + 0.3 * 0.8 * 0.5**-0.2
        assert spec.reward(0.8, 0.5, 2.0) == pytest.approx(expected)

    def test_lower_energy_higher_reward(self):
        spec = BALANCED
        better = spec.reward(0.9, 1.0, 5.0)
        worse = spec.reward(0.9, 1.0, 8.0)
        assert better > worse

    def test_lower_latency_higher_reward(self):
        spec = BALANCED
        assert spec.reward(0.9, 0.5, 5.0) > spec.reward(0.9, 1.0, 5.0)

    def test_higher_accuracy_higher_reward(self):
        spec = BALANCED
        assert spec.reward(0.95, 1.0, 5.0) > spec.reward(0.5, 1.0, 5.0)

    def test_exceeding_threshold_penalised(self):
        spec = BALANCED
        at = spec.reward(0.9, PAPER_T_LAT_MS, PAPER_T_EER_MJ)
        over = spec.reward(0.9, 2 * PAPER_T_LAT_MS, 2 * PAPER_T_EER_MJ)
        assert over < at

    def test_rejects_non_positive_metrics(self):
        with pytest.raises(ValueError):
            BALANCED.reward(0.5, 0.0, 1.0)
        with pytest.raises(ValueError):
            BALANCED.reward(0.5, 1.0, -1.0)

    def test_rejects_non_positive_thresholds(self):
        with pytest.raises(ValueError):
            RewardSpec(0.5, -0.4, 0.5, -0.4, t_lat_ms=0.0)


class TestPresets:
    def test_paper_coefficients(self):
        assert (BALANCED.alpha1, BALANCED.omega1) == (0.5, -0.4)
        assert (BALANCED.alpha2, BALANCED.omega2) == (0.5, -0.4)
        assert (ENERGY_FOCUS.alpha1, ENERGY_FOCUS.omega1) == (0.6, -0.4)
        assert (ENERGY_FOCUS.alpha2, ENERGY_FOCUS.omega2) == (0.3, -0.2)
        assert (LATENCY_FOCUS.alpha1, LATENCY_FOCUS.omega1) == (0.3, -0.3)
        assert (LATENCY_FOCUS.alpha2, LATENCY_FOCUS.omega2) == (0.6, -0.4)

    def test_paper_thresholds(self):
        assert PAPER_T_LAT_MS == 1.2
        assert PAPER_T_EER_MJ == 9.0
        assert BALANCED.t_lat_ms == 1.2
        assert BALANCED.t_eer_mj == 9.0

    def test_energy_focus_prefers_energy_savings(self):
        """Halving energy must help ENERGY_FOCUS more than LATENCY_FOCUS."""
        base = (0.9, 1.0, 8.0)
        saved = (0.9, 1.0, 4.0)
        gain_e = ENERGY_FOCUS.reward(*saved) / ENERGY_FOCUS.reward(*base)
        gain_l = LATENCY_FOCUS.reward(*saved) / LATENCY_FOCUS.reward(*base)
        assert gain_e > gain_l

    def test_latency_focus_prefers_latency_savings(self):
        base = (0.9, 1.0, 8.0)
        saved = (0.9, 0.5, 8.0)
        gain_e = ENERGY_FOCUS.reward(*saved) / ENERGY_FOCUS.reward(*base)
        gain_l = LATENCY_FOCUS.reward(*saved) / LATENCY_FOCUS.reward(*base)
        assert gain_l > gain_e


class TestThresholdsAndScaling:
    def test_meets_thresholds(self):
        assert BALANCED.meets_thresholds(1.0, 8.0)
        assert not BALANCED.meets_thresholds(1.5, 8.0)
        assert not BALANCED.meets_thresholds(1.0, 10.0)
        assert BALANCED.meets_thresholds(1.2, 9.0)  # boundary inclusive

    def test_scaled_keeps_coefficients(self):
        scaled = ENERGY_FOCUS.scaled(0.1, 0.2)
        assert scaled.alpha1 == ENERGY_FOCUS.alpha1
        assert scaled.omega2 == ENERGY_FOCUS.omega2
        assert scaled.t_lat_ms == 0.1
        assert scaled.t_eer_mj == 0.2
        assert scaled.name == ENERGY_FOCUS.name
