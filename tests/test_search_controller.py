"""Tests for the autoregressive LSTM controller policy."""

from __future__ import annotations

import numpy as np
import pytest

from repro.nas.encoding import decode, token_vocab_sizes
from repro.nn.optim import Adam
from repro.search.controller import Controller


@pytest.fixture(scope="module")
def controller():
    return Controller(seed=0)


class TestSampling:
    def test_sampled_tokens_within_vocab(self, controller):
        rng = np.random.default_rng(1)
        vocab = controller.vocab_sizes
        for _ in range(10):
            s = controller.sample(rng)
            assert len(s.tokens) == len(vocab)
            assert all(0 <= t < v for t, v in zip(s.tokens, vocab))

    def test_sampled_sequences_decode(self, controller):
        rng = np.random.default_rng(2)
        point = decode(controller.sample(rng).tokens)
        assert point.genotype.normal.loose_ends()

    def test_log_prob_negative_and_finite(self, controller):
        rng = np.random.default_rng(3)
        s = controller.sample(rng)
        assert s.log_prob < 0
        assert np.isfinite(s.log_prob)

    def test_entropy_positive_and_bounded(self, controller):
        rng = np.random.default_rng(4)
        s = controller.sample(rng)
        max_entropy = sum(np.log(v) for v in controller.vocab_sizes)
        assert 0 < s.entropy <= max_entropy + 1e-9

    def test_fresh_controller_near_uniform(self):
        """An untrained policy's entropy should be close to maximal."""
        c = Controller(seed=5)
        rng = np.random.default_rng(6)
        s = c.sample(rng)
        max_entropy = sum(np.log(v) for v in c.vocab_sizes)
        assert s.entropy > 0.8 * max_entropy

    def test_log_prob_of_matches_sample(self, controller):
        rng = np.random.default_rng(7)
        s = controller.sample(rng)
        assert controller.log_prob_of(s.tokens) == pytest.approx(s.log_prob, rel=1e-6)

    def test_log_prob_of_rejects_wrong_length(self, controller):
        with pytest.raises(ValueError):
            controller.log_prob_of([0, 1, 2])

    def test_different_seeds_sample_differently(self, controller):
        s1 = controller.sample(np.random.default_rng(8))
        s2 = controller.sample(np.random.default_rng(9))
        assert s1.tokens != s2.tokens


class TestStructure:
    def test_default_hidden_units_match_paper(self, controller):
        assert controller.hidden_dim == 120  # Sec. III-C

    def test_heads_per_position(self, controller):
        assert len(controller.heads) == len(controller.vocab_sizes)
        for head, vocab in zip(controller.heads, controller.vocab_sizes):
            assert head.shape == (120, vocab)

    def test_embeddings_feed_previous_token(self, controller):
        # One embedding table per position except the last.
        assert len(controller.embeddings) == len(controller.vocab_sizes) - 1

    def test_logit_shaping_bounds(self, controller):
        """Shaped logits live in [-tanh_constant, tanh_constant]."""
        rng = np.random.default_rng(10)
        from repro.search.lstm import LSTMState

        state = LSTMState.zeros(controller.hidden_dim)
        x = np.zeros(controller.embedding_dim)
        state, _ = controller.lstm.step(x, state)
        _, shaped = controller._shaped_logits(state.h, 0)
        assert np.all(np.abs(shaped) <= controller.tanh_constant)


class TestPolicyGradient:
    def test_positive_advantage_increases_sequence_probability(self):
        c = Controller(seed=11)
        rng = np.random.default_rng(12)
        opt = Adam(c.parameters(), lr=0.01)
        target = c.sample(rng)
        lp_before = c.log_prob_of(target.tokens)
        for _ in range(5):
            c.zero_grad()
            # Re-sample the same cached episode: reuse its caches directly.
            c.accumulate_policy_gradient(target, advantage=1.0)
            opt.step()
            # Refresh caches by re-sampling deterministically via log_prob_of
            # is unnecessary: caches stay valid only for one update, so
            # resample the episode.
            state_tokens = target.tokens
            target = _teacher_force(c, state_tokens, rng)
        lp_after = c.log_prob_of(target.tokens)
        assert lp_after > lp_before

    def test_negative_advantage_decreases_sequence_probability(self):
        c = Controller(seed=13)
        rng = np.random.default_rng(14)
        opt = Adam(c.parameters(), lr=0.01)
        episode = c.sample(rng)
        tokens = episode.tokens
        lp_before = c.log_prob_of(tokens)
        c.zero_grad()
        c.accumulate_policy_gradient(episode, advantage=-1.0)
        opt.step()
        lp_after = c.log_prob_of(tokens)
        assert lp_after < lp_before

    def test_zero_advantage_no_gradient(self):
        c = Controller(seed=15)
        rng = np.random.default_rng(16)
        episode = c.sample(rng)
        c.zero_grad()
        c.accumulate_policy_gradient(episode, advantage=0.0)
        assert all(np.all(p.grad == 0) for p in c.parameters())


def _teacher_force(controller, tokens, rng):
    """Replay a fixed token sequence to refresh step caches."""
    from repro.search.controller import SampledSequence
    from repro.search.lstm import LSTMState

    state = LSTMState.zeros(controller.hidden_dim)
    x = np.zeros(controller.embedding_dim)
    caches = []
    log_prob = 0.0
    entropy = 0.0
    for t, token in enumerate(tokens):
        state, lstm_cache = controller.lstm.step(x, state)
        raw, shaped = controller._shaped_logits(state.h, t)
        z = shaped - shaped.max()
        probs = np.exp(z) / np.exp(z).sum()
        log_prob += float(np.log(probs[token] + 1e-12))
        entropy += float(-np.sum(probs * np.log(probs + 1e-12)))
        caches.append((lstm_cache, probs, raw, t))
        if t < controller.sequence_length - 1:
            x = controller.embeddings[t].data[token]
    return SampledSequence(tokens=list(tokens), log_prob=log_prob, entropy=entropy,
                           _caches=caches)
