"""Edge-case tests across modules: tiny networks, width variants, encoding
of the published baselines, evaluator corner cases."""

from __future__ import annotations

import numpy as np
import pytest

from repro.accel.config import AcceleratorConfig
from repro.baselines.genotypes import TWO_STAGE_BASELINES
from repro.nas.encoding import CoDesignPoint, decode, encode
from repro.nas.hypernet import HyperNet
from repro.nas.network import CellNetwork
from repro.nas.space import DnnSpace
from repro.search.reinforce import SearchHistory


def x32(shape, seed=0):
    return np.random.default_rng(seed).normal(size=shape).astype(np.float32)


class TestTinyNetworks:
    def test_single_cell_network(self, genotype):
        net = CellNetwork(genotype, num_cells=1, stem_channels=4,
                          rng=np.random.default_rng(0))
        assert net(x32((1, 3, 8, 8))).shape == (1, 10)

    def test_two_cell_network(self, genotype):
        net = CellNetwork(genotype, num_cells=2, stem_channels=4,
                          rng=np.random.default_rng(1))
        logits = net(x32((1, 3, 8, 8)))
        assert logits.shape == (1, 10)
        net.backward(np.ones_like(logits))

    def test_minimum_image_size(self, genotype):
        # 3 cells -> 2 reductions -> 8/4 = 2x2 final maps.
        net = CellNetwork(genotype, num_cells=3, stem_channels=4,
                          rng=np.random.default_rng(2))
        assert net(x32((1, 3, 8, 8))).shape == (1, 10)

    def test_batch_of_one(self, genotype):
        net = CellNetwork(genotype, num_cells=3, stem_channels=4,
                          rng=np.random.default_rng(3))
        logits = net(x32((1, 3, 8, 8), seed=4))
        net.backward(np.ones_like(logits))


class TestHyperNetWidthVariants:
    def test_extreme_loose_end_paths(self):
        """Exercise both the 1-loose-end and 5-loose-end preprocessing
        variants of the HyperNet."""
        from repro.nas.genotype import NUM_COMPUTED, CellGenotype, Genotype, NodeSpec

        hn = HyperNet(num_cells=3, stem_channels=4, rng=np.random.default_rng(5))
        chain = CellGenotype(nodes=tuple(
            NodeSpec(i - 1, i - 1, "conv3x3", "conv3x3")
            for i in range(2, 2 + NUM_COMPUTED)
        ))
        parallel = CellGenotype(nodes=tuple(
            NodeSpec(0, 1, "conv3x3", "maxpool3x3") for _ in range(NUM_COMPUTED)
        ))
        x = x32((2, 3, 8, 8), seed=6)
        for normal, reduce_ in ((chain, chain), (parallel, parallel),
                                (chain, parallel), (parallel, chain)):
            g = Genotype(normal=normal, reduce=reduce_, name="extreme")
            logits = hn.forward(x, g)
            assert logits.shape == (2, 10)
            hn.backward(np.ones_like(logits) / 20.0)


class TestBaselineEncoding:
    def test_all_baselines_encode_and_roundtrip(self, hw_config):
        """The published cells must live inside the 44-token action space."""
        for model in TWO_STAGE_BASELINES:
            point = CoDesignPoint(genotype=model.genotype, config=hw_config)
            tokens = encode(point)
            restored = decode(tokens, name=model.name)
            assert restored.genotype.normal == model.genotype.normal
            assert restored.genotype.reduce == model.genotype.reduce
            assert restored.config == hw_config


class TestHistoryEdgeCases:
    def test_top_more_than_available(self):
        h = SearchHistory()
        from repro.nas.encoding import SEQUENCE_LENGTH
        from repro.search.reinforce import SearchSample

        h.append(SearchSample(0, (0,) * SEQUENCE_LENGTH, 0.5, 0.5, 1.0, 1.0))
        assert len(h.top(10)) == 1

    def test_every_with_large_stride(self):
        h = SearchHistory()
        from repro.nas.encoding import SEQUENCE_LENGTH
        from repro.search.reinforce import SearchSample

        for i in range(3):
            h.append(SearchSample(i, (i,) * SEQUENCE_LENGTH, 0.1, 0.5, 1.0, 1.0))
        assert len(h.every(100)) == 1
        assert len(h.every(0)) == 3  # clamped to 1


class TestSimulatorTinyGeometry:
    def test_one_by_one_pe_array(self, genotype):
        """A degenerate 1x1 'array' must still simulate (slowly)."""
        from repro.accel.simulator import SystolicArraySimulator

        sim = SystolicArraySimulator()
        cfg = AcceleratorConfig(1, 1, 108, 64, "OS")
        report = sim.simulate_genotype(genotype, cfg, num_cells=3,
                                       stem_channels=4, image_size=8)
        big = sim.simulate_genotype(
            genotype, AcceleratorConfig(16, 32, 108, 64, "OS"),
            num_cells=3, stem_channels=4, image_size=8,
        )
        assert report.latency_ms > big.latency_ms

    def test_image_smaller_than_kernel(self):
        from repro.accel.workload import LayerWorkload

        layer = LayerWorkload("tiny", "conv", 4, 4, 2, 5, 1)
        assert layer.out_size == 2
        assert layer.macs > 0
