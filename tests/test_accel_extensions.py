"""Tests for simulator extensions: energy breakdown and batched inference."""

from __future__ import annotations

import pytest

from repro.accel.config import AcceleratorConfig
from repro.accel.simulator import SystolicArraySimulator
from repro.accel.workload import LayerWorkload, network_workloads


@pytest.fixture(scope="module")
def sim():
    return SystolicArraySimulator()


def cfg(flow="OS"):
    return AcceleratorConfig(16, 16, 256, 256, flow)


CONV = LayerWorkload("conv", "conv", 32, 64, 16, 3, 1)


class TestEnergyBreakdown:
    def test_components_sum_to_total(self, sim):
        r = sim.simulate_layer(CONV, cfg())
        assert r.breakdown.total_pj == pytest.approx(r.energy_pj)

    def test_fractions_sum_to_one(self, sim):
        r = sim.simulate_layer(CONV, cfg())
        assert sum(r.breakdown.fractions().values()) == pytest.approx(1.0)

    def test_all_components_positive_for_conv(self, sim):
        b = sim.simulate_layer(CONV, cfg()).breakdown
        assert b.mac_pj > 0 and b.rbuf_pj > 0 and b.gbuf_pj > 0
        assert b.dram_pj > 0 and b.leakage_pj > 0

    def test_network_breakdown_sums_layers(self, sim, genotype):
        report = sim.simulate_genotype(genotype, cfg(), num_cells=3,
                                       stem_channels=8, image_size=16)
        total = report.energy_breakdown()
        assert total.total_pj == pytest.approx(
            sum(r.breakdown.total_pj for r in report.layers)
        )
        assert total.total_pj == pytest.approx(report.energy_mj * 1e9, rel=1e-9)

    def test_nlr_shifts_energy_to_gbuf(self, sim):
        """No local reuse -> a larger gbuf share than weight-stationary."""
        ws = sim.simulate_layer(CONV, cfg("WS")).breakdown.fractions()
        nlr = sim.simulate_layer(CONV, cfg("NLR")).breakdown.fractions()
        assert nlr["gbuf"] > ws["gbuf"]

    def test_memory_dominates_macs(self, sim):
        """Eyeriss's classic observation: data movement outweighs compute."""
        b = sim.simulate_layer(CONV, cfg()).breakdown
        assert b.gbuf_pj + b.dram_pj + b.rbuf_pj > b.mac_pj


class TestBatchedInference:
    def test_macs_scale_linearly(self):
        one = LayerWorkload("l", "conv", 8, 8, 16, 3, 1, batch=1)
        four = LayerWorkload("l", "conv", 8, 8, 16, 3, 1, batch=4)
        assert four.macs == 4 * one.macs

    def test_fmaps_scale_weights_do_not(self):
        one = LayerWorkload("l", "conv", 8, 8, 16, 3, 1, batch=1)
        four = LayerWorkload("l", "conv", 8, 8, 16, 3, 1, batch=4)
        assert four.ifmap_bytes == 4 * one.ifmap_bytes
        assert four.ofmap_bytes == 4 * one.ofmap_bytes
        assert four.weight_bytes == one.weight_bytes

    def test_invalid_batch_rejected(self):
        with pytest.raises(ValueError):
            LayerWorkload("l", "conv", 8, 8, 16, 3, 1, batch=0)

    def test_network_workloads_batch_passthrough(self, genotype):
        b1 = network_workloads(genotype, num_cells=3, stem_channels=8,
                               image_size=16, batch=1)
        b8 = network_workloads(genotype, num_cells=3, stem_channels=8,
                               image_size=16, batch=8)
        assert sum(l.macs for l in b8) == pytest.approx(
            8 * sum(l.macs for l in b1)
        )

    def test_batching_amortises_weight_energy(self, sim, genotype):
        """Energy per image must drop with batch size (weight-traffic reuse)."""
        r1 = sim.simulate_genotype(genotype, cfg(), num_cells=3, stem_channels=8,
                                   image_size=16, batch=1)
        r8 = sim.simulate_genotype(genotype, cfg(), num_cells=3, stem_channels=8,
                                   image_size=16, batch=8)
        assert r8.energy_mj / 8 < r1.energy_mj

    def test_batching_increases_total_latency(self, sim, genotype):
        r1 = sim.simulate_genotype(genotype, cfg(), num_cells=3, stem_channels=8,
                                   image_size=16, batch=1)
        r8 = sim.simulate_genotype(genotype, cfg(), num_cells=3, stem_channels=8,
                                   image_size=16, batch=8)
        assert r8.latency_ms > r1.latency_ms
