"""Smoke tests for the ablation harnesses."""

from __future__ import annotations

import pytest

from repro.experiments import get_context, run_search_strategy_ablation


@pytest.fixture(scope="module")
def ablation():
    context = get_context("smoke", 0)
    return run_search_strategy_ablation("smoke", 0, context=context, iterations=12)


class TestSearchStrategyAblation:
    def test_all_histories(self, ablation):
        assert len(ablation.rl) == 12
        assert len(ablation.random) == 12
        assert len(ablation.bayesopt) == 12
        assert len(ablation.evolution) == 12
        assert len(ablation.bandit) == 12

    def test_summary_structure(self, ablation):
        summary = ablation.summary()
        assert set(summary) == {"rl", "random", "bayesopt", "evolution", "bandit"}
        for stats in summary.values():
            assert stats["best"] >= stats["tail_mean"] >= 0.0 or stats["best"] >= 0.0

    def test_tail_mean_fraction(self, ablation):
        full = ablation.tail_mean("rl", frac=1.0)
        import numpy as np

        assert full == pytest.approx(float(ablation.rl.rewards().mean()))

    def test_best_matches_history(self, ablation):
        assert ablation.best("random") == pytest.approx(
            float(ablation.random.rewards().max())
        )
