"""The sharded multi-process evaluation engine (``repro.parallel``).

Covers the four guarantees the subsystem makes:

* **Bit-exact parity** — ``ParallelEvaluator`` results are ``==`` to the
  in-process ``BatchEvaluator`` at any worker count (no tolerances).
* **Crash resilience** — killing a worker restarts the pool and the
  in-flight batch is resubmitted, never lost.
* **In-process fallback** — ``workers <= 1`` never creates a pool.
* **Micro-batch coalescing** — concurrent submitters are served from one
  batched evaluator call per tick.

CI runs this module both inside the tier-1 suite and as a dedicated
job, so the multiprocess path is exercised on every push.
"""

from __future__ import annotations

import os
import signal
import threading
import time

import numpy as np
import pytest

from repro.accel.config import enumerate_configs, random_config
from repro.nas.encoding import CoDesignPoint, encode
from repro.nas.space import DnnSpace
from repro.parallel import (
    MicroBatchScheduler,
    ParallelEvaluator,
    WorkerPool,
    create_evaluator,
    merge_shards,
    replication_payload,
    shard_bounds,
    shard_sequence,
)
from repro.search.evaluator import BatchEvaluator


def _population(n: int, seed: int = 123) -> list[CoDesignPoint]:
    """n distinct on-grid co-design points (deterministic)."""
    rng = np.random.default_rng(seed)
    space = DnnSpace()
    return [
        CoDesignPoint(space.sample(rng, name=f"pop{seed}_{i}"), random_config(rng))
        for i in range(n)
    ]


# ---------------------------------------------------------------------------
# Sharder
# ---------------------------------------------------------------------------


class TestSharder:
    def test_bounds_cover_and_balance(self):
        bounds = shard_bounds(10, 4)
        assert bounds == [(0, 3), (3, 6), (6, 8), (8, 10)]

    def test_bounds_fewer_items_than_shards(self):
        assert shard_bounds(2, 8) == [(0, 1), (1, 2)]

    def test_bounds_empty(self):
        assert shard_bounds(0, 4) == []

    def test_bounds_validation(self):
        with pytest.raises(ValueError):
            shard_bounds(-1, 2)
        with pytest.raises(ValueError):
            shard_bounds(4, 0)

    @pytest.mark.parametrize("n", [0, 1, 2, 7, 16, 33])
    @pytest.mark.parametrize("shards", [1, 2, 3, 5, 16, 64])
    def test_merge_roundtrip_any_worker_count(self, n, shards):
        items = list(range(n))
        chunks = shard_sequence(items, shards)
        assert all(chunks), "no empty shards are emitted"
        assert len(chunks) == min(shards, n)
        assert merge_shards(chunks) == items

    def test_hardware_sweep_roundtrip(self):
        """The same helpers chunk flat accelerator-configuration sweeps."""
        configs = list(enumerate_configs())
        for shards in (1, 3, 8):
            assert merge_shards(shard_sequence(configs, shards)) == configs

    def test_deterministic(self):
        assert shard_sequence(list(range(11)), 3) == shard_sequence(
            list(range(11)), 3
        )


# ---------------------------------------------------------------------------
# Replication payload
# ---------------------------------------------------------------------------


class TestReplicationPayload:
    def test_strips_runtime_state_and_preserves_results(self, smoke_context):
        import pickle

        fast = smoke_context.fast_evaluator
        payload = replication_payload(fast)
        assert len(payload) < len(pickle.dumps(fast)) / 2, (
            "stripping the forward/backward scratch should shrink the "
            "payload by well over half"
        )
        replica = pickle.loads(payload)
        genotypes = [p.genotype for p in _population(4, seed=5)]
        assert replica.evaluate_accuracies(genotypes) == fast.evaluate_accuracies(
            genotypes
        )


# ---------------------------------------------------------------------------
# ParallelEvaluator
# ---------------------------------------------------------------------------


@pytest.fixture(scope="module")
def pool_evaluator(smoke_context):
    """A shared 2-worker evaluator (spawning a pool is the slow part)."""
    evaluator = ParallelEvaluator(smoke_context.fast_evaluator, workers=2)
    yield evaluator
    evaluator.close()


class TestParallelEvaluator:
    def test_workers1_is_in_process(self, smoke_context):
        points = _population(5, seed=11)
        reference = BatchEvaluator(smoke_context.fast_evaluator).evaluate_many(points)
        evaluator = ParallelEvaluator(smoke_context.fast_evaluator, workers=1)
        assert evaluator.evaluate_many(points) == reference
        assert evaluator.pool is None, "workers=1 must never spawn a pool"

    def test_create_evaluator_factory(self, smoke_context):
        fast = smoke_context.fast_evaluator
        assert type(create_evaluator(fast, workers=1)) is BatchEvaluator
        parallel = create_evaluator(fast, workers=2)
        assert isinstance(parallel, ParallelEvaluator)
        parallel.close()

    def test_small_batch_below_min_dispatch_stays_local(self, smoke_context):
        evaluator = ParallelEvaluator(
            smoke_context.fast_evaluator, workers=2, min_dispatch=4
        )
        points = _population(2, seed=17)
        reference = BatchEvaluator(smoke_context.fast_evaluator).evaluate_many(points)
        assert evaluator.evaluate_many(points) == reference
        assert evaluator.pool is None, (
            "fewer unique cold genotypes than min_dispatch must not pay a "
            "pool round-trip"
        )

    def test_bit_identical_to_batch_evaluator(self, smoke_context, pool_evaluator):
        points = _population(8, seed=23)
        points.append(points[0])  # intra-batch duplicate
        reference = BatchEvaluator(smoke_context.fast_evaluator).evaluate_many(points)
        assert pool_evaluator.evaluate_many(points) == reference

    def test_warm_cache_skips_dispatch(self, smoke_context, pool_evaluator):
        points = _population(6, seed=29)
        first = pool_evaluator.evaluate_many(points)
        assert pool_evaluator.pool is not None
        batches_before = pool_evaluator.pool.batches
        assert pool_evaluator.evaluate_many(points) == first
        assert pool_evaluator.pool.batches == batches_before, (
            "cache hits must never cross the process boundary"
        )

    def test_tokens_entry_point(self, smoke_context, pool_evaluator):
        points = _population(5, seed=31)
        tokens = [encode(p) for p in points]
        reference = BatchEvaluator(smoke_context.fast_evaluator).evaluate_tokens(tokens)
        assert pool_evaluator.evaluate_tokens(tokens) == reference

    @pytest.mark.slow
    def test_three_workers_same_bits(self, smoke_context):
        points = _population(7, seed=37)
        reference = BatchEvaluator(smoke_context.fast_evaluator).evaluate_many(points)
        with ParallelEvaluator(smoke_context.fast_evaluator, workers=3) as evaluator:
            assert evaluator.evaluate_many(points) == reference

    def test_worker_crash_restarts_pool_without_losing_batch(self, smoke_context):
        # Fixed min_dispatch: the warm-up batch must spawn the pool, not
        # be absorbed by the adaptive tuner's in-process calibration probe.
        evaluator = ParallelEvaluator(
            smoke_context.fast_evaluator, workers=2, min_dispatch=2
        )
        try:
            warmup = _population(4, seed=41)
            reference_warm = BatchEvaluator(
                smoke_context.fast_evaluator
            ).evaluate_many(warmup)
            assert evaluator.evaluate_many(warmup) == reference_warm
            pids = evaluator.pool.worker_pids()
            assert len(pids) == 2
            os.kill(pids[0], signal.SIGKILL)
            fresh = _population(5, seed=43)  # cold keys force a dispatch
            reference = BatchEvaluator(
                smoke_context.fast_evaluator
            ).evaluate_many(fresh)
            assert evaluator.evaluate_many(fresh) == reference
            assert evaluator.pool_restarts >= 1
            # The healed pool keeps serving.
            more = _population(3, seed=47)
            reference_more = BatchEvaluator(
                smoke_context.fast_evaluator
            ).evaluate_many(more)
            assert evaluator.evaluate_many(more) == reference_more
        finally:
            evaluator.close()

    def test_close_is_idempotent_and_reusable(self, smoke_context, pool_evaluator):
        points = _population(3, seed=53)
        reference = BatchEvaluator(smoke_context.fast_evaluator).evaluate_many(points)
        pool_evaluator.close()
        pool_evaluator.close()
        # A closed evaluator lazily respawns its pool on the next cold batch.
        assert pool_evaluator.evaluate_many(points) == reference


# ---------------------------------------------------------------------------
# Micro-batch scheduler
# ---------------------------------------------------------------------------


class _CountingEvaluator:
    """Evaluator stub: records calls, optionally failing."""

    def __init__(self, inner, fail: bool = False):
        self.inner = inner
        self.fail = fail
        self.calls: list[int] = []

    def evaluate_many(self, points):
        self.calls.append(len(points))
        if self.fail:
            raise RuntimeError("boom")
        return self.inner.evaluate_many(points)


class TestMicroBatchScheduler:
    def test_concurrent_submitters_coalesce_into_one_tick(self, smoke_context):
        inner = _CountingEvaluator(BatchEvaluator(smoke_context.fast_evaluator))
        scheduler = MicroBatchScheduler(inner, auto_start=False)
        points = _population(8, seed=59)
        reference = BatchEvaluator(smoke_context.fast_evaluator).evaluate_many(points)
        chunks = [points[:3], points[3:5], points[5:8]]
        futures: list = [None] * len(chunks)

        def submit(i: int) -> None:
            futures[i] = scheduler.submit(chunks[i])

        threads = [
            threading.Thread(target=submit, args=(i,)) for i in range(len(chunks))
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        served = scheduler.flush()
        assert served == 3
        assert scheduler.ticks == 1, "all pending requests coalesce into ONE batch"
        assert inner.calls == [8], "the evaluator saw one merged batch"
        assert futures[0].result() == reference[:3]
        assert futures[1].result() == reference[3:5]
        assert futures[2].result() == reference[5:8]

    def test_auto_mode_is_a_drop_in_evaluator(self, smoke_context):
        evaluator = BatchEvaluator(smoke_context.fast_evaluator)
        points = _population(6, seed=61)
        reference = evaluator.evaluate_many(points)
        with MicroBatchScheduler(evaluator, tick_s=0.005) as scheduler:
            assert scheduler.evaluate_many(points) == reference
            assert scheduler.evaluate(points[0]) == reference[0]
            futures = [scheduler.submit([p]) for p in points]
            assert [f.result()[0] for f in futures] == reference
        assert scheduler.ticks >= 1
        assert scheduler.requests == 2 + len(points)

    def test_max_batch_points_splits_ticks(self, smoke_context):
        inner = _CountingEvaluator(BatchEvaluator(smoke_context.fast_evaluator))
        scheduler = MicroBatchScheduler(inner, max_batch_points=4, auto_start=False)
        points = _population(6, seed=67)
        futures = [scheduler.submit(points[:3]), scheduler.submit(points[3:])]
        scheduler.flush()
        assert scheduler.ticks == 2, "the cap bounds each coalesced batch"
        assert inner.calls == [3, 3]
        assert [len(f.result()) for f in futures] == [3, 3]

    def test_exception_propagates_to_every_coalesced_caller(self, smoke_context):
        inner = _CountingEvaluator(
            BatchEvaluator(smoke_context.fast_evaluator), fail=True
        )
        scheduler = MicroBatchScheduler(inner, auto_start=False)
        points = _population(2, seed=71)
        futures = [scheduler.submit([p]) for p in points]
        scheduler.flush()
        for future in futures:
            assert isinstance(future.exception(), RuntimeError)
        # The scheduler itself survives and keeps serving.
        inner.fail = False
        assert scheduler.evaluate_many(points) == BatchEvaluator(
            smoke_context.fast_evaluator
        ).evaluate_many(points)

    def test_closed_scheduler_rejects_submissions(self, smoke_context):
        scheduler = MicroBatchScheduler(
            BatchEvaluator(smoke_context.fast_evaluator), auto_start=False
        )
        scheduler.close()
        with pytest.raises(RuntimeError):
            scheduler.submit(_population(1, seed=73))

    def test_validation(self, smoke_context):
        evaluator = BatchEvaluator(smoke_context.fast_evaluator)
        with pytest.raises(ValueError):
            MicroBatchScheduler(evaluator, tick_s=-1.0)
        with pytest.raises(ValueError):
            MicroBatchScheduler(evaluator, max_batch_points=0)


# ---------------------------------------------------------------------------
# Stack integration
# ---------------------------------------------------------------------------


class TestStackIntegration:
    def test_get_context_workers_knob(self, smoke_context):
        from repro.experiments import get_context

        context = get_context("smoke", seed=0, workers=2)
        try:
            assert context is not smoke_context, "workers is part of the cache key"
            assert context.workers == 2
            assert isinstance(context.batch_evaluator, ParallelEvaluator)
            assert context.fast_evaluator is smoke_context.fast_evaluator, (
                "the expensive Step-1 artefacts are shared across worker "
                "counts — only the evaluator wrapper differs"
            )
            assert get_context("smoke", seed=0, workers=2) is context
            points = _population(5, seed=79)
            assert (
                context.batch_evaluator.evaluate_many(points)
                == smoke_context.batch_evaluator.evaluate_many(points)
            )
        finally:
            context.batch_evaluator.close()

    @pytest.mark.slow
    def test_quick_codesign_workers_bit_identical_pipeline(self):
        """The whole 3-step pipeline is worker-count invariant."""
        from repro import quick_codesign

        serial = quick_codesign("smoke", seed=9, workers=1)
        sharded = quick_codesign("smoke", seed=9, workers=2)
        assert sharded.best.sample.tokens == serial.best.sample.tokens
        assert sharded.best.accurate == serial.best.accurate
        assert [c.sample.tokens for c in sharded.rescored] == [
            c.sample.tokens for c in serial.rescored
        ]
        assert sharded.history.rewards().tolist() == serial.history.rewards().tolist()


# ---------------------------------------------------------------------------
# Scheduler / pool lifecycle (regression pins for the service hardening)
# ---------------------------------------------------------------------------


class _GateEvaluator:
    """Evaluator stub that blocks inside ``evaluate_many`` until released."""

    def __init__(self, inner):
        self.inner = inner
        self.entered = threading.Event()
        self.release = threading.Event()

    def evaluate_many(self, points):
        self.entered.set()
        assert self.release.wait(30.0), "gate was never released"
        return self.inner.evaluate_many(points)


class TestSchedulerLifecycle:
    def test_concurrent_close_waits_for_drain(self, smoke_context):
        """Regression: a second closer used to take close()'s idempotency
        early-return while the first closer was still draining, so its
        close() returned with requests still un-served."""
        inner = _GateEvaluator(BatchEvaluator(smoke_context.fast_evaluator))
        scheduler = MicroBatchScheduler(inner, auto_start=False)
        future = scheduler.submit(_population(2, seed=81))
        first = threading.Thread(target=scheduler.close)
        first.start()
        assert inner.entered.wait(10.0), "first closer never began draining"
        observed = {}

        def second_close():
            scheduler.close()
            observed["drained"] = future.done()

        second = threading.Thread(target=second_close)
        second.start()
        second.join(0.5)
        assert second.is_alive(), (
            "the second closer must block until the drain completes"
        )
        inner.release.set()
        second.join(20.0)
        first.join(20.0)
        assert not first.is_alive() and not second.is_alive()
        assert observed["drained"], (
            "close() returning must mean the queue has been drained"
        )
        assert len(future.result()) == 2

    def test_concurrent_close_storm_auto_mode(self, smoke_context):
        """Eight simultaneous closers on a running scheduler: no
        exceptions, every closer returns, the request is served."""
        evaluator = BatchEvaluator(smoke_context.fast_evaluator)
        scheduler = MicroBatchScheduler(evaluator, tick_s=0.001)
        future = scheduler.submit(_population(2, seed=83))
        errors: list = []

        def close():
            try:
                scheduler.close()
            except BaseException as exc:  # pragma: no cover - the bug
                errors.append(exc)

        threads = [threading.Thread(target=close) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(30.0)
        assert not any(t.is_alive() for t in threads)
        assert errors == []
        assert future.done() and len(future.result()) == 2
        scheduler.close()  # still idempotent afterwards

    def test_reentrant_close_from_draining_thread(self, smoke_context):
        """close() re-entered on the closing thread itself (a signal
        handler firing mid-close) returns instead of deadlocking on its
        own drain."""

        class _ReentrantClose:
            def __init__(self, inner):
                self.inner = inner
                self.scheduler = None

            def evaluate_many(self, points):
                self.scheduler.close()  # reentrant: we ARE the drain
                return self.inner.evaluate_many(points)

        inner = _ReentrantClose(BatchEvaluator(smoke_context.fast_evaluator))
        scheduler = MicroBatchScheduler(inner, auto_start=False)
        inner.scheduler = scheduler
        future = scheduler.submit(_population(1, seed=87))
        closer = threading.Thread(target=scheduler.close)
        closer.start()
        closer.join(20.0)
        assert not closer.is_alive(), "reentrant close must not deadlock"
        assert future.done()

    def test_close_from_scheduler_thread_mid_batch(self, smoke_context):
        """An evaluator closing the scheduler from inside a running batch
        (auto mode: that call runs ON the scheduler thread) flags the
        shutdown and returns — it must not deadlock itself or the real
        closer joining the thread."""

        class _ClosingEvaluator:
            def __init__(self, inner):
                self.inner = inner
                self.scheduler = None

            def evaluate_many(self, points):
                self.scheduler.close()  # executes on the scheduler thread
                return self.inner.evaluate_many(points)

        inner = _ClosingEvaluator(BatchEvaluator(smoke_context.fast_evaluator))
        scheduler = MicroBatchScheduler(inner, tick_s=0.0)
        inner.scheduler = scheduler
        future = scheduler.submit(_population(1, seed=95))
        closer = threading.Thread(target=scheduler.close)
        closer.start()
        closer.join(20.0)
        assert not closer.is_alive(), "closer must not deadlock"
        assert future.done() and len(future.result()) == 1

    def test_failed_batches_count_ticks_and_errors(self, smoke_context):
        """Regression: _run_batch only bumped ticks/largest_batch on
        success, so the stats under-reported traffic under evaluator
        errors (and exposed no error count at all)."""
        inner = _CountingEvaluator(
            BatchEvaluator(smoke_context.fast_evaluator), fail=True
        )
        scheduler = MicroBatchScheduler(inner, auto_start=False)
        points = _population(3, seed=89)
        future = scheduler.submit(points)
        scheduler.flush()
        assert isinstance(future.exception(), RuntimeError)
        assert scheduler.ticks == 1, "a failed batch is still a tick"
        assert scheduler.errors == 1
        assert scheduler.largest_batch == 3
        inner.fail = False
        scheduler.evaluate_many(points)
        assert (scheduler.ticks, scheduler.errors) == (2, 1)

    def test_cancelled_queued_request_is_skipped(self, smoke_context):
        """A future cancelled while queued is dropped at dispatch, so
        ``set_result`` can never race a cancellation."""
        inner = _CountingEvaluator(BatchEvaluator(smoke_context.fast_evaluator))
        scheduler = MicroBatchScheduler(inner, auto_start=False)
        keep = scheduler.submit(_population(2, seed=91))
        dropped = scheduler.submit(_population(2, seed=93))
        assert dropped.cancel()
        scheduler.flush()
        assert keep.done() and not keep.cancelled()
        assert inner.calls == [2], (
            "a cancelled request's points must not be evaluated"
        )


def _lifecycle_task(shard):
    """Module-level task fn (spawn pickles it by reference)."""
    kind, delay, path = shard[0]
    time.sleep(delay)
    if kind == "fail":
        raise ValueError("task failure")
    if path:
        with open(path, "w") as handle:
            handle.write("done")
    return kind


class TestWorkerPoolTaskErrors:
    def test_task_error_harvests_all_futures(self, tmp_path):
        """Regression: run_tasks used to propagate the first genuine task
        error immediately, abandoning later shards' futures while their
        work was still running inside the executor."""
        import pickle

        pool = WorkerPool(pickle.dumps("lifecycle-state"), workers=2)
        try:
            marker = tmp_path / "slow_done.txt"
            shards = [
                [("fail", 0.0, "")],
                [("ok", 1.0, str(marker))],
            ]
            with pytest.raises(ValueError, match="task failure"):
                pool.run_tasks(_lifecycle_task, shards)
            assert marker.exists(), (
                "every in-flight future must be harvested before a task "
                "error propagates — no abandoned work may still be "
                "running in the executor"
            )
            # The pool is immediately reusable after a task error.
            ok = tmp_path / "reuse.txt"
            assert pool.run_tasks(
                _lifecycle_task, [[("ok", 0.0, str(ok))]]
            ) == ["ok"]
            assert ok.exists()
        finally:
            pool.close()
