"""Tests for the Gaussian-process regressor (Eq. 7-8)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.predict.gp import GaussianProcessRegressor, rbf_kernel
from repro.predict.metrics import r2


def make_data(n=60, d=4, seed=0, noise=0.01):
    rng = np.random.default_rng(seed)
    x = rng.normal(size=(n, d))
    y = np.sin(x[:, 0]) + 0.5 * x[:, 1] ** 2 + x[:, 2] + noise * rng.normal(size=n)
    return x, y


class TestRbfKernel:
    def test_diagonal_is_signal_variance(self):
        x = np.random.default_rng(0).normal(size=(5, 3))
        k = rbf_kernel(x, x, length_scale=2.0, signal_var=1.7)
        assert np.allclose(np.diag(k), 1.7)

    def test_symmetry(self):
        x = np.random.default_rng(1).normal(size=(6, 2))
        k = rbf_kernel(x, x, 1.0, 1.0)
        assert np.allclose(k, k.T)

    def test_decays_with_distance(self):
        a = np.array([[0.0]])
        near = np.array([[0.1]])
        far = np.array([[5.0]])
        assert rbf_kernel(a, near, 1.0, 1.0)[0, 0] > rbf_kernel(a, far, 1.0, 1.0)[0, 0]

    def test_positive_semidefinite(self):
        x = np.random.default_rng(2).normal(size=(20, 3))
        k = rbf_kernel(x, x, 1.5, 1.0)
        eigvals = np.linalg.eigvalsh(k)
        assert eigvals.min() > -1e-8

    def test_rejects_bad_hyperparameters(self):
        x = np.ones((2, 2))
        with pytest.raises(ValueError):
            rbf_kernel(x, x, 0.0, 1.0)
        with pytest.raises(ValueError):
            rbf_kernel(x, x, 1.0, -1.0)


class TestGaussianProcess:
    def test_near_interpolation_on_training_points(self):
        x, y = make_data(noise=0.0)
        gp = GaussianProcessRegressor(optimise=False, noise_var=1e-6)
        gp.fit(x, y)
        pred = gp.predict(x)
        assert r2(y, pred) > 0.999

    def test_generalises_on_smooth_function(self):
        x, y = make_data(n=120, seed=3)
        xt, yt = make_data(n=40, seed=4)
        gp = GaussianProcessRegressor(seed=0)
        gp.fit(x, y)
        assert r2(yt, gp.predict(xt)) > 0.9

    def test_posterior_std_nonnegative_and_grows_offdata(self):
        x, y = make_data(n=40, seed=5)
        gp = GaussianProcessRegressor(optimise=False, length_scale=1.0)
        gp.fit(x, y)
        _, std_on = gp.predict_with_std(x)
        far = x + 100.0
        _, std_off = gp.predict_with_std(far)
        assert np.all(std_on >= 0)
        assert std_off.mean() > std_on.mean()

    def test_far_prediction_reverts_to_mean(self):
        x, y = make_data(n=40, seed=6)
        gp = GaussianProcessRegressor(optimise=False, length_scale=1.0)
        gp.fit(x, y)
        pred = gp.predict(x + 1000.0)
        assert np.allclose(pred, y.mean(), atol=0.2)

    def test_hyperparameter_optimisation_improves_lml(self):
        x, y = make_data(n=60, seed=7)
        fixed = GaussianProcessRegressor(optimise=False, length_scale=20.0,
                                         noise_var=0.5)
        fixed.fit(x, y)
        tuned = GaussianProcessRegressor(optimise=True, length_scale=20.0,
                                         noise_var=0.5, seed=0)
        tuned.fit(x, y)
        assert tuned.log_marginal_likelihood_ >= fixed.log_marginal_likelihood_ - 1e-6

    def test_optimised_hyperparameters_positive(self):
        x, y = make_data(n=50, seed=8)
        gp = GaussianProcessRegressor(seed=1)
        gp.fit(x, y)
        assert gp.length_scale > 0
        assert gp.signal_var > 0
        assert gp.noise_var > 0

    def test_predict_with_std_before_fit_raises(self):
        with pytest.raises(RuntimeError):
            GaussianProcessRegressor().predict_with_std(np.ones((2, 2)))

    def test_deterministic_given_seed(self):
        x, y = make_data(n=40, seed=9)
        a = GaussianProcessRegressor(seed=5).fit(x, y).predict(x[:5])
        b = GaussianProcessRegressor(seed=5).fit(x, y).predict(x[:5])
        assert np.array_equal(a, b)

    def test_noisy_targets_not_overfit(self):
        rng = np.random.default_rng(10)
        x = rng.normal(size=(80, 2))
        y_clean = x[:, 0]
        y = y_clean + 0.5 * rng.normal(size=80)
        gp = GaussianProcessRegressor(seed=0)
        gp.fit(x, y)
        # The GP should recover the clean signal better than the noisy one
        # reproduces itself (i.e. it smooths).
        pred = gp.predict(x)
        assert np.mean((pred - y_clean) ** 2) < np.mean((y - y_clean) ** 2)
