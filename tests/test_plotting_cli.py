"""Tests for the terminal plotting utilities and the CLI."""

from __future__ import annotations

import numpy as np
import pytest

from repro.cli import build_parser, main
from repro.experiments.plotting import histogram, line_chart, scatter_chart


class TestLineChart:
    def test_renders_with_title_and_legend(self):
        out = line_chart({"train": [0.1, 0.2, 0.4, 0.6]}, title="acc",
                         x_label="epoch", y_label="accuracy")
        assert "acc" in out
        assert "o=train" in out
        assert "epoch" in out

    def test_multiple_series_distinct_glyphs(self):
        out = line_chart({"a": [0.0, 1.0], "b": [1.0, 0.0]})
        assert "o=a" in out and "x=b" in out

    def test_constant_series_does_not_crash(self):
        out = line_chart({"flat": [0.5] * 10})
        assert "flat" in out

    def test_axis_labels_show_range(self):
        out = line_chart({"s": [2.0, 8.0]})
        assert "8" in out and "2" in out

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            line_chart({})
        with pytest.raises(ValueError):
            line_chart({"s": []})

    def test_fixed_width(self):
        out = line_chart({"s": list(range(100))}, width=30, height=6)
        body_lines = [l for l in out.splitlines() if "│" in l or "┤" in l]
        assert all(len(l) <= 12 + 31 for l in body_lines)


class TestScatterChart:
    def test_basic_render(self):
        rng = np.random.default_rng(0)
        out = scatter_chart(rng.random(50), rng.random(50), title="cloud")
        assert "cloud" in out

    def test_highlight_marker(self):
        out = scatter_chart([0.0, 1.0], [0.0, 1.0], highlight=[(0.0, 0.0)])
        assert "●" in out

    def test_mismatched_inputs_rejected(self):
        with pytest.raises(ValueError):
            scatter_chart([1.0], [1.0, 2.0])
        with pytest.raises(ValueError):
            scatter_chart([], [])

    def test_single_point(self):
        out = scatter_chart([1.0], [1.0])
        assert "│" in out


class TestHistogram:
    def test_counts_sum(self):
        out = histogram([1.0, 1.0, 2.0, 5.0], bins=4, title="h")
        assert "h" in out
        assert "█" in out

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            histogram([])


class TestCli:
    def test_parser_has_all_commands(self):
        parser = build_parser()
        sub = next(a for a in parser._actions
                   if isinstance(a, type(parser._subparsers._group_actions[0])))
        commands = set(sub.choices)
        assert commands == {
            "run", "fig4", "fig5", "fig6", "table2", "space", "serve",
            "stats", "lint",
        }

    def test_space_command(self, capsys):
        assert main(["space"]) == 0
        out = capsys.readouterr().out
        assert "hardware configurations" in out
        assert "800" in out
        assert "44 tokens" in out

    @pytest.mark.slow
    def test_run_command_smoke(self, capsys):
        assert main(["run", "--scale", "smoke", "--seed", "3"]) == 0
        out = capsys.readouterr().out
        assert "final co-design" in out
        assert "composite reward" in out

    def test_fig4_command_smoke(self, capsys, smoke_context):
        assert main(["fig4", "--scale", "smoke"]) == 0
        out = capsys.readouterr().out
        assert "gaussian_process" in out

    def test_fig5_command_smoke(self, capsys, smoke_context):
        assert main(["fig5", "--scale", "smoke", "--models", "3"]) == 0
        out = capsys.readouterr().out
        assert "Fig 5(a)" in out and "Fig 5(b)" in out
        assert "spearman" in out

    def test_fig6_command_smoke(self, capsys, smoke_context):
        assert main(["fig6", "--scale", "smoke", "--iterations", "10"]) == 0
        out = capsys.readouterr().out
        assert "Fig 6(a)" in out
        assert "Pareto" in out
        assert "distance to front by phase" in out

    @pytest.mark.slow
    def test_table2_command_smoke(self, capsys, smoke_context):
        assert main(["table2", "--scale", "smoke", "--iterations", "8"]) == 0
        out = capsys.readouterr().out
        assert "Yoso_eer" in out and "Fig7" in out

    def test_requires_command(self):
        with pytest.raises(SystemExit):
            main([])
