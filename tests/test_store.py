"""The durable result store (``repro.store``) and its tier-2 integration.

The store's claims are *proved* here, not asserted:

* **Wire-exact roundtrips** — arbitrary valid encodings and extreme
  float values (denormal-tiny, huge, negative zero) survive append ->
  reopen -> lookup with ``repr``-identical (bit-exact) values, the same
  discipline as :mod:`repro.service.protocol`.
* **Fault injection** — a truncated tail record, a flipped
  (checksum-failing) byte, and a kill mid-append (monkeypatched partial
  write) each cost at most the bad tail; earlier records are never
  corrupted and the recovered store keeps appending.
* **Single-writer enforcement** — a second writer (thread or spawned
  process) gets :class:`~repro.store.StoreLockedError`; one instance is
  itself thread-safe under concurrent appends.
* **Warm start** — a restarted evaluator / search service on the same
  store path serves bit-identical results with zero tier-2 misses.

CI runs this module inside the tier-1 suite and as a dedicated store
job; everything here is spawn-safe and tolerant of 1-CPU hosts.
"""

from __future__ import annotations

import json
import multiprocessing
import os
import struct
import threading
import zlib

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.nas.encoding import (
    SEQUENCE_LENGTH,
    random_sequence,
    token_vocab_sizes,
)
from repro.store import (
    MAGIC,
    ResultStore,
    StoreError,
    StoreLockedError,
    digest,
)

_U32 = struct.Struct("<I")

#: Extreme-but-representable doubles: denormal-tiny, huge, negative
#: zero, and values with no finite binary expansion.
EXTREME_FLOATS = [
    5e-324,
    -5e-324,
    1.7976931348623157e308,
    -1.7976931348623157e308,
    -0.0,
    0.0,
    1e-308,
    0.1,
    1.0 / 3.0,
    -2.5e-10,
]


def _record_blob(namespace: str, key, values) -> bytes:
    payload = json.dumps(
        {"ns": namespace, "k": list(key), "v": list(values)},
        separators=(",", ":"),
    ).encode()
    return _U32.pack(len(payload)) + payload + _U32.pack(zlib.crc32(payload))


def _fill(path: str, n: int = 3, namespace: str = "ns") -> list[tuple]:
    """Append n distinct records and close; returns the (key, values)."""
    rng = np.random.default_rng(1234)
    rows = []
    with ResultStore(path) as store:
        for i in range(n):
            key = tuple(random_sequence(rng))
            values = (float(rng.normal()), float(rng.normal()), 0.5)
            store.append(namespace, key, values)
            rows.append((key, values))
    return rows


# ---------------------------------------------------------------------------
# Roundtrip fidelity
# ---------------------------------------------------------------------------


def _token_sequences() -> st.SearchStrategy:
    """Arbitrary valid 44-token action sequences (per-position vocab)."""
    return st.tuples(
        *[st.integers(min_value=0, max_value=v - 1) for v in token_vocab_sizes()]
    )


class TestRoundtrip:
    @settings(max_examples=40, deadline=None)
    @given(
        key=_token_sequences(),
        values=st.lists(
            st.floats(allow_nan=False, allow_infinity=False, width=64),
            min_size=1,
            max_size=4,
        ),
    )
    def test_append_reopen_lookup_is_bit_exact(self, tmp_path_factory, key, values):
        path = str(tmp_path_factory.mktemp("roundtrip") / "prop.store")
        with ResultStore(path) as store:
            store.append("eval:prop", key, values)
            assert store.get("eval:prop", key) == tuple(values)
        with ResultStore(path, mode="r") as again:
            got = again.get("eval:prop", key)
        # repr-identical == bit-identical doubles (catches -0.0 and every
        # round-off that plain == equality would let through).
        assert [repr(v) for v in got] == [repr(float(v)) for v in values]

    @pytest.mark.parametrize("value", EXTREME_FLOATS)
    def test_extreme_floats_survive_exactly(self, tmp_path, value):
        path = str(tmp_path / "extreme.store")
        key = tuple(range(SEQUENCE_LENGTH))
        with ResultStore(path) as store:
            store.append("ns", key, (value,))
        with ResultStore(path) as again:
            (got,) = again.get("ns", key)
        assert repr(got) == repr(value)

    def test_last_write_wins_and_namespaces_are_disjoint(self, tmp_path):
        path = str(tmp_path / "lww.store")
        key = tuple(random_sequence(np.random.default_rng(0)))
        with ResultStore(path) as store:
            store.append("a", key, (1.0,))
            store.append("b", key, (2.0,))
            store.append("a", key, (3.0,))
        with ResultStore(path) as again:
            assert again.get("a", key) == (3.0,)
            assert again.get("b", key) == (2.0,)
            assert again.loaded_records == 3  # the log keeps all appends
            assert len(again) == 2  # the index is last-write-wins
            assert again.namespaces() == {"a", "b"}

    def test_get_miss_and_contains_and_items(self, tmp_path):
        path = str(tmp_path / "api.store")
        rows = _fill(path, n=3)
        with ResultStore(path, mode="r") as store:
            assert store.get("ns", rows[0][0]) == rows[0][1]
            assert store.get("other", rows[0][0]) is None
            assert ("ns", rows[1][0]) in store
            assert ("nope", rows[1][0]) not in store
            assert sorted(k for _, k, _ in store.items("ns")) == sorted(
                k for k, _ in rows
            )
            assert store.lookups == 2 and store.hits == 1

    def test_read_only_mode_rejects_appends_and_missing_file(self, tmp_path):
        path = str(tmp_path / "ro.store")
        _fill(path, n=1)
        with ResultStore(path, mode="r") as store:
            with pytest.raises(StoreError, match="read-only"):
                store.append("ns", (1, 2), (3.0,))
        with pytest.raises(FileNotFoundError):
            ResultStore(str(tmp_path / "missing.store"), mode="r")

    def test_closed_store_rejects_appends(self, tmp_path):
        store = ResultStore(str(tmp_path / "closed.store"))
        store.close()
        store.close()  # idempotent
        with pytest.raises(StoreError, match="closed"):
            store.append("ns", (1,), (1.0,))

    def test_digest_is_content_sensitive_and_stable(self):
        a = np.arange(6, dtype=np.float64)
        assert digest("x", a) == digest("x", a.copy())
        assert digest("x", a) != digest("x", a + 1)
        assert digest("x", a) != digest("x", a.astype(np.float32))
        assert digest("x", a) != digest("x", a.reshape(2, 3))
        assert digest(0.1) != digest(0.2)


# ---------------------------------------------------------------------------
# Fault injection
# ---------------------------------------------------------------------------


class TestFaultInjection:
    @pytest.mark.parametrize("cut", [1, 2, 3, 5, 7, 30])
    def test_truncated_tail_record_drops_only_the_tail(self, tmp_path, cut):
        path = str(tmp_path / "trunc.store")
        rows = _fill(path, n=3)
        size = os.path.getsize(path)
        os.truncate(path, size - cut)
        with ResultStore(path) as store:
            # The torn last record is gone; the first two are intact.
            assert store.loaded_records == 2
            assert store.recovered_bytes > 0
            for key, values in rows[:2]:
                assert store.get("ns", key) == values
            assert store.get("ns", rows[2][0]) is None
            # The truncated log extends cleanly.
            store.append("ns", rows[2][0], rows[2][1])
        with ResultStore(path) as again:
            assert again.recovered_bytes == 0
            assert again.get("ns", rows[2][0]) == rows[2][1]

    def test_flipped_byte_in_last_record_fails_checksum(self, tmp_path):
        path = str(tmp_path / "flip.store")
        rows = _fill(path, n=3)
        blob_len = len(_record_blob("ns", rows[2][0], rows[2][1]))
        size = os.path.getsize(path)
        with open(path, "r+b") as handle:  # flip one payload byte
            handle.seek(size - blob_len + _U32.size + 4)
            byte = handle.read(1)
            handle.seek(-1, os.SEEK_CUR)
            handle.write(bytes([byte[0] ^ 0xFF]))
        with ResultStore(path) as store:
            assert store.loaded_records == 2
            assert store.recovered_bytes == blob_len
            for key, values in rows[:2]:
                assert store.get("ns", key) == values

    def test_flipped_byte_mid_log_never_serves_corrupt_data(self, tmp_path):
        path = str(tmp_path / "mid.store")
        rows = _fill(path, n=3)
        blob_len = len(_record_blob("ns", rows[0][0], rows[0][1]))
        with open(path, "r+b") as handle:  # corrupt record #2's payload
            handle.seek(len(MAGIC) + blob_len + _U32.size + 4)
            byte = handle.read(1)
            handle.seek(-1, os.SEEK_CUR)
            handle.write(bytes([byte[0] ^ 0xFF]))
        with ResultStore(path) as store:
            # Prefix discipline: everything from the corrupt record on is
            # the "tail"; record #1 survives, nothing corrupt is served.
            assert store.loaded_records == 1
            assert store.get("ns", rows[0][0]) == rows[0][1]
            assert store.get("ns", rows[1][0]) is None
            assert store.get("ns", rows[2][0]) is None

    def test_checksum_valid_garbage_payload_ends_the_scan(self, tmp_path):
        path = str(tmp_path / "garbage.store")
        rows = _fill(path, n=1)
        payload = b"not a json object"
        with open(path, "ab") as handle:
            handle.write(
                _U32.pack(len(payload)) + payload + _U32.pack(zlib.crc32(payload))
            )
        with ResultStore(path) as store:
            assert store.loaded_records == 1
            assert store.get("ns", rows[0][0]) == rows[0][1]

    def test_oversized_length_prefix_is_a_torn_tail(self, tmp_path):
        path = str(tmp_path / "length.store")
        rows = _fill(path, n=1)
        with open(path, "ab") as handle:
            handle.write(_U32.pack(0xFFFFFFFF) + b"xx")
        with ResultStore(path) as store:
            assert store.loaded_records == 1
            assert store.get("ns", rows[0][0]) == rows[0][1]

    def test_bad_magic_is_refused(self, tmp_path):
        path = str(tmp_path / "magic.store")
        with open(path, "wb") as handle:
            handle.write(b"NOT-A-STORE!\n" + b"x" * 32)
        with pytest.raises(StoreError, match="bad magic"):
            ResultStore(path)

    def test_empty_file_readonly_is_refused_but_writer_initialises(self, tmp_path):
        path = str(tmp_path / "empty.store")
        open(path, "wb").close()
        with pytest.raises(StoreError, match="empty"):
            ResultStore(path, mode="r")
        with ResultStore(path) as store:  # writer writes the header
            assert len(store) == 0
        with ResultStore(path, mode="r") as store:
            assert len(store) == 0

    def test_kill_mid_append_rolls_back_and_recovers(self, tmp_path, monkeypatch):
        path = str(tmp_path / "kill.store")
        rows = _fill(path, n=2)
        store = ResultStore(path)
        real_write = ResultStore._write_bytes

        def torn_write(self, blob):  # the process "dies" half way through
            real_write(self, blob[: len(blob) // 2])
            raise OSError("killed mid-append")

        monkeypatch.setattr(ResultStore, "_write_bytes", torn_write)
        key = tuple(random_sequence(np.random.default_rng(9)))
        with pytest.raises(OSError, match="killed"):
            store.append("ns", key, (1.25,))
        monkeypatch.setattr(ResultStore, "_write_bytes", real_write)
        # The failed append was rolled back: not in the index, and the
        # on-disk log is clean — the next append extends it normally.
        assert store.get("ns", key) is None
        store.append("ns", key, (1.25,))
        store.close()
        with ResultStore(path) as again:
            assert again.recovered_bytes == 0
            assert again.get("ns", key) == (1.25,)
            for k, v in rows:
                assert again.get("ns", k) == v

    def test_kill_mid_append_without_rollback_breaks_the_writer(
        self, tmp_path, monkeypatch
    ):
        path = str(tmp_path / "broken.store")
        rows = _fill(path, n=1)
        store = ResultStore(path)

        def torn_write(self, blob):
            raise OSError("killed mid-append")

        monkeypatch.setattr(ResultStore, "_write_bytes", torn_write)
        monkeypatch.setattr(
            os, "ftruncate", lambda *a: (_ for _ in ()).throw(OSError("no"))
        )
        with pytest.raises(OSError, match="killed"):
            store.append("ns", (1, 2), (3.0,))
        monkeypatch.undo()
        # Rollback failed -> the writer refuses to write after a possibly
        # torn record, but reads keep working.
        with pytest.raises(StoreError, match="broken"):
            store.append("ns", (1, 2), (3.0,))
        assert store.get("ns", rows[0][0]) == rows[0][1]
        store.close()
        with ResultStore(path) as again:  # reopening recovers
            again.append("ns", (1, 2), (3.0,))
            assert again.get("ns", rows[0][0]) == rows[0][1]


# ---------------------------------------------------------------------------
# Concurrency: single-writer locking, thread-safe appends
# ---------------------------------------------------------------------------


def _open_writer_in_child(path: str, queue) -> None:
    """Spawn target: report whether a second writer open is refused."""
    import repro.store as store_mod

    try:
        with store_mod.ResultStore(path) as store:
            queue.put(("opened", len(store)))
    except store_mod.StoreLockedError:
        queue.put(("locked", None))
    except Exception as exc:  # pragma: no cover - diagnostic path
        queue.put(("error", repr(exc)))


class TestConcurrency:
    def test_second_writer_same_process_is_locked_out(self, tmp_path):
        path = str(tmp_path / "lock.store")
        with ResultStore(path):
            with pytest.raises(StoreLockedError):
                ResultStore(path)
        with ResultStore(path):  # lock released on close
            pass

    def test_second_writer_thread_is_locked_out(self, tmp_path):
        path = str(tmp_path / "lockthread.store")
        outcome: dict = {}

        def try_open():
            try:
                ResultStore(path).close()
                outcome["result"] = "opened"
            except StoreLockedError:
                outcome["result"] = "locked"

        with ResultStore(path):
            thread = threading.Thread(target=try_open)
            thread.start()
            thread.join(30)
        assert outcome["result"] == "locked"

    def test_second_writer_process_is_locked_out(self, tmp_path):
        path = str(tmp_path / "lockproc.store")
        _fill(path, n=1)
        ctx = multiprocessing.get_context("spawn")
        queue = ctx.Queue()
        with ResultStore(path):
            child = ctx.Process(target=_open_writer_in_child, args=(path, queue))
            child.start()
            outcome = queue.get(timeout=60)
            child.join(60)
        assert outcome == ("locked", None)
        # With the parent's writer closed, the child's open succeeds.
        child = ctx.Process(target=_open_writer_in_child, args=(path, queue))
        child.start()
        outcome = queue.get(timeout=60)
        child.join(60)
        assert outcome == ("opened", 1)

    def test_reader_is_not_locked_out(self, tmp_path):
        path = str(tmp_path / "reader.store")
        rows = _fill(path, n=2)
        with ResultStore(path) as writer:
            with ResultStore(path, mode="r") as reader:
                assert reader.get("ns", rows[0][0]) == rows[0][1]
            writer.append("ns2", (1,), (2.0,))

    def test_concurrent_appends_on_one_instance_are_all_durable(self, tmp_path):
        path = str(tmp_path / "threads.store")
        per_thread = 100
        with ResultStore(path) as store:
            def append_range(base: int) -> None:
                for i in range(per_thread):
                    store.append("t", (base, i), (float(base), float(i)))

            threads = [
                threading.Thread(target=append_range, args=(base,))
                for base in range(2)
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join(60)
            assert store.appends == 2 * per_thread
        with ResultStore(path, mode="r") as again:
            assert again.loaded_records == 2 * per_thread
            for base in range(2):
                for i in range(per_thread):
                    assert again.get("t", (base, i)) == (float(base), float(i))


# ---------------------------------------------------------------------------
# Tier-2 integration: evaluator warm start, byte-identical store-off mode
# ---------------------------------------------------------------------------


def _token_batch(n: int, seed: int = 77) -> list[tuple]:
    rng = np.random.default_rng(seed)
    return [tuple(random_sequence(rng)) for _ in range(n)]


class TestEvaluatorTier:
    def test_warm_restart_is_bit_identical_with_zero_misses(
        self, tmp_path, smoke_context
    ):
        from repro.search.evaluator import BatchEvaluator

        path = str(tmp_path / "tier.store")
        fast = smoke_context.fast_evaluator
        seqs = _token_batch(20)

        cold_eval = BatchEvaluator(fast)
        with ResultStore(path) as store:
            cold_eval.attach_store(store)
            cold = cold_eval.evaluate_tokens(seqs)
            assert cold_eval.store_hits == 0
            assert cold_eval.store_misses == len(seqs)
            assert store.appends == len(seqs)

        warm_eval = BatchEvaluator(fast)  # a "restarted" evaluator: cold LRU
        with ResultStore(path) as store:
            warm_eval.attach_store(store)
            warm = warm_eval.evaluate_tokens(seqs)
        assert warm_eval.store_misses == 0
        assert warm_eval.store_hits == len(seqs)
        assert warm_eval.store_hit_rate >= 0.9  # the acceptance bar (== 1.0)
        for c, w in zip(cold, warm):
            assert repr(c.accuracy) == repr(w.accuracy)
            assert repr(c.latency_ms) == repr(w.latency_ms)
            assert repr(c.energy_mj) == repr(w.energy_mj)

    def test_store_off_mode_is_byte_identical(self, smoke_context):
        from repro.search.evaluator import BatchEvaluator

        fast = smoke_context.fast_evaluator
        seqs = _token_batch(12, seed=5)
        plain = BatchEvaluator(fast)
        results = plain.evaluate_tokens(seqs + seqs[:4])
        assert plain.store is None
        assert plain.store_hits == 0 and plain.store_misses == 0
        assert plain.store_hit_rate == 0.0
        # LRU counters keep their documented store-less semantics.
        assert plain.misses == len(seqs) and plain.hits == 4

        other = BatchEvaluator(fast)
        again = other.evaluate_tokens(seqs + seqs[:4])
        assert [r.accuracy for r in results] == [r.accuracy for r in again]

    def test_off_grid_points_bypass_the_store(self, tmp_path, smoke_context):
        from repro.accel.config import AcceleratorConfig
        from repro.nas.encoding import CoDesignPoint, decode
        from repro.search.evaluator import BatchEvaluator

        fast = smoke_context.fast_evaluator
        on_grid = decode(list(_token_batch(1, seed=3)[0]), name="ongrid")
        off_grid = CoDesignPoint(
            genotype=on_grid.genotype,
            # A valid config that is NOT on the Table 1 choice grids.
            config=AcceleratorConfig(
                pe_rows=5, pe_cols=7, gbuf_kb=100, rbuf_bytes=100, dataflow="OS"
            ),
        )
        evaluator = BatchEvaluator(fast)
        with ResultStore(str(tmp_path / "offgrid.store")) as store:
            evaluator.attach_store(store)
            evaluator.evaluate_many([on_grid, off_grid])
            # Only the on-grid candidate is store-eligible.
            assert evaluator.store_misses == 1
            assert store.appends == 1

    def test_namespace_scopes_results_to_the_producer(self, tmp_path, smoke_context):
        from repro.search.evaluator import BatchEvaluator

        fast = smoke_context.fast_evaluator
        seqs = _token_batch(4, seed=11)
        with ResultStore(str(tmp_path / "ns.store")) as store:
            first = BatchEvaluator(fast)
            first.attach_store(store, namespace="eval:producer-a")
            first.evaluate_tokens(seqs)
            # A different producing context must not see those records.
            second = BatchEvaluator(fast)
            second.attach_store(store, namespace="eval:producer-b")
            second.evaluate_tokens(seqs)
            assert second.store_hits == 0
            assert second.store_misses == len(seqs)


class TestSampleAndTrainingTier:
    def test_collect_samples_warm_start_is_bit_identical(self, tmp_path):
        from repro.predict.dataset import collect_samples

        path = str(tmp_path / "samples.store")
        with ResultStore(path) as store:
            cold = collect_samples(
                12, seed=4, num_cells=2, stem_channels=4, image_size=8, store=store
            )
            assert store.appends == 12
        with ResultStore(path) as store:
            warm = collect_samples(
                12, seed=4, num_cells=2, stem_channels=4, image_size=8, store=store
            )
            assert store.appends == 0  # nothing simulated
            assert store.hits == 12
        off = collect_samples(12, seed=4, num_cells=2, stem_channels=4, image_size=8)
        for dataset in (warm, off):
            assert np.array_equal(cold.latency_ms, dataset.latency_ms)
            assert np.array_equal(cold.energy_mj, dataset.energy_mj)
            assert np.array_equal(cold.x, dataset.x)

    def test_train_accuracy_reuses_persisted_results(self, tmp_path, tiny_dataset):
        from repro.nas.encoding import decode
        from repro.search.evaluator import AccurateEvaluator

        path = str(tmp_path / "train.store")
        point = decode(list(_token_batch(1, seed=21)[0]), name="trainee")

        def make_evaluator():
            return AccurateEvaluator(
                tiny_dataset,
                num_cells=2,
                stem_channels=4,
                train_epochs=1,
                batch_size=16,
                seed=3,
            )

        first = make_evaluator()
        with ResultStore(path) as store:
            first.attach_store(store)
            cold = first.train_accuracy(point)
            assert (first.store_hits, first.store_misses) == (0, 1)
            other_seed = first.train_accuracy(point, seed=9)  # new key
            assert first.store_misses == 2

        second = make_evaluator()
        with ResultStore(path) as store:
            second.attach_store(store)
            assert repr(second.train_accuracy(point)) == repr(cold)
            assert repr(second.train_accuracy(point, seed=9)) == repr(other_seed)
            assert (second.store_hits, second.store_misses) == (2, 0)
            assert store.appends == 0

    def test_pool_path_partitions_hits_in_the_parent(self, tmp_path, tiny_dataset):
        """A warm store means the pool never sees a job at all."""
        from repro.nas.encoding import decode
        from repro.parallel.training import train_accuracies
        from repro.search.evaluator import AccurateEvaluator

        path = str(tmp_path / "pool.store")
        points = [
            decode(list(key), name=f"pool{i}")
            for i, key in enumerate(_token_batch(3, seed=31))
        ]
        accurate = AccurateEvaluator(
            tiny_dataset, num_cells=2, stem_channels=4, train_epochs=1,
            batch_size=16, seed=0,
        )

        class RecordingPool:
            def __init__(self):
                self.jobs_seen = []

            def run_jobs(self, jobs):
                self.jobs_seen.append(len(jobs))
                return [
                    accurate.__class__.train_accuracy(accurate, job.point, job.seed)
                    for job in jobs
                ]

        with ResultStore(path) as store:
            accurate.attach_store(store)
            namespace = accurate.store_namespace

            class WorkerPool(RecordingPool):
                # RecordingPool routes through train_accuracy on the SAME
                # evaluator, which would itself consult the store; detach
                # during the call to model a store-less worker replica.
                def run_jobs(self, jobs):
                    accurate.detach_store()
                    try:
                        return super().run_jobs(jobs)
                    finally:
                        accurate.attach_store(store, namespace=namespace)

            pool = WorkerPool()
            cold = train_accuracies(accurate, points, pool=pool)
            assert pool.jobs_seen == [3]
            assert store.appends == 3

            warm_pool = WorkerPool()
            warm = train_accuracies(accurate, points, pool=warm_pool)
            assert warm_pool.jobs_seen == []  # fully warm: no dispatch
            assert [repr(a) for a in warm] == [repr(a) for a in cold]

    def test_evaluator_pickles_without_the_store(self, tmp_path, tiny_dataset):
        import pickle

        from repro.search.evaluator import AccurateEvaluator

        accurate = AccurateEvaluator(tiny_dataset, num_cells=2, stem_channels=4)
        with ResultStore(str(tmp_path / "pickle.store")) as store:
            accurate.attach_store(store)
            replica = pickle.loads(pickle.dumps(accurate))
        assert replica.store is None
        assert replica.store_namespace is None
        assert accurate.store is store  # the parent keeps its attachment


# ---------------------------------------------------------------------------
# Service restart warm start
# ---------------------------------------------------------------------------


class TestServiceWarmStart:
    def test_restarted_service_serves_bit_identical_results(
        self, tmp_path, smoke_context
    ):
        from repro.nas.encoding import decode
        from repro.search.evaluator import BatchEvaluator
        from repro.service import RemoteEvaluator, start_service

        path = str(tmp_path / "service.store")
        fast = smoke_context.fast_evaluator
        points = [
            decode(list(key), name=f"svc{i}")
            for i, key in enumerate(_token_batch(16, seed=41))
        ]

        first = BatchEvaluator(fast)
        with start_service(first, store_path=path, tick_s=0.001) as handle:
            host, port = handle.address
            with RemoteEvaluator(f"{host}:{port}") as remote:
                cold = remote.evaluate_many(points)
                stats = remote.service_stats()
        assert first.store_misses == len(points)
        assert stats["store"]["appends"] == len(points)
        assert first.store.closed  # drain closed the owned store

        second = BatchEvaluator(fast)  # restart: fresh process-like state
        with start_service(second, store_path=path, tick_s=0.001) as handle:
            host, port = handle.address
            with RemoteEvaluator(f"{host}:{port}") as remote:
                warm = remote.evaluate_many(points)
                stats = remote.service_stats()
        assert second.store_misses == 0  # zero evaluator misses on restart
        assert second.store_hits == len(points)
        assert stats["evaluator"]["store_hit_rate"] >= 0.9
        assert stats["store"]["loaded_records"] == len(points)
        for c, w in zip(cold, warm):
            assert repr(c.accuracy) == repr(w.accuracy)
            assert repr(c.latency_ms) == repr(w.latency_ms)
            assert repr(c.energy_mj) == repr(w.energy_mj)

    def test_service_with_shared_store_syncs_but_does_not_close(
        self, tmp_path, smoke_context
    ):
        from repro.search.evaluator import BatchEvaluator
        from repro.service import start_service

        path = str(tmp_path / "shared.store")
        fast = smoke_context.fast_evaluator
        with ResultStore(path) as store:
            evaluator = BatchEvaluator(fast)
            with start_service(evaluator, store=store) as handle:
                handle.shutdown()
            assert not store.closed  # caller keeps the lifecycle
            assert evaluator.store is store  # attached by the service
