"""Tests for the observability layer (``repro.obs``).

Three tiers:

* unit tests for the metrics registry (bucket determinism, snapshot
  purity, merge semantics, the kill switch) and the tracer (null-span
  contract, parent nesting, ring bound, JSONL sink) on *fresh* instances,
  so nothing here depends on — or pollutes — the process-wide defaults;
* subsystem probes: live scheduler queue depth in synchronous mode, pool
  crash accounting surfaced through :class:`ParallelEvaluator`;
* service integration: the stats verb's registry snapshot stays monotone
  under 8 concurrent clients with histogram counts matching request
  counts, and a traced request round-trips one trace id from the client
  span through the wire to the scheduler's spans.

The process-wide registry is shared across the whole test session, so the
integration tests assert on *deltas* between snapshots, never absolutes.
"""

from __future__ import annotations

import json
import os
import signal
import threading
import time

import numpy as np
import pytest

from repro.accel.config import random_config
from repro.nas.encoding import CoDesignPoint
from repro.nas.space import DnnSpace
from repro.obs import (
    COUNT_BUCKETS,
    LATENCY_BUCKETS_S,
    NULL_SPAN,
    MetricsRegistry,
    Tracer,
    configure_tracing,
    cpu_budget,
    current_context,
    get_registry,
    get_tracer,
    histogram_quantile,
    host_info,
    merge_snapshots,
    render_metrics,
    render_stats,
)
from repro.parallel import MicroBatchScheduler, ParallelEvaluator
from repro.search.evaluator import BatchEvaluator
from repro.service import ServiceClient, start_service
from repro.store import ResultStore


def _population(n: int, seed: int) -> list[CoDesignPoint]:
    rng = np.random.default_rng(seed)
    space = DnnSpace()
    return [
        CoDesignPoint(genotype=space.sample(rng), config=random_config(rng))
        for _ in range(n)
    ]


# ---------------------------------------------------------------------------
# Metrics registry
# ---------------------------------------------------------------------------


class TestMetricsRegistry:
    def test_counter_gauge_histogram_basics(self):
        registry = MetricsRegistry()
        c = registry.counter("sub.events")
        c.inc()
        c.inc(4)
        assert c.value == 5

        g = registry.gauge("sub.level")
        g.set(2)
        g.set(7.5)
        assert g.value == 7.5

        h = registry.histogram("sub.latency_s")
        for v in (2e-6, 3e-4, 0.05):
            h.observe(v)
        snap = h.snapshot()
        assert snap["count"] == 3
        assert snap["sum"] == pytest.approx(2e-6 + 3e-4 + 0.05)
        assert snap["min"] == 2e-6
        assert snap["max"] == 0.05
        assert sum(n for _, n in snap["buckets"]) == 3

    def test_get_or_create_shares_objects_and_rejects_kind_clash(self):
        registry = MetricsRegistry()
        assert registry.counter("a.b") is registry.counter("a.b")
        with pytest.raises(TypeError):
            registry.gauge("a.b")
        with pytest.raises(TypeError):
            registry.histogram("a.b")

    def test_bucket_ladders_are_fixed_and_deterministic(self):
        # Three per decade, 1 us .. 100 s: deterministic *values*, not
        # just shape — built from decimal literals, so a snapshot merged
        # across processes lines up bucket for bucket.
        assert len(LATENCY_BUCKETS_S) == 25
        assert LATENCY_BUCKETS_S[0] == 1e-6
        assert LATENCY_BUCKETS_S[-1] == 100.0
        assert list(LATENCY_BUCKETS_S) == sorted(set(LATENCY_BUCKETS_S))
        assert COUNT_BUCKETS == tuple(float(2**k) for k in range(13))

    def test_histogram_boundary_placement_and_overflow(self):
        registry = MetricsRegistry()
        h = registry.histogram("x.h", buckets=(1.0, 2.0, 4.0))
        h.observe(2.0)  # on-boundary lands in its own bucket (value <= le)
        h.observe(3.0)
        h.observe(99.0)  # beyond the last boundary -> overflow
        snap = h.snapshot()
        assert snap["buckets"] == [[2.0, 1], [4.0, 1]]
        assert snap["overflow"] == 1
        assert snap["count"] == 3
        assert histogram_quantile(snap, 1.0) == 99.0  # overflow -> max

    def test_snapshot_is_pure_json(self):
        registry = MetricsRegistry()
        registry.counter("s.c").inc(3)
        registry.gauge("s.g").set(1.25)
        registry.histogram("s.h").observe(0.01)
        snap = registry.snapshot()
        assert json.loads(json.dumps(snap, sort_keys=True)) == snap
        # Empty histograms report null min/max, never +-inf (not JSON).
        registry.histogram("s.empty")
        empty = registry.snapshot()["histograms"]["s.empty"]
        assert empty["min"] is None and empty["max"] is None

    def test_merge_snapshots_adds_counts_bucketwise(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.counter("m.c").inc(2)
        b.counter("m.c").inc(5)
        b.counter("m.only_b").inc(1)
        a.gauge("m.g").set(1.0)
        b.gauge("m.g").set(9.0)
        for v in (0.001, 0.5):
            a.histogram("m.h").observe(v)
        b.histogram("m.h").observe(0.001)

        merged = merge_snapshots(a.snapshot(), b.snapshot())
        assert merged["counters"] == {"m.c": 7, "m.only_b": 1}
        assert merged["gauges"]["m.g"] == 9.0  # point-in-time: last wins
        hist = merged["histograms"]["m.h"]
        assert hist["count"] == 3
        assert hist["min"] == 0.001 and hist["max"] == 0.5
        assert sum(n for _, n in hist["buckets"]) == 3
        # Associative: merging the merged form again just re-adds.
        again = merge_snapshots(merged, a.snapshot())
        assert again["counters"]["m.c"] == 9

    def test_histogram_quantile(self):
        registry = MetricsRegistry()
        h = registry.histogram("q.h", buckets=(1.0, 2.0, 4.0))
        assert histogram_quantile(h.snapshot(), 0.5) is None  # empty
        for v in (0.5, 0.6, 0.7, 3.0):
            h.observe(v)
        snap = h.snapshot()
        assert histogram_quantile(snap, 0.5) == 1.0
        assert histogram_quantile(snap, 1.0) == 4.0
        with pytest.raises(ValueError):
            histogram_quantile(snap, 1.5)

    def test_kill_switch_freezes_all_metrics(self):
        registry = MetricsRegistry()
        c, g = registry.counter("k.c"), registry.gauge("k.g")
        h = registry.histogram("k.h")
        c.inc()
        g.set(3.0)
        h.observe(0.1)
        registry.set_enabled(False)
        assert not registry.enabled
        c.inc(100)
        g.set(99.0)
        h.observe(5.0)
        assert c.value == 1 and g.value == 3.0 and h.count == 1
        registry.set_enabled(True)
        c.inc()
        assert c.value == 2

    def test_reset_zeroes_in_place_so_handles_stay_valid(self):
        registry = MetricsRegistry()
        c = registry.counter("r.c")
        h = registry.histogram("r.h")
        c.inc(5)
        h.observe(1.0)
        registry.reset()
        assert c.value == 0 and h.count == 0
        c.inc()  # the pre-reset handle still feeds the registry
        assert registry.snapshot()["counters"]["r.c"] == 1

    def test_host_info_helper(self):
        cpus = cpu_budget()
        assert cpus >= 1
        info = host_info(1)
        assert info == {"cpu_count": cpus, "degraded_host": False}
        assert host_info(cpus + 1)["degraded_host"] is True

    def test_render_metrics_is_total(self):
        registry = MetricsRegistry()
        registry.counter("svc.requests").inc(3)
        registry.gauge("svc.active").set(1)
        registry.histogram("svc.latency_s.evaluate").observe(0.002)
        text = render_metrics(registry.snapshot())
        assert "svc.requests" in text and "svc.latency_s.evaluate" in text


# ---------------------------------------------------------------------------
# Tracer
# ---------------------------------------------------------------------------


class TestTracer:
    def test_disabled_tracer_hands_out_the_null_span(self):
        tracer = Tracer()
        span = tracer.span("anything", points=3)
        assert span is NULL_SPAN
        assert span.trace_id is None
        with span as s:  # the null span is a working no-op context manager
            s.set(ignored=True)
        tracer.record("x", "tid", None, 0.0, 0.1)  # no-op while disabled
        tracer.ingest([{"name": "y"}])
        assert tracer.spans() == []

    def test_nested_spans_share_the_trace_and_link_parents(self):
        tracer = Tracer()
        tracer.configure(enabled=True)
        assert current_context() is None
        with tracer.span("outer") as outer:
            assert current_context() == (outer.trace_id, outer.span_id)
            with tracer.span("inner") as inner:
                assert inner.trace_id == outer.trace_id
                assert inner.parent_id == outer.span_id
        assert current_context() is None
        names = [s["name"] for s in tracer.spans()]
        assert names == ["inner", "outer"]  # finish order

    def test_explicit_ids_beat_ambient_context(self):
        tracer = Tracer()
        tracer.configure(enabled=True)
        with tracer.span("ambient"):
            span = tracer.span("wired", trace_id="t" * 32, parent_id="p" * 16)
            with span:
                pass
        wired = next(s for s in tracer.spans() if s["name"] == "wired")
        assert wired["trace"] == "t" * 32
        assert wired["parent"] == "p" * 16

    def test_ring_buffer_is_bounded(self):
        tracer = Tracer(ring_size=4)
        tracer.configure(enabled=True)
        for i in range(10):
            with tracer.span(f"s{i}"):
                pass
        names = [s["name"] for s in tracer.spans()]
        assert names == ["s6", "s7", "s8", "s9"]

    def test_record_and_ingest_feed_the_ring(self):
        tracer = Tracer()
        tracer.configure(enabled=True)
        tracer.record("queue_wait", "t" * 32, "p" * 16, 123.0, 0.004, points=7)
        tracer.ingest([{"name": "pool.shard", "trace": "t" * 32}])
        spans = tracer.spans()
        assert [s["name"] for s in spans] == ["queue_wait", "pool.shard"]
        assert spans[0]["duration_s"] == 0.004
        assert spans[0]["attrs"] == {"points": 7}
        # Untraced work never records pre-measured spans.
        tracer.record("queue_wait", None, None, 0.0, 0.1)
        assert len(tracer.spans()) == 2

    def test_record_ago_anchors_a_span_ending_now(self):
        tracer = Tracer()
        tracer.configure(enabled=True)
        # yoso-lint: disable=determinism-wallclock -- bounding the wall anchor obs emits
        before = time.time()
        tracer.record_ago("queue_wait", "t" * 32, "p" * 16, 0.25, points=3)
        after = time.time()  # yoso-lint: disable=determinism-wallclock -- same bound
        (span,) = tracer.spans()
        assert span["duration_s"] == 0.25
        # start + duration == "now": the wall anchor is supplied by obs,
        # so callers never read the clock themselves.
        assert before - 0.25 <= span["start_s"] <= after - 0.25
        assert span["attrs"] == {"points": 3}
        # Disabled tracer / untraced request: no-op.
        tracer.record_ago("queue_wait", None, None, 0.1)
        assert len(tracer.spans()) == 1
        tracer.configure(enabled=False)
        tracer.record_ago("queue_wait", "t" * 32, None, 0.1)
        assert len(tracer.spans()) == 1

    def test_worker_span_measures_fn_and_builds_the_dict(self):
        from repro.obs.tracing import worker_span

        # yoso-lint: disable=determinism-wallclock -- bounding the wall anchor obs emits
        before = time.time()
        result, span = worker_span(
            "pool.shard", "t" * 32, "p" * 16,
            lambda: sum(range(10)), items=4, pid=123,
        )
        after = time.time()  # yoso-lint: disable=determinism-wallclock -- same bound
        assert result == 45
        assert span["name"] == "pool.shard"
        assert span["trace"] == "t" * 32
        assert span["parent"] == "p" * 16
        assert before <= span["start_s"] <= after
        assert 0.0 <= span["duration_s"] <= after - before + 0.1
        assert span["attrs"] == {"items": 4, "pid": 123}
        # The dict form ingests cleanly (the cross-process harvest path).
        tracer = Tracer()
        tracer.configure(enabled=True)
        tracer.ingest([span])
        assert tracer.spans() == [span]

    def test_jsonl_sink_writes_one_line_per_span(self, tmp_path):
        sink = tmp_path / "trace.jsonl"
        tracer = Tracer()
        tracer.configure(enabled=True, sink_path=str(sink))
        with tracer.span("a", points=1):
            with tracer.span("b"):
                pass
        tracer.close()
        lines = sink.read_text().splitlines()
        assert len(lines) == 2
        parsed = [json.loads(line) for line in lines]
        assert [p["name"] for p in parsed] == ["b", "a"]
        assert parsed[0]["trace"] == parsed[1]["trace"]
        assert parsed[0]["parent"] == parsed[1]["span"]

    def test_exception_marks_the_span_and_propagates(self):
        tracer = Tracer()
        tracer.configure(enabled=True)
        with pytest.raises(RuntimeError):
            with tracer.span("boom"):
                raise RuntimeError("x")
        (span,) = tracer.spans()
        assert span["attrs"]["error"] == "RuntimeError"
        assert current_context() is None  # context restored on the way out


# ---------------------------------------------------------------------------
# Subsystem probes
# ---------------------------------------------------------------------------


class _EchoEvaluator:
    def evaluate_many(self, points):
        return [None] * len(points)


class TestSchedulerDepth:
    def test_queue_depth_and_queued_points_in_sync_mode(self):
        scheduler = MicroBatchScheduler(_EchoEvaluator(), auto_start=False)
        assert scheduler.queue_depth == 0
        assert scheduler.queued_points == 0
        f1 = scheduler.submit([1, 2, 3])
        f2 = scheduler.submit([4, 5])
        assert scheduler.queue_depth == 2
        assert scheduler.queued_points == 5
        served = scheduler.flush()
        assert served == 2
        assert scheduler.queue_depth == 0
        assert scheduler.queued_points == 0
        assert f1.result(1.0) == [None, None, None]
        assert f2.result(1.0) == [None, None]
        scheduler.close()


class TestPoolCrashAccounting:
    def test_crash_resubmission_is_counted_and_exposed(self, smoke_context):
        # Mirrors test_parallel's crash test, but the assertion under test
        # is the *accounting*: killed worker -> restart + the in-flight
        # shards of the broken dispatch re-run and are counted.
        evaluator = ParallelEvaluator(
            smoke_context.fast_evaluator, workers=2, min_dispatch=2
        )
        try:
            assert evaluator.pool_resubmitted_shards == 0
            warmup = _population(4, seed=141)
            evaluator.evaluate_many(warmup)
            pids = evaluator.pool.worker_pids()
            assert len(pids) == 2
            os.kill(pids[0], signal.SIGKILL)
            fresh = _population(5, seed=143)  # cold keys force a dispatch
            reference = BatchEvaluator(
                smoke_context.fast_evaluator
            ).evaluate_many(fresh)
            assert evaluator.evaluate_many(fresh) == reference
            assert evaluator.pool_restarts >= 1
            assert evaluator.pool_resubmitted_shards >= 1
            assert (
                evaluator.pool.resubmitted_shards
                == evaluator.pool_resubmitted_shards
            )
        finally:
            evaluator.close()


class TestStoreLookupSpan:
    def test_store_lookup_emits_a_nested_span(self, smoke_context, tmp_path):
        tracer = get_tracer()
        configure_tracing(enabled=True)
        try:
            tracer.clear()
            with ResultStore(str(tmp_path / "obs.store")) as store:
                evaluator = BatchEvaluator(smoke_context.fast_evaluator)
                evaluator.attach_store(store)
                evaluator.evaluate_many(_population(3, seed=151))
            spans = tracer.spans()
            by_name = {s["name"]: s for s in spans}
            assert "evaluator.evaluate_many" in by_name
            lookup = by_name["store.lookup"]
            parent = by_name["evaluator.evaluate_many"]
            assert lookup["trace"] == parent["trace"]
            assert lookup["parent"] == parent["span"]
            assert lookup["attrs"]["keys"] == 3
            assert lookup["attrs"]["hits"] == 0  # fresh store: all misses
        finally:
            configure_tracing(enabled=False)
            tracer.clear()


# ---------------------------------------------------------------------------
# Service integration (stats verb v2 + wire tracing)
# ---------------------------------------------------------------------------


class TestServiceObservability:
    def test_stats_v2_snapshot_shape_and_queue_depths(self, smoke_context):
        fast = smoke_context.fast_evaluator
        with start_service(BatchEvaluator(fast)) as handle:
            host, port = handle.address
            with ServiceClient(host, port) as client:
                client.evaluate_many(_population(2, seed=161))
                stats = client.stats()
        assert stats["scheduler"]["queue_depth"] == 0
        assert stats["scheduler"]["queued_points"] == 0
        assert stats["service"]["queued_requests"] == 0
        metrics = stats["metrics"]
        assert set(metrics) == {"counters", "gauges", "histograms"}
        assert metrics["counters"]["service.requests"] >= 2
        assert "service.latency_s.evaluate_many" in metrics["histograms"]
        assert json.loads(json.dumps(stats)) == stats  # wire-safe
        # The human rendering covers every section without raising.
        text = render_stats(stats)
        assert "service.requests" in text

    def test_eight_clients_monotone_snapshot_and_exact_histogram_counts(
        self, smoke_context
    ):
        requests_per_client = 5
        fast = smoke_context.fast_evaluator
        points = _population(6, seed=171)
        results: list = [None] * 8
        failures: list = []
        with start_service(BatchEvaluator(fast), tick_s=0.002) as handle:
            host, port = handle.address
            with ServiceClient(host, port) as c:
                before = c.stats()

            def client(i: int) -> None:
                try:
                    with ServiceClient(host, port) as c:
                        for _ in range(requests_per_client):
                            results[i] = c.evaluate_many(points)
                except BaseException as exc:  # pragma: no cover
                    failures.append(exc)

            threads = [
                threading.Thread(target=client, args=(i,)) for i in range(8)
            ]
            for t in threads:
                t.start()
            for t in threads:
                t.join(120.0)
            assert failures == []
            with ServiceClient(host, port) as c:
                after = c.stats()

        reference = BatchEvaluator(fast).evaluate_many(points)
        assert results == [reference] * 8

        # Counters are lifetime-monotonic: nothing in the later snapshot
        # may have moved backwards.
        for name, value in before["metrics"]["counters"].items():
            assert after["metrics"]["counters"][name] >= value, name

        # The evaluate_many latency histogram counts exactly our traffic:
        # the only evaluate_many ops between the snapshots are these 40.
        total = 8 * requests_per_client
        hist_name = "service.latency_s.evaluate_many"
        count_before = (
            before["metrics"]["histograms"]
            .get(hist_name, {"count": 0})["count"]
        )
        count_after = after["metrics"]["histograms"][hist_name]["count"]
        assert count_after - count_before == total
        delta_requests = (
            after["metrics"]["counters"]["scheduler.requests"]
            - before["metrics"]["counters"]["scheduler.requests"]
        )
        assert delta_requests == total
        delta_points = (
            after["metrics"]["counters"]["scheduler.points_in"]
            - before["metrics"]["counters"]["scheduler.points_in"]
        )
        assert delta_points == total * len(points)

    def test_trace_id_round_trips_client_to_scheduler(self, smoke_context):
        tracer = get_tracer()
        configure_tracing(enabled=True)
        try:
            fast = smoke_context.fast_evaluator
            with start_service(BatchEvaluator(fast)) as handle:
                host, port = handle.address
                with ServiceClient(host, port) as client:
                    tracer.clear()
                    client.evaluate_many(_population(3, seed=181))
                    trace_id = client.last_trace_id
            assert trace_id is not None and len(trace_id) == 32

            spans = [s for s in tracer.spans() if s["trace"] == trace_id]
            by_name = {s["name"]: s for s in spans}
            # One request, one trace id, linked client -> service ->
            # scheduler (queue wait and the coalesced batch).
            for name in (
                "client.evaluate_many",
                "service.evaluate_many",
                "scheduler.queue_wait",
                "scheduler.batch",
            ):
                assert name in by_name, sorted(by_name)
            assert by_name["client.evaluate_many"]["parent"] is None
            assert (
                by_name["service.evaluate_many"]["parent"]
                == by_name["client.evaluate_many"]["span"]
            )
            assert (
                by_name["scheduler.batch"]["parent"]
                == by_name["service.evaluate_many"]["span"]
            )
        finally:
            configure_tracing(enabled=False)
            tracer.clear()

    def test_disabled_tracing_sends_no_trace_field(self, smoke_context):
        assert not get_tracer().enabled
        fast = smoke_context.fast_evaluator
        with start_service(BatchEvaluator(fast)) as handle:
            host, port = handle.address
            with ServiceClient(host, port) as client:
                client.evaluate_many(_population(2, seed=191))
                assert client.last_trace_id is None
