"""Tests for the optional network-on-chip traffic model."""

from __future__ import annotations

import pytest

from repro.accel.config import AcceleratorConfig, Dataflow
from repro.accel.dataflow import spatial_map
from repro.accel.noc import DEFAULT_NOC_MODEL, NocModel
from repro.accel.simulator import SystolicArraySimulator
from repro.accel.workload import LayerWorkload

CONV = LayerWorkload("conv", "conv", 32, 64, 16, 3, 1)
POOL = LayerWorkload("pool", "pool", 32, 32, 16, 3, 1)


def cfg(flow="WS", rows=16, cols=16):
    return AcceleratorConfig(rows, cols, 256, 256, flow)


class TestNocModel:
    def test_mean_hops_all_dataflows(self):
        model = NocModel()
        for flow in Dataflow.ALL:
            hops = model.mean_hops(cfg(flow))
            assert set(hops) == {"ifmap", "weight", "psum"}
            assert all(h >= 0 for h in hops.values())

    def test_bigger_array_more_hops(self):
        model = NocModel()
        small = model.mean_hops(cfg("WS", rows=8, cols=8))
        big = model.mean_hops(cfg("WS", rows=16, cols=32))
        assert big["ifmap"] > small["ifmap"]
        assert big["psum"] > small["psum"]

    def test_layer_energy_positive(self):
        mapping = spatial_map(CONV, cfg("WS"))
        pj = DEFAULT_NOC_MODEL.layer_energy_pj(CONV, cfg("WS"), mapping)
        assert pj > 0

    def test_weightless_layer_skips_weight_traffic(self):
        config = cfg("NLR")
        mapping = spatial_map(POOL, config)
        pj_pool = DEFAULT_NOC_MODEL.layer_energy_pj(POOL, config, mapping)
        assert pj_pool > 0  # still moves ifmaps and psums

    def test_nlr_pays_more_than_os(self):
        """Unicast-everything (NLR) must out-cost output-stationary."""
        pj = {}
        for flow in ("NLR", "OS"):
            config = cfg(flow)
            mapping = spatial_map(CONV, config)
            pj[flow] = DEFAULT_NOC_MODEL.layer_energy_pj(CONV, config, mapping)
        assert pj["NLR"] > pj["OS"]


class TestSimulatorIntegration:
    def test_off_by_default(self):
        sim = SystolicArraySimulator()
        r = sim.simulate_layer(CONV, cfg())
        assert r.breakdown.noc_pj == 0.0

    def test_enabled_adds_energy(self):
        base = SystolicArraySimulator().simulate_layer(CONV, cfg())
        with_noc = SystolicArraySimulator(include_noc=True).simulate_layer(CONV, cfg())
        assert with_noc.breakdown.noc_pj > 0
        assert with_noc.energy_pj > base.energy_pj
        assert with_noc.energy_pj == pytest.approx(
            base.energy_pj + with_noc.breakdown.noc_pj
        )

    def test_network_breakdown_includes_noc(self, genotype):
        sim = SystolicArraySimulator(include_noc=True)
        report = sim.simulate_genotype(genotype, cfg(), num_cells=3,
                                       stem_channels=8, image_size=16)
        assert report.energy_breakdown().noc_pj > 0
        assert "noc" in report.layers[0].breakdown.fractions()

    def test_custom_noc_model(self):
        cheap = SystolicArraySimulator(include_noc=True, noc_model=NocModel(hop_pj=0.01))
        costly = SystolicArraySimulator(include_noc=True, noc_model=NocModel(hop_pj=1.0))
        a = cheap.simulate_layer(CONV, cfg()).breakdown.noc_pj
        b = costly.simulate_layer(CONV, cfg()).breakdown.noc_pj
        assert b == pytest.approx(100 * a)

    def test_big_arrays_penalised_when_enabled(self, genotype):
        """With NoC on, the energy gap between small and big arrays widens."""
        small_cfg = AcceleratorConfig(8, 8, 256, 256, "WS")
        big_cfg = AcceleratorConfig(16, 32, 256, 256, "WS")
        base = SystolicArraySimulator()
        noc = SystolicArraySimulator(include_noc=True)
        kwargs = dict(num_cells=3, stem_channels=8, image_size=16)
        gap_base = (base.simulate_genotype(genotype, big_cfg, **kwargs).energy_mj
                    - base.simulate_genotype(genotype, small_cfg, **kwargs).energy_mj)
        gap_noc = (noc.simulate_genotype(genotype, big_cfg, **kwargs).energy_mj
                   - noc.simulate_genotype(genotype, small_cfg, **kwargs).energy_mj)
        assert gap_noc > gap_base
