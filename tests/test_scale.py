"""Tests for the experiment scale presets."""

from __future__ import annotations

import pytest

from repro.scale import DEMO, PAPER, SMOKE, ExperimentScale, get_scale


class TestPresets:
    def test_lookup(self):
        assert get_scale("paper") is PAPER
        assert get_scale("demo") is DEMO
        assert get_scale("smoke") is SMOKE

    def test_unknown_rejected(self):
        with pytest.raises(ValueError):
            get_scale("galactic")

    def test_paper_matches_published_parameters(self):
        # Sec. IV: CIFAR-10 50000/10000, 300-epoch HyperNet with batch 144,
        # 6 cells, 3600 predictor samples (3000 train), top-10 rescoring,
        # 130 correlation models at 70 epochs.
        assert PAPER.train_size == 50_000
        assert PAPER.test_size == 10_000
        assert PAPER.image_size == 32
        assert PAPER.hypernet_cells == 6
        assert PAPER.hypernet_epochs == 300
        assert PAPER.hypernet_batch == 144
        assert PAPER.predictor_samples == 3600
        assert PAPER.predictor_train == 3000
        assert PAPER.topn == 10
        assert PAPER.correlation_models == 130
        assert PAPER.standalone_epochs == 70

    def test_ordering_paper_largest(self):
        for field in ("train_size", "hypernet_epochs", "search_iterations",
                      "predictor_samples"):
            assert getattr(PAPER, field) >= getattr(DEMO, field) >= getattr(SMOKE, field)

    def test_predictor_split_valid(self):
        for scale in (PAPER, DEMO, SMOKE):
            assert scale.predictor_train < scale.predictor_samples

    def test_invalid_split_rejected(self):
        with pytest.raises(ValueError):
            ExperimentScale(
                name="bad", image_size=8, train_size=10, val_size=5, test_size=5,
                hypernet_cells=3, hypernet_channels=4, hypernet_epochs=1,
                hypernet_batch=8, search_iterations=5, topn=1,
                predictor_samples=10, predictor_train=10,
                correlation_models=2, standalone_epochs=1,
            )

    def test_frozen(self):
        with pytest.raises(Exception):
            DEMO.image_size = 64  # type: ignore[misc]
