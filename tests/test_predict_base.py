"""Tests for the regressor base class and standardiser."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.predict.base import Regressor, Standardizer


class TestStandardizer:
    def test_zero_mean_unit_std(self):
        x = np.random.default_rng(0).normal(5.0, 3.0, size=(100, 4))
        xs = Standardizer().fit_transform(x)
        assert np.allclose(xs.mean(axis=0), 0.0, atol=1e-10)
        assert np.allclose(xs.std(axis=0), 1.0, atol=1e-10)

    def test_constant_feature_passes_through(self):
        x = np.ones((10, 2))
        x[:, 1] = np.arange(10)
        xs = Standardizer().fit_transform(x)
        assert np.allclose(xs[:, 0], 0.0)  # centred, not divided by ~0

    def test_transform_before_fit_raises(self):
        with pytest.raises(RuntimeError):
            Standardizer().transform(np.ones((2, 2)))

    def test_transform_uses_training_stats(self):
        s = Standardizer().fit(np.zeros((5, 1)) + 10.0)
        out = s.transform(np.array([[10.0]]))
        assert np.allclose(out, 0.0)

    @given(st.integers(2, 50))
    @settings(deadline=None, max_examples=20)
    def test_invertible(self, n):
        rng = np.random.default_rng(n)
        x = rng.normal(size=(n, 3)) * rng.uniform(0.5, 4.0, size=3)
        s = Standardizer().fit(x)
        xs = s.transform(x)
        back = xs * s.std + s.mean
        assert np.allclose(back, x, rtol=1e-10)


class _Mean(Regressor):
    """Trivial regressor predicting the (standardised) training mean."""

    name = "mean"

    def _fit(self, x, y):
        self._m = float(y.mean())

    def _predict(self, x):
        return np.full(len(x), self._m)


class TestRegressorBase:
    def test_predict_before_fit_raises(self):
        with pytest.raises(RuntimeError):
            _Mean().predict(np.ones((2, 2)))

    def test_mean_model_recovers_target_mean(self):
        rng = np.random.default_rng(1)
        x = rng.normal(size=(50, 3))
        y = rng.normal(7.0, 2.0, size=50)
        pred = _Mean().fit(x, y).predict(x)
        assert np.allclose(pred, y.mean(), rtol=1e-10)

    def test_length_mismatch_raises(self):
        with pytest.raises(ValueError):
            _Mean().fit(np.ones((3, 2)), np.ones(4))

    def test_too_few_samples_raises(self):
        with pytest.raises(ValueError):
            _Mean().fit(np.ones((1, 2)), np.ones(1))

    def test_target_scaling_roundtrip(self):
        """Targets scaled by 1e6 must come back in original units."""
        rng = np.random.default_rng(2)
        x = rng.normal(size=(30, 2))
        y = rng.normal(size=30) * 1e6
        pred = _Mean().fit(x, y).predict(x)
        assert abs(pred[0] - y.mean()) < 1e-3
