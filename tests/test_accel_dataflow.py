"""Tests for the dataflow spatial-mapping models."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.accel.config import AcceleratorConfig, Dataflow
from repro.accel.dataflow import MappingProfile, fold_utilisation, spatial_map
from repro.accel.workload import LayerWorkload


def cfg(flow, rows=16, cols=16, rbuf=256, gbuf=256):
    return AcceleratorConfig(rows, cols, gbuf, rbuf, flow)


CONV = LayerWorkload("conv", "conv", 32, 64, 16, 3, 1)
DWCONV = LayerWorkload("dw", "dwconv", 32, 32, 16, 3, 1)
POOL = LayerWorkload("pool", "pool", 32, 32, 16, 3, 1)


class TestFoldUtilisation:
    def test_exact_fit(self):
        assert fold_utilisation(16, 16) == 1.0

    def test_multiple_fit(self):
        assert fold_utilisation(32, 16) == 1.0

    def test_partial_fill(self):
        # 20 items on 16 lanes: 2 passes, 20/32 useful.
        assert fold_utilisation(20, 16) == pytest.approx(20 / 32)

    def test_underfill(self):
        assert fold_utilisation(8, 16) == 0.5

    @given(dim=st.integers(1, 300), lanes=st.integers(1, 64))
    @settings(deadline=None)
    def test_bounds(self, dim, lanes):
        u = fold_utilisation(dim, lanes)
        assert 0.0 < u <= 1.0

    @given(lanes=st.integers(1, 64), k=st.integers(1, 8))
    @settings(deadline=None)
    def test_perfect_when_divisible(self, lanes, k):
        assert fold_utilisation(lanes * k, lanes) == 1.0

    def test_invalid(self):
        with pytest.raises(ValueError):
            fold_utilisation(0, 4)


class TestMappingProfile:
    def test_validation(self):
        with pytest.raises(ValueError):
            MappingProfile(0.0, 1, 1, 1)
        with pytest.raises(ValueError):
            MappingProfile(0.5, 0.5, 1, 1)

    @pytest.mark.parametrize("flow", Dataflow.ALL)
    @pytest.mark.parametrize("layer", [CONV, DWCONV, POOL])
    def test_all_flows_all_kinds_valid(self, flow, layer):
        profile = spatial_map(layer, cfg(flow))
        assert 0.0 < profile.utilisation <= 1.0
        assert profile.ifmap_reuse >= 1.0
        assert profile.weight_reuse >= 1.0
        assert profile.psum_reuse >= 1.0


class TestDataflowSemantics:
    def test_nlr_has_no_local_reuse(self):
        p = spatial_map(CONV, cfg(Dataflow.NLR))
        assert p.ifmap_reuse == 1.0
        assert p.weight_reuse == 1.0
        assert p.psum_reuse == 1.0

    def test_ws_weight_reuse_scales_with_output_plane(self):
        small = LayerWorkload("s", "conv", 32, 64, 8, 3, 1)
        large = LayerWorkload("l", "conv", 32, 64, 32, 3, 1)
        p_small = spatial_map(small, cfg(Dataflow.WS))
        p_large = spatial_map(large, cfg(Dataflow.WS))
        assert p_large.weight_reuse > p_small.weight_reuse

    def test_ws_reuse_degrades_with_tiny_rbuf(self):
        big_rbuf = spatial_map(CONV, cfg(Dataflow.WS, rbuf=1024))
        tiny_rbuf = spatial_map(CONV, cfg(Dataflow.WS, rbuf=8))
        assert tiny_rbuf.weight_reuse < big_rbuf.weight_reuse

    def test_os_psum_reuse_is_reduction_depth(self):
        p = spatial_map(CONV, cfg(Dataflow.OS))
        assert p.psum_reuse == pytest.approx(32 * 9)  # C * R * S

    def test_os_utilisation_matches_output_plane(self):
        # 16x16 output on a 16x16 array: perfect fit.
        p = spatial_map(CONV, cfg(Dataflow.OS, rows=16, cols=16))
        assert p.utilisation == 1.0

    def test_os_poor_for_linear(self):
        fc = LayerWorkload("fc", "linear", 256, 10, 1, 1, 1)
        p_os = spatial_map(fc, cfg(Dataflow.OS))
        p_ws = spatial_map(fc, cfg(Dataflow.WS))
        assert p_os.utilisation < p_ws.utilisation

    def test_rs_ifmap_row_reuse(self):
        p = spatial_map(CONV, cfg(Dataflow.RS, rbuf=1024))
        assert p.ifmap_reuse == pytest.approx(3.0)  # R rows

    def test_ws_utilisation_depends_on_channels(self):
        narrow = LayerWorkload("n", "conv", 4, 4, 16, 3, 1)
        wide = LayerWorkload("w", "conv", 32, 32, 16, 3, 1)
        p_narrow = spatial_map(narrow, cfg(Dataflow.WS, rows=16, cols=16))
        p_wide = spatial_map(wide, cfg(Dataflow.WS, rows=16, cols=16))
        assert p_wide.utilisation > p_narrow.utilisation

    def test_depthwise_avoids_k_mapping(self):
        """Depthwise layers must not be starved by their K=C structure."""
        p = spatial_map(DWCONV, cfg(Dataflow.WS))
        assert p.utilisation > 0.5

    def test_different_flows_give_different_profiles(self):
        profiles = {f: spatial_map(CONV, cfg(f)) for f in Dataflow.ALL}
        utils = {round(p.utilisation, 6) for p in profiles.values()}
        reuses = {
            (p.ifmap_reuse, p.weight_reuse, p.psum_reuse) for p in profiles.values()
        }
        assert len(reuses) >= 3  # dataflows are actually distinguishable
