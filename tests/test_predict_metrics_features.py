"""Tests for regression metrics, feature extraction and sample collection."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.accel.config import AcceleratorConfig
from repro.nas.encoding import CoDesignPoint
from repro.predict.dataset import collect_samples
from repro.predict.features import FEATURE_DIM, feature_names, feature_vector
from repro.predict.metrics import mae, mean_relative_error, mse, r2, rmse, spearman


class TestMetrics:
    def test_mse_hand_computed(self):
        assert mse([1.0, 2.0], [1.0, 4.0]) == pytest.approx(2.0)

    def test_rmse_is_sqrt_mse(self):
        y, p = [0.0, 0.0], [3.0, 4.0]
        assert rmse(y, p) == pytest.approx(np.sqrt(mse(y, p)))

    def test_mae(self):
        assert mae([1.0, -1.0], [2.0, 1.0]) == pytest.approx(1.5)

    def test_r2_perfect_and_mean(self):
        y = np.array([1.0, 2.0, 3.0])
        assert r2(y, y) == pytest.approx(1.0)
        assert r2(y, np.full(3, y.mean())) == pytest.approx(0.0)

    def test_r2_negative_for_bad_model(self):
        assert r2([1.0, 2.0, 3.0], [3.0, 2.0, 1.0]) < 0

    def test_spearman_monotone_invariance(self):
        y = np.array([1.0, 5.0, 3.0, 2.0])
        assert spearman(y, np.exp(y)) == pytest.approx(1.0)

    def test_spearman_anticorrelation(self):
        y = np.array([1.0, 2.0, 3.0])
        assert spearman(y, -y) == pytest.approx(-1.0)

    def test_spearman_constant_input(self):
        assert spearman([1.0, 1.0, 1.0], [1.0, 2.0, 3.0]) == 0.0

    def test_mean_relative_error(self):
        assert mean_relative_error([10.0, 100.0], [11.0, 90.0]) == pytest.approx(0.1)

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError):
            mse([1.0], [1.0, 2.0])

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            mse([], [])

    @given(st.lists(st.floats(-1e3, 1e3), min_size=2, max_size=30))
    @settings(deadline=None, max_examples=30)
    def test_mse_nonnegative_and_zero_iff_equal(self, ys):
        y = np.asarray(ys)
        assert mse(y, y) == 0.0
        shifted = y + 1.0
        assert mse(y, shifted) == pytest.approx(1.0)


class TestFeatures:
    def test_dimension_matches_names(self, genotype, hw_config):
        point = CoDesignPoint(genotype=genotype, config=hw_config)
        vec = feature_vector(point)
        assert vec.shape == (FEATURE_DIM,)
        assert len(feature_names()) == FEATURE_DIM

    def test_dataflow_one_hot(self, genotype):
        names = feature_names()
        for flow in ("WS", "OS", "RS", "NLR"):
            cfg = AcceleratorConfig(16, 16, 256, 256, flow)
            vec = feature_vector(CoDesignPoint(genotype=genotype, config=cfg))
            onehot = {
                n.split(".")[1]: vec[i]
                for i, n in enumerate(names)
                if n.startswith("dataflow.")
            }
            assert onehot[flow] == 1.0
            assert sum(onehot.values()) == 1.0

    def test_op_counts_encoded(self, genotype, hw_config):
        vec = feature_vector(CoDesignPoint(genotype=genotype, config=hw_config))
        names = feature_names()
        counts = genotype.normal.op_counts()
        for i, n in enumerate(names):
            op = n.split(".", 1)[1] if n.startswith("normal.") else None
            if op in counts:
                assert vec[i] == counts[op]

    def test_hw_features_respond_to_config(self, genotype):
        small = AcceleratorConfig(8, 8, 108, 64, "WS")
        big = AcceleratorConfig(16, 32, 1024, 1024, "WS")
        v_small = feature_vector(CoDesignPoint(genotype=genotype, config=small))
        v_big = feature_vector(CoDesignPoint(genotype=genotype, config=big))
        assert not np.array_equal(v_small, v_big)

    def test_deterministic(self, genotype, hw_config):
        point = CoDesignPoint(genotype=genotype, config=hw_config)
        assert np.array_equal(feature_vector(point), feature_vector(point))


class TestCollectSamples:
    def test_shapes_and_positivity(self):
        ds = collect_samples(12, seed=0, image_size=8, stem_channels=4, num_cells=3)
        assert ds.x.shape == (12, FEATURE_DIM)
        assert len(ds) == 12
        assert np.all(ds.latency_ms > 0)
        assert np.all(ds.energy_mj > 0)
        assert ds.sim_seconds_per_sample > 0

    def test_deterministic_given_seed(self):
        a = collect_samples(6, seed=3, image_size=8, stem_channels=4, num_cells=3)
        b = collect_samples(6, seed=3, image_size=8, stem_channels=4, num_cells=3)
        assert np.array_equal(a.x, b.x)
        assert np.array_equal(a.energy_mj, b.energy_mj)

    def test_split(self):
        ds = collect_samples(10, seed=1, image_size=8, stem_channels=4, num_cells=3)
        train, test = ds.split(7)
        assert len(train) == 7 and len(test) == 3
        assert np.array_equal(np.concatenate([train.x, test.x]), ds.x)

    def test_split_bounds(self):
        ds = collect_samples(4, seed=2, image_size=8, stem_channels=4, num_cells=3)
        with pytest.raises(ValueError):
            ds.split(0)
        with pytest.raises(ValueError):
            ds.split(4)

    def test_samples_are_diverse(self):
        ds = collect_samples(20, seed=4, image_size=8, stem_channels=4, num_cells=3)
        assert np.std(ds.energy_mj) > 0
        assert np.std(ds.latency_ms) > 0

    def test_invalid_n(self):
        with pytest.raises(ValueError):
            collect_samples(0)
