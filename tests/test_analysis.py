"""Tests for ``repro.analysis`` — the AST-based invariant checker.

Layout mirrors the package: engine/suppression mechanics first, then
one fixture trio per rule (a snippet that fires, one that passes, one
where a suppression silences it), then the bench-schema validator, the
CLI adapter, and finally the self-hosting test asserting the repo's own
``src/ tests/ benchmarks/`` tree lints clean — the same check the CI
``lint`` job blocks on.

Fixture snippets live in string literals on purpose: the suppression
parser is token-based, so markers inside these strings are data to the
linter linting *this* file, not annotations.
"""

from __future__ import annotations

import json
import subprocess
import sys
import textwrap
from pathlib import Path

import pytest

from repro.analysis import (
    ALL_RULES,
    RULE_IDS,
    Finding,
    LintEngine,
    lint_paths,
    lint_source,
    parse_suppressions,
    render_findings_json,
    render_findings_text,
    validate_bench_file,
)
from repro.analysis.benchschema import BENCH_SCHEMAS
from repro.analysis.registry import CLASSIFIED_ERRORS, CLIENT_PATH_MODULES

REPO_ROOT = Path(__file__).resolve().parent.parent


def lint(src: str, path: str = "<memory>", only=None):
    return lint_source(textwrap.dedent(src), path=path, only=only)


def rules_of(findings):
    return sorted({f.rule for f in findings})


# ---------------------------------------------------------------------------
# engine mechanics
# ---------------------------------------------------------------------------


def test_every_rule_id_is_registered():
    assert {r.rule_id for r in ALL_RULES} <= set(RULE_IDS)
    # engine-emitted pseudo-rules are registered too
    assert {"suppression", "parse-error", "bench-schema"} <= set(RULE_IDS)


def test_findings_are_sorted_and_stable():
    src = """
    import time
    import random
    b = time.time()
    a = random.random()
    """
    first = lint(src, path="src/x.py")
    second = lint(src, path="src/x.py")
    assert first == second
    assert [f.line for f in first] == sorted(f.line for f in first)
    assert rules_of(first) == ["determinism-rng", "determinism-wallclock"]


def test_parse_error_is_a_finding_not_a_crash():
    findings = lint("def broken(:\n")
    assert rules_of(findings) == ["parse-error"]
    assert findings[0].line == 1


def test_unknown_rule_filter_raises():
    with pytest.raises(ValueError, match="no-such-rule"):
        LintEngine(only={"no-such-rule"})


def test_rule_filter_restricts_findings():
    src = """
    import time
    import random
    t = time.time()
    r = random.random()
    """
    only = lint(src, path="src/x.py", only={"determinism-rng"})
    assert rules_of(only) == ["determinism-rng"]


def test_lint_paths_walks_directories(tmp_path):
    (tmp_path / "pkg").mkdir()
    (tmp_path / "pkg" / "mod.py").write_text(
        "import random\nx = random.random()\n"
    )
    (tmp_path / "pkg" / "__pycache__").mkdir()
    (tmp_path / "pkg" / "__pycache__" / "junk.py").write_text("import random\nrandom.random()\n")
    findings = lint_paths([tmp_path / "pkg"])
    assert len(findings) == 1
    assert findings[0].rule == "determinism-rng"


# ---------------------------------------------------------------------------
# suppression contract
# ---------------------------------------------------------------------------


def test_suppression_silences_same_line():
    src = """
    import random
    x = random.random()  # yoso-lint: disable=determinism-rng -- test fixture
    """
    assert lint(src) == []


def test_standalone_suppression_covers_next_code_line():
    src = """
    import random
    # yoso-lint: disable=determinism-rng -- test fixture
    x = random.random()
    """
    assert lint(src) == []


def test_suppression_only_covers_named_rule():
    src = """
    import random, time
    x = random.random()  # yoso-lint: disable=determinism-wallclock -- wrong rule
    """
    assert rules_of(lint(src, path="src/x.py")) == ["determinism-rng"]


def test_missing_reason_is_a_finding_and_does_not_suppress():
    src = """
    import random
    x = random.random()  # yoso-lint: disable=determinism-rng
    """
    findings = lint(src)
    assert rules_of(findings) == ["determinism-rng", "suppression"]
    assert any("mandatory" in f.message for f in findings)


def test_unknown_rule_id_in_suppression_is_a_finding():
    src = "x = 1  # yoso-lint: disable=not-a-rule -- whatever\n"
    findings = lint(src)
    assert rules_of(findings) == ["suppression"]
    assert "not-a-rule" in findings[0].message


def test_malformed_marker_is_a_finding():
    findings = lint("x = 1  # yoso-lint: enable=stuff\n")
    assert rules_of(findings) == ["suppression"]


def test_multiple_rules_one_comment():
    src = """
    import random, time
    # yoso-lint: disable=determinism-rng,determinism-wallclock -- test fixture
    x = random.random() + time.time()
    """
    assert lint(src, path="src/x.py") == []


def test_marker_inside_string_is_not_a_suppression():
    src = """
    import random
    doc = "# yoso-lint: disable=determinism-rng -- not a comment"
    x = random.random()
    """
    assert rules_of(lint(src)) == ["determinism-rng"]


def test_parse_suppressions_maps_lines():
    sup = parse_suppressions(
        "a = 1  # yoso-lint: disable=wire-float -- reason here\n"
    )
    assert sup.covers("wire-float", 1)
    assert not sup.covers("wire-float", 2)
    assert not sup.covers("lock-discipline", 1)


# ---------------------------------------------------------------------------
# determinism-rng
# ---------------------------------------------------------------------------


def test_rng_rule_fires():
    fired = lint(
        """
        import random
        import numpy as np
        a = random.random()
        b = random.Random()
        c = np.random.default_rng()
        d = np.random.rand(3)
        """
    )
    assert rules_of(fired) == ["determinism-rng"]
    assert len(fired) == 4


def test_rng_rule_passes_on_seeded_idioms():
    assert (
        lint(
            """
            import random
            import numpy as np
            a = random.Random(f"{0}:tag")
            b = np.random.default_rng(7)
            rng = object()
            """
        )
        == []
    )


def test_rng_rule_suppressed():
    src = """
    import random
    b = random.Random()  # yoso-lint: disable=determinism-rng -- test fixture
    """
    assert lint(src) == []


def test_rng_alias_resolution():
    fired = lint(
        """
        from random import shuffle
        import numpy.random as npr
        shuffle([1, 2])
        npr.normal()
        """
    )
    assert len(fired) == 2


# ---------------------------------------------------------------------------
# determinism-wallclock
# ---------------------------------------------------------------------------


def test_wallclock_rule_fires_outside_allowlist():
    fired = lint(
        """
        import time
        from datetime import datetime
        t = time.time()
        d = datetime.now()
        """,
        path="src/repro/search/strategies.py",
    )
    assert rules_of(fired) == ["determinism-wallclock"]
    assert len(fired) == 2


def test_wallclock_rule_passes_in_allowlisted_modules():
    src = """
    import time
    t = time.time()
    """
    for path in (
        "src/repro/obs/tracing.py",
        "src/repro/resilience/policy.py",
        "benchmarks/test_x.py",
    ):
        assert lint(src, path=path) == []


def test_wallclock_rule_passes_on_monotonic_clocks():
    src = """
    import time
    a = time.perf_counter()
    b = time.monotonic()
    """
    assert lint(src, path="src/repro/search/strategies.py") == []


def test_wallclock_rule_suppressed():
    src = """
    import time
    t = time.time()  # yoso-lint: disable=determinism-wallclock -- test fixture
    """
    assert lint(src, path="src/repro/search/strategies.py") == []


# ---------------------------------------------------------------------------
# replica-safety
# ---------------------------------------------------------------------------


def test_replica_rule_fires_without_getstate():
    fired = lint(
        """
        class FastEvaluator:
            def __init__(self):
                self._store = object()
        """
    )
    assert rules_of(fired) == ["replica-safety"]
    assert "no __getstate__" in fired[0].message


def test_replica_rule_fires_when_getstate_misses_an_attr():
    fired = lint(
        """
        class AccurateEvaluator:
            def __init__(self):
                self._store = object()
                self._sock = object()
            def __getstate__(self):
                state = dict(self.__dict__)
                state["_store"] = None
                return state
        """
    )
    assert len(fired) == 1
    assert "_sock" in fired[0].message


def test_replica_rule_passes_with_stripping_getstate():
    assert (
        lint(
            """
            class AccurateEvaluator:
                def __init__(self):
                    self._store = object()
                def __getstate__(self):
                    state = dict(self.__dict__)
                    state["_store"] = None
                    return state
            """
        )
        == []
    )


def test_replica_rule_ignores_none_assignments_and_other_classes():
    assert (
        lint(
            """
            class FastEvaluator:
                def __init__(self):
                    self._store = None
            class NotReplicated:
                def __init__(self):
                    self._sock = object()
            """
        )
        == []
    )


def test_instance_metric_handle_fires_in_any_class():
    fired = lint(
        """
        class Anything:
            def __init__(self, registry):
                self._calls = registry.counter("x.calls")
        """
    )
    assert rules_of(fired) == ["replica-safety"]
    assert "module-level" in fired[0].message


def test_module_level_metric_handle_passes():
    assert (
        lint(
            """
            _M_CALLS = get_registry().counter("x.calls")
            class Anything:
                def __init__(self):
                    self.n = 0
            """
        )
        == []
    )


def test_replica_rule_suppressed():
    # The missing-__getstate__ finding anchors at the class statement,
    # so that is where the annotation goes.
    src = """
    # yoso-lint: disable=replica-safety -- test fixture
    class FastEvaluator:
        def __init__(self):
            self._store = object()
    """
    assert lint(src) == []


# ---------------------------------------------------------------------------
# lock-discipline
# ---------------------------------------------------------------------------


def test_lock_rule_fires_on_blocking_call_under_lock():
    fired = lint(
        """
        import threading, time
        class S:
            def __init__(self):
                self._lock = threading.Lock()
            def bad(self, fut, t):
                with self._lock:
                    time.sleep(0.1)
                    fut.result()
                    t.join()
        """
    )
    assert rules_of(fired) == ["lock-discipline"]
    assert len(fired) == 3


def test_lock_rule_fires_on_lock_reacquire_self_deadlock():
    fired = lint(
        """
        import threading
        class S:
            def __init__(self):
                self._lock = threading.Lock()
            def outer(self):
                with self._lock:
                    self.inner()
            def inner(self):
                with self._lock:
                    pass
        """
    )
    assert any("not reentrant" in f.message for f in fired)


def test_lock_rule_passes_outside_lock_and_on_safe_calls():
    assert (
        lint(
            """
            import threading, time
            class S:
                def __init__(self):
                    self._lock = threading.Lock()
                    self._cond = threading.Condition()
                def fine(self, t, parts):
                    time.sleep(0.1)
                    with self._lock:
                        s = ",".join(parts)   # str.join has an argument
                        t.join(5.0)           # bounded join
                    with self._cond:
                        self._cond.wait()     # releases the lock while waiting
                def deferred(self):
                    with self._lock:
                        fn = lambda: time.sleep(1)  # runs later, not under lock
                    return fn
            """
        )
        == []
    )


def test_lock_rule_fires_on_inconsistent_order():
    fired = lint(
        """
        import threading
        class S:
            def __init__(self):
                self._a = threading.Lock()
                self._b = threading.Lock()
            def one(self):
                with self._a:
                    with self._b:
                        pass
            def two(self):
                with self._b:
                    with self._a:
                        pass
        """
    )
    assert any("nested both ways" in f.message for f in fired)


def test_lock_rule_enforces_registered_scheduler_order():
    fired = lint(
        """
        import threading
        class MicroBatchScheduler:
            def __init__(self):
                self._dispatch = threading.Lock()
                self._cond = threading.Condition()
            def inverted(self):
                with self._cond:
                    with self._dispatch:
                        pass
        """
    )
    assert any("canonical order" in f.message for f in fired)


def test_lock_rule_suppressed():
    src = """
    import threading, time
    class S:
        def __init__(self):
            self._lock = threading.Lock()
        def bad(self):
            with self._lock:
                time.sleep(0.1)  # yoso-lint: disable=lock-discipline -- test fixture
    """
    assert lint(src) == []


# ---------------------------------------------------------------------------
# error-taxonomy
# ---------------------------------------------------------------------------


def test_taxonomy_rule_fires_on_unclassified_raise():
    fired = lint(
        "def f():\n    raise FrobnicationError('x')\n",
        path="src/repro/service/client.py",
    )
    assert rules_of(fired) == ["error-taxonomy"]


def test_taxonomy_rule_passes_on_classified_and_reraise():
    assert (
        lint(
            """
            def f(err):
                try:
                    g()
                except ConnectionError:
                    raise
                raise ValueError("bad endpoint")
                raise err
            """,
            path="src/repro/service/client.py",
        )
        == []
    )


def test_taxonomy_rule_only_applies_to_client_path_modules():
    src = "def f():\n    raise FrobnicationError('x')\n"
    assert lint(src, path="src/repro/search/strategies.py") == []


def test_taxonomy_rule_suppressed():
    src = """
    def f():
        raise FrobnicationError("x")  # yoso-lint: disable=error-taxonomy -- test fixture
    """
    assert lint(src, path="src/repro/service/client.py") == []


def test_registry_taxonomy_matches_live_retry_policy():
    """The lint registry and the runtime RetryPolicy tables must agree."""
    from repro.resilience import RetryPolicy
    from repro.service.client import DEFAULT_RETRY

    for exc_type in RetryPolicy.DEFAULT_RETRYABLE:
        assert CLASSIFIED_ERRORS.get(exc_type.__name__) == "retryable", exc_type
    for exc_type in RetryPolicy.DEFAULT_TERMINAL:
        assert CLASSIFIED_ERRORS.get(exc_type.__name__) == "terminal", exc_type
    for exc_type in DEFAULT_RETRY.retryable:
        assert CLASSIFIED_ERRORS.get(exc_type.__name__) == "retryable", exc_type
    for exc_type in DEFAULT_RETRY.terminal:
        assert CLASSIFIED_ERRORS.get(exc_type.__name__) == "terminal", exc_type


def test_client_path_modules_exist():
    for module in CLIENT_PATH_MODULES:
        assert (REPO_ROOT / module).is_file(), module


# ---------------------------------------------------------------------------
# wire-float
# ---------------------------------------------------------------------------


def test_wire_rule_fires_outside_blessed_helper():
    fired = lint(
        """
        import json
        def rogue(m):
            return json.dumps(m)
        """,
        path="src/repro/service/protocol.py",
    )
    assert rules_of(fired) == ["wire-float"]
    assert "encode_message" in fired[0].message


def test_wire_rule_fires_on_fixed_precision_format():
    fired = lint(
        'def fmt(x):\n    return f"{x:.6f}"\n',
        path="src/repro/store/result_store.py",
    )
    assert rules_of(fired) == ["wire-float"]


def test_wire_rule_passes_in_blessed_helper_and_other_modules():
    blessed = """
    import json
    def encode_message(m):
        return json.dumps(m, separators=(",", ":"))
    """
    assert lint(blessed, path="src/repro/service/protocol.py") == []
    rogue_elsewhere = """
    import json
    def anything(m):
        return json.dumps(m)
    """
    assert lint(rogue_elsewhere, path="src/repro/report/render.py") == []


def test_wire_rule_suppressed():
    src = """
    import json
    def rogue(m):
        return json.dumps(m)  # yoso-lint: disable=wire-float -- test fixture
    """
    assert lint(src, path="src/repro/service/protocol.py") == []


# ---------------------------------------------------------------------------
# bench-schema
# ---------------------------------------------------------------------------


def _write_bench(tmp_path, name, payload):
    p = tmp_path / name
    p.write_text(json.dumps(payload))
    return p


def test_bench_schema_passes_on_minimal_valid_report(tmp_path):
    p = _write_bench(
        tmp_path,
        "BENCH_training.json",
        {
            "benchmark": "training_path",
            "cpu_count": 4,
            "degraded_host": False,
            "kernel": {},
            "shards": {},
        },
    )
    assert validate_bench_file(p) == []


def test_bench_schema_fires_on_missing_and_mistyped_keys(tmp_path):
    p = _write_bench(
        tmp_path,
        "BENCH_training.json",
        {"benchmark": "training_path", "cpu_count": True, "kernel": {}, "shards": {}},
    )
    findings = validate_bench_file(p)
    messages = " | ".join(f.message for f in findings)
    assert "degraded_host" in messages  # missing
    assert "cpu_count" in messages  # bool is not an int here
    assert all(f.rule == "bench-schema" for f in findings)


def test_bench_schema_rejects_unknown_report_and_bad_json(tmp_path):
    unknown = _write_bench(tmp_path, "BENCH_mystery.json", {})
    assert "unknown bench report" in validate_bench_file(unknown)[0].message
    bad = tmp_path / "BENCH_obs.json"
    bad.write_text("{not json")
    assert "not valid JSON" in validate_bench_file(bad)[0].message


def test_checked_in_bench_reports_validate():
    for name in BENCH_SCHEMAS:
        path = REPO_ROOT / name
        assert path.is_file(), name
        assert validate_bench_file(path) == [], name


# ---------------------------------------------------------------------------
# report rendering
# ---------------------------------------------------------------------------


def test_json_report_is_stable_and_schema_versioned():
    findings = [
        Finding("b.py", 2, 0, "wire-float", "later"),
        Finding("a.py", 1, 0, "determinism-rng", "earlier"),
    ]
    payload = json.loads(render_findings_json(findings))
    assert payload["version"] == 1
    assert payload["count"] == 2
    assert [f["path"] for f in payload["findings"]] == ["a.py", "b.py"]
    assert render_findings_json(findings) == render_findings_json(list(reversed(findings)))


def test_text_report_mentions_location_and_rule():
    text = render_findings_text([Finding("a.py", 3, 4, "wire-float", "msg")])
    assert "a.py:3:5: wire-float: msg" in text
    assert render_findings_text([]) == "clean: no findings"


# ---------------------------------------------------------------------------
# CLI
# ---------------------------------------------------------------------------


def _run_cli(*argv, cwd=None):
    return subprocess.run(
        [sys.executable, "-m", "repro.cli", "lint", *argv],
        capture_output=True,
        text=True,
        cwd=cwd or REPO_ROOT,
        env={"PYTHONPATH": str(REPO_ROOT / "src"), "PATH": "/usr/bin:/bin"},
    )


def test_cli_exits_nonzero_on_findings(tmp_path):
    dirty = tmp_path / "dirty.py"
    dirty.write_text("import random\nx = random.random()\n")
    proc = _run_cli(str(dirty))
    assert proc.returncode == 1
    assert "determinism-rng" in proc.stdout


def test_cli_json_output_is_parseable(tmp_path):
    dirty = tmp_path / "dirty.py"
    dirty.write_text("import random\nx = random.random()\n")
    proc = _run_cli("--json", str(dirty))
    assert proc.returncode == 1
    payload = json.loads(proc.stdout)
    assert payload["count"] == 1
    assert payload["findings"][0]["rule"] == "determinism-rng"


def test_cli_rule_filter_and_bad_rule(tmp_path):
    dirty = tmp_path / "dirty.py"
    dirty.write_text("import random\nx = random.random()\n")
    clean = _run_cli("--rule", "wire-float", str(dirty))
    assert clean.returncode == 0
    bad = _run_cli("--rule", "nope", str(dirty))
    assert bad.returncode == 2
    assert "unknown rule" in bad.stderr


# ---------------------------------------------------------------------------
# self-hosting: the repo must lint clean (what the CI lint job blocks on)
# ---------------------------------------------------------------------------


def test_repo_lints_clean():
    paths = [REPO_ROOT / "src", REPO_ROOT / "tests", REPO_ROOT / "benchmarks"]
    paths += sorted(REPO_ROOT.glob("BENCH_*.json"))
    findings = lint_paths(paths)
    rendered = render_findings_text(findings)
    assert findings == [], f"repo must lint clean:\n{rendered}"
