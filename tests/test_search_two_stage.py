"""Tests for the two-stage baseline flow and the published-cell baselines."""

from __future__ import annotations

import numpy as np
import pytest

from repro.accel.config import AcceleratorConfig, enumerate_configs
from repro.accel.simulator import SystolicArraySimulator
from repro.baselines.genotypes import TWO_STAGE_BASELINES, baseline_by_name
from repro.search.reward import RewardSpec
from repro.search.two_stage import best_config_for, run_two_stage


@pytest.fixture(scope="module")
def sim():
    return SystolicArraySimulator()


SMALL = dict(num_cells=3, stem_channels=4, image_size=8)
SUBSET = list(enumerate_configs())[::37]  # 22 configs for speed


class TestBaselines:
    def test_six_baselines(self):
        assert len(TWO_STAGE_BASELINES) == 6

    def test_names_match_table2(self):
        names = {m.name for m in TWO_STAGE_BASELINES}
        assert names == {
            "NasNet-A", "Darts_v1", "Darts_v2", "AmoebaNet-A", "EnasNet", "PnasNet",
        }

    def test_all_genotypes_valid_and_distinct(self):
        jsons = {m.genotype.to_json() for m in TWO_STAGE_BASELINES}
        assert len(jsons) == 6
        for m in TWO_STAGE_BASELINES:
            assert m.genotype.normal.loose_ends()
            assert m.genotype.reduce.loose_ends()

    def test_paper_metadata_present(self):
        nasnet = baseline_by_name("NasNet-A")
        assert nasnet.search_gpu_days == 1800
        assert nasnet.paper_test_error == 3.41
        assert nasnet.paper_energy_mj == 15.24

    def test_lookup_case_insensitive(self):
        assert baseline_by_name("darts_v1").name == "Darts_v1"

    def test_lookup_unknown_raises(self):
        with pytest.raises(KeyError):
            baseline_by_name("ResNet50")

    def test_baselines_buildable_as_networks(self, rng):
        from repro.nas.network import CellNetwork

        x = rng.normal(size=(1, 3, 8, 8)).astype(np.float32)
        for m in TWO_STAGE_BASELINES:
            net = CellNetwork(m.genotype, num_cells=3, stem_channels=4, rng=rng)
            assert net(x).shape == (1, 10)


class TestBestConfigFor:
    def test_energy_objective_minimises_energy(self, sim, genotype):
        cfg, energy, _ = best_config_for(
            genotype, sim, objective="energy", configs=SUBSET, **SMALL
        )
        for other in SUBSET:
            report = sim.simulate_genotype(genotype, other, **SMALL)
            assert energy <= report.energy_mj + 1e-12

    def test_latency_objective_minimises_latency(self, sim, genotype):
        cfg, _, latency = best_config_for(
            genotype, sim, objective="latency", configs=SUBSET, **SMALL
        )
        for other in SUBSET:
            report = sim.simulate_genotype(genotype, other, **SMALL)
            assert latency <= report.latency_ms + 1e-12

    def test_objectives_can_disagree(self, sim, genotype):
        cfg_e, _, _ = best_config_for(genotype, sim, objective="energy",
                                      configs=SUBSET, **SMALL)
        cfg_l, _, _ = best_config_for(genotype, sim, objective="latency",
                                      configs=SUBSET, **SMALL)
        # Not a strict requirement for every genotype, but with this subset
        # the energy and latency winners differ (see simulator tradeoff test).
        assert cfg_e != cfg_l

    def test_reward_objective_requires_spec(self, sim, genotype):
        with pytest.raises(ValueError):
            best_config_for(genotype, sim, objective="reward", configs=SUBSET, **SMALL)

    def test_reward_objective_maximises_composite(self, sim, genotype):
        spec = RewardSpec(0.5, -0.4, 0.5, -0.4, t_lat_ms=0.05, t_eer_mj=0.02)
        cfg, energy, latency = best_config_for(
            genotype, sim, objective="reward", reward_spec=spec,
            configs=SUBSET, **SMALL
        )
        best = spec.reward(1.0, latency, energy)
        for other in SUBSET:
            report = sim.simulate_genotype(genotype, other, **SMALL)
            assert best >= spec.reward(1.0, report.latency_ms, report.energy_mj) - 1e-12

    def test_threshold_screening_prefers_passing_configs(self, sim, genotype):
        # Thresholds generous enough that some configs pass.
        reports = [sim.simulate_genotype(genotype, c, **SMALL) for c in SUBSET]
        lat_med = float(np.median([r.latency_ms for r in reports]))
        eer_med = float(np.median([r.energy_mj for r in reports]))
        spec = RewardSpec(0.5, -0.4, 0.5, -0.4, t_lat_ms=lat_med, t_eer_mj=eer_med)
        _, energy, latency = best_config_for(
            genotype, sim, objective="energy", reward_spec=spec,
            configs=SUBSET, **SMALL
        )
        assert latency <= lat_med and energy <= eer_med

    def test_unknown_objective_rejected(self, sim, genotype):
        with pytest.raises(ValueError):
            best_config_for(genotype, sim, objective="area", configs=SUBSET, **SMALL)

    def test_empty_configs_rejected(self, sim, genotype):
        with pytest.raises(ValueError):
            best_config_for(genotype, sim, objective="energy", configs=[], **SMALL)


class TestTwoStageNas:
    def test_executes_both_stages(self, sim):
        from repro.search.two_stage import two_stage_nas

        calls = []

        def accuracy_of(genotype):
            calls.append(genotype.name)
            return 0.1 + 0.8 * (hash(genotype.to_json()) % 100) / 100.0

        row = two_stage_nas(accuracy_of, sim, objective="energy",
                            nas_samples=12, seed=0, configs=SUBSET, **SMALL)
        assert len(calls) == 12
        assert row.model == "TwoStage_energy"
        assert row.genotype is not None
        assert row.energy_mj > 0 and row.latency_ms > 0

    def test_stage1_picks_highest_accuracy(self, sim):
        from repro.search.two_stage import two_stage_nas

        accuracies = {}

        def accuracy_of(genotype):
            value = (hash(genotype.to_json()) % 97) / 97.0
            accuracies[genotype.to_json()] = value
            return value

        row = two_stage_nas(accuracy_of, sim, objective="latency",
                            nas_samples=10, seed=1, configs=SUBSET, **SMALL)
        assert row.genotype is not None
        assert accuracies[row.genotype.to_json()] == max(accuracies.values())
        assert row.accuracy == max(accuracies.values())

    def test_deterministic(self, sim):
        from repro.search.two_stage import two_stage_nas

        rows = [
            two_stage_nas(lambda g: 0.5, sim, objective="energy",
                          nas_samples=5, seed=3, configs=SUBSET, **SMALL)
            for _ in range(2)
        ]
        assert rows[0].genotype.to_json() == rows[1].genotype.to_json()
        assert rows[0].config == rows[1].config

    def test_invalid_samples(self, sim):
        from repro.search.two_stage import two_stage_nas

        with pytest.raises(ValueError):
            two_stage_nas(lambda g: 0.5, sim, objective="energy",
                          nas_samples=0, configs=SUBSET, **SMALL)


class TestRunTwoStage:
    def test_produces_one_row_per_baseline(self, sim):
        rows = run_two_stage(sim, lambda g: 0.8, objective="energy", configs=SUBSET, **SMALL)
        assert len(rows) == 6
        assert {r.model for r in rows} == {m.name for m in TWO_STAGE_BASELINES}

    def test_rows_carry_accuracy_and_metadata(self, sim):
        rows = run_two_stage(sim, lambda g: 0.75, objective="latency", configs=SUBSET, **SMALL)
        for row in rows:
            assert row.accuracy == 0.75
            assert row.test_error == pytest.approx(25.0)
            assert row.search_gpu_days > 0
            assert row.energy_mj > 0 and row.latency_ms > 0

    def test_accuracy_callback_sees_each_genotype(self, sim):
        seen = []
        run_two_stage(sim, lambda g: seen.append(g.name) or 0.5,
                      objective="energy", configs=SUBSET, **SMALL)
        assert sorted(seen) == sorted(m.name for m in TWO_STAGE_BASELINES)
