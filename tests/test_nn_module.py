"""Tests for the Module/Parameter containers."""

from __future__ import annotations

import numpy as np
import pytest

from repro.nn.layers import BatchNorm2d, Conv2d, Linear, ReLU, Sequential
from repro.nn.module import Module, Parameter, init_kaiming, init_ones, init_zeros


class TestParameter:
    def test_stores_float32(self):
        p = Parameter(np.zeros((2, 2), dtype=np.float64))
        assert p.data.dtype == np.float32

    def test_grad_initialised_to_zero(self):
        p = Parameter(np.ones((3,)))
        assert np.all(p.grad == 0)
        assert p.grad.shape == (3,)

    def test_zero_grad(self):
        p = Parameter(np.ones((3,)))
        p.grad += 5.0
        p.zero_grad()
        assert np.all(p.grad == 0)

    def test_weight_decay_flag(self):
        assert Parameter(np.ones(1)).weight_decay is True
        assert Parameter(np.ones(1), weight_decay=False).weight_decay is False

    def test_shape_property(self):
        assert Parameter(np.zeros((2, 3))).shape == (2, 3)


class TestModuleTraversal:
    def test_sequential_collects_all_parameters(self):
        net = Sequential(Conv2d(3, 4, 3), BatchNorm2d(4), ReLU(), Linear(4, 2))
        params = list(net.parameters())
        # conv weight, bn gamma+beta, linear weight+bias
        assert len(params) == 5

    def test_nested_lists_and_dicts_traversed(self):
        class Holder(Module):
            def __init__(self):
                super().__init__()
                self.items = [Conv2d(1, 1, 1), {"a": Linear(2, 2)}]
                self.lone = Parameter(np.zeros(3))

        params = list(Holder().parameters())
        assert len(params) == 4  # conv w, linear w+b, lone

    def test_shared_parameter_yielded_once(self):
        class Shared(Module):
            def __init__(self):
                super().__init__()
                self.p = Parameter(np.zeros(2))
                self.alias = self.p

        assert len(list(Shared().parameters())) == 1

    def test_num_parameters(self):
        net = Sequential(Linear(4, 3))
        assert net.num_parameters() == 4 * 3 + 3

    def test_zero_grad_recursive(self):
        net = Sequential(Linear(4, 3), Linear(3, 2))
        for p in net.parameters():
            p.grad += 1.0
        net.zero_grad()
        assert all(np.all(p.grad == 0) for p in net.parameters())


class TestModes:
    def test_train_eval_propagates(self):
        net = Sequential(Conv2d(3, 4, 3), BatchNorm2d(4))
        net.eval()
        assert not net.training
        assert not net[1].training
        net.train()
        assert net[1].training

    def test_bn_eval_mode_has_no_cache(self):
        bn = BatchNorm2d(2)
        bn.eval()
        bn(np.random.default_rng(0).normal(size=(2, 2, 3, 3)).astype(np.float32))
        with pytest.raises(RuntimeError):
            bn.backward(np.ones((2, 2, 3, 3), dtype=np.float32))


class TestStateIO:
    def test_roundtrip(self):
        rng = np.random.default_rng(1)
        a = Sequential(Conv2d(2, 3, 3, rng=rng), BatchNorm2d(3), Linear(3, 2, rng=rng))
        b = Sequential(Conv2d(2, 3, 3), BatchNorm2d(3), Linear(3, 2))
        b.load_state_arrays(a.state_arrays())
        for pa, pb in zip(a.parameters(), b.parameters()):
            assert np.array_equal(pa.data, pb.data)

    def test_length_mismatch_raises(self):
        net = Sequential(Linear(2, 2))
        with pytest.raises(ValueError):
            net.load_state_arrays([])

    def test_shape_mismatch_raises(self):
        net = Sequential(Linear(2, 2))
        bad = [np.zeros((3, 3)), np.zeros(2)]
        with pytest.raises(ValueError):
            net.load_state_arrays(bad)

    def test_loaded_arrays_are_copies(self):
        net = Sequential(Linear(2, 2))
        arrays = [np.ones((2, 2)), np.ones(2)]
        net.load_state_arrays(arrays)
        arrays[0][0, 0] = 99.0
        assert net[0].weight.data[0, 0] == 1.0


class TestInitialisers:
    def test_kaiming_scale(self):
        rng = np.random.default_rng(0)
        w = init_kaiming((64, 32, 3, 3), rng)
        expected_std = np.sqrt(2.0 / (32 * 9))
        assert abs(w.std() - expected_std) / expected_std < 0.1

    def test_zeros_ones(self):
        assert np.all(init_zeros((3,)) == 0)
        assert np.all(init_ones((3,)) == 1)

    def test_kaiming_1d(self):
        rng = np.random.default_rng(0)
        assert init_kaiming((5,), rng).shape == (5,)
