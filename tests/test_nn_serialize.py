"""Tests for module checkpointing (save/load to .npz)."""

from __future__ import annotations

import os

import numpy as np
import pytest

from repro.nas.hypernet import HyperNet
from repro.nas.network import CellNetwork
from repro.nn.layers import BatchNorm2d, Conv2d, Linear, Sequential
from repro.nn.serialize import load_module, module_buffers, save_module


def x32(shape, seed=0):
    return np.random.default_rng(seed).normal(size=shape).astype(np.float32)


class TestModuleBuffers:
    def test_batchnorm_buffers_found(self):
        net = Sequential(Conv2d(2, 3, 3), BatchNorm2d(3))
        buffers = module_buffers(net)
        assert len(buffers) == 2  # running_mean, running_var

    def test_no_buffers_in_plain_layers(self):
        net = Sequential(Conv2d(2, 3, 3), Linear(3, 2))
        assert module_buffers(net) == []

    def test_deterministic_order(self):
        net = Sequential(BatchNorm2d(3), BatchNorm2d(5))
        buffers = module_buffers(net)
        assert [b.shape for b in buffers] == [(3,), (3,), (5,), (5,)]


class TestSaveLoad:
    def test_roundtrip_simple(self, tmp_path):
        rng = np.random.default_rng(0)
        a = Sequential(Conv2d(2, 4, 3, rng=rng), BatchNorm2d(4), Linear(4, 2, rng=rng))
        # Mutate BN running stats so they differ from defaults.
        a[1](a[0](x32((4, 2, 6, 6))))
        path = str(tmp_path / "ckpt.npz")
        save_module(a, path)
        b = Sequential(Conv2d(2, 4, 3), BatchNorm2d(4), Linear(4, 2))
        load_module(b, path)
        for pa, pb in zip(a.parameters(), b.parameters()):
            assert np.array_equal(pa.data, pb.data)
        for ba, bb in zip(module_buffers(a), module_buffers(b)):
            assert np.array_equal(ba, bb)

    def test_roundtrip_preserves_network_output(self, tmp_path):
        from repro.nas.space import DnnSpace

        g = DnnSpace().sample(np.random.default_rng(1))
        a = CellNetwork(g, num_cells=3, stem_channels=4, rng=np.random.default_rng(2))
        a.eval()
        x = x32((2, 3, 8, 8), seed=3)
        out_a = a(x)
        path = str(tmp_path / "net.npz")
        save_module(a, path)
        b = CellNetwork(g, num_cells=3, stem_channels=4, rng=np.random.default_rng(77))
        load_module(b, path)
        b.eval()
        assert np.allclose(out_a, b(x))

    def test_roundtrip_hypernet(self, tmp_path):
        a = HyperNet(num_cells=3, stem_channels=4, rng=np.random.default_rng(4))
        g = a.sample_genotype(np.random.default_rng(5))
        path = str(tmp_path / "hn.npz")
        save_module(a, path)
        b = HyperNet(num_cells=3, stem_channels=4, rng=np.random.default_rng(88))
        load_module(b, path)
        x = x32((2, 3, 8, 8), seed=6)
        assert np.allclose(a.forward(x, g), b.forward(x, g))

    def test_roundtrip_controller(self, tmp_path):
        """The RL controller is a Module too — searches can be checkpointed."""
        from repro.search.controller import Controller

        a = Controller(seed=9)
        path = str(tmp_path / "ctrl.npz")
        save_module(a, path)
        b = Controller(seed=123)
        load_module(b, path)
        tokens = a.sample(np.random.default_rng(0)).tokens
        assert b.log_prob_of(tokens) == pytest.approx(a.log_prob_of(tokens))

    def test_creates_parent_directory(self, tmp_path):
        net = Sequential(Linear(2, 2))
        path = str(tmp_path / "deep" / "dir" / "ckpt.npz")
        save_module(net, path)
        assert os.path.exists(path)

    def test_param_count_mismatch_rejected(self, tmp_path):
        path = str(tmp_path / "ckpt.npz")
        save_module(Sequential(Linear(2, 2)), path)
        with pytest.raises(ValueError):
            load_module(Sequential(Linear(2, 2), Linear(2, 2)), path)

    def test_shape_mismatch_rejected(self, tmp_path):
        path = str(tmp_path / "ckpt.npz")
        save_module(Sequential(Linear(2, 2)), path)
        with pytest.raises(ValueError):
            load_module(Sequential(Linear(3, 3)), path)

    def test_buffer_count_mismatch_rejected(self, tmp_path):
        path = str(tmp_path / "ckpt.npz")
        save_module(Sequential(BatchNorm2d(2)), path)
        stripped = Sequential(Linear(2, 2))
        # Same param count (BN gamma/beta vs Linear w/b -> shapes differ first).
        with pytest.raises(ValueError):
            load_module(stripped, path)

    def test_loaded_params_are_copies(self, tmp_path):
        path = str(tmp_path / "ckpt.npz")
        src = Sequential(Linear(2, 2))
        save_module(src, path)
        dst = Sequential(Linear(2, 2))
        load_module(dst, path)
        dst[0].weight.data[0, 0] = 123.0
        assert src[0].weight.data[0, 0] != 123.0
