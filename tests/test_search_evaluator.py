"""Tests for the fast and accurate evaluators."""

from __future__ import annotations

import numpy as np
import pytest

from repro.accel.config import AcceleratorConfig
from repro.nas.encoding import CoDesignPoint
from repro.nas.hypernet import HyperNet
from repro.nas.space import DnnSpace
from repro.predict.dataset import collect_samples
from repro.search.evaluator import AccurateEvaluator, Evaluation, FastEvaluator


@pytest.fixture(scope="module")
def fast_evaluator(tiny_dataset):
    hypernet = HyperNet(num_cells=3, stem_channels=4, num_classes=10,
                        rng=np.random.default_rng(0))
    samples = collect_samples(30, seed=0, num_cells=3, stem_channels=4, image_size=8)
    return FastEvaluator.from_samples(
        hypernet, tiny_dataset, samples,
        num_cells=3, stem_channels=4, image_size=8, eval_batch=48,
    )


def make_point(seed=0):
    rng = np.random.default_rng(seed)
    from repro.accel.config import random_config

    return CoDesignPoint(genotype=DnnSpace().sample(rng), config=random_config(rng))


class TestEvaluation:
    def test_valid(self):
        e = Evaluation(0.5, 1.0, 2.0)
        assert e.accuracy == 0.5

    def test_rejects_bad_accuracy(self):
        with pytest.raises(ValueError):
            Evaluation(1.5, 1.0, 1.0)
        with pytest.raises(ValueError):
            Evaluation(-0.1, 1.0, 1.0)


class TestFastEvaluator:
    def test_returns_positive_metrics(self, fast_evaluator):
        result = fast_evaluator.evaluate(make_point(1))
        assert 0.0 <= result.accuracy <= 1.0
        assert result.latency_ms > 0
        assert result.energy_mj > 0

    def test_cached_result_identical(self, fast_evaluator):
        point = make_point(2)
        a = fast_evaluator.evaluate(point)
        b = fast_evaluator.evaluate(point)
        assert a is b

    def test_accuracy_independent_of_hw_config(self, fast_evaluator):
        point = make_point(3)
        other_cfg = AcceleratorConfig(8, 8, 108, 64, "NLR")
        variant = CoDesignPoint(genotype=point.genotype, config=other_cfg)
        a = fast_evaluator.evaluate(point)
        b = fast_evaluator.evaluate(variant)
        assert a.accuracy == b.accuracy  # served from the genotype cache

    def test_hw_config_changes_performance_prediction(self, fast_evaluator):
        point = make_point(4)
        small = CoDesignPoint(point.genotype, AcceleratorConfig(8, 8, 108, 64, "NLR"))
        big = CoDesignPoint(point.genotype, AcceleratorConfig(16, 32, 1024, 1024, "WS"))
        a = fast_evaluator.evaluate(small)
        b = fast_evaluator.evaluate(big)
        assert (a.latency_ms, a.energy_mj) != (b.latency_ms, b.energy_mj)

    def test_gp_predictions_track_simulator(self, fast_evaluator, tiny_dataset):
        """Fast-evaluator latency/energy must correlate with ground truth."""
        from repro.accel.simulator import SystolicArraySimulator
        from repro.predict.metrics import spearman

        sim = SystolicArraySimulator()
        preds, truths = [], []
        for seed in range(15):
            point = make_point(100 + seed)
            e = fast_evaluator.evaluate(point)
            report = sim.simulate_genotype(point.genotype, point.config,
                                           num_cells=3, stem_channels=4,
                                           image_size=8)
            preds.append(e.energy_mj)
            truths.append(report.energy_mj)
        assert spearman(truths, preds) > 0.7


class TestAccurateEvaluator:
    def test_end_to_end(self, tiny_dataset):
        evaluator = AccurateEvaluator(
            tiny_dataset, num_cells=3, stem_channels=4, train_epochs=1, seed=0
        )
        result = evaluator.evaluate(make_point(5))
        assert 0.0 <= result.accuracy <= 1.0
        assert result.latency_ms > 0
        assert result.energy_mj > 0

    def test_deterministic(self, tiny_dataset):
        point = make_point(6)
        kwargs = dict(num_cells=3, stem_channels=4, train_epochs=1, seed=3)
        a = AccurateEvaluator(tiny_dataset, **kwargs).evaluate(point)
        b = AccurateEvaluator(tiny_dataset, **kwargs).evaluate(point)
        assert a.accuracy == b.accuracy
        assert a.latency_ms == b.latency_ms
