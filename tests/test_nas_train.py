"""Tests for stand-alone network training."""

from __future__ import annotations

import numpy as np
import pytest

from repro.nas.network import CellNetwork
from repro.nas.train import TrainResult, evaluate_accuracy, train_network


class TestTrainNetwork:
    def test_result_fields(self, tiny_dataset, genotype):
        net = CellNetwork(genotype, num_cells=3, stem_channels=4,
                          rng=np.random.default_rng(0))
        result = train_network(net, tiny_dataset, epochs=1, batch_size=32, seed=0)
        assert result.epochs == 1
        assert result.final_train_loss > 0
        assert 0.0 <= result.val_accuracy <= 1.0
        assert 0.0 <= result.test_accuracy <= 1.0

    def test_test_error_is_percent(self):
        r = TrainResult(1, 0.0, 0.0, 0.0, test_accuracy=0.9)
        assert r.test_error == pytest.approx(10.0)

    def test_training_improves_over_untrained(self, tiny_dataset, genotype):
        untrained = CellNetwork(genotype, num_cells=3, stem_channels=4,
                                rng=np.random.default_rng(1))
        base_acc = evaluate_accuracy(
            untrained, tiny_dataset.val.images, tiny_dataset.val.labels
        )
        trained = CellNetwork(genotype, num_cells=3, stem_channels=4,
                              rng=np.random.default_rng(1))
        result = train_network(trained, tiny_dataset, epochs=6, batch_size=32,
                               lr_max=0.03, augment=False, seed=0)
        # On the easy synthetic task a few epochs must beat random guessing.
        assert result.val_accuracy > max(base_acc, 0.12)

    def test_deterministic(self, tiny_dataset, genotype):
        results = []
        for _ in range(2):
            net = CellNetwork(genotype, num_cells=3, stem_channels=4,
                              rng=np.random.default_rng(2))
            results.append(
                train_network(net, tiny_dataset, epochs=1, batch_size=32, seed=5)
            )
        assert results[0].final_train_loss == results[1].final_train_loss
        assert results[0].val_accuracy == results[1].val_accuracy


class TestEvaluateAccuracy:
    def test_restores_training_mode(self, tiny_dataset, genotype):
        net = CellNetwork(genotype, num_cells=3, stem_channels=4,
                          rng=np.random.default_rng(3))
        net.train()
        evaluate_accuracy(net, tiny_dataset.val.images, tiny_dataset.val.labels)
        assert net.training

    def test_range(self, tiny_dataset, genotype):
        net = CellNetwork(genotype, num_cells=3, stem_channels=4,
                          rng=np.random.default_rng(4))
        acc = evaluate_accuracy(net, tiny_dataset.val.images, tiny_dataset.val.labels)
        assert 0.0 <= acc <= 1.0
