"""Numerical-gradient tests for the LSTM cell (BPTT correctness)."""

from __future__ import annotations

import numpy as np

from repro.search.lstm import LSTMCell, LSTMState


def make_cell(input_dim=5, hidden_dim=7, seed=0):
    cell = LSTMCell(input_dim, hidden_dim, np.random.default_rng(seed))
    # Float64 weights for precise finite differences.
    for p in (cell.wx, cell.wh, cell.bias):
        p.data = p.data.astype(np.float64)
        p.grad = p.grad.astype(np.float64)
    return cell


class TestForward:
    def test_shapes(self):
        cell = make_cell()
        state, cache = cell.step(np.zeros(5), LSTMState.zeros(7))
        assert state.h.shape == (7,)
        assert state.c.shape == (7,)
        assert len(cache) == 8

    def test_zero_state_factory(self):
        s = LSTMState.zeros(4)
        assert np.all(s.h == 0) and np.all(s.c == 0)

    def test_forget_bias_initialised_to_one(self):
        cell = make_cell(hidden_dim=4)
        assert np.all(cell.bias.data[4:8] == 1.0)

    def test_deterministic(self):
        a, b = make_cell(seed=3), make_cell(seed=3)
        x = np.random.default_rng(1).normal(size=5)
        sa, _ = a.step(x, LSTMState.zeros(7))
        sb, _ = b.step(x, LSTMState.zeros(7))
        assert np.array_equal(sa.h, sb.h)

    def test_state_evolves(self):
        cell = make_cell()
        x = np.ones(5)
        s1, _ = cell.step(x, LSTMState.zeros(7))
        s2, _ = cell.step(x, s1)
        assert not np.allclose(s1.h, s2.h)


class TestBackward:
    def _loss_through_steps(self, cell, xs, weights_h):
        """Scalar loss: weighted sum of hidden states over a short unroll."""
        state = LSTMState.zeros(cell.hidden_dim)
        total = 0.0
        caches = []
        for x, w in zip(xs, weights_h):
            state, cache = cell.step(x, state)
            caches.append(cache)
            total += float(np.sum(state.h * w))
        return total, caches

    def test_gradients_match_numerical(self):
        cell = make_cell(input_dim=3, hidden_dim=4, seed=7)
        rng = np.random.default_rng(8)
        xs = [rng.normal(size=3) for _ in range(3)]
        ws = [rng.normal(size=4) for _ in range(3)]

        # Analytic: BPTT through the 3 steps.
        _, caches = self._loss_through_steps(cell, xs, ws)
        dh_next = np.zeros(4)
        dc_next = np.zeros(4)
        for t in range(2, -1, -1):
            dh = ws[t] + dh_next
            _, dh_next, dc_next = cell.backward_step(dh, dc_next, caches[t])

        for param in (cell.wx, cell.wh, cell.bias):
            analytic = param.grad.copy()
            numeric = np.zeros_like(param.data)
            eps = 1e-6
            it = np.nditer(param.data, flags=["multi_index"])
            while not it.finished:
                idx = it.multi_index
                old = param.data[idx]
                param.data[idx] = old + eps
                lp, _ = self._loss_through_steps(cell, xs, ws)
                param.data[idx] = old - eps
                lm, _ = self._loss_through_steps(cell, xs, ws)
                param.data[idx] = old
                numeric[idx] = (lp - lm) / (2 * eps)
                it.iternext()
            assert np.allclose(analytic, numeric, rtol=1e-4, atol=1e-7), param

    def test_input_gradient_matches_numerical(self):
        cell = make_cell(input_dim=3, hidden_dim=4, seed=9)
        rng = np.random.default_rng(10)
        x = rng.normal(size=3)
        w = rng.normal(size=4)

        def loss():
            state, _ = cell.step(x, LSTMState.zeros(4))
            return float(np.sum(state.h * w))

        _, cache = cell.step(x, LSTMState.zeros(4))
        dx, _, _ = cell.backward_step(w, np.zeros(4), cache)
        eps = 1e-6
        numeric = np.zeros(3)
        for i in range(3):
            old = x[i]
            x[i] = old + eps
            lp = loss()
            x[i] = old - eps
            lm = loss()
            x[i] = old
            numeric[i] = (lp - lm) / (2 * eps)
        assert np.allclose(dx, numeric, rtol=1e-4, atol=1e-8)

    def test_previous_state_gradients(self):
        cell = make_cell(input_dim=2, hidden_dim=3, seed=11)
        rng = np.random.default_rng(12)
        h0 = rng.normal(size=3)
        c0 = rng.normal(size=3)
        x = rng.normal(size=2)
        w = rng.normal(size=3)

        def loss():
            state, _ = cell.step(x, LSTMState(h0, c0))
            return float(np.sum(state.h * w))

        _, cache = cell.step(x, LSTMState(h0, c0))
        _, dh0, dc0 = cell.backward_step(w, np.zeros(3), cache)
        eps = 1e-6
        for vec, grad in ((h0, dh0), (c0, dc0)):
            numeric = np.zeros(3)
            for i in range(3):
                old = vec[i]
                vec[i] = old + eps
                lp = loss()
                vec[i] = old - eps
                lm = loss()
                vec[i] = old
                numeric[i] = (lp - lm) / (2 * eps)
            assert np.allclose(grad, numeric, rtol=1e-4, atol=1e-8)
