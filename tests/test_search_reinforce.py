"""Tests for REINFORCE search, random search and history utilities."""

from __future__ import annotations

import numpy as np
import pytest

from repro.nas.encoding import CoDesignPoint, SEQUENCE_LENGTH
from repro.search.controller import Controller
from repro.search.evaluator import Evaluation
from repro.search.random_search import RandomSearch
from repro.search.reinforce import ReinforceSearch, SearchHistory, SearchSample
from repro.search.reward import RewardSpec

SPEC = RewardSpec(0.5, -0.4, 0.5, -0.4, t_lat_ms=1.0, t_eer_mj=1.0)


def fake_eval_constant(point: CoDesignPoint) -> Evaluation:
    return Evaluation(accuracy=0.5, latency_ms=1.0, energy_mj=1.0)


class BanditEvaluator:
    """Deterministic evaluator whose 'accuracy' depends on one HW token.

    Co-design points whose dataflow is WS score much higher, giving the
    controller a clean learnable signal.
    """

    def __call__(self, point: CoDesignPoint) -> Evaluation:
        good = point.config.dataflow == "WS"
        return Evaluation(
            accuracy=0.9 if good else 0.2, latency_ms=1.0, energy_mj=1.0
        )


def make_sample(i, reward, tokens=None):
    return SearchSample(
        iteration=i,
        tokens=tokens or tuple(range(SEQUENCE_LENGTH)),
        reward=reward,
        accuracy=0.5,
        latency_ms=1.0,
        energy_mj=1.0,
    )


class TestSearchHistory:
    def test_best(self):
        h = SearchHistory()
        for i, r in enumerate([0.1, 0.9, 0.4]):
            h.append(make_sample(i, r, tokens=(i,) * SEQUENCE_LENGTH))
        assert h.best().reward == 0.9

    def test_best_empty_raises(self):
        with pytest.raises(ValueError):
            SearchHistory().best()

    def test_top_deduplicates_tokens(self):
        h = SearchHistory()
        same = (1,) * SEQUENCE_LENGTH
        h.append(make_sample(0, 0.9, same))
        h.append(make_sample(1, 0.9, same))
        h.append(make_sample(2, 0.5, (2,) * SEQUENCE_LENGTH))
        top = h.top(3)
        assert len(top) == 2
        assert top[0].reward == 0.9

    def test_every_subsamples(self):
        h = SearchHistory()
        for i in range(100):
            h.append(make_sample(i, 0.1, (i % 5,) * SEQUENCE_LENGTH))
        assert len(h.every(10)) == 10

    def test_running_best_monotone(self):
        h = SearchHistory()
        rng = np.random.default_rng(0)
        for i in range(50):
            h.append(make_sample(i, float(rng.random()), (i,) * SEQUENCE_LENGTH))
        rb = h.running_best_rewards()
        assert np.all(np.diff(rb) >= 0)

    def test_sample_point_roundtrip(self):
        rng = np.random.default_rng(1)
        from repro.nas.encoding import random_sequence

        tokens = tuple(random_sequence(rng))
        s = make_sample(0, 0.5, tokens)
        assert tuple(s.point().genotype.normal.nodes[0].__class__.__mro__) is not None
        assert s.point().config is not None


class TestReinforceSearch:
    def test_run_collects_requested_iterations(self):
        search = ReinforceSearch(Controller(seed=0), fake_eval_constant, SPEC, seed=0)
        history = search.run(8)
        assert len(history) == 8

    def test_invalid_iterations(self):
        search = ReinforceSearch(Controller(seed=0), fake_eval_constant, SPEC, seed=0)
        with pytest.raises(ValueError):
            search.run(0)

    def test_baseline_tracks_reward(self):
        search = ReinforceSearch(Controller(seed=1), fake_eval_constant, SPEC, seed=1)
        search.run(5)
        # Constant reward 0.5 (+tiny entropy bonus): baseline must be near it.
        assert search.baseline == pytest.approx(0.5, abs=0.1)

    def test_learns_bandit_signal(self):
        """After training, the policy must prefer the rewarded dataflow token."""
        evaluator = BanditEvaluator()
        search = ReinforceSearch(
            Controller(seed=2), evaluator, SPEC, lr=0.02, seed=2
        )
        search.run(150)
        rng = np.random.default_rng(3)
        from repro.nas.encoding import decode

        late_hits = 0
        n = 40
        for _ in range(n):
            tokens = search.controller.sample(rng).tokens
            if decode(tokens).config.dataflow == "WS":
                late_hits += 1
        # Uniform would give ~25%; trained policy should be well above.
        assert late_hits / n > 0.5

    def test_rl_beats_random_on_learnable_signal(self):
        evaluator = BanditEvaluator()
        rl = ReinforceSearch(Controller(seed=4), evaluator, SPEC, lr=0.02, seed=4)
        rl_hist = rl.run(150)
        rnd = RandomSearch(evaluator, SPEC, seed=4)
        rnd_hist = rnd.run(150)
        tail = 50
        rl_tail = rl_hist.rewards()[-tail:].mean()
        rnd_tail = rnd_hist.rewards()[-tail:].mean()
        assert rl_tail > rnd_tail

    def test_history_records_metrics(self):
        search = ReinforceSearch(Controller(seed=5), fake_eval_constant, SPEC, seed=5)
        sample = search.step()
        assert sample.accuracy == 0.5
        assert sample.latency_ms == 1.0
        assert sample.reward == pytest.approx(SPEC.reward(0.5, 1.0, 1.0))


class TestRandomSearch:
    def test_run_length(self):
        history = RandomSearch(fake_eval_constant, SPEC, seed=0).run(12)
        assert len(history) == 12

    def test_invalid_iterations(self):
        with pytest.raises(ValueError):
            RandomSearch(fake_eval_constant, SPEC, seed=0).run(-1)

    def test_deterministic_given_seed(self):
        h1 = RandomSearch(fake_eval_constant, SPEC, seed=7).run(5)
        h2 = RandomSearch(fake_eval_constant, SPEC, seed=7).run(5)
        assert [s.tokens for s in h1.samples] == [s.tokens for s in h2.samples]

    def test_samples_diverse(self):
        history = RandomSearch(fake_eval_constant, SPEC, seed=8).run(10)
        assert len({s.tokens for s in history.samples}) > 5
