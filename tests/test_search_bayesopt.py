"""Tests for the Bayesian-optimisation baseline search."""

from __future__ import annotations

import numpy as np
import pytest

from repro.nas.encoding import CoDesignPoint
from repro.search.bayesopt import BayesianOptSearch, expected_improvement
from repro.search.evaluator import Evaluation
from repro.search.reward import RewardSpec

SPEC = RewardSpec(0.5, -0.4, 0.5, -0.4, t_lat_ms=1.0, t_eer_mj=1.0)
FEATURE_KW = dict(num_cells=3, stem_channels=4, image_size=8)


def smooth_evaluator(point: CoDesignPoint) -> Evaluation:
    """Deterministic evaluator with learnable structure: bigger PE arrays
    and the WS dataflow score higher."""
    acc = 0.3 + 0.4 * (point.config.num_pes / 512.0)
    if point.config.dataflow == "WS":
        acc += 0.2
    return Evaluation(accuracy=min(acc, 1.0), latency_ms=1.0, energy_mj=1.0)


class TestExpectedImprovement:
    def test_zero_std_zero_improvement_below_best(self):
        ei = expected_improvement(np.array([0.0]), np.array([0.0]), best=1.0)
        assert ei[0] == pytest.approx(0.0, abs=1e-9)

    def test_higher_mean_higher_ei(self):
        means = np.array([0.0, 0.5, 1.0])
        stds = np.full(3, 0.1)
        ei = expected_improvement(means, stds, best=0.4)
        assert ei[2] > ei[1] > ei[0]

    def test_uncertainty_adds_value(self):
        means = np.array([0.0, 0.0])
        stds = np.array([0.01, 1.0])
        ei = expected_improvement(means, stds, best=0.5)
        assert ei[1] > ei[0]

    def test_nonnegative(self):
        rng = np.random.default_rng(0)
        ei = expected_improvement(rng.normal(size=50), np.abs(rng.normal(size=50)),
                                  best=0.0)
        assert np.all(ei >= -1e-12)


class TestBayesianOptSearch:
    def test_run_length(self):
        search = BayesianOptSearch(smooth_evaluator, SPEC, n_initial=4,
                                   pool_size=16, seed=0, feature_kwargs=FEATURE_KW)
        history = search.run(12)
        assert len(history) == 12

    def test_initial_phase_is_random(self):
        search = BayesianOptSearch(smooth_evaluator, SPEC, n_initial=6,
                                   pool_size=8, seed=1, feature_kwargs=FEATURE_KW)
        for _ in range(5):
            search.step()
        assert search._gp is None  # surrogate not built yet

    def test_surrogate_built_after_initial(self):
        search = BayesianOptSearch(smooth_evaluator, SPEC, n_initial=4,
                                   pool_size=8, refit_every=1, seed=2,
                                   feature_kwargs=FEATURE_KW)
        search.run(8)
        assert search._gp is not None

    def test_improves_over_time_on_smooth_landscape(self):
        search = BayesianOptSearch(smooth_evaluator, SPEC, n_initial=8,
                                   pool_size=48, refit_every=2, seed=3,
                                   feature_kwargs=FEATURE_KW)
        history = search.run(40)
        rewards = history.rewards()
        # Exploitation phase must beat the random warm-up on average.
        assert rewards[20:].mean() > rewards[:8].mean()

    def test_deterministic_given_seed(self):
        runs = []
        for _ in range(2):
            search = BayesianOptSearch(smooth_evaluator, SPEC, n_initial=3,
                                       pool_size=8, seed=9,
                                       feature_kwargs=FEATURE_KW)
            runs.append([s.tokens for s in search.run(6).samples])
        assert runs[0] == runs[1]

    def test_invalid_args(self):
        with pytest.raises(ValueError):
            BayesianOptSearch(smooth_evaluator, SPEC, n_initial=1)
        search = BayesianOptSearch(smooth_evaluator, SPEC, seed=0,
                                   feature_kwargs=FEATURE_KW)
        with pytest.raises(ValueError):
            search.run(0)
