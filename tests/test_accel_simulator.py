"""Tests for the analytical systolic-array simulator."""

from __future__ import annotations

import numpy as np
import pytest

from repro.accel.config import AcceleratorConfig, Dataflow, enumerate_configs
from repro.accel.energy import DEFAULT_ENERGY_MODEL, EnergyModel
from repro.accel.simulator import SystolicArraySimulator
from repro.accel.workload import LayerWorkload, network_workloads


@pytest.fixture(scope="module")
def sim():
    return SystolicArraySimulator()


CONV = LayerWorkload("conv", "conv", 32, 64, 16, 3, 1)
POOL = LayerWorkload("pool", "pool", 32, 32, 16, 3, 1)


def cfg(rows=16, cols=16, gbuf=256, rbuf=256, flow="OS"):
    return AcceleratorConfig(rows, cols, gbuf, rbuf, flow)


class TestEnergyModel:
    def test_hierarchy_ordering(self):
        em = DEFAULT_ENERGY_MODEL
        assert em.rbuf_pj < em.gbuf_pj < em.dram_pj

    def test_leakage_scales_with_hardware(self):
        em = DEFAULT_ENERGY_MODEL
        small = em.leakage_pj_per_cycle(cfg(rows=8, cols=8, gbuf=108, rbuf=64))
        big = em.leakage_pj_per_cycle(cfg(rows=16, cols=32, gbuf=1024, rbuf=1024))
        assert big > small

    def test_cycles_to_ms(self):
        em = EnergyModel(freq_mhz=1000.0)
        assert em.cycles_to_ms(1_000_000) == pytest.approx(1.0)


class TestLayerSimulation:
    def test_report_fields_positive(self, sim):
        r = sim.simulate_layer(CONV, cfg())
        assert r.macs > 0
        assert r.cycles > r.compute_cycles - 1
        assert r.energy_pj > 0
        assert 0 < r.utilisation <= 1

    def test_latency_covers_both_bounds(self, sim):
        r = sim.simulate_layer(CONV, cfg())
        assert r.cycles >= r.compute_cycles
        assert r.cycles >= r.dram_cycles

    def test_more_pes_reduce_compute_cycles(self, sim):
        small = sim.simulate_layer(CONV, cfg(rows=8, cols=8))
        big = sim.simulate_layer(CONV, cfg(rows=16, cols=32))
        assert big.compute_cycles < small.compute_cycles

    def test_bigger_gbuf_never_more_dram(self, sim):
        heavy = LayerWorkload("h", "conv", 128, 128, 32, 3, 1)
        small = sim.simulate_layer(heavy, cfg(gbuf=108))
        big = sim.simulate_layer(heavy, cfg(gbuf=1024))
        assert big.dram_bytes <= small.dram_bytes

    def test_pool_layer_cheap(self, sim):
        conv = sim.simulate_layer(CONV, cfg())
        pool = sim.simulate_layer(POOL, cfg())
        assert pool.energy_pj < conv.energy_pj

    def test_dataflow_changes_energy(self, sim):
        energies = {
            flow: sim.simulate_layer(CONV, cfg(flow=flow)).energy_pj
            for flow in Dataflow.ALL
        }
        assert len({round(e) for e in energies.values()}) > 1

    def test_nlr_burns_more_gbuf_energy(self, sim):
        """No local reuse -> strictly more energy than WS on a conv layer."""
        ws = sim.simulate_layer(CONV, cfg(flow="WS"))
        nlr = sim.simulate_layer(CONV, cfg(flow="NLR"))
        assert nlr.energy_pj > ws.energy_pj


class TestNetworkSimulation:
    def test_totals_are_sums(self, sim, genotype):
        layers = network_workloads(genotype, num_cells=3, stem_channels=8,
                                   image_size=16)
        report = sim.simulate_network(layers, cfg())
        assert report.total_macs == pytest.approx(sum(r.macs for r in report.layers))
        assert report.energy_mj == pytest.approx(
            sum(r.energy_pj for r in report.layers) * 1e-9
        )
        cycles = sum(r.cycles for r in report.layers)
        assert report.latency_ms == pytest.approx(
            sim.energy_model.cycles_to_ms(cycles)
        )

    def test_empty_network_rejected(self, sim):
        with pytest.raises(ValueError):
            sim.simulate_network([], cfg())

    def test_simulate_genotype_wrapper(self, sim, genotype):
        report = sim.simulate_genotype(genotype, cfg(), num_cells=3,
                                       stem_channels=8, image_size=16)
        assert report.latency_ms > 0
        assert report.energy_mj > 0

    def test_deterministic(self, sim, genotype):
        a = sim.simulate_genotype(genotype, cfg(), num_cells=3, stem_channels=8,
                                  image_size=16)
        b = sim.simulate_genotype(genotype, cfg(), num_cells=3, stem_channels=8,
                                  image_size=16)
        assert a.latency_ms == b.latency_ms
        assert a.energy_mj == b.energy_mj

    def test_bigger_network_costs_more(self, sim, genotype):
        small = sim.simulate_genotype(genotype, cfg(), num_cells=3,
                                      stem_channels=8, image_size=16)
        big = sim.simulate_genotype(genotype, cfg(), num_cells=6,
                                    stem_channels=8, image_size=16)
        assert big.energy_mj > small.energy_mj
        assert big.latency_ms > small.latency_ms

    def test_energy_per_mac_sane(self, sim, genotype):
        report = sim.simulate_genotype(genotype, cfg(), num_cells=3,
                                       stem_channels=8, image_size=16)
        # Total energy/MAC must exceed the bare MAC cost and stay within
        # two orders of magnitude of it (memory dominates, not absurdity).
        assert 1.0 < report.energy_per_mac_pj < 200.0

    def test_report_text_and_profile(self, sim, genotype):
        report = sim.simulate_genotype(genotype, cfg(), num_cells=3,
                                       stem_channels=8, image_size=16)
        text = report.to_text(top=3)
        assert "latency" in text and "energy" in text
        assert text.count("mJ") >= 3
        top = report.top_energy_layers(3)
        assert len(top) == 3
        assert top[0].energy_pj >= top[1].energy_pj >= top[2].energy_pj
        assert 0.0 < report.mean_utilisation <= 1.0

    def test_latency_energy_tradeoff_exists(self, sim, genotype):
        """Across the whole HW space there is no single config that is both
        the fastest and the most energy-efficient (otherwise co-search would
        be pointless)."""
        reports = [
            (c, sim.simulate_genotype(genotype, c, num_cells=3, stem_channels=8,
                                      image_size=16))
            for c in list(enumerate_configs())[::40]
        ]
        fastest = min(reports, key=lambda cr: cr[1].latency_ms)
        greenest = min(reports, key=lambda cr: cr[1].energy_mj)
        assert fastest[0] != greenest[0]
