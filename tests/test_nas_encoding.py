"""Tests for the 44-token action-sequence encoding."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.accel.config import (
    DATAFLOW_CHOICES,
    GBUF_KB_CHOICES,
    PE_CHOICES,
    RBUF_B_CHOICES,
)
from repro.nas.encoding import (
    DNN_TOKENS,
    HW_TOKENS,
    SEQUENCE_LENGTH,
    CoDesignPoint,
    decode,
    encode,
    random_sequence,
    token_vocab_sizes,
)
from repro.nas.genotype import NUM_COMPUTED
from repro.nas.ops import NUM_OPS


def token_sequences():
    vocab = token_vocab_sizes()
    return st.tuples(*[st.integers(0, v - 1) for v in vocab]).map(list)


class TestVocab:
    def test_sequence_length_matches_paper(self):
        # S = 40 DNN hyper-parameters, L = 4 accelerator parameters.
        assert DNN_TOKENS == 40
        assert HW_TOKENS == 4
        assert SEQUENCE_LENGTH == 44

    def test_vocab_length(self):
        assert len(token_vocab_sizes()) == SEQUENCE_LENGTH

    def test_input_vocab_grows_with_node_index(self):
        vocab = token_vocab_sizes()
        # First cell: nodes 2..6 -> quads (i, i, 6, 6).
        for offset, node_idx in enumerate(range(2, 2 + NUM_COMPUTED)):
            quad = vocab[offset * 4 : offset * 4 + 4]
            assert quad == (node_idx, node_idx, NUM_OPS, NUM_OPS)

    def test_hw_vocab_sizes(self):
        vocab = token_vocab_sizes()
        assert vocab[-4:] == (
            len(PE_CHOICES),
            len(GBUF_KB_CHOICES),
            len(RBUF_B_CHOICES),
            len(DATAFLOW_CHOICES),
        )


class TestRoundtrip:
    def test_simple_roundtrip(self, rng):
        seq = random_sequence(rng)
        assert encode(decode(seq)) == seq

    @given(token_sequences())
    @settings(deadline=None, max_examples=100)
    def test_roundtrip_property(self, seq):
        point = decode(seq)
        assert encode(point) == seq

    @given(token_sequences())
    @settings(deadline=None, max_examples=50)
    def test_decoded_points_valid(self, seq):
        point = decode(seq)
        assert point.genotype.normal.loose_ends()
        assert (point.config.pe_rows, point.config.pe_cols) in PE_CHOICES
        assert point.config.gbuf_kb in GBUF_KB_CHOICES
        assert point.config.rbuf_bytes in RBUF_B_CHOICES
        assert point.config.dataflow in DATAFLOW_CHOICES

    def test_encode_of_fixture(self, genotype, hw_config):
        point = CoDesignPoint(genotype=genotype, config=hw_config)
        seq = encode(point)
        restored = decode(seq)
        assert restored.genotype.normal == genotype.normal
        assert restored.config == hw_config


class TestValidation:
    def test_wrong_length_rejected(self):
        with pytest.raises(ValueError):
            decode([0] * (SEQUENCE_LENGTH - 1))

    def test_out_of_range_token_rejected(self, rng):
        seq = random_sequence(rng)
        seq[0] = 99
        with pytest.raises(ValueError):
            decode(seq)

    def test_negative_token_rejected(self, rng):
        seq = random_sequence(rng)
        seq[3] = -1
        with pytest.raises(ValueError):
            decode(seq)

    def test_random_sequences_always_valid(self):
        rng = np.random.default_rng(9)
        vocab = token_vocab_sizes()
        for _ in range(50):
            seq = random_sequence(rng)
            assert len(seq) == SEQUENCE_LENGTH
            assert all(0 <= t < v for t, v in zip(seq, vocab))

    def test_describe(self, genotype, hw_config):
        point = CoDesignPoint(genotype=genotype, config=hw_config)
        text = point.describe()
        assert "fixture" in text
        assert "16*16" in text
