"""Tests for the synthetic dataset and augmentation pipeline."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.nn.data import BatchIterator, SyntheticCifar, random_crop_flip


class TestSyntheticCifar:
    def test_split_sizes_and_shapes(self, tiny_dataset):
        ds = tiny_dataset
        assert ds.train.images.shape == (96, 3, 8, 8)
        assert ds.val.images.shape == (48, 3, 8, 8)
        assert ds.test.images.shape == (48, 3, 8, 8)
        assert ds.train.labels.shape == (96,)

    def test_dtype(self, tiny_dataset):
        assert tiny_dataset.train.images.dtype == np.float32
        assert tiny_dataset.train.labels.dtype == np.int64

    def test_labels_in_range(self, tiny_dataset):
        for split in (tiny_dataset.train, tiny_dataset.val, tiny_dataset.test):
            assert split.labels.min() >= 0
            assert split.labels.max() < 10

    def test_normalised(self, tiny_dataset):
        x = tiny_dataset.train.images
        assert abs(float(x.mean())) < 0.1
        assert 0.5 < float(x.std()) < 2.0

    def test_deterministic_given_seed(self):
        a = SyntheticCifar(image_size=8, train_size=16, val_size=8, test_size=8, seed=7)
        b = SyntheticCifar(image_size=8, train_size=16, val_size=8, test_size=8, seed=7)
        assert np.array_equal(a.train.images, b.train.images)
        assert np.array_equal(a.train.labels, b.train.labels)

    def test_different_seeds_differ(self):
        a = SyntheticCifar(image_size=8, train_size=16, val_size=8, test_size=8, seed=1)
        b = SyntheticCifar(image_size=8, train_size=16, val_size=8, test_size=8, seed=2)
        assert not np.array_equal(a.train.images, b.train.images)

    def test_classes_are_separable_by_statistics(self):
        """Per-class mean images must differ (the task is learnable)."""
        ds = SyntheticCifar(image_size=8, train_size=400, val_size=8, test_size=8,
                            noise=0.3, seed=0)
        means = []
        for k in range(10):
            mask = ds.train.labels == k
            if mask.sum() > 5:
                means.append(ds.train.images[mask].mean(axis=0))
        dists = [
            float(np.abs(a - b).mean())
            for i, a in enumerate(means)
            for b in means[i + 1 :]
        ]
        assert np.mean(dists) > 0.05

    def test_invalid_args(self):
        with pytest.raises(ValueError):
            SyntheticCifar(num_classes=1)
        with pytest.raises(ValueError):
            SyntheticCifar(image_size=2)

    def test_custom_class_count(self):
        ds = SyntheticCifar(num_classes=4, image_size=8, train_size=40,
                            val_size=8, test_size=8, seed=0)
        assert ds.train.labels.max() < 4


class TestAugmentation:
    def test_shape_preserved(self, rng):
        x = rng.normal(size=(4, 3, 8, 8)).astype(np.float32)
        out = random_crop_flip(x, rng)
        assert out.shape == x.shape

    def test_flip_only_reverses_width(self):
        rng = np.random.default_rng(0)
        x = np.arange(2 * 3 * 4 * 4, dtype=np.float32).reshape(2, 3, 4, 4)
        out = random_crop_flip(x, rng, pad=0)
        for i in range(2):
            same = np.array_equal(out[i], x[i])
            flipped = np.array_equal(out[i], x[i, :, :, ::-1])
            assert same or flipped

    @given(pad=st.integers(0, 3))
    @settings(deadline=None, max_examples=10)
    def test_values_come_from_padded_input(self, pad):
        rng = np.random.default_rng(pad)
        x = rng.normal(size=(2, 3, 6, 6)).astype(np.float32)
        out = random_crop_flip(x, rng, pad=pad)
        allowed = set(np.round(x.ravel(), 5).tolist()) | {0.0}
        assert set(np.round(out.ravel(), 5).tolist()) <= allowed


class TestBatchIterator:
    def test_covers_all_examples(self, tiny_dataset):
        batches = tiny_dataset.batches("train", batch_size=20, shuffle=False)
        total = sum(len(y) for _, y in batches)
        assert total == 96

    def test_batch_count(self, tiny_dataset):
        batches = tiny_dataset.batches("train", batch_size=20)
        assert len(batches) == 5  # ceil(96/20)

    def test_shuffle_changes_order(self, tiny_dataset):
        rng = np.random.default_rng(3)
        it = tiny_dataset.batches("train", batch_size=96, shuffle=True, rng=rng)
        (x1, y1), = list(it)
        assert not np.array_equal(y1, tiny_dataset.train.labels)
        assert sorted(y1.tolist()) == sorted(tiny_dataset.train.labels.tolist())

    def test_no_shuffle_preserves_order(self, tiny_dataset):
        it = tiny_dataset.batches("train", batch_size=96, shuffle=False)
        (_, y), = list(it)
        assert np.array_equal(y, tiny_dataset.train.labels)

    def test_augment_changes_images(self, tiny_dataset):
        rng = np.random.default_rng(5)
        it = tiny_dataset.batches("train", batch_size=96, shuffle=False, augment=True,
                                  rng=rng)
        (x, _), = list(it)
        assert not np.array_equal(x, tiny_dataset.train.images)

    def test_reusable(self, tiny_dataset):
        it = tiny_dataset.batches("train", batch_size=32, shuffle=False)
        assert sum(1 for _ in it) == sum(1 for _ in it)

    def test_invalid_args(self):
        with pytest.raises(ValueError):
            BatchIterator(np.zeros((2, 1)), np.zeros(3), 1, False, False, None)
        with pytest.raises(ValueError):
            BatchIterator(np.zeros((2, 1)), np.zeros(2), 0, False, False, None)
