"""Parity and cache-semantics tests for the batched evaluation engine.

The batch paths (``simulate_many`` / ``BatchEvaluator`` / batched searches)
must produce the same numbers as the scalar paths they accelerate — these
tests pin that to floating-point round-off — and the encoding-keyed LRU
must serve repeats without recomputation.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.accel.config import enumerate_configs, random_config
from repro.accel.simulator import SystolicArraySimulator
from repro.accel.workload import network_workloads
from repro.nas.encoding import CoDesignPoint, encode
from repro.nas.hypernet import HyperNet
from repro.nas.space import DnnSpace
from repro.predict.dataset import collect_samples
from repro.search.evaluator import BatchEvaluator, FastEvaluator
from repro.search.random_search import RandomSearch
from repro.search.reinforce import ReinforceSearch
from repro.search.reward import BALANCED

SMALL = dict(num_cells=3, stem_channels=4, image_size=8)
#: Scalar-vs-batch agreement: identical formulas, different summation order.
TOL = dict(rel=1e-9, abs=1e-15)


def random_points(n: int, seed: int = 0) -> list[CoDesignPoint]:
    rng = np.random.default_rng(seed)
    space = DnnSpace()
    return [
        CoDesignPoint(genotype=space.sample(rng), config=random_config(rng))
        for _ in range(n)
    ]


@pytest.fixture(scope="module")
def sim():
    return SystolicArraySimulator()


@pytest.fixture(scope="module")
def fast_evaluator(tiny_dataset):
    hypernet = HyperNet(
        num_cells=3, stem_channels=4, num_classes=10, rng=np.random.default_rng(0)
    )
    samples = collect_samples(30, seed=0, **SMALL)
    return FastEvaluator.from_samples(
        hypernet, tiny_dataset, samples, eval_batch=48, **SMALL
    )


class TestSimulateManyParity:
    def test_one_network_many_configs(self, sim, genotype):
        """Broadcast sweep must match per-config scalar simulation."""
        layers = network_workloads(genotype, **SMALL)
        configs = list(enumerate_configs())[::17]
        batch = sim.simulate_many(layers, configs)
        for i, config in enumerate(configs):
            report = sim.simulate_network(layers, config)
            assert batch.latency_ms[i] == pytest.approx(report.latency_ms, **TOL)
            assert batch.energy_mj[i] == pytest.approx(report.energy_mj, **TOL)
            assert batch.total_macs[i] == pytest.approx(report.total_macs, **TOL)
            assert batch.total_dram_bytes[i] == pytest.approx(
                report.total_dram_bytes, **TOL
            )

    def test_many_networks_many_configs(self, sim):
        """Ragged (per-point layer list) batches must match too."""
        points = random_points(24, seed=1)
        pairs = [(p.genotype, p.config) for p in points]
        batch = sim.simulate_genotypes(pairs, **SMALL)
        assert len(batch) == 24
        for i, point in enumerate(points):
            report = sim.simulate_genotype(point.genotype, point.config, **SMALL)
            assert batch.latency_ms[i] == pytest.approx(report.latency_ms, **TOL)
            assert batch.energy_mj[i] == pytest.approx(report.energy_mj, **TOL)

    def test_every_dataflow_covered(self, sim, genotype):
        """All four mapping models agree with their scalar branches."""
        layers = network_workloads(genotype, **SMALL)
        from repro.accel.config import AcceleratorConfig

        configs = [
            AcceleratorConfig(14, 16, 196, 128, flow)
            for flow in ("WS", "OS", "RS", "NLR")
        ]
        batch = sim.simulate_many(layers, configs)
        for i, config in enumerate(configs):
            report = sim.simulate_network(layers, config)
            assert batch.energy_mj[i] == pytest.approx(report.energy_mj, **TOL)
            assert batch.latency_ms[i] == pytest.approx(report.latency_ms, **TOL)

    def test_include_noc_batch_parity(self, genotype):
        """NoC-aware batches run through the vectorised hop/energy model
        (no scalar fallback) and still match the scalar simulator."""
        noc_sim = SystolicArraySimulator(include_noc=True)
        layers = network_workloads(genotype, **SMALL)
        configs = list(enumerate_configs())[::17]
        batch = noc_sim.simulate_many(layers, configs)
        for i, config in enumerate(configs):
            report = noc_sim.simulate_network(layers, config)
            assert batch.energy_mj[i] == pytest.approx(report.energy_mj, **TOL)
            assert batch.latency_ms[i] == pytest.approx(report.latency_ms, **TOL)

    def test_include_noc_every_dataflow(self, genotype):
        """All four delivery-pattern branches of the vectorised NoC model
        agree with their scalar counterparts."""
        from repro.accel.config import AcceleratorConfig

        noc_sim = SystolicArraySimulator(include_noc=True)
        layers = network_workloads(genotype, **SMALL)
        configs = [
            AcceleratorConfig(14, 16, 196, 128, flow)
            for flow in ("WS", "OS", "RS", "NLR")
        ]
        batch = noc_sim.simulate_many(layers, configs)
        for i, config in enumerate(configs):
            report = noc_sim.simulate_network(layers, config)
            assert batch.energy_mj[i] == pytest.approx(report.energy_mj, **TOL)

    def test_include_noc_ragged_batch(self):
        """Per-point layer lists with NoC enabled match scalar simulation."""
        noc_sim = SystolicArraySimulator(include_noc=True)
        points = random_points(12, seed=2)
        pairs = [(p.genotype, p.config) for p in points]
        batch = noc_sim.simulate_genotypes(pairs, **SMALL)
        for i, point in enumerate(points):
            report = noc_sim.simulate_genotype(point.genotype, point.config, **SMALL)
            assert batch.energy_mj[i] == pytest.approx(report.energy_mj, **TOL)
            assert batch.latency_ms[i] == pytest.approx(report.latency_ms, **TOL)

    def test_noc_energy_exceeds_baseline(self, sim, genotype):
        """Batched NoC energies are strictly above the baseline batch."""
        noc_sim = SystolicArraySimulator(include_noc=True)
        layers = network_workloads(genotype, **SMALL)
        configs = list(enumerate_configs())[::100]
        base = sim.simulate_many(layers, configs)
        with_noc = noc_sim.simulate_many(layers, configs)
        assert np.all(with_noc.energy_mj > base.energy_mj)
        np.testing.assert_allclose(with_noc.latency_ms, base.latency_ms, rtol=1e-12)

    def test_empty_batch_rejected(self, sim, genotype):
        layers = network_workloads(genotype, **SMALL)
        with pytest.raises(ValueError):
            sim.simulate_many(layers, [])

    def test_mismatched_lengths_rejected(self, sim, genotype):
        layers = network_workloads(genotype, **SMALL)
        configs = list(enumerate_configs())[:3]
        with pytest.raises(ValueError):
            sim.simulate_many([layers, layers], configs)


class TestPredictBatch:
    def test_matches_predict(self):
        from repro.predict.gp import GaussianProcessRegressor

        samples = collect_samples(40, seed=2, **SMALL)
        gp = GaussianProcessRegressor(optimise=False)
        gp.fit(samples.x[:30], samples.energy_mj[:30])
        single = np.array([float(gp.predict(x[None, :])[0]) for x in samples.x[30:]])
        batch = gp.predict_batch(samples.x[30:])
        np.testing.assert_allclose(batch, single, rtol=1e-9)

    def test_chunked_matches_unchunked(self):
        from repro.predict.gp import GaussianProcessRegressor

        samples = collect_samples(40, seed=3, **SMALL)
        gp = GaussianProcessRegressor(optimise=False)
        gp.fit(samples.x[:30], samples.energy_mj[:30])
        full = gp.predict_batch(samples.x)
        chunked = gp.predict_batch(samples.x, chunk_size=7)
        np.testing.assert_allclose(chunked, full, rtol=1e-9)

    def test_invalid_chunk_size(self):
        from repro.predict.gp import GaussianProcessRegressor

        samples = collect_samples(10, seed=4, **SMALL)
        gp = GaussianProcessRegressor(optimise=False)
        gp.fit(samples.x, samples.energy_mj)
        with pytest.raises(ValueError):
            gp.predict_batch(samples.x, chunk_size=0)


class TestBatchEvaluatorParity:
    def test_matches_fast_evaluator(self, fast_evaluator):
        batch = BatchEvaluator(fast_evaluator)
        points = random_points(16, seed=5)
        batched = batch.evaluate_many(points)
        for point, b in zip(points, batched):
            s = fast_evaluator.evaluate(point)
            assert b.accuracy == s.accuracy  # same hypernet call, cached
            assert b.latency_ms == pytest.approx(s.latency_ms, rel=1e-9)
            assert b.energy_mj == pytest.approx(s.energy_mj, rel=1e-9)

    def test_scalar_entry_point(self, fast_evaluator):
        batch = BatchEvaluator(fast_evaluator)
        point = random_points(1, seed=6)[0]
        assert batch.evaluate(point) == batch.evaluate_many([point])[0]

    def test_evaluate_tokens_matches_points(self, fast_evaluator):
        batch = BatchEvaluator(fast_evaluator)
        points = random_points(6, seed=7)
        by_points = batch.evaluate_many(points)
        by_tokens = batch.evaluate_tokens([encode(p) for p in points])
        assert all(a is b for a, b in zip(by_points, by_tokens))


class TestBatchEvaluatorColdCache:
    def test_fresh_population_one_batched_hypernet_call(self, fast_evaluator):
        """A cold-cache batch of unique genotypes must trigger exactly ONE
        batched HyperNet evaluation, never per-candidate scalar runs."""
        batch = BatchEvaluator(fast_evaluator)
        points = random_points(12, seed=20)
        calls = {"many": 0, "scalar": 0}
        original_many = fast_evaluator.hypernet.evaluate_many
        original_scalar = fast_evaluator.hypernet.evaluate
        fast_evaluator.hypernet.evaluate_many = lambda *a, **k: (
            calls.__setitem__("many", calls["many"] + 1) or original_many(*a, **k)
        )
        fast_evaluator.hypernet.evaluate = lambda *a, **k: (
            calls.__setitem__("scalar", calls["scalar"] + 1)
            or original_scalar(*a, **k)
        )
        try:
            results = batch.evaluate_many(points)
        finally:
            fast_evaluator.hypernet.evaluate_many = original_many
            fast_evaluator.hypernet.evaluate = original_scalar
        assert len(results) == 12
        assert calls == {"many": 1, "scalar": 0}

    def test_accuracies_match_scalar_oracle(self, fast_evaluator):
        """Batched cold-cache accuracies equal scalar HyperNet.evaluate."""
        batch = BatchEvaluator(fast_evaluator)
        points = random_points(8, seed=21)
        results = batch.evaluate_many(points)
        for point, result in zip(points, results):
            oracle = fast_evaluator.hypernet.evaluate(
                point.genotype,
                fast_evaluator.val_images,
                fast_evaluator.val_labels,
                batch_size=fast_evaluator.eval_batch,
            )
            assert result.accuracy == oracle

    def test_fresh_insertions_evicting_cached_accuracies_mid_batch(
        self, fast_evaluator
    ):
        """A batch mixing cached genotypes with more fresh ones than the
        accuracy LRU can hold must not lose the cached values to
        mid-batch eviction (regression: KeyError on the evicted key)."""
        batch = BatchEvaluator(fast_evaluator, cache_size=4)
        cached_points = random_points(3, seed=23)
        batch.evaluate_many(cached_points)  # genotypes now in the acc LRU
        fresh_points = random_points(6, seed=24)
        repaired = [
            CoDesignPoint(genotype=p.genotype, config=fresh_points[0].config)
            for p in cached_points
        ]
        results = batch.evaluate_many(repaired + fresh_points)
        assert len(results) == 9
        for point, result in zip(repaired, results[:3]):
            scalar = fast_evaluator.evaluate(point)
            assert result.accuracy == scalar.accuracy

    def test_evaluate_accuracies_cached_and_ordered(self, fast_evaluator):
        from repro.nas.space import DnnSpace

        rng = np.random.default_rng(22)
        genotypes = [DnnSpace().sample(rng) for _ in range(6)]
        first = fast_evaluator.evaluate_accuracies(genotypes)
        # Second call is fully cached and order-preserving.
        second = fast_evaluator.evaluate_accuracies(list(reversed(genotypes)))
        assert second == list(reversed(first))


class TestBatchEvaluatorCache:
    def test_repeat_batch_hits(self, fast_evaluator):
        batch = BatchEvaluator(fast_evaluator)
        points = random_points(8, seed=8)
        first = batch.evaluate_many(points)
        assert batch.misses == 8 and batch.hits == 0
        second = batch.evaluate_many(points)
        assert batch.hits == 8
        assert all(a is b for a, b in zip(first, second))
        assert batch.hit_rate == pytest.approx(0.5)

    def test_duplicates_within_batch_counted_once(self, fast_evaluator):
        batch = BatchEvaluator(fast_evaluator)
        point = random_points(1, seed=9)[0]
        results = batch.evaluate_many([point, point, point])
        assert results[0] is results[1] is results[2]
        # One materialisation serves all three lookups: one miss, two hits.
        assert batch.misses == 1 and batch.hits == 2
        assert len(batch._lru) == 1

    def test_batch_larger_than_cache_still_returns_all(self, fast_evaluator):
        """A batch with more unique candidates than cache_size must not
        lose results to mid-batch eviction."""
        batch = BatchEvaluator(fast_evaluator, cache_size=2)
        points = random_points(5, seed=12)
        results = batch.evaluate_many(points)
        assert len(results) == 5
        for point, result in zip(points, results):
            scalar = fast_evaluator.evaluate(point)
            assert result.energy_mj == pytest.approx(scalar.energy_mj, rel=1e-9)
        assert len(batch._lru) == 2  # cache stayed bounded

    def test_off_grid_config_falls_back_gracefully(self, fast_evaluator):
        """A valid config off the Table 1 token grids must still evaluate
        (FastEvaluator handles it, so the drop-in batch path must too)."""
        from repro.accel.config import AcceleratorConfig

        batch = BatchEvaluator(fast_evaluator)
        rng = np.random.default_rng(13)
        point = CoDesignPoint(
            genotype=DnnSpace().sample(rng),
            config=AcceleratorConfig(10, 10, 300, 200, "OS"),
        )
        result = batch.evaluate(point)
        scalar = fast_evaluator.evaluate(point)
        assert result.energy_mj == pytest.approx(scalar.energy_mj, rel=1e-9)
        assert batch.evaluate(point) is result  # cached under the object key

    def test_lru_evicts_least_recent(self, fast_evaluator):
        batch = BatchEvaluator(fast_evaluator, cache_size=4)
        points = random_points(6, seed=10)
        batch.evaluate_many(points[:4])
        batch.evaluate_many(points[:1])  # refresh point 0
        batch.evaluate_many(points[4:])  # evicts points 1 and 2
        keys = list(batch._lru)
        assert tuple(encode(points[0])) in keys
        assert tuple(encode(points[1])) not in keys
        assert len(batch._lru) == 4

    def test_accuracy_shared_across_hw_variants(self, fast_evaluator):
        """Re-pairing a genotype with new hardware reuses its accuracy."""
        batch = BatchEvaluator(fast_evaluator)
        rng = np.random.default_rng(11)
        genotype = DnnSpace().sample(rng)
        variants = [
            CoDesignPoint(genotype=genotype, config=random_config(rng))
            for _ in range(5)
        ]
        results = batch.evaluate_many(variants)
        assert len({r.accuracy for r in results}) == 1
        assert len(batch._acc_lru) == 1

    def test_rejects_bad_cache_size(self, fast_evaluator):
        with pytest.raises(ValueError):
            BatchEvaluator(fast_evaluator, cache_size=0)


class TestBatchedSearchParity:
    def test_random_search_batch_invariant(self, fast_evaluator):
        """batch_size must not change the random-search trajectory."""
        shared = BatchEvaluator(fast_evaluator)
        scalar = RandomSearch(shared.evaluate, BALANCED, seed=3).run(10)
        batched = RandomSearch(
            shared.evaluate,
            BALANCED,
            seed=3,
            batch_size=4,
            evaluate_batch=shared.evaluate_many,
        ).run(10)
        assert [s.tokens for s in scalar.samples] == [
            s.tokens for s in batched.samples
        ]
        assert scalar.rewards() == pytest.approx(batched.rewards())

    def test_reinforce_batch_eval_invariant(self, fast_evaluator):
        """Batched scoring must not change the RL trajectory or gradients."""
        from repro.search.controller import Controller

        shared = BatchEvaluator(fast_evaluator)
        plain = ReinforceSearch(
            Controller(seed=4), shared.evaluate, BALANCED, batch_episodes=2, seed=4
        ).run(8)
        batched = ReinforceSearch(
            Controller(seed=4),
            shared.evaluate,
            BALANCED,
            batch_episodes=2,
            seed=4,
            evaluate_batch=shared.evaluate_many,
        ).run(8)
        assert [s.tokens for s in plain.samples] == [s.tokens for s in batched.samples]
        assert plain.rewards() == pytest.approx(batched.rewards())

    def test_evolution_batch_runs_and_fills_population(self, fast_evaluator):
        from repro.search.evolution import EvolutionSearch

        shared = BatchEvaluator(fast_evaluator)
        search = EvolutionSearch(
            shared.evaluate,
            BALANCED,
            population_size=6,
            tournament_size=2,
            seed=5,
            batch_size=3,
            evaluate_batch=shared.evaluate_many,
        )
        history = search.run(12)
        assert len(history) == 12
        assert len(search._population) == 6

    def test_bayesopt_batch_runs(self, fast_evaluator):
        from repro.search.bayesopt import BayesianOptSearch

        shared = BatchEvaluator(fast_evaluator)
        history = BayesianOptSearch(
            shared.evaluate,
            BALANCED,
            n_initial=4,
            pool_size=8,
            seed=6,
            feature_kwargs=SMALL,
            batch_size=3,
            evaluate_batch=shared.evaluate_many,
        ).run(9)
        assert len(history) == 9
