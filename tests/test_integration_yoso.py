"""End-to-end integration test: the full three-step YOSO pipeline."""

from __future__ import annotations

import numpy as np
import pytest

from repro.nn.data import SyntheticCifar
from repro.search import BALANCED, YosoConfig, YosoSearch
from repro.search.reward import RewardSpec


@pytest.fixture(scope="module")
def pipeline_result():
    dataset = SyntheticCifar(image_size=8, train_size=96, val_size=48,
                             test_size=48, seed=0)
    config = YosoConfig(
        num_cells=3,
        stem_channels=4,
        hypernet_epochs=1,
        hypernet_batch=32,
        predictor_samples=30,
        search_iterations=15,
        topn=2,
        rescore_epochs=1,
        seed=0,
    )
    spec = BALANCED.scaled(t_lat_ms=0.05, t_eer_mj=0.02)
    search = YosoSearch(dataset, spec, config=config)
    return search.run(), search


class TestPipeline:
    def test_produces_best_candidate(self, pipeline_result):
        result, _ = pipeline_result
        assert result.best is not None
        assert 0.0 <= result.best.accurate.accuracy <= 1.0
        assert result.best.accurate.latency_ms > 0
        assert result.best.accurate.energy_mj > 0

    def test_history_length(self, pipeline_result):
        result, _ = pipeline_result
        assert len(result.history) == 15

    def test_rescored_count_and_order(self, pipeline_result):
        result, _ = pipeline_result
        assert 1 <= len(result.rescored) <= 2
        # Best-first ordering by (threshold pass, reward).
        keys = [(c.meets_thresholds, c.reward) for c in result.rescored]
        assert keys == sorted(keys, reverse=True)
        assert result.best is result.rescored[0]

    def test_wall_times_recorded(self, pipeline_result):
        result, _ = pipeline_result
        assert set(result.wall_seconds) == {
            "step1_fast_evaluator", "step2_search", "step3_rescoring",
        }
        assert all(t >= 0 for t in result.wall_seconds.values())

    def test_best_point_decodes(self, pipeline_result):
        result, _ = pipeline_result
        point = result.best.point()
        assert point.genotype.normal.loose_ends()
        assert point.config.num_pes > 0

    def test_step_order_enforced(self):
        dataset = SyntheticCifar(image_size=8, train_size=32, val_size=16,
                                 test_size=16, seed=1)
        search = YosoSearch(dataset, BALANCED.scaled(0.1, 0.1),
                            config=YosoConfig(num_cells=3, stem_channels=4))
        with pytest.raises(RuntimeError):
            search.run_search()
        with pytest.raises(RuntimeError):
            search.finalize()

    def test_artifacts_exposed(self, pipeline_result):
        _, search = pipeline_result
        assert search.hypernet is not None
        assert search.samples is not None
        assert len(search.samples) == 30
        assert search.fast_evaluator is not None

    def test_finalize_batched_simulation_matches_scalar(self, pipeline_result):
        """Step 3 rescoring batches latency/energy into ONE simulator
        call; every candidate must match the scalar per-point oracle."""
        result, search = pipeline_result
        cfg = search.config
        for candidate in result.rescored:
            point = candidate.point()
            report = search.simulator.simulate_genotype(
                point.genotype,
                point.config,
                num_cells=cfg.num_cells,
                stem_channels=cfg.stem_channels,
                image_size=search.dataset.image_size,
                num_classes=cfg.num_classes,
            )
            np.testing.assert_allclose(
                candidate.accurate.latency_ms, report.latency_ms, rtol=1e-9
            )
            np.testing.assert_allclose(
                candidate.accurate.energy_mj, report.energy_mj, rtol=1e-9
            )


class TestTransferability:
    def test_pipeline_on_different_task(self):
        """Sec. I: the framework is "easily transferable to different
        applications" — run it on a 4-class task with a different image size."""
        dataset = SyntheticCifar(num_classes=4, image_size=8, train_size=64,
                                 val_size=32, test_size=32, seed=2)
        config = YosoConfig(
            num_cells=3, stem_channels=4, num_classes=4,
            hypernet_epochs=1, hypernet_batch=32,
            predictor_samples=20, search_iterations=8, topn=1,
            rescore_epochs=1, seed=2,
        )
        result = YosoSearch(dataset, BALANCED.scaled(0.1, 0.1), config=config).run()
        assert result.best.accurate.energy_mj > 0
        assert 0.0 <= result.best.accurate.accuracy <= 1.0


class TestQuickCodesign:
    def test_smoke_scale_entry_point(self):
        import repro

        result = repro.quick_codesign("smoke", seed=1)
        assert result.best.accurate.energy_mj > 0
        assert len(result.history) == repro.SMOKE.search_iterations
