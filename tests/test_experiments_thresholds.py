"""Tests for the threshold-sensitivity harness."""

from __future__ import annotations

import pytest

from repro.experiments import get_context
from repro.experiments.thresholds import run_threshold_sweep


@pytest.fixture(scope="module")
def ctx():
    return get_context("smoke", 0)


@pytest.fixture(scope="module")
def sweep(ctx):
    return run_threshold_sweep("smoke", 0, context=ctx, pool_size=24,
                               accuracy_model="uniform")


class TestThresholdSweep:
    def test_grid_size(self, sweep):
        assert len(sweep.cells) == 9  # 3x3 factor grid

    def test_winner_metrics_positive(self, sweep):
        for cell in sweep.cells:
            assert cell.winner_latency_ms > 0
            assert cell.winner_energy_mj > 0
            assert cell.winner_reward > 0
            assert 0 <= cell.winner_index < sweep.pool_size

    def test_tight_energy_threshold_never_worse(self, sweep):
        """Tightening t_eer can only pull the winner's energy down (or tie)."""
        tight, loose = sweep.energy_under_tight_vs_loose_eer()
        assert tight <= loose + 1e-12

    def test_tight_latency_threshold_never_worse(self, sweep):
        tight, loose = sweep.latency_under_tight_vs_loose_lat()
        assert tight <= loose + 1e-12

    def test_thresholds_recorded(self, sweep, ctx):
        lats = {c.t_lat_ms for c in sweep.cells}
        eers = {c.t_eer_mj for c in sweep.cells}
        assert len(lats) == 3 and len(eers) == 3
        assert ctx.t_lat_ms in lats  # factor 1.0 present

    def test_hypernet_accuracy_model(self, ctx):
        sweep = run_threshold_sweep("smoke", 0, context=ctx, pool_size=4,
                                    accuracy_model="hypernet")
        assert all(0.0 <= c.winner_accuracy <= 1.0 for c in sweep.cells)

    def test_invalid_args(self, ctx):
        with pytest.raises(ValueError):
            run_threshold_sweep("smoke", 0, context=ctx, pool_size=1)
        with pytest.raises(ValueError):
            run_threshold_sweep("smoke", 0, context=ctx, pool_size=4,
                                accuracy_model="oracle")

    def test_deterministic(self, ctx):
        a = run_threshold_sweep("smoke", 0, context=ctx, pool_size=8,
                                accuracy_model="uniform")
        b = run_threshold_sweep("smoke", 0, context=ctx, pool_size=8,
                                accuracy_model="uniform")
        assert [c.winner_index for c in a.cells] == [c.winner_index for c in b.cells]


class TestKernelRidge:
    def test_extended_lineup(self):
        from repro.predict import all_regressors

        assert len(all_regressors()) == 6  # the Fig. 4 six, unchanged
        extended = all_regressors(extended=True)
        assert len(extended) == 7
        assert extended[-1].name == "kernel_ridge"

    def test_fits_smooth_function(self):
        import numpy as np

        from repro.predict import KernelRidgeRegressor, r2

        rng = np.random.default_rng(0)
        x = rng.normal(size=(200, 3))
        y = np.sin(x[:, 0]) + x[:, 1]
        model = KernelRidgeRegressor()
        model.fit(x[:160], y[:160])
        assert r2(y[160:], model.predict(x[160:])) > 0.85

    def test_tuning_picks_grid_value(self):
        import numpy as np

        from repro.predict import KernelRidgeRegressor

        rng = np.random.default_rng(1)
        x = rng.normal(size=(40, 2))
        y = x[:, 0]
        model = KernelRidgeRegressor(tune=True)
        model.fit(x, y)
        assert model.length_scale in model.length_scale_grid

    def test_rejects_bad_alpha(self):
        from repro.predict import KernelRidgeRegressor

        with pytest.raises(ValueError):
            KernelRidgeRegressor(alpha=0.0)
