"""Unit tests for the numerical kernels, including numerical-gradient checks.

Gradient checks run in float64 (the kernels are dtype-generic) so central
differences are accurate to ~1e-6.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.nn import functional as F

from tests.conftest import numerical_gradient


def rand(shape, seed=0):
    return np.random.default_rng(seed).normal(size=shape).astype(np.float64)


# ---------------------------------------------------------------------------
# Geometry helpers
# ---------------------------------------------------------------------------


class TestGeometry:
    def test_conv_out_size_stride1_same(self):
        assert F.conv_out_size(16, 3, 1, 1) == 16

    def test_conv_out_size_stride2(self):
        assert F.conv_out_size(16, 3, 2, 1) == 8

    def test_conv_out_size_no_pad(self):
        assert F.conv_out_size(16, 5, 1, 0) == 12

    def test_pad_same_odd_kernels(self):
        assert F.pad_same(1) == 0
        assert F.pad_same(3) == 1
        assert F.pad_same(5) == 2

    @given(
        size=st.integers(4, 32),
        kernel=st.sampled_from([1, 3, 5]),
        stride=st.integers(1, 3),
    )
    def test_out_size_positive(self, size, kernel, stride):
        pad = F.pad_same(kernel)
        assert F.conv_out_size(size, kernel, stride, pad) >= 1


# ---------------------------------------------------------------------------
# im2col / col2im
# ---------------------------------------------------------------------------


class TestIm2col:
    def test_shape(self):
        x = rand((2, 3, 8, 8))
        cols = F.im2col(x, 3, 1, 1)
        assert cols.shape == (2, 3 * 9, 64)

    def test_identity_kernel1(self):
        x = rand((2, 4, 6, 6))
        cols = F.im2col(x, 1, 1, 0)
        assert np.allclose(cols.reshape(2, 4, 6, 6), x)

    def test_known_window(self):
        x = np.arange(16, dtype=np.float64).reshape(1, 1, 4, 4)
        cols = F.im2col(x, 2, 2, 0)  # (1, 4, 4)
        # First window is the top-left 2x2 block.
        assert cols[0, :, 0].tolist() == [0.0, 1.0, 4.0, 5.0]

    def test_pad_value_used(self):
        x = np.ones((1, 1, 2, 2))
        cols = F.im2col(x, 3, 1, 1, pad_value=-np.inf)
        assert np.isneginf(cols).any()

    def test_col2im_adjoint(self):
        """col2im is the exact adjoint of im2col: <im2col(x), c> == <x, col2im(c)>."""
        x = rand((2, 3, 6, 6), seed=1)
        c = rand((2, 27, 36), seed=2)
        lhs = float(np.sum(F.im2col(x, 3, 1, 1) * c))
        rhs = float(np.sum(x * F.col2im(c, x.shape, 3, 1, 1)))
        assert np.isclose(lhs, rhs, rtol=1e-10)

    @given(
        stride=st.integers(1, 2),
        kernel=st.sampled_from([1, 3]),
        size=st.integers(4, 9),
    )
    @settings(deadline=None, max_examples=20)
    def test_col2im_adjoint_property(self, stride, kernel, size):
        pad = F.pad_same(kernel)
        x = rand((1, 2, size, size), seed=3)
        cols = F.im2col(x, kernel, stride, pad)
        c = rand(cols.shape, seed=4)
        lhs = float(np.sum(cols * c))
        rhs = float(np.sum(x * F.col2im(c, x.shape, kernel, stride, pad)))
        assert np.isclose(lhs, rhs, rtol=1e-9, atol=1e-9)


# ---------------------------------------------------------------------------
# Convolution
# ---------------------------------------------------------------------------


class TestConv2d:
    def test_shape_stride1(self):
        x, w = rand((2, 3, 8, 8)), rand((5, 3, 3, 3))
        out, _ = F.conv2d_forward(x, w, 1, 1)
        assert out.shape == (2, 5, 8, 8)

    def test_shape_stride2(self):
        x, w = rand((2, 3, 8, 8)), rand((5, 3, 3, 3))
        out, _ = F.conv2d_forward(x, w, 2, 1)
        assert out.shape == (2, 5, 4, 4)

    def test_1x1_is_channel_mix(self):
        x = rand((1, 3, 4, 4))
        w = rand((2, 3, 1, 1))
        out, _ = F.conv2d_forward(x, w, 1, 0)
        expected = np.einsum("nchw,kc->nkhw", x, w[:, :, 0, 0])
        assert np.allclose(out, expected, rtol=1e-10)

    def test_rejects_bad_channels(self):
        with pytest.raises(ValueError):
            F.conv2d_forward(rand((1, 3, 4, 4)), rand((2, 4, 3, 3)), 1, 1)

    def test_grad_x(self):
        x, w = rand((2, 2, 5, 5), seed=5), rand((3, 2, 3, 3), seed=6)
        g = rand((2, 3, 5, 5), seed=7)

        def loss():
            out, _ = F.conv2d_forward(x, w, 1, 1)
            return float(np.sum(out * g))

        _, cache = F.conv2d_forward(x, w, 1, 1)
        grad_x, _ = F.conv2d_backward(g, cache)
        num = numerical_gradient(loss, x)
        assert np.allclose(grad_x, num, rtol=1e-4, atol=1e-6)

    def test_grad_w(self):
        x, w = rand((2, 2, 5, 5), seed=8), rand((3, 2, 3, 3), seed=9)
        g = rand((2, 3, 3, 3), seed=10)

        def loss():
            out, _ = F.conv2d_forward(x, w, 2, 1)
            return float(np.sum(out * g))

        _, cache = F.conv2d_forward(x, w, 2, 1)
        _, grad_w = F.conv2d_backward(g, cache)
        num = numerical_gradient(loss, w)
        assert np.allclose(grad_w, num, rtol=1e-4, atol=1e-6)


class TestDepthwiseConv2d:
    def test_shape(self):
        x, w = rand((2, 4, 8, 8)), rand((4, 3, 3))
        out, _ = F.depthwise_conv2d_forward(x, w, 1, 1)
        assert out.shape == (2, 4, 8, 8)

    def test_channels_independent(self):
        """Zeroing one channel's filter must zero exactly that channel."""
        x = rand((1, 3, 6, 6))
        w = rand((3, 3, 3))
        w[1] = 0.0
        out, _ = F.depthwise_conv2d_forward(x, w, 1, 1)
        assert np.allclose(out[:, 1], 0.0)
        assert not np.allclose(out[:, 0], 0.0)

    def test_matches_grouped_dense_conv(self):
        """Depthwise == dense conv with a block-diagonal weight."""
        x = rand((1, 2, 5, 5), seed=11)
        w = rand((2, 3, 3), seed=12)
        dw, _ = F.depthwise_conv2d_forward(x, w, 1, 1)
        dense_w = np.zeros((2, 2, 3, 3))
        dense_w[0, 0] = w[0]
        dense_w[1, 1] = w[1]
        dense, _ = F.conv2d_forward(x, dense_w, 1, 1)
        assert np.allclose(dw, dense, rtol=1e-10)

    def test_rejects_bad_channels(self):
        with pytest.raises(ValueError):
            F.depthwise_conv2d_forward(rand((1, 3, 4, 4)), rand((2, 3, 3)), 1, 1)

    def test_grad_x_and_w(self):
        x, w = rand((1, 2, 5, 5), seed=13), rand((2, 3, 3), seed=14)
        g = rand((1, 2, 5, 5), seed=15)

        def loss_x():
            out, _ = F.depthwise_conv2d_forward(x, w, 1, 1)
            return float(np.sum(out * g))

        _, cache = F.depthwise_conv2d_forward(x, w, 1, 1)
        grad_x, grad_w = F.depthwise_conv2d_backward(g, cache)
        assert np.allclose(grad_x, numerical_gradient(loss_x, x), rtol=1e-4, atol=1e-6)
        assert np.allclose(grad_w, numerical_gradient(loss_x, w), rtol=1e-4, atol=1e-6)


# ---------------------------------------------------------------------------
# Pooling
# ---------------------------------------------------------------------------


class TestPooling:
    def test_maxpool_known_values(self):
        x = np.arange(16, dtype=np.float64).reshape(1, 1, 4, 4)
        out, _ = F.maxpool2d_forward(x, 2, 2, 0)
        assert out.reshape(-1).tolist() == [5.0, 7.0, 13.0, 15.0]

    def test_maxpool_padding_never_wins(self):
        x = -np.ones((1, 1, 4, 4))
        out, _ = F.maxpool2d_forward(x, 3, 1, 1)
        assert np.all(out == -1.0)

    def test_maxpool_grad(self):
        x = rand((2, 2, 6, 6), seed=16)
        g = rand((2, 2, 6, 6), seed=17)

        def loss():
            out, _ = F.maxpool2d_forward(x, 3, 1, 1)
            return float(np.sum(out * g))

        _, cache = F.maxpool2d_forward(x, 3, 1, 1)
        grad_x = F.maxpool2d_backward(g, cache)
        assert np.allclose(grad_x, numerical_gradient(loss, x), rtol=1e-4, atol=1e-6)

    def test_avgpool_constant_input(self):
        x = np.full((1, 2, 4, 4), 3.0)
        out, _ = F.avgpool2d_forward(x, 2, 2, 0)
        assert np.allclose(out, 3.0)

    def test_avgpool_grad(self):
        x = rand((2, 2, 6, 6), seed=18)
        g = rand((2, 2, 3, 3), seed=19)

        def loss():
            out, _ = F.avgpool2d_forward(x, 2, 2, 0)
            return float(np.sum(out * g))

        _, cache = F.avgpool2d_forward(x, 2, 2, 0)
        grad_x = F.avgpool2d_backward(g, cache)
        assert np.allclose(grad_x, numerical_gradient(loss, x), rtol=1e-4, atol=1e-6)

    def test_global_avgpool(self):
        x = rand((3, 4, 5, 5), seed=20)
        out, cache = F.global_avgpool_forward(x)
        assert out.shape == (3, 4)
        assert np.allclose(out, x.mean(axis=(2, 3)))
        g = rand((3, 4), seed=21)
        grad = F.global_avgpool_backward(g, cache)
        assert np.allclose(grad.sum(axis=(2, 3)), g)


# ---------------------------------------------------------------------------
# Pointwise / dense / losses
# ---------------------------------------------------------------------------


class TestPointwise:
    def test_relu(self):
        x = np.array([-1.0, 0.0, 2.0])
        out, mask = F.relu_forward(x)
        assert out.tolist() == [0.0, 0.0, 2.0]
        assert F.relu_backward(np.ones(3), mask).tolist() == [0.0, 0.0, 1.0]

    def test_linear_grads(self):
        x, w, b = rand((4, 3), seed=22), rand((2, 3), seed=23), rand((2,), seed=24)
        g = rand((4, 2), seed=25)

        def loss():
            out, _ = F.linear_forward(x, w, b)
            return float(np.sum(out * g))

        _, cache = F.linear_forward(x, w, b)
        gx, gw, gb = F.linear_backward(g, cache)
        assert np.allclose(gx, numerical_gradient(loss, x), rtol=1e-5, atol=1e-7)
        assert np.allclose(gw, numerical_gradient(loss, w), rtol=1e-5, atol=1e-7)
        assert np.allclose(gb, numerical_gradient(loss, b), rtol=1e-5, atol=1e-7)

    def test_batchnorm_normalises(self):
        x = rand((8, 3, 4, 4), seed=26) * 5 + 2
        gamma, beta = np.ones(3), np.zeros(3)
        rm, rv = np.zeros(3), np.ones(3)
        out, cache = F.batchnorm_forward(x, gamma, beta, rm, rv, 0.1, 1e-5, True)
        assert cache is not None
        assert np.allclose(out.mean(axis=(0, 2, 3)), 0.0, atol=1e-7)
        assert np.allclose(out.std(axis=(0, 2, 3)), 1.0, atol=1e-3)

    def test_batchnorm_running_stats_updated(self):
        x = rand((8, 2, 4, 4), seed=27) + 10.0
        rm, rv = np.zeros(2), np.ones(2)
        F.batchnorm_forward(x, np.ones(2), np.zeros(2), rm, rv, 0.5, 1e-5, True)
        assert np.all(rm > 1.0)  # moved toward the batch mean of ~10

    def test_batchnorm_eval_uses_running_stats(self):
        x = rand((4, 2, 3, 3), seed=28)
        rm, rv = np.zeros(2), np.ones(2)
        out, cache = F.batchnorm_forward(
            x, np.ones(2), np.zeros(2), rm, rv, 0.1, 1e-5, False
        )
        assert cache is None
        assert np.allclose(out, x / np.sqrt(1 + 1e-5), rtol=1e-6)

    def test_batchnorm_grad(self):
        x = rand((4, 2, 3, 3), seed=29)
        gamma, beta = rand((2,), seed=30), rand((2,), seed=31)
        g = rand((4, 2, 3, 3), seed=32)

        def loss():
            rm, rv = np.zeros(2), np.ones(2)
            out, _ = F.batchnorm_forward(x, gamma, beta, rm, rv, 0.1, 1e-5, True)
            return float(np.sum(out * g))

        rm, rv = np.zeros(2), np.ones(2)
        _, cache = F.batchnorm_forward(x, gamma, beta, rm, rv, 0.1, 1e-5, True)
        gx, ggamma, gbeta = F.batchnorm_backward(g, cache)
        assert np.allclose(gx, numerical_gradient(loss, x), rtol=1e-3, atol=1e-5)
        assert np.allclose(ggamma, numerical_gradient(loss, gamma), rtol=1e-4, atol=1e-6)
        assert np.allclose(gbeta, numerical_gradient(loss, beta), rtol=1e-4, atol=1e-6)

    @given(st.integers(1, 6))
    @settings(deadline=None)
    def test_softmax_sums_to_one(self, n):
        x = np.random.default_rng(n).normal(size=(n, 5)) * 10
        p = F.softmax(x, axis=1)
        assert np.allclose(p.sum(axis=1), 1.0)
        assert np.all(p >= 0)

    def test_softmax_shift_invariance(self):
        x = rand((2, 5), seed=33)
        assert np.allclose(F.softmax(x), F.softmax(x + 100.0), rtol=1e-9)

    def test_cross_entropy_uniform(self):
        logits = np.zeros((4, 10))
        labels = np.array([0, 1, 2, 3])
        loss, grad = F.softmax_cross_entropy(logits, labels)
        assert np.isclose(loss, np.log(10.0), rtol=1e-6)
        assert grad.shape == (4, 10)

    def test_cross_entropy_grad(self):
        logits = rand((3, 5), seed=34)
        labels = np.array([1, 0, 4])

        def loss():
            l, _ = F.softmax_cross_entropy(logits, labels)
            return l

        _, grad = F.softmax_cross_entropy(logits, labels)
        assert np.allclose(grad, numerical_gradient(loss, logits), rtol=1e-4, atol=1e-7)

    def test_cross_entropy_perfect_prediction(self):
        logits = np.full((2, 3), -50.0)
        logits[0, 1] = 50.0
        logits[1, 2] = 50.0
        loss, _ = F.softmax_cross_entropy(logits, np.array([1, 2]))
        assert loss < 1e-6


class TestInferenceKernels:
    """Forward-only kernels must match their training counterparts."""

    def test_conv2d_infer_matches_forward(self):
        for kernel, stride, pad in [(3, 1, 1), (5, 1, 2), (3, 2, 1)]:
            x = rand((6, 4, 8, 8), seed=40)
            w = rand((5, 4, kernel, kernel), seed=41)
            out, _ = F.conv2d_forward(x, w, stride, pad)
            np.testing.assert_array_equal(F.conv2d_infer(x, w, stride, pad), out)

    def test_conv2d_infer_pointwise_matches_forward(self):
        for stride in (1, 2):
            x = rand((6, 4, 8, 8), seed=42)
            w = rand((7, 4, 1, 1), seed=43)
            out, _ = F.conv2d_forward(x, w, stride, 0)
            np.testing.assert_array_equal(F.conv2d_infer(x, w, stride, 0), out)

    def test_depthwise_infer_matches_forward(self):
        for kernel, stride in [(3, 1), (5, 1), (3, 2)]:
            pad = (kernel - 1) // 2
            x = rand((6, 4, 8, 8), seed=44)
            w = rand((4, kernel, kernel), seed=45)
            out, _ = F.depthwise_conv2d_forward(x, w, stride, pad)
            np.testing.assert_allclose(
                F.depthwise_conv2d_infer(x, w, stride, pad), out,
                rtol=1e-5, atol=1e-6,
            )

    def test_maxpool_infer_bitwise_identical(self):
        for stride in (1, 2):
            x = rand((6, 4, 8, 8), seed=46)
            out, _ = F.maxpool2d_forward(x, 3, stride, 1)
            np.testing.assert_array_equal(F.maxpool2d_infer(x, 3, stride, 1), out)

    def test_avgpool_infer_matches_forward(self):
        for stride in (1, 2):
            x = rand((6, 4, 8, 8), seed=47)
            out, _ = F.avgpool2d_forward(x, 3, stride, 1)
            np.testing.assert_allclose(
                F.avgpool2d_infer(x, 3, stride, 1), out, rtol=1e-6, atol=1e-7
            )


class TestSegmentedBatchNorm:
    """segments > 1 must equal separate per-segment forwards."""

    def _params(self, c):
        gamma = rand((c,), seed=50) * 0.5 + 1.0
        beta = rand((c,), seed=51) * 0.1
        return gamma, beta

    def test_matches_per_segment_scalar(self):
        x = rand((12, 3, 4, 4), seed=52)
        gamma, beta = self._params(3)
        seg_out, cache = F.batchnorm_forward(
            x, gamma, beta, np.zeros(3, np.float32), np.ones(3, np.float32),
            0.1, 1e-5, True, segments=4,
        )
        assert cache is None  # forward-only: no backward cache
        for s in range(4):
            part, _ = F.batchnorm_forward(
                x[s * 3 : (s + 1) * 3], gamma, beta,
                np.zeros(3, np.float32), np.ones(3, np.float32),
                0.1, 1e-5, True,
            )
            np.testing.assert_allclose(
                seg_out[s * 3 : (s + 1) * 3], part, rtol=1e-6, atol=1e-6
            )

    def test_segments_one_unchanged(self):
        x = rand((8, 3, 4, 4), seed=53)
        gamma, beta = self._params(3)
        rm, rv = np.zeros(3, np.float32), np.ones(3, np.float32)
        plain, cache = F.batchnorm_forward(x, gamma, beta, rm.copy(), rv.copy(), 0.1, 1e-5, True)
        seg, _ = F.batchnorm_forward(x, gamma, beta, rm.copy(), rv.copy(), 0.1, 1e-5, True, segments=1)
        assert cache is not None
        np.testing.assert_array_equal(plain, seg)

    def test_indivisible_batch_rejected(self):
        x = rand((10, 3, 4, 4), seed=54)
        gamma, beta = self._params(3)
        with pytest.raises(ValueError):
            F.batchnorm_forward(
                x, gamma, beta, np.zeros(3, np.float32), np.ones(3, np.float32),
                0.1, 1e-5, True, segments=4,
            )

    def test_bn_segments_scope(self):
        from repro.nn.layers import BatchNorm2d, bn_segments

        x = rand((8, 3, 4, 4), seed=55)
        bn = BatchNorm2d(3)
        with bn_segments(2):
            grouped = bn.forward(x)
        separate = np.concatenate([bn.forward(x[:4]), bn.forward(x[4:])])
        np.testing.assert_allclose(grouped, separate, rtol=1e-6, atol=1e-6)
        with pytest.raises(ValueError):
            with bn_segments(0):
                pass

    def test_forward_infer_matches_module(self):
        from repro.nn.infer import forward_infer
        from repro.nn.layers import ReLUConvBN

        x = rand((8, 4, 8, 8), seed=56)
        op = ReLUConvBN(4, 4, kernel=3, rng=np.random.default_rng(57))
        np.testing.assert_allclose(
            forward_infer(op, x), op(x), rtol=1e-5, atol=1e-6
        )
