"""Tests for optimisers and the cosine learning-rate schedule."""

from __future__ import annotations

import numpy as np
import pytest

from repro.nn.module import Parameter
from repro.nn.optim import SGD, Adam, CosineSchedule, clip_grad_norm


def make_param(value=1.0, grad=0.5, weight_decay=True):
    p = Parameter(np.full(3, value), weight_decay=weight_decay)
    p.grad += grad
    return p


class TestSGD:
    def test_basic_step(self):
        p = make_param(weight_decay=False)
        SGD([p], lr=0.1, momentum=0.0, weight_decay=0.0, skip_zero_grad=False).step()
        assert np.allclose(p.data, 1.0 - 0.1 * 0.5)

    def test_momentum_accumulates(self):
        p = Parameter(np.zeros(1))
        opt = SGD([p], lr=1.0, momentum=0.5, weight_decay=0.0, skip_zero_grad=False)
        p.grad[:] = 1.0
        opt.step()  # v = -1, x = -1
        p.grad[:] = 1.0
        opt.step()  # v = -1.5, x = -2.5
        assert np.isclose(p.data[0], -2.5)

    def test_weight_decay_applied_only_when_flagged(self):
        decayed = make_param(grad=0.0)
        plain = make_param(grad=0.0, weight_decay=False)
        # Force non-zero grad check off so the decay path runs.
        opt = SGD([decayed, plain], lr=0.1, momentum=0.0, weight_decay=0.1,
                  skip_zero_grad=False)
        opt.step()
        assert np.all(decayed.data < 1.0)
        assert np.allclose(plain.data, 1.0)

    def test_skip_zero_grad_leaves_param_untouched(self):
        p = Parameter(np.ones(2))
        opt = SGD([p], lr=0.1, weight_decay=0.1, skip_zero_grad=True)
        opt.step()
        assert np.allclose(p.data, 1.0)

    def test_skip_zero_grad_velocity_frozen(self):
        """A parameter off the sampled path must not coast on old momentum."""
        p = Parameter(np.zeros(1))
        opt = SGD([p], lr=1.0, momentum=0.9, weight_decay=0.0, skip_zero_grad=True)
        p.grad[:] = 1.0
        opt.step()
        moved = p.data.copy()
        p.zero_grad()
        opt.step()  # zero grad: should not move
        assert np.array_equal(p.data, moved)

    def test_zero_grad(self):
        p = make_param()
        opt = SGD([p])
        opt.zero_grad()
        assert np.all(p.grad == 0)

    def test_empty_params_rejected(self):
        with pytest.raises(ValueError):
            SGD([])


class TestAdam:
    def test_first_step_is_lr_sized(self):
        p = Parameter(np.zeros(1))
        p.grad[:] = 0.5
        Adam([p], lr=0.01).step()
        # Bias-corrected first Adam step is ~lr * sign(grad).
        assert np.isclose(p.data[0], -0.01, rtol=1e-4)

    def test_converges_on_quadratic(self):
        p = Parameter(np.array([5.0]))
        opt = Adam([p], lr=0.1)
        for _ in range(500):
            p.zero_grad()
            p.grad[:] = 2.0 * p.data  # d/dx x^2
            opt.step()
        assert abs(p.data[0]) < 1e-2

    def test_weight_decay(self):
        p = Parameter(np.ones(1))
        opt = Adam([p], lr=0.01, weight_decay=1.0)
        opt.step()  # grad = 0 + wd*1 -> moves down
        assert p.data[0] < 1.0

    def test_empty_params_rejected(self):
        with pytest.raises(ValueError):
            Adam([])


class TestCosineSchedule:
    def test_endpoints(self):
        sched = CosineSchedule(0.05, 0.0001, total_steps=300)
        assert np.isclose(sched.lr_at(0), 0.05)
        assert np.isclose(sched.lr_at(299), 0.0001)

    def test_monotone_decreasing(self):
        sched = CosineSchedule(0.1, 0.001, total_steps=50)
        lrs = [sched.lr_at(i) for i in range(50)]
        assert all(a >= b for a, b in zip(lrs, lrs[1:]))

    def test_midpoint(self):
        sched = CosineSchedule(1.0, 0.0, total_steps=101)
        assert np.isclose(sched.lr_at(50), 0.5, atol=1e-6)

    def test_clamps_out_of_range(self):
        sched = CosineSchedule(0.1, 0.01, total_steps=10)
        assert sched.lr_at(-5) == sched.lr_at(0)
        assert sched.lr_at(100) == sched.lr_at(9)

    def test_apply_sets_optimiser_lr(self):
        p = make_param()
        opt = SGD([p], lr=99.0)
        sched = CosineSchedule(0.05, 0.001, total_steps=10)
        lr = sched.apply(opt, 0)
        assert opt.lr == lr == 0.05

    def test_single_step_schedule(self):
        assert CosineSchedule(0.1, 0.01, total_steps=1).lr_at(0) == 0.1

    def test_invalid_args(self):
        with pytest.raises(ValueError):
            CosineSchedule(total_steps=0)
        with pytest.raises(ValueError):
            CosineSchedule(lr_max=0.001, lr_min=0.1)


class TestClipGradNorm:
    def test_no_clip_below_threshold(self):
        p = make_param(grad=0.1)
        before = p.grad.copy()
        norm = clip_grad_norm([p], max_norm=10.0)
        assert np.array_equal(p.grad, before)
        assert np.isclose(norm, np.sqrt(3 * 0.01), rtol=1e-5)

    def test_clips_above_threshold(self):
        p = make_param(grad=10.0)
        clip_grad_norm([p], max_norm=1.0)
        total = np.sqrt(np.sum(p.grad**2))
        assert np.isclose(total, 1.0, rtol=1e-5)

    def test_multiple_params_global_norm(self):
        a, b = make_param(grad=3.0), make_param(grad=4.0)
        clip_grad_norm([a, b], max_norm=1.0)
        total = np.sqrt(np.sum(a.grad**2) + np.sum(b.grad**2))
        assert np.isclose(total, 1.0, rtol=1e-5)
