"""Tests for workload extraction: MAC formulas, shapes, genotype expansion."""

from __future__ import annotations

import pytest

from repro.accel.workload import (
    WORD_BYTES,
    LayerWorkload,
    network_workloads,
    reduction_positions,
)


class TestLayerWorkload:
    def test_conv_macs_hand_computed(self):
        # 16x16 output, 8->16 channels, 3x3: 16*8*9*16*16 = 294912.
        layer = LayerWorkload("l", "conv", 8, 16, 16, 3, 1)
        assert layer.macs == 16 * 8 * 9 * 16 * 16

    def test_conv_stride2_output(self):
        layer = LayerWorkload("l", "conv", 8, 8, 16, 3, 2)
        assert layer.out_size == 8
        assert layer.macs == 8 * 8 * 9 * 8 * 8

    def test_dwconv_macs(self):
        # depthwise C*k^2*OH*OW + pointwise K*C*OH*OW.
        layer = LayerWorkload("l", "dwconv", 8, 8, 16, 3, 1)
        assert layer.macs == 8 * 9 * 256 + 8 * 8 * 256

    def test_dwconv_cheaper_than_conv(self):
        conv = LayerWorkload("a", "conv", 32, 32, 16, 3, 1)
        dw = LayerWorkload("b", "dwconv", 32, 32, 16, 3, 1)
        assert dw.macs < conv.macs

    def test_pool_macs_discounted(self):
        pool = LayerWorkload("p", "pool", 8, 8, 16, 3, 1)
        assert 0 < pool.macs < 8 * 9 * 256  # comparator discount applied

    def test_pool_has_no_weights(self):
        assert LayerWorkload("p", "pool", 8, 8, 16, 3, 1).weight_bytes == 0

    def test_linear(self):
        fc = LayerWorkload("fc", "linear", 128, 10, 1, 1, 1)
        assert fc.macs == 1280
        assert fc.weight_bytes == 1280 * WORD_BYTES
        assert fc.out_size == 1

    def test_conv_weight_bytes(self):
        layer = LayerWorkload("l", "conv", 4, 8, 16, 5, 1)
        assert layer.weight_bytes == 8 * 4 * 25 * WORD_BYTES

    def test_fmap_bytes(self):
        layer = LayerWorkload("l", "conv", 4, 8, 16, 3, 2)
        assert layer.ifmap_bytes == 4 * 256 * WORD_BYTES
        assert layer.ofmap_bytes == 8 * 64 * WORD_BYTES

    def test_kernel5_vs_3(self):
        k3 = LayerWorkload("a", "conv", 8, 8, 16, 3, 1)
        k5 = LayerWorkload("b", "conv", 8, 8, 16, 5, 1)
        assert k5.macs / k3.macs == pytest.approx(25 / 9)

    def test_rejects_unknown_kind(self):
        with pytest.raises(ValueError):
            LayerWorkload("l", "fft", 4, 4, 8, 3, 1)

    def test_rejects_non_positive(self):
        with pytest.raises(ValueError):
            LayerWorkload("l", "conv", 0, 4, 8, 3, 1)


class TestReductionPositions:
    def test_paper_layout_six_cells(self):
        # 6 cells -> reductions at 2 and 4 (4 normal + 2 reduction).
        assert reduction_positions(6) == (2, 4)

    def test_three_cells(self):
        assert reduction_positions(3) == (1, 2)

    def test_single_cell(self):
        assert reduction_positions(1) == ()

    def test_two_cells(self):
        assert reduction_positions(2) == (1,)


class TestNetworkWorkloads:
    def test_structure(self, genotype):
        layers = network_workloads(genotype, num_cells=6, stem_channels=16,
                                   image_size=32)
        names = [l.name for l in layers]
        assert names[0] == "stem"
        assert names[-1] == "classifier"
        # Per cell: 2 preprocess + 10 node ops.
        assert len(layers) == 1 + 6 * 12 + 1

    def test_spatial_sizes_follow_reductions(self, genotype):
        layers = network_workloads(genotype, num_cells=6, stem_channels=8,
                                   image_size=32)
        by_cell = {}
        for l in layers:
            if l.name.startswith("cell") and ".node" in l.name:
                cell = int(l.name[4])
                by_cell.setdefault(cell, []).append(l)
        # Cells 0-1 at 32, 2-3 at 16, 4-5 at 8 (output sizes).
        assert all(l.out_size == 32 for l in by_cell[0])
        assert all(l.out_size == 16 for l in by_cell[2])
        assert all(l.out_size == 8 for l in by_cell[4])

    def test_channels_double_at_reductions(self, genotype):
        layers = network_workloads(genotype, num_cells=6, stem_channels=8,
                                   image_size=32)
        node_layers = [l for l in layers if ".node" in l.name]
        cell0 = [l for l in node_layers if l.name.startswith("cell0.")]
        cell2 = [l for l in node_layers if l.name.startswith("cell2.")]
        cell4 = [l for l in node_layers if l.name.startswith("cell4.")]
        assert all(l.in_channels == 8 for l in cell0)
        assert all(l.in_channels == 16 for l in cell2)
        assert all(l.in_channels == 32 for l in cell4)

    def test_classifier_width_matches_loose_ends(self, genotype):
        layers = network_workloads(genotype, num_cells=6, stem_channels=8,
                                   image_size=32)
        loose = len(genotype.normal.loose_ends())
        assert layers[-1].in_channels == 32 * loose

    def test_consistent_with_cell_network_params(self, genotype, rng):
        """Workload weight bytes must equal the real network's conv/linear
        parameter count (x WORD_BYTES): the simulator and the trainable net
        describe the same machine."""
        from repro.nas.network import CellNetwork

        net = CellNetwork(genotype, num_cells=3, stem_channels=8, rng=rng)
        layers = network_workloads(genotype, num_cells=3, stem_channels=8,
                                   image_size=16)
        workload_weights = sum(l.weight_bytes for l in layers) // WORD_BYTES
        net_weights = sum(
            p.data.size for p in net.parameters() if p.weight_decay
        )
        # BN parameters are excluded on both sides; linear bias is tiny and
        # excluded from the workload model.
        bias = net.classifier.bias.data.size
        assert workload_weights == net_weights + 0 or workload_weights == net_weights
        assert abs(workload_weights - net_weights) <= bias

    def test_total_macs_scale_with_image_size(self, genotype):
        small = network_workloads(genotype, num_cells=3, stem_channels=8,
                                  image_size=16)
        large = network_workloads(genotype, num_cells=3, stem_channels=8,
                                  image_size=32)
        assert sum(l.macs for l in large) > 3 * sum(l.macs for l in small)
