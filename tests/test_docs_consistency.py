"""Documentation/code consistency checks.

Keeps README.md, DESIGN.md and EXPERIMENTS.md honest: every module,
example and benchmark they reference must exist, and the paper constants
quoted in prose must match the code.
"""

from __future__ import annotations

import os
import re

import pytest

ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))


def read(name: str) -> str:
    with open(os.path.join(ROOT, name)) as handle:
        return handle.read()


class TestReferencedFilesExist:
    @pytest.mark.parametrize("doc", ["README.md", "DESIGN.md", "EXPERIMENTS.md"])
    def test_docs_present(self, doc):
        assert os.path.exists(os.path.join(ROOT, doc))

    def test_examples_referenced_in_readme_exist(self):
        readme = read("README.md")
        for match in re.findall(r"examples/(\w+\.py)", readme):
            assert os.path.exists(os.path.join(ROOT, "examples", match)), match

    def test_benchmarks_referenced_in_readme_exist(self):
        readme = read("README.md")
        for match in re.findall(r"(test_\w+\.py)", readme):
            assert os.path.exists(os.path.join(ROOT, "benchmarks", match)), match

    def test_design_bench_targets_exist(self):
        design = read("DESIGN.md")
        for match in re.findall(r"benchmarks/(test_\w+\.py)", design):
            assert os.path.exists(os.path.join(ROOT, "benchmarks", match)), match

    def test_design_modules_exist(self):
        design = read("DESIGN.md")
        for match in set(re.findall(r"`repro\.([a-z_.]+)`", design)):
            parts = match.split(".")
            # Accept `repro.pkg.module` or `repro.pkg.module.attribute`.
            candidates = [parts, parts[:-1]] if len(parts) > 1 else [parts]
            found = False
            for candidate in candidates:
                base = os.path.join(ROOT, "src", "repro", *candidate)
                if os.path.exists(base + ".py") or os.path.isdir(base):
                    found = True
                    break
            assert found, f"repro.{match} referenced in DESIGN.md but missing"


class TestPaperConstantsMatchCode:
    def test_sequence_split(self):
        from repro.nas.encoding import DNN_TOKENS, HW_TOKENS, SEQUENCE_LENGTH

        # Sec. III-C: "44 hyper-parameters (where S=40, L=4)".
        assert (DNN_TOKENS, HW_TOKENS, SEQUENCE_LENGTH) == (40, 4, 44)

    def test_controller_hidden_units(self):
        from repro.search.controller import Controller

        assert Controller().hidden_dim == 120  # "LSTM with 120 hidden units"

    def test_controller_hyperparameters(self):
        from repro.search.controller import Controller
        from repro.search.reinforce import ReinforceSearch
        from repro.search.reward import BALANCED
        from repro.search.evaluator import Evaluation

        c = Controller()
        assert c.temperature == pytest.approx(1.1)
        assert c.tanh_constant == pytest.approx(2.5)
        search = ReinforceSearch(
            c, lambda p: Evaluation(0.5, 1.0, 1.0), BALANCED
        )
        assert search.optimiser.lr == pytest.approx(0.0035)
        assert search.entropy_weight == pytest.approx(1e-4)

    def test_paper_thresholds(self):
        from repro.search.reward import PAPER_T_EER_MJ, PAPER_T_LAT_MS

        assert PAPER_T_LAT_MS == 1.2  # "latency within 1.2 ms"
        assert PAPER_T_EER_MJ == 9.0  # "energy within 9 mJ"

    def test_six_operations(self):
        from repro.nas.ops import NUM_OPS, OP_NAMES

        assert NUM_OPS == 6
        assert set(OP_NAMES) == {
            "conv3x3", "conv5x5", "dwconv3x3", "dwconv5x5",
            "maxpool3x3", "avgpool3x3",
        }

    def test_seven_nodes_per_cell(self):
        from repro.nas.genotype import NUM_COMPUTED, NUM_NODES

        assert NUM_NODES == 7  # "in this work, we use 7 nodes"
        assert NUM_COMPUTED == 5

    def test_hypernet_recipe_defaults(self):
        from repro.nas.hypernet import HyperNetTrainer
        from repro.nas.hypernet import HyperNet
        import numpy as np

        trainer = HyperNetTrainer(
            HyperNet(num_cells=3, stem_channels=4, rng=np.random.default_rng(0))
        )
        # Sec. IV-B: 300 epochs, momentum 0.9, wd 4e-5, cosine 0.05 -> 0.0001.
        assert trainer.epochs == 300
        assert trainer.optimiser.momentum == pytest.approx(0.9)
        assert trainer.optimiser.weight_decay == pytest.approx(4e-5)
        assert trainer.schedule.lr_max == pytest.approx(0.05)
        assert trainer.schedule.lr_min == pytest.approx(0.0001)

    def test_paper_scale_values_quoted_in_experiments_md(self):
        text = read("EXPERIMENTS.md")
        assert "1.42" in text and "3.07" in text  # Fig. 7 spread quoted
        assert "2000" in text  # GP speedup claim quoted
