"""Documentation/code consistency checks.

Keeps README.md, DESIGN.md, EXPERIMENTS.md and docs/PERFORMANCE.md
honest: every module, symbol, example and benchmark they reference must
exist in ``src/``, and the paper constants quoted in prose must match the
code.  CI runs this file as a dedicated docs-consistency step, so a doc
referring to a renamed or deleted symbol fails the build.
"""

from __future__ import annotations

import functools
import os
import re

import pytest

ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))

#: Every prose document whose code references are checked against src/.
DOCS = [
    "README.md",
    "DESIGN.md",
    "EXPERIMENTS.md",
    "docs/PERFORMANCE.md",
    "docs/OBSERVABILITY.md",
    "docs/RESILIENCE.md",
    "docs/ANALYSIS.md",
]


def read(name: str) -> str:
    with open(os.path.join(ROOT, name)) as handle:
        return handle.read()


@functools.lru_cache(maxsize=1)
def src_blob() -> str:
    """Concatenated source of every module under src/ (symbol lookups)."""
    parts = []
    for dirpath, _dirnames, filenames in os.walk(os.path.join(ROOT, "src")):
        for filename in filenames:
            if filename.endswith(".py"):
                with open(os.path.join(dirpath, filename)) as handle:
                    parts.append(handle.read())
    return "\n".join(parts)


class TestReferencedFilesExist:
    @pytest.mark.parametrize("doc", DOCS)
    def test_docs_present(self, doc):
        assert os.path.exists(os.path.join(ROOT, doc))

    def test_examples_referenced_in_readme_exist(self):
        readme = read("README.md")
        for match in re.findall(r"examples/(\w+\.py)", readme):
            assert os.path.exists(os.path.join(ROOT, "examples", match)), match

    def test_benchmarks_referenced_in_readme_exist(self):
        readme = read("README.md")
        for match in re.findall(r"(test_\w+\.py)", readme):
            assert os.path.exists(os.path.join(ROOT, "benchmarks", match)), match

    def test_design_bench_targets_exist(self):
        design = read("DESIGN.md")
        for match in re.findall(r"benchmarks/(test_\w+\.py)", design):
            assert os.path.exists(os.path.join(ROOT, "benchmarks", match)), match

    @pytest.mark.parametrize("doc", DOCS)
    def test_referenced_repro_modules_exist(self, doc):
        """Every `repro.*` dotted reference must resolve to a module."""
        text = read(doc)
        for match in set(re.findall(r"`repro\.([A-Za-z_.]+)", text)):
            parts = match.rstrip(".").split(".")
            # Accept `repro.pkg.module`, `repro.pkg.module.attribute` and
            # `repro.pkg.module.Class.method` (strip trailing attributes).
            found = False
            for depth in range(len(parts), 0, -1):
                base = os.path.join(ROOT, "src", "repro", *parts[:depth])
                if os.path.exists(base + ".py") or os.path.isdir(base):
                    found = True
                    break
            assert found, f"repro.{match} referenced in {doc} but missing"

    @pytest.mark.parametrize("doc", DOCS)
    def test_referenced_symbols_exist_in_src(self, doc):
        """Backticked `Class.method` references must name real symbols."""
        text = read(doc)
        blob = src_blob()
        # Class names must be CamelCase (contain a lowercase letter) so
        # all-caps file references like `EXPERIMENTS.md` don't match.
        for cls, attr in set(
            re.findall(
                r"`([A-Z][A-Za-z0-9]*[a-z][A-Za-z0-9]*)\.([a-z_][a-z0-9_]*)",
                text,
            )
        ):
            if attr in {"md", "py", "json", "yml", "toml"}:
                continue
            assert f"class {cls}" in blob, (
                f"{doc} references `{cls}.{attr}` but class {cls} "
                f"is not defined under src/"
            )
            assert (
                f"def {attr}" in blob
                or f"{attr} =" in blob
                or f"{attr}:" in blob
            ), (
                f"{doc} references `{cls}.{attr}` but no such attribute "
                f"appears under src/"
            )

    @pytest.mark.parametrize("doc", DOCS)
    def test_referenced_test_and_benchmark_files_exist(self, doc):
        """`tests/...py` and `benchmarks/...py` references must exist."""
        text = read(doc)
        for rel in set(re.findall(r"((?:tests|benchmarks)/\w+\.py)", text)):
            assert os.path.exists(os.path.join(ROOT, rel)), (
                f"{doc} references {rel} which does not exist"
            )

    def test_performance_doc_crosslinked(self):
        """README and DESIGN must point readers at docs/PERFORMANCE.md."""
        assert "docs/PERFORMANCE.md" in read("README.md")
        assert "docs/PERFORMANCE.md" in read("DESIGN.md")

    def test_observability_doc_crosslinked(self):
        """README and DESIGN must point readers at docs/OBSERVABILITY.md."""
        assert "docs/OBSERVABILITY.md" in read("README.md")
        assert "docs/OBSERVABILITY.md" in read("DESIGN.md")

    def test_resilience_doc_crosslinked(self):
        """README and DESIGN must point readers at docs/RESILIENCE.md."""
        assert "docs/RESILIENCE.md" in read("README.md")
        assert "docs/RESILIENCE.md" in read("DESIGN.md")

    def test_analysis_doc_crosslinked(self):
        """README and DESIGN must point readers at docs/ANALYSIS.md."""
        assert "docs/ANALYSIS.md" in read("README.md")
        assert "docs/ANALYSIS.md" in read("DESIGN.md")

    def test_analysis_doc_rule_catalogue_is_complete(self):
        """docs/ANALYSIS.md must document every shipped rule id."""
        from repro.analysis import RULE_IDS

        text = read("docs/ANALYSIS.md")
        for rule_id in RULE_IDS:
            assert f"`{rule_id}`" in text, f"rule {rule_id} undocumented"


class TestPaperConstantsMatchCode:
    def test_sequence_split(self):
        from repro.nas.encoding import DNN_TOKENS, HW_TOKENS, SEQUENCE_LENGTH

        # Sec. III-C: "44 hyper-parameters (where S=40, L=4)".
        assert (DNN_TOKENS, HW_TOKENS, SEQUENCE_LENGTH) == (40, 4, 44)

    def test_controller_hidden_units(self):
        from repro.search.controller import Controller

        assert Controller().hidden_dim == 120  # "LSTM with 120 hidden units"

    def test_controller_hyperparameters(self):
        from repro.search.controller import Controller
        from repro.search.reinforce import ReinforceSearch
        from repro.search.reward import BALANCED
        from repro.search.evaluator import Evaluation

        c = Controller()
        assert c.temperature == pytest.approx(1.1)
        assert c.tanh_constant == pytest.approx(2.5)
        search = ReinforceSearch(
            c, lambda p: Evaluation(0.5, 1.0, 1.0), BALANCED
        )
        assert search.optimiser.lr == pytest.approx(0.0035)
        assert search.entropy_weight == pytest.approx(1e-4)

    def test_paper_thresholds(self):
        from repro.search.reward import PAPER_T_EER_MJ, PAPER_T_LAT_MS

        assert PAPER_T_LAT_MS == 1.2  # "latency within 1.2 ms"
        assert PAPER_T_EER_MJ == 9.0  # "energy within 9 mJ"

    def test_six_operations(self):
        from repro.nas.ops import NUM_OPS, OP_NAMES

        assert NUM_OPS == 6
        assert set(OP_NAMES) == {
            "conv3x3", "conv5x5", "dwconv3x3", "dwconv5x5",
            "maxpool3x3", "avgpool3x3",
        }

    def test_seven_nodes_per_cell(self):
        from repro.nas.genotype import NUM_COMPUTED, NUM_NODES

        assert NUM_NODES == 7  # "in this work, we use 7 nodes"
        assert NUM_COMPUTED == 5

    def test_hypernet_recipe_defaults(self):
        from repro.nas.hypernet import HyperNetTrainer
        from repro.nas.hypernet import HyperNet
        import numpy as np

        trainer = HyperNetTrainer(
            HyperNet(num_cells=3, stem_channels=4, rng=np.random.default_rng(0))
        )
        # Sec. IV-B: 300 epochs, momentum 0.9, wd 4e-5, cosine 0.05 -> 0.0001.
        assert trainer.epochs == 300
        assert trainer.optimiser.momentum == pytest.approx(0.9)
        assert trainer.optimiser.weight_decay == pytest.approx(4e-5)
        assert trainer.schedule.lr_max == pytest.approx(0.05)
        assert trainer.schedule.lr_min == pytest.approx(0.0001)

    def test_paper_scale_values_quoted_in_experiments_md(self):
        text = read("EXPERIMENTS.md")
        assert "1.42" in text and "3.07" in text  # Fig. 7 spread quoted
        assert "2000" in text  # GP speedup claim quoted
