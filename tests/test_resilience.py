"""The resilience layer (``repro.resilience``) and its chaos suite.

Covers the guarantees docs/RESILIENCE.md makes:

* **Policies** — :class:`RetryPolicy` backoff is deterministic (seeded
  jitter), classification separates retryable from terminal errors, and
  the caps bind; :class:`Deadline` budgets are consumed downward and
  blow up as a typed :class:`DeadlineExceeded`; :class:`CircuitBreaker`
  walks closed → open → half-open → closed exactly as specified.
* **Fault injection** — a seeded :class:`FaultPlan` injects at the same
  hits on every run, is off by default with zero overhead (no metric
  moves, wire bytes unchanged), and validates site/action names.
* **The retry-safety invariant, end to end** — with faults injected at
  every named site, ``evaluate_many`` over the service returns results
  ``==`` the fault-free run, retries counted in the registry; a server
  killed mid-batch is survived by reconnect-and-resubmit; an open
  breaker degrades to a local fallback with identical values; a blown
  deadline raises cleanly instead of hanging.

Everything here asserts counters and exact values — never timings — and
is spawn-safe and 1-CPU-host tolerant, like the service suite.
"""

from __future__ import annotations

import socket
import threading
import time

import numpy as np
import pytest

from repro.accel.config import random_config
from repro.nas.encoding import CoDesignPoint
from repro.nas.space import DnnSpace
from repro.obs import get_registry
from repro.resilience import (
    CIRCUIT_CLOSED,
    CIRCUIT_HALF_OPEN,
    CIRCUIT_OPEN,
    CircuitBreaker,
    Deadline,
    DeadlineExceeded,
    FaultPlan,
    InjectedFault,
    RetryPolicy,
)
from repro.resilience import faults
from repro.search.evaluator import BatchEvaluator
from repro.service import (
    RemoteEvaluator,
    ServiceClient,
    protocol,
    start_service,
)
from repro.store import ResultStore


def _population(n: int, seed: int = 311) -> list[CoDesignPoint]:
    rng = np.random.default_rng(seed)
    space = DnnSpace()
    return [
        CoDesignPoint(space.sample(rng, name=f"res{seed}_{i}"), random_config(rng))
        for i in range(n)
    ]


def _fast_retry(**kwargs) -> RetryPolicy:
    """A test-friendly policy: many cheap attempts, bounded backoff."""
    defaults = dict(max_attempts=8, base_delay_s=0.02, max_delay_s=0.3, seed=7)
    defaults.update(kwargs)
    return RetryPolicy(**defaults)


# ---------------------------------------------------------------------------
# RetryPolicy
# ---------------------------------------------------------------------------


class TestRetryPolicy:
    def test_backoff_is_deterministic_across_instances(self):
        a = RetryPolicy(seed=42)
        b = RetryPolicy(seed=42)
        schedule_a = [a.backoff_s(i) for i in range(1, 8)]
        schedule_b = [b.backoff_s(i) for i in range(1, 8)]
        assert schedule_a == schedule_b
        # A different seed gives a different (but equally deterministic)
        # jitter draw.
        c = RetryPolicy(seed=43)
        assert [c.backoff_s(i) for i in range(1, 8)] != schedule_a

    def test_backoff_respects_caps_and_jitter_range(self):
        p = RetryPolicy(
            base_delay_s=0.1, multiplier=2.0, max_delay_s=0.5, jitter=0.5
        )
        for attempt in range(1, 12):
            delay = p.backoff_s(attempt)
            ceiling = min(0.5, 0.1 * 2.0 ** (attempt - 1))
            assert 0.5 * ceiling <= delay <= ceiling
        no_jitter = RetryPolicy(
            base_delay_s=0.1, multiplier=2.0, max_delay_s=0.5, jitter=0.0
        )
        assert no_jitter.backoff_s(1) == 0.1
        assert no_jitter.backoff_s(4) == 0.5  # capped

    def test_classification(self):
        p = RetryPolicy()
        assert p.is_retryable(ConnectionError("torn"))
        assert p.is_retryable(TimeoutError("slow"))
        assert p.is_retryable(OSError("io"))
        assert p.is_retryable(InjectedFault("chaos"))  # a ConnectionError
        assert not p.is_retryable(ValueError("bad point"))
        # DeadlineExceeded subclasses TimeoutError but is ALWAYS terminal
        # (terminal types are checked first).
        assert not p.is_retryable(DeadlineExceeded("budget gone"))

    def test_should_retry_binds_attempts_and_elapsed(self):
        p = RetryPolicy(max_attempts=3, max_elapsed_s=10.0)
        exc = ConnectionError("x")
        assert p.should_retry(exc, attempt=1, elapsed_s=0.0)
        assert p.should_retry(exc, attempt=2, elapsed_s=0.0)
        assert not p.should_retry(exc, attempt=3, elapsed_s=0.0)
        assert not p.should_retry(exc, attempt=1, elapsed_s=10.0)
        assert not p.should_retry(ValueError("x"), attempt=1, elapsed_s=0.0)

    def test_run_retries_transients_and_counts_in_registry(self):
        before = get_registry().counter("resilience.retries").value
        calls = []
        p = _fast_retry(base_delay_s=0.001)

        def flaky(attempt):
            calls.append(attempt)
            if attempt < 3:
                raise ConnectionError("transient")
            return "done"

        assert p.run(flaky) == "done"
        assert calls == [1, 2, 3]
        assert get_registry().counter("resilience.retries").value == before + 2

    def test_run_reraises_terminal_immediately(self):
        calls = []
        p = _fast_retry()

        def fatal(attempt):
            calls.append(attempt)
            raise ValueError("not transient")

        with pytest.raises(ValueError):
            p.run(fatal)
        assert calls == [1]

    def test_run_with_deadline_raises_typed_error(self):
        p = RetryPolicy(max_attempts=100, base_delay_s=0.5, jitter=0.0)
        deadline = Deadline(0.05)

        def always_failing(attempt):
            raise ConnectionError("down")

        # The budget cannot fit the next backoff: the caller gets the
        # typed budget error, never an opaque exhausted-retries one.
        with pytest.raises(DeadlineExceeded):
            p.run(always_failing, deadline=deadline)

    def test_validation(self):
        with pytest.raises(ValueError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ValueError):
            RetryPolicy(jitter=1.5)
        with pytest.raises(ValueError):
            RetryPolicy().backoff_s(0)


# ---------------------------------------------------------------------------
# Deadline
# ---------------------------------------------------------------------------


class TestDeadline:
    def test_unlimited(self):
        d = Deadline(None)
        assert d.unlimited
        assert d.remaining() == float("inf")
        assert not d.expired
        d.check()  # never raises
        assert d.timeout(None) is None
        assert d.timeout(5.0) == 5.0

    def test_budget_consumed_through_fake_clock(self):
        now = [100.0]
        d = Deadline(2.0, clock=lambda: now[0])
        assert d.remaining() == 2.0
        assert d.timeout(5.0) == 2.0  # budget below the cap
        now[0] += 1.5
        assert d.remaining() == pytest.approx(0.5)
        assert d.timeout(5.0) == pytest.approx(0.5)
        assert d.timeout(0.2) == pytest.approx(0.2)  # cap below the budget
        now[0] += 1.0
        assert d.expired
        with pytest.raises(DeadlineExceeded, match="stats request"):
            d.check("stats request")
        with pytest.raises(DeadlineExceeded):
            d.timeout(5.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            Deadline(0.0)
        with pytest.raises(ValueError):
            Deadline(-1.0)


# ---------------------------------------------------------------------------
# CircuitBreaker
# ---------------------------------------------------------------------------


class TestCircuitBreaker:
    def test_state_machine_with_fake_clock(self):
        now = [0.0]
        cb = CircuitBreaker(failure_threshold=3, reset_s=5.0, clock=lambda: now[0])
        assert cb.state == CIRCUIT_CLOSED
        assert cb.allow()
        cb.record_failure()
        cb.record_failure()
        assert cb.state == CIRCUIT_CLOSED  # under the threshold
        cb.record_failure()
        assert cb.state == CIRCUIT_OPEN
        assert cb.opens == 1
        assert not cb.allow()  # open: refuse
        now[0] += 4.9
        assert not cb.allow()  # still inside reset_s
        now[0] += 0.2
        assert cb.state == CIRCUIT_HALF_OPEN
        assert cb.allow()       # exactly ONE probe admitted
        assert not cb.allow()   # concurrent caller refused while probing
        cb.record_success()
        assert cb.state == CIRCUIT_CLOSED
        assert cb.failures == 0

    def test_probe_failure_reopens(self):
        now = [0.0]
        cb = CircuitBreaker(failure_threshold=1, reset_s=5.0, clock=lambda: now[0])
        cb.record_failure()
        assert cb.state == CIRCUIT_OPEN
        now[0] += 5.1
        assert cb.allow()  # the probe
        cb.record_failure()
        assert cb.state == CIRCUIT_OPEN  # straight back open
        assert cb.opens == 2
        assert not cb.allow()

    def test_success_resets_failure_streak(self):
        cb = CircuitBreaker(failure_threshold=3)
        cb.record_failure()
        cb.record_failure()
        cb.record_success()
        cb.record_failure()
        cb.record_failure()
        assert cb.state == CIRCUIT_CLOSED  # streak broken by the success

    def test_state_gauge_and_stats(self):
        now = [0.0]
        cb = CircuitBreaker(failure_threshold=1, reset_s=9.0, clock=lambda: now[0])
        gauge = get_registry().gauge("resilience.circuit_state")
        cb.record_failure()
        assert gauge.value == 2  # open
        now[0] += 9.1
        assert cb.state == CIRCUIT_HALF_OPEN
        assert gauge.value == 1
        cb.record_success()
        assert gauge.value == 0
        stats = cb.stats()
        assert stats["state"] == CIRCUIT_CLOSED
        assert stats["opens"] == 1

    def test_validation(self):
        with pytest.raises(ValueError):
            CircuitBreaker(failure_threshold=0)
        with pytest.raises(ValueError):
            CircuitBreaker(reset_s=-1.0)


# ---------------------------------------------------------------------------
# FaultPlan
# ---------------------------------------------------------------------------


class TestFaultPlan:
    def test_off_by_default(self):
        assert faults.active() is None
        faults.hit("wire.read")  # no plan installed: a no-op
        assert faults.decide("pool.worker") is None

    def test_site_and_action_validation(self):
        with pytest.raises(ValueError, match="unknown fault site"):
            FaultPlan().add("wire.reed", "error")
        with pytest.raises(ValueError, match="unknown fault action"):
            FaultPlan().add("wire.read", "explode")
        with pytest.raises(ValueError):
            FaultPlan().add("wire.read", "error", probability=0.0)
        with pytest.raises(ValueError):
            FaultPlan().add("wire.read", "error", count=0)
        with pytest.raises(ValueError):
            FaultPlan().hit("not.a.site")

    def test_count_and_after_bounds(self):
        plan = FaultPlan().add("wire.read", "error", count=2, after=1)
        with faults.installed(plan):
            faults.hit("wire.read")  # hit 1: skipped by after=1
            with pytest.raises(InjectedFault):
                faults.hit("wire.read")  # hit 2: injects
            with pytest.raises(InjectedFault):
                faults.hit("wire.read")  # hit 3: injects (count=2 consumed)
            faults.hit("wire.read")  # hit 4: count exhausted
        assert plan.hits == {"wire.read": 4}
        assert plan.injected == {"wire.read": 2}
        assert faults.active() is None  # installed() always clears

    def test_probability_draws_are_seed_deterministic(self):
        def run(seed):
            plan = FaultPlan(seed=seed).add(
                "wire.write", "error", probability=0.5
            )
            outcomes = []
            with faults.installed(plan):
                for _ in range(20):
                    try:
                        faults.hit("wire.write")
                        outcomes.append(False)
                    except InjectedFault:
                        outcomes.append(True)
            return outcomes

        first = run(seed=5)
        assert first == run(seed=5)  # bit-for-bit repeatable
        assert any(first) and not all(first)  # genuinely probabilistic
        assert first != run(seed=6)

    def test_custom_error_and_delay_actions(self):
        marker = RuntimeError("custom payload")
        plan = (
            FaultPlan()
            .add("store.append", "error", count=1, error=marker)
            .add("scheduler.tick", "delay", count=1, delay_s=0.01)
        )
        with faults.installed(plan):
            with pytest.raises(RuntimeError, match="custom payload"):
                faults.hit("store.append")
            faults.hit("scheduler.tick")  # delays, then continues
        assert plan.injected == {"store.append": 1, "scheduler.tick": 1}

    def test_injected_counter_reaches_registry(self):
        before = get_registry().counter("faults.injected").value
        plan = FaultPlan().add("wire.read", "error", count=1)
        with faults.installed(plan):
            with pytest.raises(InjectedFault):
                faults.hit("wire.read")
        assert get_registry().counter("faults.injected").value == before + 1

    def test_zero_overhead_wire_bytes_pinned(self):
        """With no plan installed the wire is byte-identical to the
        pre-resilience codec: one compact JSON object, key order v/id/op,
        newline-terminated — pinned as literal bytes."""
        message = {"v": protocol.WIRE_VERSION, "id": 1, "op": "stats"}
        assert protocol.encode_message(message) == b'{"v":1,"id":1,"op":"stats"}\n'


# ---------------------------------------------------------------------------
# Scripted raw-socket servers (desync / hang scenarios)
# ---------------------------------------------------------------------------


class _ScriptedServer:
    """A raw TCP server whose per-connection behaviour is a test script.

    ``handler(stream_file, connection_index)`` runs once per accepted
    connection; the connection index lets a script misbehave on the first
    connection and behave on the reconnect.
    """

    def __init__(self, handler) -> None:
        self.handler = handler
        self._sock = socket.socket()
        self._sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        self._sock.bind(("127.0.0.1", 0))
        self._sock.listen(16)
        self.port = self._sock.getsockname()[1]
        self.connections = 0
        self._accepter = threading.Thread(target=self._accept, daemon=True)
        self._accepter.start()

    def _accept(self) -> None:
        while True:
            try:
                conn, _ = self._sock.accept()
            except OSError:
                return
            index = self.connections
            self.connections += 1
            threading.Thread(
                target=self._serve, args=(conn, index), daemon=True
            ).start()

    def _serve(self, conn: socket.socket, index: int) -> None:
        try:
            with conn.makefile("rwb") as stream:
                self.handler(stream, index)
        except (OSError, ValueError):
            pass
        finally:
            try:
                conn.close()
            except OSError:
                pass

    def close(self) -> None:
        try:
            self._sock.close()
        except OSError:
            pass

    def __enter__(self) -> "_ScriptedServer":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


def _desync_handler(stream, index: int) -> None:
    """First connection: answer with a junk-id frame AND leave a stale
    frame whose id matches the client's NEXT request sitting in the
    stream — the desync trap.  Reconnections behave correctly."""
    line = stream.readline()
    if not line:
        return
    message = protocol.decode_message(line)
    if index == 0:
        stream.write(
            protocol.encode_message(
                protocol.ok_response(999999, stats={"bogus": True})
            )
        )
        # The trap: a client that does NOT tear down after the framing
        # error would read this on its next call and misattribute it
        # (its ids increment by one per attempt).
        stream.write(
            protocol.encode_message(
                protocol.ok_response(message["id"] + 1, stats={"stale": True})
            )
        )
        stream.flush()
        time.sleep(0.5)  # hold the connection open so the trap stays live
        return
    while line:
        message = protocol.decode_message(line)
        stream.write(
            protocol.encode_message(
                protocol.ok_response(message["id"], stats={"real": True})
            )
        )
        stream.flush()
        line = stream.readline()


class TestClientResilience:
    def test_desync_teardown_regression(self):
        """Satellite bugfix: a mid-response ProtocolError must tear the
        connection down so a later call can never read the previous
        request's stale bytes.  (Pre-PR this returned {"stale": True}.)
        """
        with _ScriptedServer(_desync_handler) as server:
            client = ServiceClient(
                "127.0.0.1",
                server.port,
                timeout=10.0,
                retry=RetryPolicy(max_attempts=1),  # retries off: observe raw behaviour
            )
            with pytest.raises(protocol.ProtocolError, match="does not match"):
                client.stats()
            assert client._sock is None  # torn down, not left desynced
            # The next call re-dials and gets the REAL answer — never the
            # stale frame the first connection still holds.
            assert client.stats() == {"real": True}
            assert server.connections == 2
            client.close()

    def test_desync_is_transparently_retried_by_default(self):
        """With the default policy the same trap is invisible to the
        caller: the framing error tears down, the retry resubmits on a
        fresh connection and the verb just returns."""
        with _ScriptedServer(_desync_handler) as server:
            with ServiceClient("127.0.0.1", server.port, timeout=10.0) as client:
                assert client.stats() == {"real": True}
                assert client.retries >= 1
                assert client.reconnects >= 1
                assert server.connections == 2

    def test_deadline_exceeded_is_typed_not_a_hang(self):
        """A server that accepts and never answers: the deadline budget
        surfaces as DeadlineExceeded within the budget, not a hang and
        not an opaque socket timeout."""

        def black_hole(stream, index):
            stream.readline()
            time.sleep(5.0)  # never answer

        before = get_registry().counter("resilience.deadlines_exceeded").value
        with _ScriptedServer(black_hole) as server:
            with ServiceClient("127.0.0.1", server.port, timeout=30.0) as client:
                t0 = time.monotonic()
                with pytest.raises(DeadlineExceeded):
                    client.stats(deadline_s=0.3)
                assert time.monotonic() - t0 < 3.0
        assert (
            get_registry().counter("resilience.deadlines_exceeded").value
            > before
        )

    def test_close_is_idempotent_and_best_effort(self):
        """Satellite bugfix: close() must be safe to call twice and safe
        on a connection the server already dropped."""

        def drop_immediately(stream, index):
            return  # server closes without reading

        with _ScriptedServer(drop_immediately) as server:
            client = ServiceClient("127.0.0.1", server.port, timeout=5.0)
            time.sleep(0.05)  # let the server drop the peer
            client.close()  # half-closed socket: must not raise
            client.close()  # re-entrant: must not raise
            with pytest.raises(ValueError, match="closed"):
                client.stats()  # a closed client refuses, it doesn't redial

    def test_remote_evaluator_close_is_idempotent(self, smoke_context):
        with start_service(
            BatchEvaluator(smoke_context.fast_evaluator)
        ) as handle:
            host, port = handle.address
            remote = RemoteEvaluator(f"{host}:{port}")
            remote.close()
            remote.close()  # re-entrant: must not raise


# ---------------------------------------------------------------------------
# Chaos over a live service
# ---------------------------------------------------------------------------


class _GatedEvaluator:
    """Blocks inside evaluate_many until released (mid-batch scenarios)."""

    def __init__(self, inner):
        self.inner = inner
        self.entered = threading.Event()
        self.release = threading.Event()

    def evaluate_many(self, points):
        self.entered.set()
        assert self.release.wait(60.0), "gate was never released"
        return self.inner.evaluate_many(points)


class TestChaos:
    def test_flaky_wire_completes_with_retries_counted(self, smoke_context):
        """Seeded wire faults (write and read): every call still returns
        results ``==`` the fault-free run; retries land in the client
        counter and the registry, never silently swallowed."""
        fast = smoke_context.fast_evaluator
        points = _population(8, seed=31)
        reference = BatchEvaluator(fast).evaluate_many(points)
        before = get_registry().counter("resilience.retries").value
        plan = (
            FaultPlan(seed=11)
            .add("wire.write", "error", count=1)
            .add("wire.read", "error", count=1, after=1)
        )
        with start_service(BatchEvaluator(fast), tick_s=0.002) as handle:
            with ServiceClient(*handle.address, retry=_fast_retry()) as client:
                with faults.installed(plan):
                    first = client.evaluate_many(points)
                    second = client.evaluate_many(points)
                assert first == reference
                assert second == reference
                assert client.retries == 2
                assert client.reconnects >= 1
        assert plan.injected == {"wire.write": 1, "wire.read": 1}
        assert get_registry().counter("resilience.retries").value == before + 2

    def test_kill_server_mid_batch_reconnect_bit_identical(self, smoke_context):
        """THE tentpole scenario: the server dies while a batch is being
        evaluated; a replacement comes up on the same port; the client's
        reconnect-and-resubmit returns results ``==`` the fault-free run.
        """
        fast = smoke_context.fast_evaluator
        points = _population(10, seed=37)
        reference = BatchEvaluator(fast).evaluate_many(points)
        gated = _GatedEvaluator(BatchEvaluator(fast))
        handle_a = start_service(gated, tick_s=0.002)
        host, port = handle_a.address
        client = ServiceClient(
            host, port, retry=_fast_retry(max_attempts=10, base_delay_s=0.05)
        )
        outcome: dict = {}

        def call() -> None:
            try:
                outcome["results"] = client.evaluate_many(points)
            except BaseException as exc:  # pragma: no cover - diagnostic
                outcome["error"] = exc

        thread = threading.Thread(target=call)
        thread.start()
        try:
            assert gated.entered.wait(30.0), "request never reached the batch"
            # Kill server A while the batch is mid-evaluation.  The gate
            # opens shortly after so the abort can join the scheduler
            # thread (the batch result goes nowhere — its connection is
            # already gone).
            releaser = threading.Timer(0.2, gated.release.set)
            releaser.start()
            handle_a.abort()
            # A replacement service on the SAME port (fresh scheduler,
            # same deterministic evaluator stack).
            with start_service(
                BatchEvaluator(fast), host=host, port=port, tick_s=0.002
            ) as handle_b:
                thread.join(60.0)
                assert not thread.is_alive(), "client never recovered"
                assert "error" not in outcome, outcome.get("error")
                assert outcome["results"] == reference, (
                    "reconnect-and-resubmit must be bit-identical to the "
                    "fault-free run"
                )
                assert client.retries >= 1
                assert client.reconnects >= 1
        finally:
            gated.release.set()
            client.close()

    def test_open_breaker_falls_back_locally_with_parity(self, smoke_context):
        """Graceful degradation: transport failures trip the breaker, an
        open breaker serves from the local fallback (values ``==`` the
        remote's), and a half-open probe returns to a revived remote."""
        fast = smoke_context.fast_evaluator
        points = _population(6, seed=41)
        reference = BatchEvaluator(fast).evaluate_many(points)
        handle = start_service(BatchEvaluator(fast), tick_s=0.002)
        host, port = handle.address
        breaker = CircuitBreaker(failure_threshold=1, reset_s=0.3)
        remote = RemoteEvaluator(
            f"{host}:{port}",
            retry=RetryPolicy(max_attempts=1),  # fail fast into the breaker
            fallback=BatchEvaluator(fast),
            breaker=breaker,
        )
        try:
            assert remote.evaluate_many(points) == reference  # remote path
            assert breaker.state == CIRCUIT_CLOSED
            handle.abort()  # the backend dies
            assert remote.evaluate_many(points) == reference  # via fallback
            assert breaker.state == CIRCUIT_OPEN
            assert remote.fallback_calls == 1
            # Open breaker: served locally WITHOUT touching the wire.
            assert remote.evaluate_many(points) == reference
            assert remote.fallback_calls == 2
            # Revive the backend on the same port; after reset_s the
            # half-open probe finds it and the breaker closes again.
            with start_service(
                BatchEvaluator(fast), host=host, port=port, tick_s=0.002
            ):
                time.sleep(0.35)
                assert remote.evaluate_many(points) == reference
                assert breaker.state == CIRCUIT_CLOSED
                stats = remote.resilience_stats()
                assert stats["fallback_calls"] == 2
                assert stats["breaker"]["opens"] >= 1
                assert stats["breaker"]["probes"] >= 1
        finally:
            remote.close()

    def test_fallback_survives_backend_dead_at_construction(
        self, smoke_context
    ):
        """A backend that is already dead when the adapter is built must
        not prevent degraded operation: the first dial is deferred, the
        dial failure trips the breaker, scoring AND accounting reads all
        answer from the fallback (regression: the eager constructor dial
        used to raise ``ConnectionRefusedError`` before the fallback
        could ever engage)."""
        fast = smoke_context.fast_evaluator
        points = _population(5, seed=47)
        reference = BatchEvaluator(fast).evaluate_many(points)
        # Grab a port nobody listens on (bind, read, close — the port
        # stays free for the duration of the test on this host).
        probe = socket.socket()
        probe.bind(("127.0.0.1", 0))
        dead_port = probe.getsockname()[1]
        probe.close()
        fallback = BatchEvaluator(fast)
        remote = RemoteEvaluator(
            f"127.0.0.1:{dead_port}",
            retry=RetryPolicy(max_attempts=1),  # fail fast into the breaker
            fallback=fallback,
            breaker=CircuitBreaker(failure_threshold=1, reset_s=60.0),
        )
        try:
            # Construction succeeded (the old behaviour raised here) and
            # scoring degrades with exact parity.
            assert remote.evaluate_many(points) == reference
            assert remote.fallback_calls == 1
            assert remote.breaker.state == CIRCUIT_OPEN
            # Accounting reads describe the fallback evaluator — the one
            # that actually served the calls — instead of raising.
            assert remote.counters() == (fallback.hits, fallback.misses)
            assert remote.hits == fallback.hits
            assert remote.scheduler_queue_depth == 0
            assert remote.pool_resubmitted_shards == 0
            # metrics() answers the local registry snapshot in degraded
            # mode (a dict with the registry's top-level shape).
            assert isinstance(remote.metrics(), dict)
        finally:
            remote.close()

    def test_scheduler_tick_retry_is_invisible_to_clients(self, smoke_context):
        """A retryable fault inside the server's batch evaluation is
        absorbed by the scheduler's policy: the client sees clean
        results, the stats verb reports the retried batch."""
        fast = smoke_context.fast_evaluator
        points = _population(7, seed=43)
        reference = BatchEvaluator(fast).evaluate_many(points)
        plan = FaultPlan(seed=3).add("scheduler.tick", "error", count=1)
        with start_service(
            BatchEvaluator(fast),
            tick_s=0.002,
            retry=_fast_retry(base_delay_s=0.01),
        ) as handle:
            with ServiceClient(*handle.address) as client:
                with faults.installed(plan):
                    assert client.evaluate_many(points) == reference
                stats = client.stats()
        assert plan.injected == {"scheduler.tick": 1}
        assert stats["scheduler"]["retried_batches"] == 1
        assert stats["scheduler"]["errors"] == 0  # absorbed, not surfaced
        assert client.retries == 0  # the client never noticed

    def test_terminal_evaluator_error_still_surfaces_with_retry(self, smoke_context):
        """A ValueError from the evaluator is terminal for the scheduler
        policy: it must reach the client as a typed ServiceError, not be
        retried into oblivion."""
        from repro.service import ServiceError

        class _Failing:
            def evaluate_many(self, points):
                raise ValueError("injected evaluator failure")

        with start_service(_Failing(), retry=_fast_retry()) as handle:
            with ServiceClient(*handle.address) as client:
                with pytest.raises(ServiceError, match="ValueError"):
                    client.evaluate_many(_population(2, seed=47))
                stats = client.stats()
        assert stats["scheduler"]["errors"] == 1
        assert stats["scheduler"]["retried_batches"] == 0

    def test_health_verb_not_queued_behind_budget(self, smoke_context):
        """health answers while the points budget is saturated and a
        batch is blocked mid-evaluation — it is never queued."""
        fast = smoke_context.fast_evaluator
        gated = _GatedEvaluator(BatchEvaluator(fast))
        points = _population(4, seed=53)
        with start_service(
            gated, tick_s=0.002, max_inflight_points=4
        ) as handle:
            host, port = handle.address
            blocker = ServiceClient(host, port)
            waiter = ServiceClient(host, port)
            threads = [
                threading.Thread(
                    target=lambda c=c: c.evaluate_many(points)
                )
                for c in (blocker, waiter)
            ]
            try:
                threads[0].start()
                assert gated.entered.wait(30.0)
                threads[1].start()  # queues on the saturated budget
                with ServiceClient(host, port) as prober:
                    # Poll until the second request is visibly queued,
                    # proving health answers DESPITE the saturation.
                    deadline = time.monotonic() + 20.0
                    while time.monotonic() < deadline:
                        health = prober.health()
                        if health["queued_requests"] >= 1:
                            break
                        time.sleep(0.02)
                    assert health["status"] == "ok"
                    assert health["inflight_points"] == 4
                    assert health["queued_requests"] >= 1
                    assert health["uptime_s"] >= 0.0
            finally:
                gated.release.set()
                for t in threads:
                    t.join(60.0)
                blocker.close()
                waiter.close()

    def test_idle_timeout_disconnects_and_client_recovers(self, smoke_context):
        """An idle peer is dropped by the server; the dropped client's
        next verb transparently reconnects and succeeds."""
        fast = smoke_context.fast_evaluator
        with start_service(
            BatchEvaluator(fast), idle_timeout_s=0.15
        ) as handle:
            with ServiceClient(*handle.address, retry=_fast_retry()) as client:
                assert client.health()["status"] == "ok"
                time.sleep(0.6)  # exceed the idle timeout
                stats = client.stats()  # reconnect-and-resubmit, invisibly
                assert stats["service"]["idle_disconnects"] >= 1
                assert stats["service"]["idle_timeout_s"] == 0.15
                assert client.reconnects >= 1


# ---------------------------------------------------------------------------
# Store faults
# ---------------------------------------------------------------------------


class TestStoreFaults:
    def test_append_fault_without_retry_fails_fast(self, tmp_path):
        store = ResultStore(str(tmp_path / "plain.store"))
        plan = FaultPlan().add("store.append", "error", count=1)
        with faults.installed(plan):
            with pytest.raises(InjectedFault):
                store.append("ns", (1, 2), (3.0,))
            store.append("ns", (1, 2), (3.0,))  # next append is clean
        assert store.get("ns", (1, 2)) == (3.0,)
        assert store.retried_appends == 0
        store.close()

    def test_append_retry_rolls_back_and_recovers(self, tmp_path):
        path = str(tmp_path / "retry.store")
        store = ResultStore(path, retry=_fast_retry(base_delay_s=0.005))
        plan = FaultPlan().add("store.append", "error", count=2)
        values = (0.1 + 0.2, 1.0 / 3.0)
        with faults.installed(plan):
            store.append("ns", (7, 8, 9), values)
        assert plan.injected == {"store.append": 2}
        assert store.retried_appends == 2
        assert store.appends == 1
        assert store.get("ns", (7, 8, 9)) == values
        store.close()
        # Durable: the retried append reopens bit-identically.
        reopened = ResultStore(path, mode="r")
        assert reopened.get("ns", (7, 8, 9)) == values
        assert reopened.recovered_bytes == 0  # rollbacks left no torn tail
        reopened.close()


# ---------------------------------------------------------------------------
# All five sites at once (the acceptance scenario)
# ---------------------------------------------------------------------------


class TestEndToEndChaos:
    def test_all_sites_faulted_end_to_end_bit_identical(
        self, smoke_context, tmp_path
    ):
        """The acceptance bar: seeded faults at EVERY named site — wire
        write, wire read, scheduler tick, a worker kill, a store append —
        and an end-to-end ``evaluate_many`` over the service still
        returns results ``==`` the fault-free run, with every recovery
        counted in the registry, none silently swallowed."""
        from repro.parallel import ParallelEvaluator

        fast = smoke_context.fast_evaluator
        points = _population(12, seed=59)
        reference = BatchEvaluator(fast).evaluate_many(points)
        retries_before = get_registry().counter("resilience.retries").value
        plan = (
            FaultPlan(seed=13)
            .add("wire.write", "error", count=1)
            .add("wire.read", "error", count=1)
            .add("scheduler.tick", "error", count=1)
            .add("pool.worker", "kill", count=1)
            .add("store.append", "error", count=1)
        )
        evaluator = ParallelEvaluator(fast, workers=2, min_dispatch=1)
        store = ResultStore(
            str(tmp_path / "chaos.store"),
            retry=_fast_retry(base_delay_s=0.005),
        )
        try:
            with start_service(
                evaluator,
                tick_s=0.002,
                retry=_fast_retry(base_delay_s=0.01),
                store=store,
            ) as handle:
                with ServiceClient(
                    *handle.address, retry=_fast_retry(base_delay_s=0.02)
                ) as client:
                    with faults.installed(plan):
                        results = client.evaluate_many(points)
                    assert results == reference, (
                        "with faults at every site, results must still be "
                        "== the fault-free run"
                    )
                    stats = client.stats()
                    assert client.retries >= 1  # wire faults retried
        finally:
            evaluator.close()
            if not store.closed:
                store.close()
        # Every site actually fired...
        assert plan.injected == {
            "wire.write": 1,
            "wire.read": 1,
            "scheduler.tick": 1,
            "pool.worker": 1,
            "store.append": 1,
        }
        # ...and every recovery is accounted for, never swallowed.
        assert stats["scheduler"]["retried_batches"] >= 1
        pool = stats["evaluator"]["pool"]
        assert pool["restarts"] >= 1
        assert pool["resubmitted_shards"] >= 1
        assert stats["store"]["retried_appends"] >= 1
        assert (
            get_registry().counter("resilience.retries").value
            > retries_before
        )

    def test_no_faults_means_no_resilience_activity(self, smoke_context):
        """The kill switch: with no plan installed, a normal service
        round-trip moves NO resilience or fault counters — the sites are
        zero-cost no-ops and behaviour is identical to pre-PR."""
        fast = smoke_context.fast_evaluator
        points = _population(5, seed=61)
        reference = BatchEvaluator(fast).evaluate_many(points)
        registry = get_registry()
        before = {
            name: registry.counter(name).value
            for name in ("resilience.retries", "faults.injected",
                         "resilience.deadlines_exceeded")
        }
        assert faults.active() is None
        with start_service(BatchEvaluator(fast), tick_s=0.002) as handle:
            with ServiceClient(*handle.address) as client:
                assert client.evaluate_many(points) == reference
                assert client.retries == 0
                assert client.reconnects == 0
        for name, value in before.items():
            assert registry.counter(name).value == value, name
