"""Content fingerprints that scope store namespaces to their producers.

A durable store outlives the process that filled it, so every record's
namespace must pin down *what produced the values* — results computed by
one trained HyperNet (or one GP fit, or one training recipe) are not
valid for another.  The helpers here hash the value-determining state of
each producer into a short hex digest; the stack prefixes it with the
record kind (``eval:`` / ``train:`` / ``sim:``) to form the namespace.

The digests are content hashes (SHA-256 over array bytes, dtypes, shapes
and the scalar knobs), so two processes that build bit-identical
artefacts — e.g. two ``get_context("demo", seed=0)`` calls on different
days — land in the same namespace and share results, while any drift in
weights, samples or recipe silently partitions the store instead of
serving stale values.
"""

from __future__ import annotations

import hashlib
from typing import TYPE_CHECKING

import numpy as np

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..accel.simulator import SystolicArraySimulator
    from ..search.evaluator import AccurateEvaluator, FastEvaluator

__all__ = [
    "digest",
    "fast_evaluator_fingerprint",
    "accurate_evaluator_fingerprint",
    "samples_fingerprint",
]

#: Digest length (hex chars).  64 bits of content hash: collisions are
#: astronomically unlikely at any realistic store population.
DIGEST_CHARS = 16


def _feed(hasher, value) -> None:
    """Deterministically fold one value into the hash."""
    if isinstance(value, np.ndarray):
        hasher.update(str(value.dtype).encode())
        hasher.update(str(value.shape).encode())
        hasher.update(np.ascontiguousarray(value).tobytes())
    elif isinstance(value, (bytes, bytearray)):
        hasher.update(bytes(value))
    elif isinstance(value, float):
        # repr round-trips exactly; hashing the repr keeps the digest
        # stable across numpy scalar vs python float inputs.
        hasher.update(repr(value).encode())
    elif isinstance(value, (list, tuple)):
        hasher.update(b"(")
        for item in value:
            _feed(hasher, item)
            hasher.update(b",")
        hasher.update(b")")
    elif value is None:
        hasher.update(b"None")
    else:
        hasher.update(repr(value).encode())


def digest(*parts) -> str:
    """SHA-256 content digest of the given parts, truncated to hex."""
    hasher = hashlib.sha256()
    for part in parts:
        _feed(hasher, part)
        hasher.update(b";")
    return hasher.hexdigest()[:DIGEST_CHARS]


def _gp_state(gp) -> list:
    """The value-determining state of a fitted GP predictor."""
    scaler = gp._x_scaler
    return [
        float(gp.length_scale),
        float(gp.signal_var),
        float(gp.noise_var),
        gp._x_train,
        gp._alpha,
        float(gp._y_mean),
        float(gp._y_scale),
        scaler.mean,
        scaler.std,
    ]


def fast_evaluator_fingerprint(fast: "FastEvaluator") -> str:
    """Fingerprint of everything a fast evaluation depends on.

    HyperNet weights, both GP fits, the validation subset and the
    evaluation knobs: a cached ``(accuracy, latency, energy)`` triple is
    valid exactly when all of these match.
    """
    weights = [p.data for p in fast.hypernet.parameters()]
    return digest(
        "fast-evaluator",
        weights,
        _gp_state(fast.latency_gp),
        _gp_state(fast.energy_gp),
        fast.val_images,
        fast.val_labels,
        fast.num_cells,
        fast.stem_channels,
        fast.image_size,
        fast.num_classes,
        fast.eval_batch,
    )


def accurate_evaluator_fingerprint(accurate: "AccurateEvaluator") -> str:
    """Fingerprint of everything a stand-alone training depends on.

    The dataset arrays plus the recipe knobs — but NOT the seed, which is
    part of each record's key (one genotype trains under many seeds).
    """
    dataset = accurate.dataset
    return digest(
        "accurate-evaluator",
        dataset.train.images,
        dataset.train.labels,
        dataset.val.images,
        dataset.val.labels,
        accurate.num_cells,
        accurate.stem_channels,
        accurate.num_classes,
        accurate.train_epochs,
        accurate.batch_size,
        bool(accurate.train_fast),
    )


def samples_fingerprint(
    simulator: "SystolicArraySimulator",
    num_cells: int,
    stem_channels: int,
    image_size: int,
    num_classes: int,
) -> str:
    """Fingerprint of the simulator ground-truth configuration.

    A persisted (latency, energy) sample is valid for any process whose
    analytical simulator and network-expansion dims match.
    """
    em = simulator.energy_model
    return digest(
        "simulator-samples",
        repr(em),
        bool(simulator.include_noc),
        repr(simulator.noc_model),
        num_cells,
        stem_channels,
        image_size,
        num_classes,
    )
