"""Durable encoding-keyed result store: an append-only checksummed log.

The tier-2 cache behind every evaluator LRU in the stack.  One store file
holds ``(namespace, key, values)`` records, where the key is a tuple of
integers — in practice the canonical 44-token action-sequence encoding
the evaluator caches already key on (:func:`repro.nas.encoding.encode`),
the 40 genotype tokens plus a seed for trained accuracies, and the 44
tokens again for simulator ground-truth samples.  Namespaces carry a
content fingerprint of the producing context (HyperNet weights, GP state,
training recipe — see :mod:`repro.store.fingerprint`), so results from
one context can never be served to another.

On-disk format — a 13-byte magic header followed by self-delimiting
records::

    YOSO-STORE-1\n
    <u32 payload-length> <payload bytes> <u32 crc32(payload)>
    ...

The payload is one compact JSON object ``{"ns": str, "k": [int, ...],
"v": [float, ...]}``.  ``json`` serialises floats with ``repr`` (the
shortest round-tripping form) and parses them back exactly, so stored
values survive append -> reopen -> lookup with ``==`` equality — the same
wire-exactness discipline as :mod:`repro.service.protocol`.

Durability model:

* **Appends are atomic at the record level.**  Each append is a single
  ``os.write`` of the fully assembled record (no userspace buffering); a
  failed or partial write is rolled back by truncating to the last good
  offset, and if even the rollback fails the store marks itself broken
  and refuses further appends (reads keep working) instead of ever
  writing after a torn record.
* **Recovery drops only the bad tail.**  Opening a store scans the log
  record by record; the first torn, truncated or checksum-failing record
  ends the scan, everything before it is served, and (in writer mode)
  the file is truncated back to the last good record so the next append
  extends a clean log.  Earlier records are never touched.
* **Single writer, enforced.**  The writer holds an exclusive
  ``flock`` on the file for its lifetime; a second writer — thread or
  process — gets :class:`StoreLockedError` instead of interleaving
  appends.  One open :class:`ResultStore` instance is itself
  thread-safe (appends serialise on an internal lock), which is how the
  service's scheduler thread and any in-process callers share it.
  ``mode="r"`` opens a lock-free read-only snapshot.
* **``sync()`` is the flush point.**  Appends reach the OS immediately;
  ``sync``/``close`` add an ``fsync``.  The service calls it on drain.
"""

from __future__ import annotations

import json
import os
import struct
import threading
import time
import zlib
from typing import Iterator

from ..obs.registry import get_registry
from ..resilience import faults

try:  # pragma: no cover - always present on the POSIX hosts we target
    import fcntl
except ImportError:  # pragma: no cover - non-POSIX fallback (no inter-
    fcntl = None  # process enforcement; in-process locking still applies)

__all__ = [
    "MAGIC",
    "MAX_RECORD_BYTES",
    "StoreError",
    "StoreLockedError",
    "ResultStore",
]

#: File magic: identifies (and versions) the record format.
MAGIC = b"YOSO-STORE-1\n"

#: Sanity bound on one record's payload; a corrupt length field larger
#: than this is treated as a torn tail rather than followed off a cliff.
MAX_RECORD_BYTES = 16 * 1024 * 1024

_U32 = struct.Struct("<I")

# Process-wide mirrors of the per-instance lifetime counters (a process
# can hold several stores; the registry aggregates them).
_REGISTRY = get_registry()
_M_APPENDS = _REGISTRY.counter("store.appends")
_M_LOOKUPS = _REGISTRY.counter("store.lookups")
_M_HITS = _REGISTRY.counter("store.hits")


class StoreError(RuntimeError):
    """The store file is unusable (bad magic, closed, or broken writer)."""


class StoreLockedError(StoreError):
    """Another writer already holds this store file."""


def _encode_record(namespace: str, key: tuple, values: tuple) -> bytes:
    payload = json.dumps(
        {"ns": namespace, "k": list(key), "v": list(values)},
        separators=(",", ":"),
    ).encode("utf-8")
    if len(payload) > MAX_RECORD_BYTES:
        raise StoreError(f"record payload exceeds {MAX_RECORD_BYTES} bytes")
    return _U32.pack(len(payload)) + payload + _U32.pack(zlib.crc32(payload))


def _decode_payload(payload: bytes) -> tuple[str, tuple, tuple]:
    obj = json.loads(payload)
    namespace = obj["ns"]
    key = tuple(int(k) for k in obj["k"])
    values = tuple(float(v) for v in obj["v"])
    if not isinstance(namespace, str):
        raise ValueError("record namespace must be a string")
    return namespace, key, values


class ResultStore:
    """One append-only result log plus its in-memory index.

    ``mode="a"`` (default) opens for append — creating the file if needed,
    recovering a torn tail, and taking the exclusive writer lock.
    ``mode="r"`` opens a read-only snapshot of the valid prefix (no lock,
    no truncation; a torn tail is ignored, not repaired).

    Lookups and appends go through the in-memory index, a
    ``(namespace, key) -> values`` dict built once at open; later records
    override earlier ones (last-write-wins), so re-appending a key is
    legal and cheap.
    """

    def __init__(self, path: str, mode: str = "a", retry=None) -> None:
        if mode not in ("a", "r"):
            raise ValueError(f"mode must be 'a' or 'r', got {mode!r}")
        self.path = os.path.abspath(path)
        self.mode = mode
        #: Optional :class:`~repro.resilience.policy.RetryPolicy` for
        #: appends: a retryable write failure is rolled back (truncate to
        #: the last good offset) and re-attempted after backoff, so a
        #: transient I/O blip does not lose a result.  ``None`` (default)
        #: preserves fail-fast semantics.
        self.retry = retry
        self._lock = threading.Lock()
        self._index: dict[tuple[str, tuple], tuple] = {}
        self._closed = False
        self._broken = False
        #: Bytes of torn tail dropped during open-time recovery.
        self.recovered_bytes = 0
        #: Valid records loaded at open (before any new appends).
        self.loaded_records = 0
        #: Lifetime counters.
        self.appends = 0
        self.lookups = 0
        self.hits = 0
        #: Appends that succeeded only after a rolled-back re-attempt.
        self.retried_appends = 0

        flags = os.O_RDONLY if mode == "r" else os.O_RDWR | os.O_CREAT
        self._fd = os.open(self.path, flags, 0o644)
        try:
            if mode == "a":
                self._acquire_flock()
            self._size = self._scan()
        except BaseException:
            os.close(self._fd)
            raise

    # -- open-time scan / recovery --------------------------------------
    def _acquire_flock(self) -> None:
        if fcntl is None:  # pragma: no cover - non-POSIX
            return
        try:
            fcntl.flock(self._fd, fcntl.LOCK_EX | fcntl.LOCK_NB)
        except OSError as exc:
            raise StoreLockedError(
                f"{self.path} is already open for writing "
                f"(single-writer store)"
            ) from exc

    def _scan(self) -> int:
        """Load every valid record; return the end offset of the good log."""
        size = os.fstat(self._fd).st_size
        if size == 0:
            if self.mode == "r":
                raise StoreError(f"{self.path} is empty (no store header)")
            os.pwrite(self._fd, MAGIC, 0)
            return len(MAGIC)
        data = b""
        offset = 0
        while offset < size:
            chunk = os.pread(self._fd, min(size - offset, 1 << 24), offset)
            if not chunk:
                break
            data += chunk
            offset += len(chunk)
        if data[: len(MAGIC)] != MAGIC:
            raise StoreError(
                f"{self.path} is not a YOSO result store (bad magic)"
            )
        good = len(MAGIC)
        while good < len(data):
            header_end = good + _U32.size
            if header_end > len(data):
                break  # torn length prefix
            (length,) = _U32.unpack(data[good:header_end])
            if length > MAX_RECORD_BYTES:
                break  # corrupt length field
            record_end = header_end + length + _U32.size
            if record_end > len(data):
                break  # truncated payload or checksum
            payload = data[header_end : header_end + length]
            (crc,) = _U32.unpack(data[record_end - _U32.size : record_end])
            if crc != zlib.crc32(payload):
                break  # flipped bytes
            try:
                namespace, key, values = _decode_payload(payload)
            except (ValueError, KeyError, TypeError):
                break  # checksum ok but payload not a record (torn write)
            self._index[(namespace, key)] = values
            self.loaded_records += 1
            good = record_end
        if good < len(data):
            self.recovered_bytes = len(data) - good
            if self.mode == "a":
                os.ftruncate(self._fd, good)
        return good

    # -- writing ---------------------------------------------------------
    def _write_bytes(self, blob: bytes) -> None:
        """Append raw bytes at the end of the log (single syscall path).

        Split out so fault-injection tests can monkeypatch a partial,
        failing write — the kill-mid-append scenario.
        """
        view = memoryview(blob)
        written = 0
        while written < len(view):
            written += os.pwrite(self._fd, view[written:], self._size + written)

    def append(self, namespace: str, key, values) -> None:
        """Durably record ``values`` under ``(namespace, key)``.

        ``key`` is a sequence of integers, ``values`` a sequence of
        floats; both round-trip exactly.  Raises :class:`StoreError` on a
        read-only, closed or broken store; a failed write is rolled back
        (or the store marked broken) so the on-disk log never gains a
        torn interior record.
        """
        key = tuple(int(k) for k in key)
        values = tuple(float(v) for v in values)
        blob = _encode_record(namespace, key, values)
        with self._lock:
            if self._closed:
                raise StoreError("store is closed")
            if self.mode == "r":
                raise StoreError("store is read-only")
            if self._broken:
                raise StoreError(
                    "store writer is broken (a previous append failed and "
                    "could not be rolled back); reopen the store to recover"
                )
            attempt = 1
            t0 = time.monotonic()
            while True:
                try:
                    faults.hit("store.append")
                    self._write_bytes(blob)
                    break
                except BaseException as exc:
                    # Roll back FIRST — whatever happens next, the log
                    # must never gain a torn interior record.  A failed
                    # rollback marks the writer broken and surfaces the
                    # ORIGINAL write error (never retried: the log state
                    # is unknown).
                    try:
                        os.ftruncate(self._fd, self._size)
                    except OSError:
                        self._broken = True
                        raise exc
                    if self.retry is None or not self.retry.should_retry(
                        exc, attempt, time.monotonic() - t0
                    ):
                        raise
                    # Appends already serialise on this lock, so backing
                    # off while holding it blocks only other writers —
                    # which could not proceed anyway.
                    # yoso-lint: disable=lock-discipline -- see above: writers
                    # are serialised by design, readers never take this lock
                    self.retry.sleep_before_retry(attempt)
                    self.retried_appends += 1
                    attempt += 1
            self._size += len(blob)
            self._index[(namespace, key)] = values
            self.appends += 1
        _M_APPENDS.inc()

    def sync(self) -> None:
        """fsync the log (appends already hit the OS synchronously)."""
        with self._lock:
            if not self._closed and self.mode == "a":
                # yoso-lint: disable=lock-discipline -- durability: the fsync
                # must cover every append that returned, so it cannot race a
                # concurrent writer appending to the same fd
                os.fsync(self._fd)

    # -- reading ---------------------------------------------------------
    def get(self, namespace: str, key) -> tuple | None:
        """The stored values for ``(namespace, key)``, or ``None``."""
        values = self._index.get((namespace, tuple(int(k) for k in key)))
        self.lookups += 1
        _M_LOOKUPS.inc()
        if values is not None:
            self.hits += 1
            _M_HITS.inc()
        return values

    def __contains__(self, ns_key: tuple) -> bool:
        namespace, key = ns_key
        return (namespace, tuple(int(k) for k in key)) in self._index

    def items(self, namespace: str | None = None) -> Iterator[tuple]:
        """Iterate ``(namespace, key, values)`` (optionally one namespace)."""
        for (ns, key), values in self._index.items():
            if namespace is None or ns == namespace:
                yield ns, key, values

    def namespaces(self) -> set[str]:
        return {ns for ns, _key in self._index}

    def __len__(self) -> int:
        return len(self._index)

    @property
    def size_bytes(self) -> int:
        """Current length of the on-disk log."""
        return self._size

    @property
    def closed(self) -> bool:
        return self._closed

    # -- lifecycle -------------------------------------------------------
    def close(self) -> None:
        """fsync, release the writer lock and close the file (idempotent)."""
        with self._lock:
            if self._closed:
                return
            self._closed = True
            try:
                if self.mode == "a":
                    try:
                        # yoso-lint: disable=lock-discipline -- final flush at
                        # close; the lock must stay held so no append can land
                        # between the fsync and releasing the flock
                        os.fsync(self._fd)
                    except OSError:  # pragma: no cover - fsync on odd fs
                        pass
                    if fcntl is not None:
                        try:
                            fcntl.flock(self._fd, fcntl.LOCK_UN)
                        except OSError:  # pragma: no cover
                            pass
            finally:
                os.close(self._fd)

    def __enter__(self) -> "ResultStore":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __del__(self) -> None:  # pragma: no cover - interpreter teardown
        try:
            self.close()
        except Exception:
            pass

    def stats(self) -> dict:
        """A JSON-ready snapshot (service ``stats`` verb, report CLI)."""
        return {
            "path": self.path,
            "mode": self.mode,
            "records": len(self._index),
            "loaded_records": self.loaded_records,
            "appends": self.appends,
            "retried_appends": self.retried_appends,
            "lookups": self.lookups,
            "hits": self.hits,
            "size_bytes": self._size,
            "recovered_bytes": self.recovered_bytes,
        }
