"""repro.store — the durable, encoding-keyed tier-2 result cache.

Every in-memory cache in the stack (the evaluator LRUs, the service's
persistent evaluator, each training shard) dies with its process; this
package is the tier below them that does not.  :class:`ResultStore` is an
append-only, checksummed record log with an in-memory index and enforced
single-writer locking; :mod:`repro.store.fingerprint` scopes its
namespaces to the producing context so one file can safely hold results
from many scales, seeds and recipes at once.

Consumers (see docs/PERFORMANCE.md, "Durable result store"):

* :class:`repro.search.evaluator.BatchEvaluator` (and its parallel
  subclass) consult store -> LRU -> compute and append fresh
  evaluations, keyed by the canonical 44-token encoding;
* :func:`repro.parallel.training.train_accuracies` reuses persisted
  stand-alone training accuracies (genotype tokens + seed);
* :func:`repro.predict.dataset.collect_samples` reuses persisted
  simulator ground truth, so the GP predictors warm-start and a fresh
  search opens with a trained surrogate;
* :class:`repro.service.server.SearchService` opens one store per
  server (``yoso serve --store``) and flushes it on drain, so restarts
  are warm.
"""

from .fingerprint import (
    accurate_evaluator_fingerprint,
    digest,
    fast_evaluator_fingerprint,
    samples_fingerprint,
)
from .result_store import (
    MAGIC,
    MAX_RECORD_BYTES,
    ResultStore,
    StoreError,
    StoreLockedError,
)

__all__ = [
    "MAGIC",
    "MAX_RECORD_BYTES",
    "ResultStore",
    "StoreError",
    "StoreLockedError",
    "digest",
    "fast_evaluator_fingerprint",
    "accurate_evaluator_fingerprint",
    "samples_fingerprint",
]
