"""Deterministic, process-wide fault injection for the chaos suite.

A :class:`FaultPlan` is a seeded script of failures.  Production code
never imports failure *behaviour* from here — it only marks the
boundaries where real systems fail with named **sites**::

    from ..resilience import faults
    ...
    faults.hit("wire.read")     # may raise / sleep / kill, per the plan

With no plan installed (the default, and the only state production ever
runs in) ``hit()`` is a single list-index check and a ``None``
comparison — the same kill-switch shape as the metrics registry, so the
sites cost nothing on the hot path and change no behaviour, no wire
bytes, no results.

Tests install a plan with :func:`installed`::

    plan = FaultPlan(seed=7).add("wire.read", "error", count=2)
    with faults.installed(plan):
        ...  # the first two wire reads raise InjectedFault

Rules are matched deterministically: hits at a site are numbered from 1,
``after`` skips the first N hits, ``count`` bounds how many inject, and
``probability`` draws from a per-site RNG seeded with ``(seed, site)``
— so a given plan injects at exactly the same hits on every run, every
host.  Actions:

``error``   raise ``rule.error`` (default :class:`InjectedFault`)
``drop``    raise :class:`InjectedFault` marked as a torn connection
``delay``   sleep ``delay_s`` then continue normally
``kill``    ``os._exit(17)`` — the process dies mid-operation (worker
            crash / server kill scenarios)

Sites must be one of :data:`KNOWN_SITES`; a typo in a test fails fast
instead of silently never firing.
"""

from __future__ import annotations

import contextlib
import os
import random
import threading
import time

from ..obs.registry import get_registry

__all__ = [
    "InjectedFault",
    "FaultPlan",
    "FaultRule",
    "KNOWN_SITES",
    "install",
    "clear",
    "active",
    "hit",
    "decide",
    "installed",
]

_M_INJECTED = get_registry().counter("faults.injected")

#: The named injection sites production code consults.  Adding a site
#: means adding a ``faults.hit(...)`` call at a real boundary AND
#: documenting it in docs/RESILIENCE.md.
KNOWN_SITES = frozenset(
    {
        "wire.read",      # ServiceClient: before reading a response line
        "wire.write",     # ServiceClient: before writing a request line
        "scheduler.tick", # MicroBatchScheduler: before evaluating a batch
        "pool.worker",    # WorkerPool: per shard, executed in the worker
        "store.append",   # ResultStore: inside the guarded byte write
    }
)

_ACTIONS = frozenset({"error", "drop", "delay", "kill"})


class InjectedFault(ConnectionError):
    """The error raised by ``error``/``drop`` fault rules.

    Subclasses :class:`ConnectionError` so default retry classification
    treats injected faults like the transient wire failures they model.
    """


class FaultRule:
    """One scripted failure at one site (see :meth:`FaultPlan.add`)."""

    __slots__ = ("site", "action", "probability", "count", "after",
                 "delay_s", "error", "fired")

    def __init__(
        self,
        site: str,
        action: str,
        probability: float = 1.0,
        count: int | None = None,
        after: int = 0,
        delay_s: float = 0.05,
        error: BaseException | None = None,
    ) -> None:
        if site not in KNOWN_SITES:
            raise ValueError(
                f"unknown fault site {site!r}; known sites: "
                f"{sorted(KNOWN_SITES)}"
            )
        if action not in _ACTIONS:
            raise ValueError(
                f"unknown fault action {action!r}; known actions: "
                f"{sorted(_ACTIONS)}"
            )
        if not 0.0 < probability <= 1.0:
            raise ValueError("probability must be in (0, 1]")
        if count is not None and count < 1:
            raise ValueError("count must be >= 1 (or None for unbounded)")
        if after < 0:
            raise ValueError("after must be >= 0")
        self.site = site
        self.action = action
        self.probability = probability
        self.count = count
        self.after = after
        self.delay_s = delay_s
        self.error = error
        self.fired = 0  # injections so far (bounded by count)


class FaultPlan:
    """A seeded, deterministic script of failures for named sites.

    Thread-safe: hit numbering and rule bookkeeping are guarded by one
    lock, so concurrent client threads see a single consistent schedule.
    ``hits`` / ``injected`` expose per-site accounting for assertions.
    """

    def __init__(self, seed: int = 0) -> None:
        self.seed = seed
        self._rules: list[FaultRule] = []
        self._lock = threading.Lock()
        self._rng: dict[str, random.Random] = {}
        self.hits: dict[str, int] = {}
        self.injected: dict[str, int] = {}

    def add(self, site: str, action: str, **kwargs) -> "FaultPlan":
        """Append a rule (chainable).  See :class:`FaultRule`."""
        self._rules.append(FaultRule(site, action, **kwargs))
        return self

    def _site_rng(self, site: str) -> random.Random:
        if site not in self._rng:
            # Seeded per (plan seed, site): probability draws are a pure
            # function of the hit sequence, independent of other sites.
            self._rng[site] = random.Random(f"{self.seed}:{site}")
        return self._rng[site]

    def decide(self, site: str) -> FaultRule | None:
        """Consume one hit at ``site``; return the rule to execute, if any.

        Split from :func:`fire` so a parent process can *decide* a fault
        and ship only its execution to a worker (``pool.worker``): the
        decision consumes the hit exactly once, so a respawned worker
        re-running the same shard is not re-killed forever.
        """
        if site not in KNOWN_SITES:
            raise ValueError(f"unknown fault site {site!r}")
        with self._lock:
            n = self.hits.get(site, 0) + 1
            self.hits[site] = n
            for rule in self._rules:
                if rule.site != site:
                    continue
                if n <= rule.after:
                    continue
                if rule.count is not None and rule.fired >= rule.count:
                    continue
                if (
                    rule.probability < 1.0
                    and self._site_rng(site).random() >= rule.probability
                ):
                    continue
                rule.fired += 1
                self.injected[site] = self.injected.get(site, 0) + 1
                _M_INJECTED.inc()
                return rule
            return None

    def fire(self, rule: FaultRule) -> None:
        """Execute a rule returned by :meth:`decide`."""
        if rule.action == "delay":
            time.sleep(rule.delay_s)
            return
        if rule.action == "kill":
            os._exit(17)
        if rule.action == "error" and rule.error is not None:
            raise rule.error
        raise InjectedFault(
            f"injected {rule.action} at {rule.site} "
            f"(hit {self.hits.get(rule.site, 0)})"
        )

    def hit(self, site: str) -> None:
        """Consume a hit and execute any matched rule in place."""
        rule = self.decide(site)
        if rule is not None:
            self.fire(rule)


# --- process-wide kill switch -------------------------------------------
# One-element list, same shape as the registry's kill switch: the hot
# path reads a single slot; ``None`` (the default) means every site is a
# no-op beyond that read.
_PLAN: list[FaultPlan | None] = [None]


def install(plan: FaultPlan) -> None:
    """Install ``plan`` process-wide (tests only; replaces any previous)."""
    _PLAN[0] = plan


def clear() -> None:
    """Remove any installed plan; sites return to zero-cost no-ops."""
    _PLAN[0] = None


def active() -> FaultPlan | None:
    """The installed plan, or ``None``."""
    return _PLAN[0]


def hit(site: str) -> None:
    """Consult the installed plan at ``site`` (no-op when none)."""
    plan = _PLAN[0]
    if plan is None:
        return
    plan.hit(site)


def decide(site: str) -> FaultRule | None:
    """Parent-side decision for sites executed elsewhere (``pool.worker``)."""
    plan = _PLAN[0]
    if plan is None:
        return None
    return plan.decide(site)


@contextlib.contextmanager
def installed(plan: FaultPlan):
    """``with faults.installed(plan): ...`` — install, yield, always clear."""
    install(plan)
    try:
        yield plan
    finally:
        clear()
