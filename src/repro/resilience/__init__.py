"""Resilience layer: retry/deadline/breaker policies + fault injection.

``repro.resilience.policy`` holds the pure policy classes every
boundary shares (:class:`RetryPolicy`, :class:`Deadline`,
:class:`CircuitBreaker`); ``repro.resilience.faults`` holds the
deterministic process-wide :class:`FaultPlan` the chaos suite uses to
script failures at named sites.  See docs/RESILIENCE.md.
"""

from .policy import (
    CIRCUIT_CLOSED,
    CIRCUIT_HALF_OPEN,
    CIRCUIT_OPEN,
    CircuitBreaker,
    Deadline,
    DeadlineExceeded,
    RetryPolicy,
)
from .faults import FaultPlan, InjectedFault

__all__ = [
    "RetryPolicy",
    "Deadline",
    "DeadlineExceeded",
    "CircuitBreaker",
    "CIRCUIT_CLOSED",
    "CIRCUIT_HALF_OPEN",
    "CIRCUIT_OPEN",
    "FaultPlan",
    "InjectedFault",
]
