"""Resilience policies: retry with backoff, deadlines, circuit breaking.

Three small pure classes every boundary in the stack shares:

* :class:`RetryPolicy` — classified retryable-vs-terminal errors,
  exponential backoff with *deterministic seeded jitter* (the delay for
  attempt ``n`` is a pure function of ``(seed, n)``, so tests and
  replayed traces see identical schedules), bounded by ``max_attempts``
  and ``max_elapsed_s``.
* :class:`Deadline` — one per-request time budget created at the top of
  a call and consumed down through connect/write/read: every blocking
  step asks :meth:`Deadline.timeout` for the *remaining* budget instead
  of applying its own socket-level timeout, so the caller gets one
  coherent bound and a clean typed :class:`DeadlineExceeded` instead of
  a hang or an ambiguous socket error.
* :class:`CircuitBreaker` — the classic closed → open (after N
  consecutive failures) → half-open (one probe after ``reset_s``) state
  machine that lets a client stop hammering a dead backend and degrade
  to a local fallback (:class:`~repro.service.client.RemoteEvaluator`).

All three report into the :mod:`repro.obs` registry
(``resilience.retries``, ``resilience.backoff_s``,
``resilience.circuit_state``, ``resilience.circuit_opens``) and none of
them ever changes a computed value — retries re-run deterministic work,
deadlines abort it, breakers reroute it.  The retry-safety invariant the
service stack relies on is stated (and tested) at the call sites:
evaluations are deterministic and the wire codec value-preserving, so
re-running a request yields bit-identical results.
"""

from __future__ import annotations

import random
import threading
import time
from typing import Callable

from ..obs.registry import get_registry

__all__ = [
    "DeadlineExceeded",
    "Deadline",
    "RetryPolicy",
    "CircuitBreaker",
    "CIRCUIT_CLOSED",
    "CIRCUIT_OPEN",
    "CIRCUIT_HALF_OPEN",
]

# Module-level registry handles (the uniform pattern across instrumented
# modules: fetched once, no name lookups on the hot path).
_REGISTRY = get_registry()
_M_RETRIES = _REGISTRY.counter("resilience.retries")
_M_BACKOFF_S = _REGISTRY.histogram("resilience.backoff_s")
_M_CIRCUIT_STATE = _REGISTRY.gauge("resilience.circuit_state")
_M_CIRCUIT_OPENS = _REGISTRY.counter("resilience.circuit_opens")
_M_DEADLINES = _REGISTRY.counter("resilience.deadlines_exceeded")


class DeadlineExceeded(TimeoutError):
    """A per-request time budget ran out (clean, typed — never a hang).

    Deliberately *terminal* for every :class:`RetryPolicy`: once the
    budget is gone, another attempt cannot help.
    """


class Deadline:
    """A per-request time budget, created once and consumed downward.

    ``Deadline(budget_s)`` starts the clock; ``Deadline(None)`` is the
    unlimited deadline (every query answers "plenty left"), so call
    chains can thread one object unconditionally.  ``clock`` is
    injectable for tests (monotonic seconds).
    """

    __slots__ = ("budget_s", "_clock", "_t0")

    def __init__(self, budget_s: float | None, clock=time.monotonic) -> None:
        if budget_s is not None and budget_s <= 0:
            raise ValueError("deadline budget must be positive (or None)")
        self.budget_s = budget_s
        self._clock = clock
        self._t0 = clock()

    @property
    def unlimited(self) -> bool:
        return self.budget_s is None

    def elapsed(self) -> float:
        return self._clock() - self._t0

    def remaining(self) -> float:
        """Seconds left in the budget (``inf`` for the unlimited deadline)."""
        if self.budget_s is None:
            return float("inf")
        return self.budget_s - self.elapsed()

    @property
    def expired(self) -> bool:
        return self.remaining() <= 0.0

    def check(self, what: str = "request") -> None:
        """Raise :class:`DeadlineExceeded` if the budget is gone."""
        if self.expired:
            _M_DEADLINES.inc()
            raise DeadlineExceeded(
                f"{what} exceeded its {self.budget_s}s deadline"
            )

    def timeout(self, cap: float | None = None, what: str = "request") -> float | None:
        """The timeout a blocking step should apply right now.

        The smaller of ``cap`` (the step's own default, e.g. the client's
        socket timeout) and the remaining budget; ``None`` when both are
        unlimited.  Raises :class:`DeadlineExceeded` instead of returning
        a non-positive timeout, so an already-blown budget fails before
        the syscall rather than inside it.
        """
        self.check(what)
        remaining = self.remaining()
        if cap is None:
            return None if remaining == float("inf") else remaining
        return min(cap, remaining)


class RetryPolicy:
    """Bounded retries with deterministic seeded exponential backoff.

    Errors are *classified*: only instances of ``retryable`` types (minus
    ``terminal`` types — checked first, so :class:`DeadlineExceeded` is
    never retried even though it subclasses ``TimeoutError``) qualify for
    another attempt.  The delay before attempt ``n + 1`` is::

        min(max_delay_s, base_delay_s * multiplier ** (n - 1)) * jitter_n

    where ``jitter_n`` is drawn uniformly from ``[1 - jitter, 1]`` by a
    RNG seeded with ``(seed, n)`` — a pure function, so two policies with
    the same parameters produce the same schedule on every host (the
    determinism the chaos suite pins).  ``max_attempts`` counts total
    attempts (1 = no retries); ``max_elapsed_s`` caps the whole loop.

    The policy object is immutable state + pure functions; it holds no
    locks and is safe to share across threads and call sites.
    """

    #: Default classification for wire-ish boundaries: connection tears,
    #: timeouts and OS-level I/O errors are transient; everything else —
    #: typed server errors, protocol violations the peer answered with,
    #: programming errors — is terminal.
    DEFAULT_RETRYABLE: tuple[type, ...] = (ConnectionError, TimeoutError, OSError)
    DEFAULT_TERMINAL: tuple[type, ...] = (DeadlineExceeded,)

    def __init__(
        self,
        max_attempts: int = 4,
        base_delay_s: float = 0.05,
        multiplier: float = 2.0,
        max_delay_s: float = 2.0,
        jitter: float = 0.5,
        max_elapsed_s: float | None = None,
        seed: int = 0,
        retryable: tuple[type, ...] | None = None,
        terminal: tuple[type, ...] | None = None,
    ) -> None:
        if max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        if base_delay_s < 0 or max_delay_s < 0:
            raise ValueError("delays must be >= 0")
        if not 0.0 <= jitter <= 1.0:
            raise ValueError("jitter must be in [0, 1]")
        self.max_attempts = max_attempts
        self.base_delay_s = base_delay_s
        self.multiplier = multiplier
        self.max_delay_s = max_delay_s
        self.jitter = jitter
        self.max_elapsed_s = max_elapsed_s
        self.seed = seed
        self.retryable = (
            self.DEFAULT_RETRYABLE if retryable is None else tuple(retryable)
        )
        self.terminal = (
            self.DEFAULT_TERMINAL if terminal is None else tuple(terminal)
        )

    # -- classification --------------------------------------------------
    def is_retryable(self, exc: BaseException) -> bool:
        """Whether ``exc`` qualifies for another attempt (type-based)."""
        if isinstance(exc, self.terminal):
            return False
        return isinstance(exc, self.retryable)

    def should_retry(
        self, exc: BaseException, attempt: int, elapsed_s: float = 0.0
    ) -> bool:
        """Classification + budget: may attempt ``attempt + 1`` happen?"""
        if not self.is_retryable(exc):
            return False
        if attempt >= self.max_attempts:
            return False
        if self.max_elapsed_s is not None and elapsed_s >= self.max_elapsed_s:
            return False
        return True

    # -- backoff ---------------------------------------------------------
    def backoff_s(self, attempt: int) -> float:
        """Deterministic delay before attempt ``attempt + 1`` (pure)."""
        if attempt < 1:
            raise ValueError("attempt numbers start at 1")
        delay = min(
            self.max_delay_s,
            self.base_delay_s * self.multiplier ** (attempt - 1),
        )
        if self.jitter:
            # random.Random(str) seeds via sha512 — deterministic across
            # processes and platforms, unlike hash().
            u = random.Random(f"{self.seed}:{attempt}").random()
            delay *= 1.0 - self.jitter + self.jitter * u
        return delay

    def sleep_before_retry(self, attempt: int) -> float:
        """Count the retry, observe and sleep the backoff; returns it."""
        delay = self.backoff_s(attempt)
        _M_RETRIES.inc()
        _M_BACKOFF_S.observe(delay)
        time.sleep(delay)
        return delay

    # -- driver ----------------------------------------------------------
    def run(
        self,
        fn: Callable[[int], object],
        deadline: Deadline | None = None,
        on_retry: Callable[[BaseException, int, float], None] | None = None,
    ):
        """Run ``fn(attempt)`` under this policy; return its result.

        Terminal errors, exhausted attempts/elapsed budget and a
        ``deadline`` too small to fit the next backoff all re-raise the
        last error (a blown deadline raises :class:`DeadlineExceeded`
        from it).  ``on_retry(exc, attempt, delay_s)`` fires before each
        backoff sleep — the hook call sites use for accounting.
        """
        t0 = time.monotonic()
        attempt = 1
        while True:
            try:
                return fn(attempt)
            except BaseException as exc:
                elapsed = time.monotonic() - t0
                if not self.should_retry(exc, attempt, elapsed):
                    raise
                if deadline is not None and (
                    deadline.remaining() <= self.backoff_s(attempt)
                ):
                    # The budget cannot fit another backoff + attempt: the
                    # caller always gets the typed budget error, never an
                    # opaque transport one.
                    _M_DEADLINES.inc()
                    raise DeadlineExceeded(
                        f"deadline exhausted after {attempt} attempt(s)"
                    ) from exc
                delay = self.backoff_s(attempt)
                if on_retry is not None:
                    on_retry(exc, attempt, delay)
                self.sleep_before_retry(attempt)
                attempt += 1


#: Circuit-breaker states (the gauge encodes them 0 / 1 / 2).
CIRCUIT_CLOSED = "closed"
CIRCUIT_HALF_OPEN = "half_open"
CIRCUIT_OPEN = "open"
_STATE_GAUGE_VALUE = {CIRCUIT_CLOSED: 0, CIRCUIT_HALF_OPEN: 1, CIRCUIT_OPEN: 2}


class CircuitBreaker:
    """Closed → open after N consecutive failures → half-open probe.

    *Closed* admits every call.  ``failure_threshold`` consecutive
    recorded failures trip it *open*: calls are refused (``allow()`` is
    False) for ``reset_s`` seconds, after which the breaker goes
    *half-open* and admits exactly ONE probe call; the probe's outcome
    closes the breaker (success) or re-opens it for another ``reset_s``
    (failure).  A success in any state resets the failure count.

    ``clock`` is injectable (monotonic seconds) so the state machine is
    unit-testable without sleeping.  Thread-safe; state transitions set
    the ``resilience.circuit_state`` gauge (0 closed / 1 half-open /
    2 open) and trips increment ``resilience.circuit_opens``.
    """

    def __init__(
        self,
        failure_threshold: int = 3,
        reset_s: float = 5.0,
        clock=time.monotonic,
    ) -> None:
        if failure_threshold < 1:
            raise ValueError("failure_threshold must be >= 1")
        if reset_s < 0:
            raise ValueError("reset_s must be >= 0")
        self.failure_threshold = failure_threshold
        self.reset_s = reset_s
        self._clock = clock
        self._lock = threading.Lock()
        self._state = CIRCUIT_CLOSED
        self._failures = 0
        self._opened_at = 0.0
        self._probing = False
        #: Lifetime counters (stats surfaces).
        self.opens = 0
        self.probes = 0

    # -- state -----------------------------------------------------------
    @property
    def state(self) -> str:
        with self._lock:
            self._maybe_half_open()
            return self._state

    @property
    def failures(self) -> int:
        """Consecutive failures recorded since the last success."""
        return self._failures

    def _set_state(self, state: str) -> None:
        self._state = state
        _M_CIRCUIT_STATE.set(_STATE_GAUGE_VALUE[state])

    def _maybe_half_open(self) -> None:
        if (
            self._state == CIRCUIT_OPEN
            and self._clock() - self._opened_at >= self.reset_s
        ):
            self._set_state(CIRCUIT_HALF_OPEN)
            self._probing = False

    # -- the three verbs -------------------------------------------------
    def allow(self) -> bool:
        """May a call proceed right now?

        Closed: always.  Open: no, until ``reset_s`` has elapsed.  Half-
        open: yes for exactly one caller (the probe); concurrent callers
        are refused until the probe reports back.
        """
        with self._lock:
            self._maybe_half_open()
            if self._state == CIRCUIT_CLOSED:
                return True
            if self._state == CIRCUIT_HALF_OPEN and not self._probing:
                self._probing = True
                self.probes += 1
                return True
            return False

    def record_success(self) -> None:
        with self._lock:
            self._failures = 0
            self._probing = False
            if self._state != CIRCUIT_CLOSED:
                self._set_state(CIRCUIT_CLOSED)

    def record_failure(self) -> None:
        with self._lock:
            self._maybe_half_open()
            self._failures += 1
            self._probing = False
            if self._state == CIRCUIT_HALF_OPEN or (
                self._state == CIRCUIT_CLOSED
                and self._failures >= self.failure_threshold
            ):
                self._set_state(CIRCUIT_OPEN)
                self._opened_at = self._clock()
                self.opens += 1
                _M_CIRCUIT_OPENS.inc()

    def stats(self) -> dict:
        """JSON-ready snapshot (client adapters surface it)."""
        return {
            "state": self.state,
            "failures": self._failures,
            "failure_threshold": self.failure_threshold,
            "reset_s": self.reset_s,
            "opens": self.opens,
            "probes": self.probes,
        }
