"""Versioned wire codec for the search-evaluation service.

The service speaks newline-delimited JSON (NDJSON) over a stream: one
request object per line in, one response object per line out.  Every
message carries the wire version (``"v"``) and requests carry a caller
``"id"`` that the matching response echoes, so a client can pipeline.

Co-design points travel as their canonical 44-token action sequence
(:func:`repro.nas.encoding.encode`) plus the genotype name — the exact
encoding the evaluator caches key on, so the server reconstructs a point
that scores *bit-identically* to the caller's original.  Evaluations
travel as their three floats; ``json`` serialises Python floats with
``repr`` (shortest round-tripping form), so values survive the wire
without any loss — the parity tests assert ``==`` across the socket, no
tolerances.

Requests::

    {"v": 1, "id": 7, "op": "evaluate",      "point": {...}}
    {"v": 1, "id": 8, "op": "evaluate_many", "points": [{...}, ...]}
    {"v": 1, "id": 9, "op": "stats"}
    {"v": 1, "id": 10, "op": "health"}
    {"v": 1, "id": 11, "op": "shutdown"}

Responses::

    {"v": 1, "id": 8, "ok": true,  "evaluations": [{...}, ...]}
    {"v": 1, "id": 9, "ok": true,  "stats": {...}}
    {"v": 1, "id": 7, "ok": false, "error": {"type": "...", "message": "..."}}

Any request may additionally carry an OPTIONAL ``"trace"`` field —
``{"id": "<trace-id>", "span": "<parent-span-id>"}`` — linking the
server-side spans into the caller's trace; the matching response echoes
``{"id": "<trace-id>"}`` back.  Absent means untraced.  Because
:func:`decode_message` checks the version and ignores unknown fields,
the field is wire-version-compatible in both directions: an old peer
simply never sees it.
"""

from __future__ import annotations

import json
from typing import Sequence

from ..nas.encoding import CoDesignPoint, decode, encode
from ..search.evaluator import Evaluation

__all__ = [
    "WIRE_VERSION",
    "MAX_LINE_BYTES",
    "ProtocolError",
    "point_to_wire",
    "point_from_wire",
    "points_from_wire",
    "evaluation_to_wire",
    "evaluation_from_wire",
    "encode_message",
    "decode_message",
    "error_response",
    "ok_response",
    "trace_from_message",
]

#: Bump when a message shape changes incompatibly; both peers reject
#: mismatched versions instead of mis-parsing each other.
WIRE_VERSION = 1

#: Frame bound: one NDJSON line may not exceed this many bytes (a 4096
#: point request is ~1.3 MB, so this leaves generous headroom while still
#: bounding a malformed or hostile sender).
MAX_LINE_BYTES = 16 * 1024 * 1024


class ProtocolError(ValueError):
    """A message violates the wire protocol (shape, version or framing)."""


# ---------------------------------------------------------------------------
# Payload codecs
# ---------------------------------------------------------------------------


def point_to_wire(point: CoDesignPoint) -> dict:
    """Serialise a co-design point as its token sequence + genotype name."""
    return {"tokens": encode(point), "name": point.genotype.name}


def point_from_wire(obj: object) -> CoDesignPoint:
    """Reconstruct a co-design point from its wire form (validating)."""
    if not isinstance(obj, dict) or "tokens" not in obj:
        raise ProtocolError(f"point must be an object with 'tokens', got {obj!r}")
    tokens = obj["tokens"]
    if not isinstance(tokens, list) or not all(isinstance(t, int) for t in tokens):
        raise ProtocolError("point 'tokens' must be a list of integers")
    name = obj.get("name", "wire")
    if not isinstance(name, str):
        raise ProtocolError("point 'name' must be a string")
    try:
        return decode(tokens, name=name)
    except ValueError as exc:
        raise ProtocolError(str(exc)) from exc


def evaluation_to_wire(evaluation: Evaluation) -> dict:
    return {
        "accuracy": evaluation.accuracy,
        "latency_ms": evaluation.latency_ms,
        "energy_mj": evaluation.energy_mj,
    }


def evaluation_from_wire(obj: object) -> Evaluation:
    if not isinstance(obj, dict):
        raise ProtocolError(f"evaluation must be an object, got {obj!r}")
    try:
        return Evaluation(
            accuracy=float(obj["accuracy"]),
            latency_ms=float(obj["latency_ms"]),
            energy_mj=float(obj["energy_mj"]),
        )
    except (KeyError, TypeError, ValueError) as exc:
        raise ProtocolError(f"malformed evaluation: {exc}") from exc


# ---------------------------------------------------------------------------
# Message framing
# ---------------------------------------------------------------------------


def encode_message(message: dict) -> bytes:
    """One NDJSON frame: compact JSON + newline."""
    return json.dumps(message, separators=(",", ":")).encode("utf-8") + b"\n"


def decode_message(line: bytes) -> dict:
    """Parse one NDJSON frame, checking shape and wire version."""
    if len(line) > MAX_LINE_BYTES:
        raise ProtocolError(f"frame exceeds {MAX_LINE_BYTES} bytes")
    try:
        message = json.loads(line)
    except json.JSONDecodeError as exc:
        raise ProtocolError(f"invalid JSON frame: {exc}") from exc
    if not isinstance(message, dict):
        raise ProtocolError("frame must be a JSON object")
    version = message.get("v")
    if version != WIRE_VERSION:
        raise ProtocolError(
            f"wire version mismatch: peer speaks {version!r}, "
            f"this end speaks {WIRE_VERSION}"
        )
    return message


def ok_response(request_id: object, **payload) -> dict:
    return {"v": WIRE_VERSION, "id": request_id, "ok": True, **payload}


def error_response(request_id: object, kind: str, message: str) -> dict:
    return {
        "v": WIRE_VERSION,
        "id": request_id,
        "ok": False,
        "error": {"type": kind, "message": message},
    }


def trace_from_message(message: dict) -> tuple[str, str | None] | None:
    """The optional ``(trace_id, parent_span_id)`` a request carries.

    ``None`` when the request is untraced (no ``"trace"`` field — the
    default, and everything an old client sends).  A present-but-
    malformed field is a protocol error: silently dropping it would break
    the trace without telling anyone.
    """
    trace = message.get("trace")
    if trace is None:
        return None
    if not isinstance(trace, dict) or not isinstance(trace.get("id"), str):
        raise ProtocolError(
            "'trace' must be an object with a string 'id'"
        )
    parent = trace.get("span")
    if parent is not None and not isinstance(parent, str):
        raise ProtocolError("'trace' 'span' must be a string when present")
    return trace["id"], parent


def points_from_wire(objs: Sequence[object]) -> list[CoDesignPoint]:
    """Decode a request's point list (helper shared by server paths)."""
    if not isinstance(objs, (list, tuple)):
        raise ProtocolError("'points' must be a list")
    return [point_from_wire(obj) for obj in objs]
