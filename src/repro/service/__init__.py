"""Long-lived search-evaluation service over the parallel engine.

The offline co-design loop already had everything a server needs — a
replicated worker pool and a micro-batching scheduler coalescing
concurrent submitters into one sharded batch — but no long-lived
endpoint.  This package is that endpoint:

* :mod:`repro.service.protocol` — the versioned NDJSON wire codec:
  co-design points travel as their canonical 44-token encoding,
  evaluations as their three floats, both round-tripping exactly (the
  service's parity guarantee is ``==``, not a tolerance).
* :mod:`repro.service.server` — :class:`SearchService`: an asyncio TCP
  server owning ONE persistent evaluator behind a
  :class:`~repro.parallel.scheduler.MicroBatchScheduler`, with verbs
  ``evaluate`` / ``evaluate_many`` / ``stats`` / ``health`` /
  ``shutdown``, a bounded in-flight points budget for backpressure
  (:class:`PointsBudget`), per-connection idle timeouts, and a graceful
  shutdown that drains every queued request.  :func:`start_service`
  runs one on a background thread.
* :mod:`repro.service.client` — :class:`ServiceClient` (one blocking
  NDJSON connection with transparent reconnect-and-resubmit under a
  :class:`~repro.resilience.policy.RetryPolicy` and per-request
  deadlines) and :class:`RemoteEvaluator` (the evaluator-shaped adapter
  that lets a local search loop or the report harness score against a
  remote service unchanged, with optional circuit-breaker fallback to a
  local evaluator — see docs/RESILIENCE.md).

Serve with ``yoso serve --scale demo --workers 4 --port 7777``; point
the report at it with ``python -m repro.experiments.report --endpoint
127.0.0.1:7777``.  See docs/PERFORMANCE.md ("Service model") for the
coalescing-window/latency trade-off and the backpressure semantics.
"""

from .client import RemoteEvaluator, ServiceClient, ServiceError, parse_endpoint
from .protocol import (
    WIRE_VERSION,
    ProtocolError,
    evaluation_from_wire,
    evaluation_to_wire,
    point_from_wire,
    point_to_wire,
)
from .server import (
    PointsBudget,
    SearchService,
    ServiceClosedError,
    ServiceHandle,
    start_service,
)

__all__ = [
    "WIRE_VERSION",
    "ProtocolError",
    "point_to_wire",
    "point_from_wire",
    "evaluation_to_wire",
    "evaluation_from_wire",
    "SearchService",
    "ServiceClosedError",
    "ServiceHandle",
    "start_service",
    "PointsBudget",
    "ServiceClient",
    "RemoteEvaluator",
    "ServiceError",
    "parse_endpoint",
]
