"""Asyncio search-evaluation service over the parallel engine.

:class:`SearchService` turns the offline co-design scorer into a
long-lived endpoint: it owns ONE persistent evaluator (a
:class:`~repro.search.evaluator.BatchEvaluator` or, with ``workers > 1``,
a :class:`~repro.parallel.evaluator.ParallelEvaluator` and its worker
pool) behind a :class:`~repro.parallel.scheduler.MicroBatchScheduler`,
and speaks the NDJSON wire protocol of :mod:`repro.service.protocol`
over TCP.

Execution model — three layers, each with one job:

* the **asyncio loop** (one thread) accepts connections and parses
  frames; one lightweight task per connection, requests on a connection
  are served in order, connections are independent;
* the **points budget** (:class:`PointsBudget`) is the backpressure
  valve: at most ``max_inflight_points`` decoded points may sit between
  "admitted" and "answered" at once, so a flood of clients degrades to
  *queueing* (their requests wait in the budget's FIFO) instead of
  ballooning the scheduler queue without bound;
* the **scheduler thread** coalesces every admitted request pending at a
  tick into one ``evaluate_many`` call on the evaluator — N concurrent
  clients cost one grouped HyperNet forward / GP prediction / pool
  dispatch per tick, not N.

Results are bit-identical to calling ``evaluate_many`` in-process: the
wire codec round-trips points and evaluations exactly, and coalescing
never changes values (the batch-parity guarantees of the evaluator
stack).

Graceful shutdown (the ``shutdown`` verb, ``SIGINT``/``SIGTERM`` under
:meth:`SearchService.run`, or :meth:`ServiceHandle.shutdown`): new work
is rejected, every admitted *and* budget-queued request is served to
completion, the scheduler drains and joins, and only then do the worker
pool and the listening socket go away — no request is dropped or
double-run.
"""

from __future__ import annotations

import asyncio
import contextlib
import threading
import time
from typing import Sequence

from ..obs.registry import get_registry
from ..obs.tracing import NULL_SPAN, get_tracer
from ..parallel.scheduler import MicroBatchScheduler
from . import protocol

__all__ = [
    "PointsBudget",
    "SearchService",
    "ServiceClosedError",
    "ServiceHandle",
    "start_service",
]

# Module-level registry handles (see docs/OBSERVABILITY.md for the
# schema).  Per-verb latency histograms exist only for the known verbs —
# an unknown op must not mint unbounded metric names from hostile input.
_REGISTRY = get_registry()
_M_CONNECTIONS = _REGISTRY.counter("service.connections")
_M_REQUESTS = _REGISTRY.counter("service.requests")
_M_REJECTED = _REGISTRY.counter("service.rejected")
_M_IDLE_DISCONNECTS = _REGISTRY.counter("service.idle_disconnects")
_VERB_LATENCY = {
    op: _REGISTRY.histogram(f"service.latency_s.{op}")
    for op in ("evaluate", "evaluate_many", "stats", "health", "shutdown")
}


class ServiceClosedError(RuntimeError):
    """The service is shutting down and no longer admits evaluate work."""


class PointsBudget:
    """Bounded count of in-flight points (the service's backpressure).

    ``acquire(n)`` admits a request of ``n`` points once it fits under
    ``limit``; waiters are admitted strictly FIFO (head-of-line blocking,
    so a large request is never starved by a stream of small ones).  A
    single request larger than the whole limit is admitted only when
    nothing else is in flight (it runs alone, mirroring the scheduler's
    ``max_batch_points`` semantics), so an oversized request degrades to
    exclusive access instead of deadlocking.
    """

    def __init__(self, limit: int) -> None:
        if limit < 1:
            raise ValueError("limit must be >= 1")
        self.limit = limit
        self._used = 0
        self._queue: list[object] = []
        self._cond: asyncio.Condition = asyncio.Condition()
        #: Peak of ``used`` over the service lifetime (stats/bench).
        self.peak = 0

    @property
    def used(self) -> int:
        return self._used

    @property
    def waiting(self) -> int:
        """Requests currently queued on the budget."""
        return len(self._queue)

    def _fits(self, n: int) -> bool:
        return self._used == 0 or self._used + n <= self.limit

    async def acquire(self, n: int) -> None:
        ticket = object()
        async with self._cond:
            self._queue.append(ticket)
            try:
                await self._cond.wait_for(
                    lambda: self._queue[0] is ticket and self._fits(n)
                )
            except BaseException:
                self._queue.remove(ticket)
                self._cond.notify_all()
                raise
            self._queue.pop(0)
            self._used += n
            self.peak = max(self.peak, self._used)
            self._cond.notify_all()  # let the new head re-check

    async def release(self, n: int) -> None:
        async with self._cond:
            self._used -= n
            self._cond.notify_all()


class SearchService:
    """One persistent evaluator behind a micro-batching TCP endpoint.

    ``evaluator`` is anything evaluator-shaped (list-in/list-out
    ``evaluate_many``); the service wraps it in its own
    :class:`~repro.parallel.scheduler.MicroBatchScheduler` (``tick_s`` is
    the coalescing window, ``max_batch_points`` bounds one coalesced
    batch).  ``max_inflight_points`` is the backpressure budget.  With
    ``owns_evaluator=True`` shutdown also closes the evaluator (worker
    pools); otherwise the caller keeps that lifecycle.

    A durable tier-2 result store makes restarts warm (``yoso serve
    --store PATH``): pass an open :class:`repro.store.ResultStore` as
    ``store``, or a path as ``store_path`` and the service opens (and
    owns) one itself.  Either way the store is attached behind the
    evaluator's LRU if not already, flushed (``fsync``) as part of the
    graceful drain, and closed on shutdown when owned — so every result
    this server computed is on disk before the process exits, and the
    next server on the same path serves them back bit-identically.
    """

    def __init__(
        self,
        evaluator,
        host: str = "127.0.0.1",
        port: int = 0,
        tick_s: float = 0.002,
        max_batch_points: int = 4096,
        max_inflight_points: int = 4096,
        owns_evaluator: bool = False,
        store=None,
        store_path: str | None = None,
        owns_store: bool = False,
        idle_timeout_s: float | None = None,
        retry=None,
    ) -> None:
        self.evaluator = evaluator
        self.host = host
        self.port = port  # 0 = ephemeral; bound port published by start()
        self.owns_evaluator = owns_evaluator
        if store is None and store_path is not None:
            from ..store import ResultStore

            store = ResultStore(store_path, mode="a")
            owns_store = True
        self.store = store
        self.owns_store = owns_store
        if (
            store is not None
            and hasattr(evaluator, "attach_store")
            and getattr(evaluator, "store", None) is None
        ):
            evaluator.attach_store(store)
        self.scheduler = MicroBatchScheduler(
            evaluator,
            tick_s=tick_s,
            max_batch_points=max_batch_points,
            retry=retry,
        )
        self.max_inflight_points = max_inflight_points
        #: Per-connection idle timeout: a peer that sends nothing for this
        #: long is disconnected (None = never) so dead clients cannot pin
        #: server resources indefinitely.
        self.idle_timeout_s = idle_timeout_s
        self._budget: PointsBudget | None = None  # built on the loop
        self._server: asyncio.AbstractServer | None = None
        self._closing = False
        self._shutdown_task: asyncio.Task | None = None
        self._stopped: asyncio.Event | None = None
        self._active = 0
        self._idle: asyncio.Event | None = None
        self._conn_tasks: set[asyncio.Task] = set()
        #: Lifetime counters.
        self.connections = 0
        self.requests = 0
        self.rejected = 0
        self.idle_disconnects = 0
        self._started_monotonic: float | None = None

    # -- lifecycle -------------------------------------------------------
    async def start(self) -> None:
        """Bind and start accepting connections (idempotent)."""
        if self._server is not None:
            return
        self._budget = PointsBudget(self.max_inflight_points)
        self._idle = asyncio.Event()
        self._idle.set()
        self._stopped = asyncio.Event()
        self._server = await asyncio.start_server(
            self._handle_connection,
            self.host,
            self.port,
            # StreamReader's default 64 KB limit is far below a large
            # evaluate_many frame; the protocol's own bound applies instead.
            limit=protocol.MAX_LINE_BYTES,
        )
        self.port = self._server.sockets[0].getsockname()[1]
        self._started_monotonic = time.monotonic()

    async def serve_forever(self) -> None:
        """Start (if needed) and block until a shutdown completes."""
        await self.start()
        assert self._stopped is not None
        await self._stopped.wait()

    def run(self) -> None:
        """Blocking entry point for ``yoso serve``: serve until SIGINT/
        SIGTERM (or a client ``shutdown`` verb), then drain and exit."""
        asyncio.run(self._run())

    async def _run(self) -> None:
        await self.start()
        loop = asyncio.get_running_loop()
        for signame in ("SIGINT", "SIGTERM"):
            import signal as _signal

            with contextlib.suppress(NotImplementedError, ValueError):
                loop.add_signal_handler(
                    getattr(_signal, signame), self.request_shutdown
                )
        print(f"service listening on {self.host}:{self.port}", flush=True)
        await self.serve_forever()

    def request_shutdown(self) -> None:
        """Begin a graceful shutdown (idempotent; signal/verb safe).

        Must be called on the service's event loop (signal handlers and
        request handlers are); thread-safe callers go through
        :class:`ServiceHandle` or the ``shutdown`` verb.
        """
        if self._closing:
            return
        self._closing = True
        self._shutdown_task = asyncio.get_running_loop().create_task(
            self._shutdown()
        )

    async def _shutdown(self) -> None:
        assert self._server is not None
        assert self._idle is not None and self._stopped is not None
        # 1. Stop accepting new connections; in-flight requests keep going.
        #    (No wait_closed() here: since 3.12 it waits for open client
        #    connections too, which are only torn down after the drain.)
        self._server.close()
        # 2. Drain: every admitted and budget-queued request completes
        #    (new requests have been rejected since _closing flipped).
        await self._idle.wait()
        # 3. Scheduler queue is now empty; close() joins its thread.  The
        #    scheduler's close is idempotent and thread-safe, so a signal
        #    arriving mid-drain cannot corrupt this path.
        await asyncio.get_running_loop().run_in_executor(
            None, self.scheduler.close
        )
        if self.owns_evaluator and hasattr(self.evaluator, "close"):
            await asyncio.get_running_loop().run_in_executor(
                None, self.evaluator.close
            )
        # Flush the durable store as part of the drain: everything this
        # server computed is on disk before the process can exit.
        if self.store is not None and not self.store.closed:
            await asyncio.get_running_loop().run_in_executor(
                None,
                self.store.close if self.owns_store else self.store.sync,
            )
        # 4. Tear down idle connection readers (their requests are done).
        for task in list(self._conn_tasks):
            task.cancel()
        with contextlib.suppress(Exception, asyncio.TimeoutError):
            await asyncio.wait_for(self._server.wait_closed(), timeout=5.0)
        self._stopped.set()

    def request_abort(self) -> None:
        """Hard stop (chaos hook; loop-thread only, like request_shutdown).

        Unlike the graceful path, nothing drains: the listener closes and
        every connection task is cancelled mid-flight, so in-flight
        requests never get their responses — exactly what a killed server
        looks like to clients.  The chaos suite uses this to prove the
        client's reconnect-and-resubmit path; production uses
        :meth:`request_shutdown`.
        """
        if self._stopped is None or self._stopped.is_set():
            return
        self._closing = True
        asyncio.get_running_loop().create_task(self._abort())

    async def _abort(self) -> None:
        if self._server is not None:
            self._server.close()
        for task in list(self._conn_tasks):
            task.cancel()
        if self._server is not None:
            with contextlib.suppress(Exception, asyncio.TimeoutError):
                await asyncio.wait_for(self._server.wait_closed(), timeout=5.0)
        # Join the scheduler thread so the process does not leak it; any
        # in-flight tick finishes, but its connection tasks are gone, so
        # no response escapes to a client.  The evaluator
        # and store are deliberately NOT closed/synced — a hard kill
        # leaves them to the owner, and the store's torn-tail recovery
        # covers the on-disk state.
        await asyncio.get_running_loop().run_in_executor(
            None, self.scheduler.close
        )
        if self._stopped is not None:
            self._stopped.set()

    # -- request tracking ------------------------------------------------
    def _track_start(self) -> None:
        assert self._idle is not None
        self._active += 1
        self._idle.clear()

    def _track_end(self) -> None:
        assert self._idle is not None
        self._active -= 1
        if self._active == 0:
            self._idle.set()

    # -- connection handling ---------------------------------------------
    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        self.connections += 1
        _M_CONNECTIONS.inc()
        task = asyncio.current_task()
        if task is not None:
            self._conn_tasks.add(task)
        try:
            while True:
                try:
                    if self.idle_timeout_s is not None:
                        line = await asyncio.wait_for(
                            reader.readline(), timeout=self.idle_timeout_s
                        )
                    else:
                        line = await reader.readline()
                except (asyncio.TimeoutError, TimeoutError):
                    # Idle peer: drop the connection so it cannot pin
                    # server resources (a live client just reconnects).
                    self.idle_disconnects += 1
                    _M_IDLE_DISCONNECTS.inc()
                    break
                except ConnectionError:
                    break
                except (ValueError, asyncio.LimitOverrunError):
                    # A frame beyond the stream limit: tell the client why
                    # before dropping the (now unframeable) connection.
                    self.rejected += 1
                    with contextlib.suppress(Exception):
                        writer.write(
                            protocol.encode_message(
                                protocol.error_response(
                                    None,
                                    "protocol",
                                    f"frame exceeds the "
                                    f"{protocol.MAX_LINE_BYTES}-byte limit",
                                )
                            )
                        )
                        await writer.drain()
                    break
                if not line:
                    break
                # The whole frame lifecycle counts as in-flight — including
                # writing the response — so a graceful shutdown never
                # cancels a connection between computing a result and
                # flushing it to the client.
                self._track_start()
                try:
                    response = await self._handle_frame(line)
                    writer.write(protocol.encode_message(response))
                    try:
                        await writer.drain()
                    except ConnectionError:
                        break
                finally:
                    self._track_end()
        except asyncio.CancelledError:
            pass  # shutdown cancelled the idle reader
        finally:
            if task is not None:
                self._conn_tasks.discard(task)
            writer.close()
            with contextlib.suppress(Exception):
                await writer.wait_closed()

    async def _handle_frame(self, line: bytes) -> dict:
        try:
            message = protocol.decode_message(line)
        except protocol.ProtocolError as exc:
            self.rejected += 1
            _M_REJECTED.inc()
            return protocol.error_response(None, "protocol", str(exc))
        request_id = message.get("id")
        op = message.get("op")
        self.requests += 1
        _M_REQUESTS.inc()
        try:
            trace = protocol.trace_from_message(message)
        except protocol.ProtocolError as exc:
            self.rejected += 1
            _M_REJECTED.inc()
            return protocol.error_response(request_id, "protocol", str(exc))
        latency = _VERB_LATENCY.get(op)
        t0 = time.perf_counter()
        if trace is not None:
            # Adopt the caller's trace: the server-side spans (this verb,
            # the scheduler batch, pool shards, store lookups) all link
            # under the client's span.  When this server's tracer is
            # disabled the span is the null span, but the ids still ride
            # through to the scheduler — propagation is free, recording
            # is what's gated.
            span = get_tracer().span(
                f"service.{op}", trace_id=trace[0], parent_id=trace[1]
            )
            with span:
                trace_ctx = (
                    (span.trace_id, span.span_id)
                    if span is not NULL_SPAN
                    else trace
                )
                response = await self._dispatch_op(
                    op, message, request_id, trace_ctx
                )
        else:
            response = await self._dispatch_op(op, message, request_id, None)
        if latency is not None:
            latency.observe(time.perf_counter() - t0)
        if trace is not None and response.get("ok"):
            # Echo the trace id so the client can assert the round-trip.
            response["trace"] = {"id": trace[0]}
        return response

    async def _dispatch_op(
        self,
        op: object,
        message: dict,
        request_id: object,
        trace: tuple[str, str | None] | None,
    ) -> dict:
        try:
            if op == "evaluate":
                points = protocol.points_from_wire([message.get("point")])
                results = await self._evaluate(points, trace)
                return protocol.ok_response(
                    request_id, evaluation=protocol.evaluation_to_wire(results[0])
                )
            if op == "evaluate_many":
                points = protocol.points_from_wire(message.get("points"))
                results = await self._evaluate(points, trace)
                return protocol.ok_response(
                    request_id,
                    evaluations=[protocol.evaluation_to_wire(r) for r in results],
                )
            if op == "stats":
                return protocol.ok_response(request_id, stats=self.stats())
            if op == "health":
                # Liveness probe: answered inline — never queued behind
                # the points budget — and still answered while draining,
                # so load balancers can see a backend leaving.
                return protocol.ok_response(request_id, health=self.health())
            if op == "shutdown":
                self.request_shutdown()
                return protocol.ok_response(request_id, closing=True)
            self.rejected += 1
            _M_REJECTED.inc()
            return protocol.error_response(
                request_id, "protocol", f"unknown op {op!r}"
            )
        except protocol.ProtocolError as exc:
            self.rejected += 1
            _M_REJECTED.inc()
            return protocol.error_response(request_id, "protocol", str(exc))
        except ServiceClosedError as exc:
            self.rejected += 1
            _M_REJECTED.inc()
            return protocol.error_response(request_id, "closed", str(exc))
        except Exception as exc:  # evaluator errors reach the caller, typed
            return protocol.error_response(
                request_id, type(exc).__name__, str(exc)
            )

    async def _evaluate(
        self,
        points: Sequence,
        trace: tuple[str, str | None] | None = None,
    ) -> list:
        if self._closing:
            raise ServiceClosedError("service is shutting down")
        assert self._budget is not None
        await self._budget.acquire(len(points))
        try:
            if not points:
                return []
            try:
                future = self.scheduler.submit(points, trace=trace)
            except RuntimeError as exc:  # "scheduler is closed"
                raise ServiceClosedError(str(exc)) from exc
            return await asyncio.wrap_future(future)
        finally:
            await self._budget.release(len(points))

    # -- health ----------------------------------------------------------
    def health(self) -> dict:
        """A cheap liveness snapshot (the ``health`` verb's payload).

        Reads a handful of counters — no evaluator, scheduler-lock or
        registry traffic — so it stays cheap under load and never queues
        behind the points budget.
        """
        return {
            "status": "closing" if self._closing else "ok",
            "closing": self._closing,
            "active": self._active,
            "inflight_points": self._budget.used if self._budget else 0,
            "queued_requests": self._budget.waiting if self._budget else 0,
            "uptime_s": (
                time.monotonic() - self._started_monotonic
                if self._started_monotonic is not None
                else 0.0
            ),
        }

    # -- stats -----------------------------------------------------------
    def stats(self) -> dict:
        """A JSON-ready snapshot of service, scheduler and evaluator state.

        v2 shape: the classic per-subsystem sections gain *live* queue
        state (scheduler ``queue_depth``/``queued_points``, the budget's
        ``queued_requests``), the pool dict gains ``resubmitted_shards``,
        and a top-level ``"metrics"`` key carries the full registry
        snapshot (pure JSON data — see ``docs/OBSERVABILITY.md``).  Old
        clients ignore the new fields; ``yoso stats`` renders them.
        """
        scheduler = self.scheduler
        ticks = scheduler.ticks
        queue_depth = scheduler.queue_depth
        queued_points = scheduler.queued_points
        inflight = self._budget.used if self._budget else 0
        queued_requests = self._budget.waiting if self._budget else 0
        stats = {
            "wire_version": protocol.WIRE_VERSION,
            "service": {
                "connections": self.connections,
                "requests": self.requests,
                "rejected": self.rejected,
                "active": self._active,
                "closing": self._closing,
                "idle_disconnects": self.idle_disconnects,
                "idle_timeout_s": self.idle_timeout_s,
                "max_inflight_points": self.max_inflight_points,
                "inflight_points": inflight,
                "queued_requests": queued_requests,
                "peak_inflight_points": self._budget.peak if self._budget else 0,
            },
            "scheduler": {
                "ticks": ticks,
                "requests": scheduler.requests,
                "points_in": scheduler.points_in,
                "largest_batch": scheduler.largest_batch,
                "errors": scheduler.errors,
                "retried_batches": scheduler.retried_batches,
                "queue_depth": queue_depth,
                "queued_points": queued_points,
                "coalescing_ratio": (
                    scheduler.requests / ticks if ticks else None
                ),
                "tick_s": scheduler.tick_s,
                "max_batch_points": scheduler.max_batch_points,
            },
            "evaluator": self._evaluator_stats(),
        }
        if self.store is not None:
            stats["store"] = self.store.stats()
        # Point-in-time gauges are sampled at snapshot time (they have no
        # meaningful "increment" moments), then the registry rides along.
        registry = get_registry()
        registry.gauge("service.active").set(self._active)
        registry.gauge("service.inflight_points").set(inflight)
        registry.gauge("service.queued_requests").set(queued_requests)
        registry.gauge("scheduler.queue_depth").set(queue_depth)
        registry.gauge("scheduler.queued_points").set(queued_points)
        stats["metrics"] = registry.snapshot()
        return stats

    def _evaluator_stats(self) -> dict:
        ev = self.evaluator
        stats: dict = {"type": type(ev).__name__}
        attrs = ("hits", "misses", "hit_rate", "cache_size", "workers")
        if getattr(ev, "store", None) is not None:
            attrs += ("store_hits", "store_misses", "store_hit_rate")
        for attr in attrs:
            value = getattr(ev, attr, None)
            if value is not None:
                stats[attr] = value
        pool = getattr(ev, "pool", None)
        if pool is not None:
            stats["pool"] = {
                "batches": pool.batches,
                "items": pool.items,
                "restarts": pool.restarts,
                "resubmitted_shards": pool.resubmitted_shards,
                "payload_bytes": pool.payload_bytes,
            }
        return stats


# ---------------------------------------------------------------------------
# Background-thread runner (tests, notebooks, client-mode CLIs)
# ---------------------------------------------------------------------------


class ServiceHandle:
    """A :class:`SearchService` running on a dedicated background thread.

    The thread owns the event loop; :meth:`shutdown` requests the graceful
    drain from outside and joins the thread.  Use as a context manager.
    """

    def __init__(self, service: SearchService) -> None:
        self.service = service
        self._loop: asyncio.AbstractEventLoop | None = None
        self._error: BaseException | None = None
        self._ready = threading.Event()
        self._thread = threading.Thread(
            target=self._main, name="search-service", daemon=True
        )
        self._thread.start()
        self._ready.wait()
        if self._error is not None:
            raise self._error

    def _main(self) -> None:
        async def body() -> None:
            await self.service.start()
            self._loop = asyncio.get_running_loop()
            self._ready.set()
            await self.service.serve_forever()

        try:
            asyncio.run(body())
        except BaseException as exc:  # surface bind failures to the caller
            self._error = exc
        finally:
            self._ready.set()  # never leave the constructor hanging

    @property
    def address(self) -> tuple[str, int]:
        return (self.service.host, self.service.port)

    def shutdown(self, timeout: float | None = 60.0) -> None:
        """Graceful drain + stop from any thread (idempotent)."""
        loop = self._loop
        if loop is not None and self._thread.is_alive():
            with contextlib.suppress(RuntimeError):
                loop.call_soon_threadsafe(self.service.request_shutdown)
        self._thread.join(timeout)

    def abort(self, timeout: float | None = 30.0) -> None:
        """Hard stop from any thread (chaos hook — see
        :meth:`SearchService.request_abort`): no drain, in-flight
        requests lose their connections mid-flight."""
        loop = self._loop
        if loop is not None and self._thread.is_alive():
            with contextlib.suppress(RuntimeError):
                loop.call_soon_threadsafe(self.service.request_abort)
        self._thread.join(timeout)

    def __enter__(self) -> "ServiceHandle":
        return self

    def __exit__(self, *exc_info) -> None:
        self.shutdown()


def start_service(evaluator, **kwargs) -> ServiceHandle:
    """Spin up a service on a background thread; returns once it is bound.

    Keyword arguments go to :class:`SearchService`.  The handle's
    :attr:`~ServiceHandle.address` is the live (host, port).
    """
    return ServiceHandle(SearchService(evaluator, **kwargs))
