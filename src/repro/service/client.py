"""Blocking client library for the search-evaluation service.

:class:`ServiceClient` is one TCP connection speaking the NDJSON wire
protocol — the thin, explicit layer (connect, evaluate, stats, health,
shutdown).  :class:`RemoteEvaluator` wraps a client in the evaluator
shape the search stack and the report harness expect (``evaluate`` /
``evaluate_many`` / ``evaluate_tokens`` plus the cache-accounting
properties), so a local search loop can be pointed at a remote service
with one constructor swap — and, because the wire codec and the
service's coalescing are both value-preserving, get bit-identical
results.

Resilience (the retry-safety invariant)
---------------------------------------
Every verb runs under a :class:`~repro.resilience.policy.RetryPolicy`
and an optional per-request :class:`~repro.resilience.policy.Deadline`.
On a torn connection, a timeout, or *any* framing error
(:class:`~repro.service.protocol.ProtocolError`) the client tears the
socket down — a desynchronised stream can never misattribute a stale
response to a later request — then re-dials and **resubmits the whole
request**.  Resubmission is safe and bit-identical because of two
invariants the rest of the stack maintains:

1. evaluations are *deterministic* — the same point always scores to
   the same `Evaluation` (the dedup/caching layers depend on this too);
2. the wire codec is *value-preserving* — floats survive the JSON
   round-trip exactly (repr round-trip), so a re-sent request carries
   the same bytes and a re-received response decodes to ``==`` values.

So a retried ``evaluate_many`` returns results ``==`` the fault-free
run (``tests/test_resilience.py`` pins this end to end).  Typed server
*answers* (:class:`ServiceError`) are terminal — the backend spoke, so
retrying cannot change the outcome — and a blown deadline raises a
clean :class:`~repro.resilience.policy.DeadlineExceeded`, never a hang.
"""

from __future__ import annotations

import socket
import threading
from typing import Sequence

from ..nas.encoding import CoDesignPoint, decode
from ..obs.tracing import get_tracer
from ..resilience import faults
from ..resilience.policy import (
    CircuitBreaker,
    Deadline,
    DeadlineExceeded,
    RetryPolicy,
)
from ..search.evaluator import Evaluation
from . import protocol

__all__ = [
    "ServiceError",
    "ServiceClient",
    "RemoteEvaluator",
    "parse_endpoint",
    "DEFAULT_RETRY",
]


class ServiceError(RuntimeError):
    """The service answered with an error response.

    A typed *answer*, not a transport failure: the backend is alive and
    spoke, so retry policies treat this as terminal.
    """

    def __init__(self, kind: str, message: str) -> None:
        super().__init__(f"{kind}: {message}")
        self.kind = kind


def parse_endpoint(endpoint: str) -> tuple[str, int]:
    """Parse ``"host:port"`` (or ``":port"`` for localhost).

    Ports must be 1–65535.  Bracketed IPv6 literals (``[::1]:8000``) are
    rejected with a clear message — the service stack is IPv4/hostname
    only for now.
    """
    host, sep, port = endpoint.rpartition(":")
    if not sep or not port.isdigit():
        raise ValueError(f"endpoint must be 'host:port', got {endpoint!r}")
    port_num = int(port)
    if not 1 <= port_num <= 65535:
        raise ValueError(
            f"endpoint port must be in 1-65535, got {port_num} "
            f"(from {endpoint!r})"
        )
    if "[" in host or "]" in host or ":" in host:
        raise ValueError(
            f"IPv6 bracket endpoints are not supported, got {endpoint!r}; "
            f"use an IPv4 address or hostname"
        )
    return (host or "127.0.0.1", port_num)


def _default_retry() -> RetryPolicy:
    """The client's default policy: 4 attempts, short seeded backoff.

    ``ProtocolError`` is retryable *for the client* (the socket has
    already been torn down, so the retry resubmits on a fresh
    connection); typed server answers (:class:`ServiceError`) and blown
    deadlines stay terminal.
    """
    return RetryPolicy(
        max_attempts=4,
        base_delay_s=0.05,
        retryable=(ConnectionError, TimeoutError, OSError, protocol.ProtocolError),
        terminal=(DeadlineExceeded, ServiceError),
    )


#: Module-level default (one instance — the policy is immutable state
#: plus pure functions, safe to share across clients and threads).
DEFAULT_RETRY = _default_retry()


class ServiceClient:
    """One blocking NDJSON connection to a :class:`~repro.service.server.
    SearchService`.

    Requests on a connection are answered in order; a lock serialises
    concurrent callers on the same client, so sharing one client between
    threads is safe (though one connection *per* concurrent caller lets
    the server's micro-batching coalesce them into a single tick).

    ``retry`` (default :data:`DEFAULT_RETRY`) governs transparent
    reconnect-and-resubmit — pass ``RetryPolicy(max_attempts=1)`` to
    disable retries.  ``deadline_s`` is the default per-request budget
    (every verb also takes a per-call ``deadline_s``); the budget is
    consumed through connect, write and read, and raises
    :class:`DeadlineExceeded` when blown.  See the module docstring for
    why resubmission is safe and bit-identical.
    """

    def __init__(
        self,
        host: str,
        port: int,
        timeout: float | None = 120.0,
        retry: RetryPolicy | None = None,
        deadline_s: float | None = None,
        eager: bool = True,
    ) -> None:
        self.host = host
        self.port = port
        self.timeout = timeout
        self.retry = DEFAULT_RETRY if retry is None else retry
        self.deadline_s = deadline_s
        self._sock: socket.socket | None = None
        self._file = None
        self._dialed = False
        self._lock = threading.Lock()
        self._next_id = 0
        self._closed = False
        #: Attempts beyond the first, summed over the client's lifetime
        #: (reconnect-and-resubmit accounting for tests and stats).
        self.retries = 0
        #: Reconnections after the initial dial.
        self.reconnects = 0
        #: Trace id of the most recent traced call (None when tracing is
        #: off or the server did not echo one) — what tests assert the
        #: wire round-trip against.
        self.last_trace_id: str | None = None
        # Eager first dial (the default): constructing a client against a
        # dead endpoint fails fast, exactly as before the resilience
        # layer.  ``eager=False`` defers the dial to the first request —
        # what a breaker-guarded caller with a fallback wants, so a
        # backend that is dead *now* does not prevent construction.
        if eager:
            self._connect(Deadline(deadline_s))

    @classmethod
    def connect(
        cls,
        endpoint: str,
        timeout: float | None = 120.0,
        retry: RetryPolicy | None = None,
        deadline_s: float | None = None,
        eager: bool = True,
    ) -> "ServiceClient":
        """Build a client from a ``host:port`` endpoint string."""
        return cls(
            *parse_endpoint(endpoint),
            timeout=timeout,
            retry=retry,
            deadline_s=deadline_s,
            eager=eager,
        )

    # -- connection lifecycle --------------------------------------------
    def _connect(self, deadline: Deadline) -> None:
        connect_timeout = deadline.timeout(self.timeout, "connect")
        sock = socket.create_connection(
            (self.host, self.port), timeout=connect_timeout
        )
        self._sock = sock
        self._file = sock.makefile("rwb")
        self._dialed = True

    def _teardown(self) -> None:
        """Best-effort close of a (possibly half-dead) connection."""
        file, sock = self._file, self._sock
        self._file = None
        self._sock = None
        if file is not None:
            try:
                file.close()
            except OSError:
                pass
        if sock is not None:
            try:
                sock.close()
            except OSError:
                pass

    def _ensure_connection(self, deadline: Deadline) -> None:
        if self._closed:
            raise ValueError("client is closed")
        if self._sock is None:
            # A deferred (``eager=False``) first dial is not a reconnect.
            was_dialed = self._dialed
            self._connect(deadline)
            if was_dialed:
                self.reconnects += 1

    # -- request plumbing ------------------------------------------------
    def _call(self, op: str, deadline_s: float | None = None, **payload) -> dict:
        # With tracing enabled, every call gets a client-side span and
        # ships its ids in the optional "trace" field — the server links
        # its spans under ours and echoes the trace id back.  Disabled
        # (default), the message is byte-identical to the pre-trace wire.
        deadline = Deadline(
            self.deadline_s if deadline_s is None else deadline_s
        )
        span = get_tracer().span(f"client.{op}")
        attempts = [0]

        def one_attempt(attempt: int) -> dict:
            attempts[0] = attempt
            return self._attempt(op, payload, span, deadline)

        def note_retry(exc: BaseException, attempt: int, delay: float) -> None:
            self.retries += 1

        with span:
            with self._lock:
                # yoso-lint: disable=lock-discipline -- the lock serialises the
                # whole request/response exchange (including reconnect + backoff)
                # on this one connection; concurrent callers must wait for the
                # socket anyway, and nothing else is ever taken under it.
                result = self.retry.run(
                    one_attempt, deadline=deadline, on_retry=note_retry
                )
            if attempts[0] > 1 and span.trace_id is not None:
                span.set(attempts=attempts[0])
            return result

    def _attempt(self, op: str, payload: dict, span, deadline: Deadline) -> dict:
        """One request/response exchange (fresh id; retried whole)."""
        deadline.check(f"{op} request")
        self._ensure_connection(deadline)
        self._next_id += 1
        request_id = self._next_id
        message = {
            "v": protocol.WIRE_VERSION,
            "id": request_id,
            "op": op,
            **payload,
        }
        if span.trace_id is not None:
            message["trace"] = {"id": span.trace_id, "span": span.span_id}
        try:
            self._sock.settimeout(deadline.timeout(self.timeout, f"{op} write"))
            faults.hit("wire.write")
            self._file.write(protocol.encode_message(message))
            self._file.flush()
            self._sock.settimeout(deadline.timeout(self.timeout, f"{op} read"))
            faults.hit("wire.read")
            line = self._file.readline(protocol.MAX_LINE_BYTES + 1)
        except DeadlineExceeded:
            self._teardown()
            raise
        except TimeoutError as exc:
            # The socket timed out.  If the *deadline* is what expired,
            # surface the typed budget error; otherwise it's an ordinary
            # transient timeout and the policy may retry it.
            self._teardown()
            if deadline.expired:
                deadline.check(f"{op} request")  # raises DeadlineExceeded
            raise TimeoutError(f"{op} timed out on the wire") from exc
        except (ConnectionError, OSError):
            self._teardown()
            raise
        if not line:
            self._teardown()
            raise ConnectionError("service closed the connection")
        try:
            response = protocol.decode_message(line)
            if not response.get("ok"):
                error = response.get("error") or {}
                raise ServiceError(
                    error.get("type", "unknown"), error.get("message", "")
                )
            if response.get("id") != request_id:
                raise protocol.ProtocolError(
                    f"response id {response.get('id')!r} does not match "
                    f"request id {request_id!r}"
                )
            if span.trace_id is not None:
                echoed = response.get("trace")
                self.last_trace_id = (
                    echoed.get("id") if isinstance(echoed, dict) else None
                )
                if (
                    self.last_trace_id is not None
                    and self.last_trace_id != span.trace_id
                ):
                    raise protocol.ProtocolError(
                        f"response trace id {self.last_trace_id!r} does not "
                        f"match request trace id {span.trace_id!r}"
                    )
        except protocol.ProtocolError:
            # A framing error means the stream position is unknowable:
            # tear the connection down so a later call can never read
            # this request's stale bytes (desync regression).
            self._teardown()
            raise
        return response

    # -- verbs -----------------------------------------------------------
    def evaluate_many(
        self,
        points: Sequence[CoDesignPoint],
        deadline_s: float | None = None,
    ) -> list[Evaluation]:
        """Score a batch remotely; one Evaluation per point, input order."""
        response = self._call(
            "evaluate_many",
            deadline_s=deadline_s,
            points=[protocol.point_to_wire(p) for p in points],
        )
        return [
            protocol.evaluation_from_wire(obj)
            for obj in response["evaluations"]
        ]

    def evaluate(
        self, point: CoDesignPoint, deadline_s: float | None = None
    ) -> Evaluation:
        response = self._call(
            "evaluate",
            deadline_s=deadline_s,
            point=protocol.point_to_wire(point),
        )
        return protocol.evaluation_from_wire(response["evaluation"])

    def stats(self, deadline_s: float | None = None) -> dict:
        """The server's service/scheduler/evaluator counters."""
        return self._call("stats", deadline_s=deadline_s)["stats"]

    def health(self, deadline_s: float | None = None) -> dict:
        """Liveness probe — answered immediately, never queued behind the
        points budget, and still answered while the service drains."""
        return self._call("health", deadline_s=deadline_s)["health"]

    def shutdown(self, deadline_s: float | None = None) -> dict:
        """Ask the service to drain and stop (returns the ack)."""
        return self._call("shutdown", deadline_s=deadline_s)

    def close(self) -> None:
        """Best-effort, idempotent close (safe on a half-closed socket)."""
        self._closed = True
        self._teardown()

    def __enter__(self) -> "ServiceClient":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


class RemoteEvaluator:
    """Evaluator-shaped adapter over a :class:`ServiceClient`.

    Drop-in for a :class:`~repro.search.evaluator.BatchEvaluator` where a
    search loop or the report harness only needs ``evaluate`` /
    ``evaluate_many`` / ``evaluate_tokens`` and the cache-accounting
    reads (``hits`` / ``misses`` / ``hit_rate`` / ``cache_size``): calls
    go over the wire, accounting reads come from the service's ``stats``
    verb (they describe the *server-side* evaluator, which is where the
    caches live).

    Graceful degradation: pass ``fallback`` (any local evaluator with
    the same ``evaluate`` / ``evaluate_many`` shape) and scoring calls
    survive a dead backend — transport failures trip a
    :class:`~repro.resilience.policy.CircuitBreaker` (injectable via
    ``breaker``), an open breaker routes calls to the fallback without
    touching the wire, and half-open probes periodically re-try the
    remote to return to it.  Because evaluations are deterministic,
    fallback results are ``==`` remote results — degradation changes
    latency and cache locality, never values.  Typed server answers
    (:class:`ServiceError`) never trip the breaker or fall back: the
    backend is alive and its answer (e.g. a validation error) stands.
    """

    def __init__(
        self,
        endpoint: str,
        timeout: float | None = 600.0,
        retry: RetryPolicy | None = None,
        deadline_s: float | None = None,
        fallback=None,
        breaker: CircuitBreaker | None = None,
    ) -> None:
        self.endpoint = endpoint
        # With a fallback the first dial is deferred to the first call:
        # a backend that is dead at construction time must not prevent
        # the degraded path from ever starting (the dial failure then
        # trips the breaker like any other transport failure).
        self.client = ServiceClient.connect(
            endpoint, timeout=timeout, retry=retry, deadline_s=deadline_s,
            eager=fallback is None,
        )
        self.fallback = fallback
        self.breaker = breaker if breaker is not None else (
            CircuitBreaker() if fallback is not None else None
        )
        #: Scoring calls served by the local fallback evaluator.
        self.fallback_calls = 0

    # -- scoring ---------------------------------------------------------
    def _score(self, remote_fn, local_fn):
        """Run a scoring call with breaker-guarded fallback routing."""
        if self.fallback is None:
            return remote_fn()
        if not self.breaker.allow():
            self.fallback_calls += 1
            return local_fn()
        try:
            result = remote_fn()
        except ServiceError:
            raise  # the backend answered; its answer stands
        except (ConnectionError, TimeoutError, OSError, protocol.ProtocolError):
            self.breaker.record_failure()
            self.fallback_calls += 1
            return local_fn()
        self.breaker.record_success()
        return result

    def evaluate(self, point: CoDesignPoint) -> Evaluation:
        return self._score(
            lambda: self.client.evaluate(point),
            lambda: self.fallback.evaluate(point),
        )

    def evaluate_many(
        self, points: Sequence[CoDesignPoint]
    ) -> list[Evaluation]:
        return self._score(
            lambda: self.client.evaluate_many(points),
            lambda: list(self.fallback.evaluate_many(points)),
        )

    def evaluate_tokens(
        self, token_lists: Sequence[Sequence[int]]
    ) -> list[Evaluation]:
        """Token-sequence entry point (decoded locally; names never affect
        scores, so this matches the local ``evaluate_tokens`` exactly)."""
        points = [
            decode(list(tokens), name=f"remote_{i}")
            for i, tokens in enumerate(token_lists)
        ]
        return self.evaluate_many(points)

    # -- accounting (server-side evaluator state) ------------------------
    def _stats(self) -> dict | None:
        """One remote stats snapshot, breaker-guarded like a scoring call.

        Returns ``None`` when a fallback exists and the backend is
        unavailable (breaker open, or the round-trip failed) — degraded
        mode, where accounting reads describe the fallback evaluator
        that actually served the calls.  Without a fallback this is a
        plain ``stats`` round-trip and transport errors propagate.
        """
        if self.fallback is None:
            return self.client.stats()
        if not self.breaker.allow():
            return None
        try:
            snapshot = self.client.stats()
        except ServiceError:
            raise  # the backend answered; its answer stands
        except (ConnectionError, TimeoutError, OSError, protocol.ProtocolError):
            self.breaker.record_failure()
            return None
        self.breaker.record_success()
        return snapshot

    def counters(self) -> tuple[int, int]:
        """(hits, misses) from ONE stats snapshot — use this for deltas;
        reading the properties pairwise takes two snapshots and a busy
        shared service can move between them."""
        snapshot = self._stats()
        if snapshot is None:
            return (
                getattr(self.fallback, "hits", 0),
                getattr(self.fallback, "misses", 0),
            )
        stats = snapshot["evaluator"]
        return stats.get("hits", 0), stats.get("misses", 0)

    def _evaluator_stat(self, name: str, default=0):
        snapshot = self._stats()
        if snapshot is None:
            return getattr(self.fallback, name, default)
        return snapshot["evaluator"].get(name, default)

    @property
    def hits(self) -> int:
        return self._evaluator_stat("hits")

    @property
    def misses(self) -> int:
        return self._evaluator_stat("misses")

    @property
    def hit_rate(self) -> float:
        return self._evaluator_stat("hit_rate", 0.0)

    @property
    def cache_size(self) -> int:
        return self._evaluator_stat("cache_size")

    # -- live service state (stats v2 fields) ----------------------------
    @property
    def scheduler_queue_depth(self) -> int:
        """Requests sitting in the remote scheduler's coalescing window."""
        snapshot = self._stats()
        if snapshot is None:
            return 0
        return snapshot["scheduler"].get("queue_depth", 0)

    @property
    def queued_requests(self) -> int:
        """Requests queued on the remote service's points budget."""
        snapshot = self._stats()
        if snapshot is None:
            return 0
        return snapshot["service"].get("queued_requests", 0)

    @property
    def pool_resubmitted_shards(self) -> int:
        """Shards the remote pool re-ran after worker crashes (0 when the
        remote evaluator has no pool)."""
        snapshot = self._stats()
        if snapshot is None:
            return 0
        pool = snapshot["evaluator"].get("pool") or {}
        return pool.get("resubmitted_shards", 0)

    def metrics(self) -> dict:
        """The remote registry snapshot (the stats verb's ``metrics`` key;
        empty dict from a pre-v2 server).  Degraded mode (fallback set,
        backend unavailable) answers the *local* registry snapshot —
        that is where the fallback's work was accounted."""
        snapshot = self._stats()
        if snapshot is None:
            from ..obs import get_registry

            return get_registry().snapshot()
        return snapshot.get("metrics", {})

    def service_stats(self) -> dict:
        """The full remote stats snapshot (service + scheduler + evaluator)."""
        return self.client.stats()

    def resilience_stats(self) -> dict:
        """Client-side resilience accounting (retries, breaker, fallback)."""
        return {
            "retries": self.client.retries,
            "reconnects": self.client.reconnects,
            "fallback_calls": self.fallback_calls,
            "breaker": self.breaker.stats() if self.breaker else None,
        }

    def close(self) -> None:
        """Best-effort, idempotent close (delegates to the client)."""
        self.client.close()

    def __enter__(self) -> "RemoteEvaluator":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
