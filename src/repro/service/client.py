"""Blocking client library for the search-evaluation service.

:class:`ServiceClient` is one TCP connection speaking the NDJSON wire
protocol — the thin, explicit layer (connect, evaluate, stats, shutdown).
:class:`RemoteEvaluator` wraps a client in the evaluator shape the search
stack and the report harness expect (``evaluate`` / ``evaluate_many`` /
``evaluate_tokens`` plus the cache-accounting properties), so a local
search loop can be pointed at a remote service with one constructor swap
— and, because the wire codec and the service's coalescing are both
value-preserving, get bit-identical results.
"""

from __future__ import annotations

import socket
import threading
from typing import Sequence

from ..nas.encoding import CoDesignPoint, decode
from ..obs.tracing import get_tracer
from ..search.evaluator import Evaluation
from . import protocol

__all__ = ["ServiceError", "ServiceClient", "RemoteEvaluator", "parse_endpoint"]


class ServiceError(RuntimeError):
    """The service answered with an error response."""

    def __init__(self, kind: str, message: str) -> None:
        super().__init__(f"{kind}: {message}")
        self.kind = kind


def parse_endpoint(endpoint: str) -> tuple[str, int]:
    """Parse ``"host:port"`` (or ``":port"`` for localhost)."""
    host, sep, port = endpoint.rpartition(":")
    if not sep or not port.isdigit():
        raise ValueError(f"endpoint must be 'host:port', got {endpoint!r}")
    return (host or "127.0.0.1", int(port))


class ServiceClient:
    """One blocking NDJSON connection to a :class:`~repro.service.server.
    SearchService`.

    Requests on a connection are answered in order; a lock serialises
    concurrent callers on the same client, so sharing one client between
    threads is safe (though one connection *per* concurrent caller lets
    the server's micro-batching coalesce them into a single tick).
    """

    def __init__(
        self, host: str, port: int, timeout: float | None = 120.0
    ) -> None:
        self.host = host
        self.port = port
        self._sock = socket.create_connection((host, port), timeout=timeout)
        self._file = self._sock.makefile("rwb")
        self._lock = threading.Lock()
        self._next_id = 0
        #: Trace id of the most recent traced call (None when tracing is
        #: off or the server did not echo one) — what tests assert the
        #: wire round-trip against.
        self.last_trace_id: str | None = None

    @classmethod
    def connect(cls, endpoint: str, timeout: float | None = 120.0) -> "ServiceClient":
        """Build a client from a ``host:port`` endpoint string."""
        return cls(*parse_endpoint(endpoint), timeout=timeout)

    # -- request plumbing ------------------------------------------------
    def _call(self, op: str, **payload) -> dict:
        # With tracing enabled, every call gets a client-side span and
        # ships its ids in the optional "trace" field — the server links
        # its spans under ours and echoes the trace id back.  Disabled
        # (default), the message is byte-identical to the pre-trace wire.
        span = get_tracer().span(f"client.{op}")
        with span:
            with self._lock:
                self._next_id += 1
                request_id = self._next_id
                message = {
                    "v": protocol.WIRE_VERSION,
                    "id": request_id,
                    "op": op,
                    **payload,
                }
                if span.trace_id is not None:
                    message["trace"] = {
                        "id": span.trace_id,
                        "span": span.span_id,
                    }
                self._file.write(protocol.encode_message(message))
                self._file.flush()
                line = self._file.readline(protocol.MAX_LINE_BYTES + 1)
            if not line:
                raise ConnectionError("service closed the connection")
            response = protocol.decode_message(line)
            if not response.get("ok"):
                error = response.get("error") or {}
                raise ServiceError(
                    error.get("type", "unknown"), error.get("message", "")
                )
            if response.get("id") != request_id:
                raise protocol.ProtocolError(
                    f"response id {response.get('id')!r} does not match "
                    f"request id {request_id!r}"
                )
            if span.trace_id is not None:
                echoed = response.get("trace")
                self.last_trace_id = (
                    echoed.get("id") if isinstance(echoed, dict) else None
                )
                if (
                    self.last_trace_id is not None
                    and self.last_trace_id != span.trace_id
                ):
                    raise protocol.ProtocolError(
                        f"response trace id {self.last_trace_id!r} does not "
                        f"match request trace id {span.trace_id!r}"
                    )
            return response

    # -- verbs -----------------------------------------------------------
    def evaluate_many(
        self, points: Sequence[CoDesignPoint]
    ) -> list[Evaluation]:
        """Score a batch remotely; one Evaluation per point, input order."""
        response = self._call(
            "evaluate_many",
            points=[protocol.point_to_wire(p) for p in points],
        )
        return [
            protocol.evaluation_from_wire(obj)
            for obj in response["evaluations"]
        ]

    def evaluate(self, point: CoDesignPoint) -> Evaluation:
        response = self._call("evaluate", point=protocol.point_to_wire(point))
        return protocol.evaluation_from_wire(response["evaluation"])

    def stats(self) -> dict:
        """The server's service/scheduler/evaluator counters."""
        return self._call("stats")["stats"]

    def shutdown(self) -> dict:
        """Ask the service to drain and stop (returns the ack)."""
        return self._call("shutdown")

    def close(self) -> None:
        try:
            self._file.close()
        finally:
            self._sock.close()

    def __enter__(self) -> "ServiceClient":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


class RemoteEvaluator:
    """Evaluator-shaped adapter over a :class:`ServiceClient`.

    Drop-in for a :class:`~repro.search.evaluator.BatchEvaluator` where a
    search loop or the report harness only needs ``evaluate`` /
    ``evaluate_many`` / ``evaluate_tokens`` and the cache-accounting
    reads (``hits`` / ``misses`` / ``hit_rate`` / ``cache_size``): calls
    go over the wire, accounting reads come from the service's ``stats``
    verb (they describe the *server-side* evaluator, which is where the
    caches live).
    """

    def __init__(self, endpoint: str, timeout: float | None = 600.0) -> None:
        self.endpoint = endpoint
        self.client = ServiceClient.connect(endpoint, timeout=timeout)

    # -- scoring ---------------------------------------------------------
    def evaluate(self, point: CoDesignPoint) -> Evaluation:
        return self.client.evaluate(point)

    def evaluate_many(
        self, points: Sequence[CoDesignPoint]
    ) -> list[Evaluation]:
        return self.client.evaluate_many(points)

    def evaluate_tokens(
        self, token_lists: Sequence[Sequence[int]]
    ) -> list[Evaluation]:
        """Token-sequence entry point (decoded locally; names never affect
        scores, so this matches the local ``evaluate_tokens`` exactly)."""
        points = [
            decode(list(tokens), name=f"remote_{i}")
            for i, tokens in enumerate(token_lists)
        ]
        return self.evaluate_many(points)

    # -- accounting (server-side evaluator state) ------------------------
    def counters(self) -> tuple[int, int]:
        """(hits, misses) from ONE stats snapshot — use this for deltas;
        reading the properties pairwise takes two snapshots and a busy
        shared service can move between them."""
        stats = self.client.stats()["evaluator"]
        return stats.get("hits", 0), stats.get("misses", 0)

    def _evaluator_stat(self, name: str, default=0):
        return self.client.stats()["evaluator"].get(name, default)

    @property
    def hits(self) -> int:
        return self._evaluator_stat("hits")

    @property
    def misses(self) -> int:
        return self._evaluator_stat("misses")

    @property
    def hit_rate(self) -> float:
        return self._evaluator_stat("hit_rate", 0.0)

    @property
    def cache_size(self) -> int:
        return self._evaluator_stat("cache_size")

    # -- live service state (stats v2 fields) ----------------------------
    @property
    def scheduler_queue_depth(self) -> int:
        """Requests sitting in the remote scheduler's coalescing window."""
        return self.client.stats()["scheduler"].get("queue_depth", 0)

    @property
    def queued_requests(self) -> int:
        """Requests queued on the remote service's points budget."""
        return self.client.stats()["service"].get("queued_requests", 0)

    @property
    def pool_resubmitted_shards(self) -> int:
        """Shards the remote pool re-ran after worker crashes (0 when the
        remote evaluator has no pool)."""
        pool = self.client.stats()["evaluator"].get("pool") or {}
        return pool.get("resubmitted_shards", 0)

    def metrics(self) -> dict:
        """The remote registry snapshot (the stats verb's ``metrics`` key;
        empty dict from a pre-v2 server)."""
        return self.client.stats().get("metrics", {})

    def service_stats(self) -> dict:
        """The full remote stats snapshot (service + scheduler + evaluator)."""
        return self.client.stats()

    def close(self) -> None:
        self.client.close()

    def __enter__(self) -> "RemoteEvaluator":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
