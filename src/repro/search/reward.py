"""The multi-objective reward of Eq. 2 and the paper's preset coefficients.

    R(lambda) = alpha1 * A * (e / t_eer)^omega1  +  alpha2 * A * (l / t_lat)^omega2

where ``A`` is validation accuracy, ``l`` latency, ``e`` energy, and
``t_lat`` / ``t_eer`` the user thresholds.  With negative exponents
(``omega < 0``) a candidate that exceeds a threshold is smoothly penalised
and one far below it is rewarded — the MnasNet-style soft constraint the
paper builds on (its ref. [11]); the two alpha terms balance the energy-
and latency-oriented composite scores.

Term assignment note: the paper's Eq. 2 rendering is ambiguous about which
(alpha, omega) pair attaches to which metric, but the Fig. 6 captions
resolve it — the energy-focused search of Fig. 6(b) uses alpha1 = 0.6 and
the latency-focused search of Fig. 6(c) uses alpha2 = 0.6, so (alpha1,
omega1) must weight the energy term and (alpha2, omega2) the latency term.

Presets (Fig. 6 captions):

* ``BALANCED``      — alpha1 0.5, omega1 -0.4, alpha2 0.5, omega2 -0.4
* ``ENERGY_FOCUS``  — alpha1 0.6, omega1 -0.4, alpha2 0.3, omega2 -0.2
* ``LATENCY_FOCUS`` — alpha1 0.3, omega1 -0.3, alpha2 0.6, omega2 -0.4

Thresholds (Sec. IV-A): t_eer = 9 mJ and t_lat = 1.2 ms at paper scale.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = [
    "RewardSpec",
    "BALANCED",
    "ENERGY_FOCUS",
    "LATENCY_FOCUS",
    "PAPER_T_LAT_MS",
    "PAPER_T_EER_MJ",
]

PAPER_T_LAT_MS: float = 1.2
PAPER_T_EER_MJ: float = 9.0


@dataclass(frozen=True)
class RewardSpec:
    """Coefficients and thresholds of the Eq. 2 reward."""

    alpha1: float
    omega1: float
    alpha2: float
    omega2: float
    t_lat_ms: float = PAPER_T_LAT_MS
    t_eer_mj: float = PAPER_T_EER_MJ
    name: str = "custom"

    def __post_init__(self) -> None:
        if self.t_lat_ms <= 0 or self.t_eer_mj <= 0:
            raise ValueError("thresholds must be positive")

    # ------------------------------------------------------------------
    def reward(self, accuracy: float, latency_ms: float, energy_mj: float) -> float:
        """Composite score of one evaluated candidate."""
        if latency_ms <= 0 or energy_mj <= 0:
            raise ValueError("latency and energy must be positive")
        eer_term = (energy_mj / self.t_eer_mj) ** self.omega1
        lat_term = (latency_ms / self.t_lat_ms) ** self.omega2
        return self.alpha1 * accuracy * eer_term + self.alpha2 * accuracy * lat_term

    def meets_thresholds(self, latency_ms: float, energy_mj: float) -> bool:
        """Hard screening used when selecting the final solution (Sec. IV-A)."""
        return latency_ms <= self.t_lat_ms and energy_mj <= self.t_eer_mj

    def scaled(self, t_lat_ms: float, t_eer_mj: float) -> "RewardSpec":
        """Same coefficients with different thresholds (demo-scale runs)."""
        return RewardSpec(
            self.alpha1, self.omega1, self.alpha2, self.omega2,
            t_lat_ms=t_lat_ms, t_eer_mj=t_eer_mj, name=self.name,
        )


BALANCED = RewardSpec(0.5, -0.4, 0.5, -0.4, name="balanced")
ENERGY_FOCUS = RewardSpec(0.6, -0.4, 0.3, -0.2, name="energy_focus")
LATENCY_FOCUS = RewardSpec(0.3, -0.3, 0.6, -0.4, name="latency_focus")
