"""The two-stage baseline flow (Sec. IV-D).

Stage 1 picks a high-accuracy network; Stage 2 enumerates *all* accelerator
configurations for that fixed network and keeps the best one under the
user's optimisation objective — exactly the paper's protocol: *"all the
possible accelerator configurations are enumerated to select the best
configuration for each network."*

Two stage-1 variants are provided:

* :func:`run_two_stage` — the published representative architectures
  (NASNet-A, DARTS, ...) re-expressed in the YOSO space, as in Table 2;
* :func:`two_stage_nas` — an *executed* accuracy-only architecture search
  with the same fast evaluator YOSO uses, so the two-stage and single-stage
  flows are compared at matched accuracy on any dataset (this is what
  "design an application-specific DNN model with the highest accuracy,
  then build an accelerator for it" means when the application is not
  CIFAR-10).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterable

import numpy as np

from ..accel.config import AcceleratorConfig, enumerate_configs
from ..accel.simulator import SystolicArraySimulator
from ..accel.workload import network_workloads
from ..baselines.genotypes import TWO_STAGE_BASELINES, BaselineModel
from ..nas.genotype import Genotype
from ..nas.space import DnnSpace
from .reward import RewardSpec

__all__ = ["TwoStageRow", "best_config_for", "run_two_stage", "two_stage_nas"]


@dataclass(frozen=True)
class TwoStageRow:
    """One Table 2 row produced by the two-stage flow."""

    model: str
    search_gpu_days: float
    paper_test_error: float
    accuracy: float
    energy_mj: float
    latency_ms: float
    config: AcceleratorConfig
    genotype: Genotype | None = None

    @property
    def test_error(self) -> float:
        return 100.0 * (1.0 - self.accuracy)


def best_config_for(
    genotype: Genotype,
    simulator: SystolicArraySimulator,
    objective: str = "energy",
    reward_spec: RewardSpec | None = None,
    num_cells: int = 6,
    stem_channels: int = 16,
    image_size: int = 32,
    num_classes: int = 10,
    configs: Iterable[AcceleratorConfig] | None = None,
) -> tuple[AcceleratorConfig, float, float]:
    """Exhaustively find the best accelerator configuration for a network.

    ``objective`` is ``"energy"``, ``"latency"`` or ``"reward"`` (the Eq. 2
    composite — since accuracy is fixed for a given network, the composite
    ranking of configurations does not depend on the accuracy value, so it
    is evaluated at accuracy 1).  When a ``reward_spec`` is given,
    configurations violating its thresholds are screened out first
    (Sec. IV-A); if none survive, the screen is dropped so a best point is
    always returned.

    Returns ``(config, energy_mj, latency_ms)``.
    """
    if objective not in ("energy", "latency", "reward"):
        raise ValueError("objective must be 'energy', 'latency' or 'reward'")
    if objective == "reward" and reward_spec is None:
        raise ValueError("objective 'reward' requires a reward_spec")
    config_list = list(configs) if configs is not None else list(enumerate_configs())
    if not config_list:
        raise ValueError("no configurations to enumerate")
    results: list[tuple[AcceleratorConfig, float, float]]
    if hasattr(simulator, "simulate_many"):
        # One vectorised sweep: the layer expansion is computed once and
        # broadcast over the whole hardware enumeration.
        layers = network_workloads(
            genotype,
            num_cells=num_cells,
            stem_channels=stem_channels,
            image_size=image_size,
            num_classes=num_classes,
        )
        batch = simulator.simulate_many(layers, config_list)
        results = [
            (config, float(energy), float(latency))
            for config, energy, latency in zip(
                config_list, batch.energy_mj, batch.latency_ms
            )
        ]
    else:  # duck-typed stand-in simulators keep the scalar path
        results = []
        for config in config_list:
            report = simulator.simulate_genotype(
                genotype,
                config,
                num_cells=num_cells,
                stem_channels=stem_channels,
                image_size=image_size,
                num_classes=num_classes,
            )
            results.append((config, report.energy_mj, report.latency_ms))
    candidates = results
    if reward_spec is not None:
        passing = [
            r for r in results if reward_spec.meets_thresholds(r[2], r[1])
        ]
        if passing:
            candidates = passing
    if objective == "energy":
        return min(candidates, key=lambda r: r[1])
    if objective == "latency":
        return min(candidates, key=lambda r: r[2])
    assert reward_spec is not None
    return max(candidates, key=lambda r: reward_spec.reward(1.0, r[2], r[1]))


def run_two_stage(
    simulator: SystolicArraySimulator,
    accuracy_of: Callable[[Genotype], float],
    objective: str = "energy",
    reward_spec: RewardSpec | None = None,
    baselines: tuple[BaselineModel, ...] = TWO_STAGE_BASELINES,
    num_cells: int = 6,
    stem_channels: int = 16,
    image_size: int = 32,
    num_classes: int = 10,
    configs: Iterable[AcceleratorConfig] | None = None,
) -> list[TwoStageRow]:
    """Produce the two-stage side of Table 2.

    ``accuracy_of`` supplies each network's accuracy (full training at
    paper scale; HyperNet-inherited weights at demo scale).  ``configs``
    restricts the hardware enumeration (tests); default is the full space.
    """
    config_list = list(configs) if configs is not None else None
    rows: list[TwoStageRow] = []
    for model in baselines:
        config, energy, latency = best_config_for(
            model.genotype,
            simulator,
            objective=objective,
            reward_spec=reward_spec,
            num_cells=num_cells,
            stem_channels=stem_channels,
            image_size=image_size,
            num_classes=num_classes,
            configs=config_list,
        )
        rows.append(
            TwoStageRow(
                model=model.name,
                search_gpu_days=model.search_gpu_days,
                paper_test_error=model.paper_test_error,
                accuracy=accuracy_of(model.genotype),
                energy_mj=energy,
                latency_ms=latency,
                config=config,
            )
        )
    return rows


def two_stage_nas(
    accuracy_of: Callable[[Genotype], float],
    simulator: SystolicArraySimulator,
    objective: str,
    reward_spec: RewardSpec | None = None,
    nas_samples: int = 100,
    seed: int = 0,
    num_cells: int = 6,
    stem_channels: int = 16,
    image_size: int = 32,
    num_classes: int = 10,
    configs: Iterable[AcceleratorConfig] | None = None,
) -> TwoStageRow:
    """Execute the full two-stage flow from scratch.

    Stage 1: sample ``nas_samples`` architectures uniformly and keep the one
    with the highest accuracy under ``accuracy_of`` (the paper's "designing
    an application-specific DNN model with the highest accuracy" — no
    hardware feedback whatsoever).  Stage 2: enumerate the accelerator space
    for that fixed architecture and keep the best configuration under
    ``objective`` (screened by ``reward_spec`` thresholds when given).
    """
    if nas_samples < 1:
        raise ValueError("nas_samples must be >= 1")
    rng = np.random.default_rng(seed)
    space = DnnSpace()
    best_genotype: Genotype | None = None
    best_accuracy = -1.0
    for i in range(nas_samples):
        genotype = space.sample(rng, name=f"two_stage_nas{i}")
        accuracy = accuracy_of(genotype)
        if accuracy > best_accuracy:
            best_accuracy = accuracy
            best_genotype = genotype
    assert best_genotype is not None
    config, energy, latency = best_config_for(
        best_genotype,
        simulator,
        objective=objective,
        reward_spec=reward_spec,
        num_cells=num_cells,
        stem_channels=stem_channels,
        image_size=image_size,
        num_classes=num_classes,
        configs=list(configs) if configs is not None else None,
    )
    return TwoStageRow(
        model=f"TwoStage_{objective}",
        search_gpu_days=0.5,
        paper_test_error=float("nan"),
        accuracy=best_accuracy,
        energy_mj=energy,
        latency_ms=latency,
        config=config,
        genotype=best_genotype,
    )
