"""Regularised-evolution search baseline (Real et al., AAAI'19).

The search strategy behind AmoebaNet-A — one of the two-stage baselines in
Table 2 — applied to YOSO's *joint* token space: tournament selection over a
sliding population, mutation of one token per child, and age-based removal
(the oldest individual dies, which is the "regularisation").

Included as an extension comparator alongside RL, random search and
Bayesian optimisation (see ``repro.experiments.ablation``).
"""

from __future__ import annotations

from collections import deque
from typing import Callable

import numpy as np

from ..nas.encoding import CoDesignPoint, decode, random_sequence
from ..nas.mutate import mutate_sequence
from .evaluator import Evaluation
from .reinforce import SearchHistory, SearchSample
from .reward import RewardSpec

__all__ = ["EvolutionSearch"]


class EvolutionSearch:
    """Aging evolution over 44-token co-design sequences.

    With ``batch_size`` > 1 the loop runs generation-style: B children are
    bred from the *current* population snapshot, scored in one batched
    evaluator call, then inserted together while the B oldest individuals
    die.  ``batch_size=1`` (default) is the classic fully-sequential aging
    evolution of Real et al.
    """

    def __init__(
        self,
        evaluate: Callable[[CoDesignPoint], Evaluation],
        reward_spec: RewardSpec,
        population_size: int = 20,
        tournament_size: int = 5,
        mutations_per_child: int = 1,
        seed: int = 0,
        batch_size: int = 1,
        evaluate_batch: Callable[[list[CoDesignPoint]], list[Evaluation]] | None = None,
    ) -> None:
        if population_size < 2:
            raise ValueError("population_size must be >= 2")
        if not 1 <= tournament_size <= population_size:
            raise ValueError("tournament_size must be in [1, population_size]")
        if not 1 <= batch_size <= population_size:
            raise ValueError("batch_size must be in [1, population_size]")
        self.evaluate = evaluate
        self.evaluate_batch = evaluate_batch
        self.reward_spec = reward_spec
        self.population_size = population_size
        self.tournament_size = tournament_size
        self.mutations_per_child = mutations_per_child
        self.batch_size = batch_size
        self.rng = np.random.default_rng(seed)
        self.history = SearchHistory()
        #: (tokens, reward) pairs, oldest first.
        self._population: deque[tuple[list[int], float]] = deque()

    # ------------------------------------------------------------------
    def _evaluate_points(self, points: list[CoDesignPoint]) -> list[Evaluation]:
        if self.evaluate_batch is not None:
            return list(self.evaluate_batch(points))
        return [self.evaluate(point) for point in points]

    def _score_batch(self, token_lists: list[list[int]]) -> list[SearchSample]:
        base = len(self.history)
        points = [
            decode(tokens, name=f"evo{base + j}")
            for j, tokens in enumerate(token_lists)
        ]
        samples: list[SearchSample] = []
        for tokens, evaluation in zip(token_lists, self._evaluate_points(points)):
            reward = self.reward_spec.reward(
                evaluation.accuracy, evaluation.latency_ms, evaluation.energy_mj
            )
            sample = SearchSample(
                iteration=len(self.history),
                tokens=tuple(tokens),
                reward=reward,
                accuracy=evaluation.accuracy,
                latency_ms=evaluation.latency_ms,
                energy_mj=evaluation.energy_mj,
            )
            self.history.append(sample)
            samples.append(sample)
        return samples

    def _score(self, tokens: list[int]) -> SearchSample:
        return self._score_batch([tokens])[0]

    def _select_parent(self) -> list[int]:
        """Tournament selection among a random subset of the population."""
        indices = self.rng.choice(
            len(self._population), size=self.tournament_size, replace=False
        )
        parent_tokens, _ = max(
            (self._population[int(i)] for i in indices), key=lambda tr: tr[1]
        )
        return parent_tokens

    def step(self) -> SearchSample:
        """One evaluation: seed the population, then evolve."""
        if len(self._population) < self.population_size:
            tokens = random_sequence(self.rng)
            sample = self._score(tokens)
            self._population.append((tokens, sample.reward))
            return sample
        child = mutate_sequence(
            self._select_parent(), self.rng, self.mutations_per_child
        )
        sample = self._score(child)
        self._population.append((child, sample.reward))
        self._population.popleft()  # aging: the oldest dies
        return sample

    def step_batch(self, n: int) -> list[SearchSample]:
        """Breed, score and insert ``n`` children from one snapshot."""
        if not 1 <= n <= self.population_size:
            raise ValueError("n must be in [1, population_size]")
        if len(self._population) < self.population_size:
            # Seed phase: batch-score up to n random individuals.
            n = min(n, self.population_size - len(self._population))
            token_lists = [random_sequence(self.rng) for _ in range(n)]
            samples = self._score_batch(token_lists)
            for tokens, sample in zip(token_lists, samples):
                self._population.append((tokens, sample.reward))
            return samples
        children = [
            mutate_sequence(self._select_parent(), self.rng, self.mutations_per_child)
            for _ in range(n)
        ]
        samples = self._score_batch(children)
        for child, sample in zip(children, samples):
            self._population.append((child, sample.reward))
            self._population.popleft()  # aging: the oldest dies
        return samples

    def run(self, iterations: int) -> SearchHistory:
        if iterations < 1:
            raise ValueError("iterations must be >= 1")
        while len(self.history) < iterations:
            if self.batch_size == 1:
                self.step()
            else:
                self.step_batch(
                    min(self.batch_size, iterations - len(self.history))
                )
        return self.history

    @property
    def population_best(self) -> float:
        """Best reward currently alive in the population."""
        if not self._population:
            raise ValueError("population is empty")
        return max(r for _, r in self._population)
