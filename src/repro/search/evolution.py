"""Regularised-evolution search baseline (Real et al., AAAI'19).

The search strategy behind AmoebaNet-A — one of the two-stage baselines in
Table 2 — applied to YOSO's *joint* token space: tournament selection over a
sliding population, mutation of one token per child, and age-based removal
(the oldest individual dies, which is the "regularisation").

Included as an extension comparator alongside RL, random search and
Bayesian optimisation (see ``repro.experiments.ablation``).
"""

from __future__ import annotations

from collections import deque
from typing import Callable

import numpy as np

from ..nas.encoding import CoDesignPoint, decode, random_sequence
from ..nas.mutate import mutate_sequence
from .evaluator import Evaluation
from .reinforce import SearchHistory, SearchSample
from .reward import RewardSpec

__all__ = ["EvolutionSearch"]


class EvolutionSearch:
    """Aging evolution over 44-token co-design sequences."""

    def __init__(
        self,
        evaluate: Callable[[CoDesignPoint], Evaluation],
        reward_spec: RewardSpec,
        population_size: int = 20,
        tournament_size: int = 5,
        mutations_per_child: int = 1,
        seed: int = 0,
    ) -> None:
        if population_size < 2:
            raise ValueError("population_size must be >= 2")
        if not 1 <= tournament_size <= population_size:
            raise ValueError("tournament_size must be in [1, population_size]")
        self.evaluate = evaluate
        self.reward_spec = reward_spec
        self.population_size = population_size
        self.tournament_size = tournament_size
        self.mutations_per_child = mutations_per_child
        self.rng = np.random.default_rng(seed)
        self.history = SearchHistory()
        #: (tokens, reward) pairs, oldest first.
        self._population: deque[tuple[list[int], float]] = deque()

    # ------------------------------------------------------------------
    def _score(self, tokens: list[int]) -> SearchSample:
        point = decode(tokens, name=f"evo{len(self.history)}")
        evaluation = self.evaluate(point)
        reward = self.reward_spec.reward(
            evaluation.accuracy, evaluation.latency_ms, evaluation.energy_mj
        )
        sample = SearchSample(
            iteration=len(self.history),
            tokens=tuple(tokens),
            reward=reward,
            accuracy=evaluation.accuracy,
            latency_ms=evaluation.latency_ms,
            energy_mj=evaluation.energy_mj,
        )
        self.history.append(sample)
        return sample

    def step(self) -> SearchSample:
        """One evaluation: seed the population, then evolve."""
        if len(self._population) < self.population_size:
            tokens = random_sequence(self.rng)
            sample = self._score(tokens)
            self._population.append((tokens, sample.reward))
            return sample
        # Tournament selection among a random subset.
        indices = self.rng.choice(
            len(self._population), size=self.tournament_size, replace=False
        )
        parent_tokens, _ = max(
            (self._population[int(i)] for i in indices), key=lambda tr: tr[1]
        )
        child = mutate_sequence(parent_tokens, self.rng, self.mutations_per_child)
        sample = self._score(child)
        self._population.append((child, sample.reward))
        self._population.popleft()  # aging: the oldest dies
        return sample

    def run(self, iterations: int) -> SearchHistory:
        if iterations < 1:
            raise ValueError("iterations must be >= 1")
        while len(self.history) < iterations:
            self.step()
        return self.history

    @property
    def population_best(self) -> float:
        """Best reward currently alive in the population."""
        if not self._population:
            raise ValueError("population is empty")
        return max(r for _, r in self._population)
