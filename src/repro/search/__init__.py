"""The YOSO search core: LSTM/REINFORCE controller, multi-objective reward,
fast/accurate evaluators, random-search and two-stage baselines, and the
three-step pipeline orchestrator."""

from .bandit import BanditSearch
from .bayesopt import BayesianOptSearch, expected_improvement
from .evolution import EvolutionSearch
from .controller import Controller, SampledSequence
from .evaluator import AccurateEvaluator, BatchEvaluator, Evaluation, FastEvaluator
from .lstm import LSTMCell, LSTMState
from .random_search import RandomSearch
from .reinforce import ReinforceSearch, SearchHistory, SearchSample
from .reward import (
    BALANCED,
    ENERGY_FOCUS,
    LATENCY_FOCUS,
    PAPER_T_EER_MJ,
    PAPER_T_LAT_MS,
    RewardSpec,
)
from .two_stage import TwoStageRow, best_config_for, run_two_stage
from .yoso import RescoredCandidate, YosoConfig, YosoResult, YosoSearch

__all__ = [
    "BayesianOptSearch",
    "expected_improvement",
    "EvolutionSearch",
    "BanditSearch",
    "Controller",
    "SampledSequence",
    "LSTMCell",
    "LSTMState",
    "Evaluation",
    "FastEvaluator",
    "BatchEvaluator",
    "AccurateEvaluator",
    "ReinforceSearch",
    "SearchHistory",
    "SearchSample",
    "RandomSearch",
    "RewardSpec",
    "BALANCED",
    "ENERGY_FOCUS",
    "LATENCY_FOCUS",
    "PAPER_T_LAT_MS",
    "PAPER_T_EER_MJ",
    "TwoStageRow",
    "best_config_for",
    "run_two_stage",
    "YosoSearch",
    "YosoConfig",
    "YosoResult",
    "RescoredCandidate",
]
