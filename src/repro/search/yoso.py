"""End-to-end YOSO pipeline (Fig. 2): the three steps in one object.

Step 1 — fast evaluator construction: train the HyperNet with uniform path
sampling, collect simulator samples and fit the two GP predictors.
Step 2 — effective design search: the LSTM/REINFORCE controller generates
(network, configuration) pairs, scored by the fast evaluator and Eq. 2.
Step 3 — determining the final solution: the top-N candidates are rescored
accurately (stand-alone training + full simulation), threshold-screened and
the best composite scorer is returned.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

from ..accel.simulator import SystolicArraySimulator
from ..nas.encoding import CoDesignPoint
from ..nas.hypernet import HyperNet, HyperNetTrainer
from ..nn.data import SyntheticCifar
from ..predict.dataset import PerfDataset, collect_samples
from .controller import Controller
from .evaluator import AccurateEvaluator, BatchEvaluator, Evaluation, FastEvaluator
from .reinforce import ReinforceSearch, SearchHistory, SearchSample
from .reward import RewardSpec

__all__ = ["YosoConfig", "RescoredCandidate", "YosoResult", "YosoSearch"]


@dataclass(frozen=True)
class YosoConfig:
    """All pipeline knobs, defaulting to paper-faithful values."""

    num_cells: int = 6
    stem_channels: int = 16
    num_classes: int = 10
    hypernet_epochs: int = 300
    hypernet_batch: int = 144
    predictor_samples: int = 3600
    search_iterations: int = 12_000
    topn: int = 10
    rescore_epochs: int = 70
    controller_hidden: int = 120
    controller_lr: float = 0.0035
    entropy_weight: float = 1e-4
    eval_batch: int = 64
    #: Controller rollouts sampled, batch-scored and accumulated per policy
    #: update (1 = the paper's per-episode update; candidate *scoring* goes
    #: through the batched evaluator either way).
    search_batch: int = 1
    #: Worker processes for candidate scoring AND Step-3 top-N training.
    #: 1 (the default) keeps everything in-process; > 1 routes Step 2
    #: through :class:`~repro.parallel.ParallelEvaluator` (sharded
    #: HyperNet accuracy + feature misses) and Step 3's stand-alone
    #: trainings through :class:`~repro.parallel.TrainingPool` — both
    #: bit-identical to the serial paths.
    workers: int = 1
    #: Run Step-3 stand-alone training under the compact-cache training
    #: kernels (:func:`repro.nn.layers.train_fast`).  Off by default for
    #: paper fidelity; gradients match the standard kernels at rel 1e-6.
    train_fast: bool = False
    #: Path of a durable :class:`repro.store.ResultStore` (``--store``).
    #: ``None`` (the default) keeps the pipeline byte-identical to the
    #: store-less behaviour; a path warm-starts Step 1's simulator samples
    #: and the Step-2/Step-3 evaluations from persisted results, and
    #: appends fresh ones for the next run.
    store_path: str | None = None
    seed: int = 0


@dataclass(frozen=True)
class RescoredCandidate:
    """A top-N candidate after Step 3 accurate rescoring."""

    sample: SearchSample
    accurate: Evaluation
    reward: float
    meets_thresholds: bool

    def point(self) -> CoDesignPoint:
        return self.sample.point()


@dataclass
class YosoResult:
    """Everything the pipeline produced."""

    best: RescoredCandidate
    rescored: list[RescoredCandidate]
    history: SearchHistory
    reward_spec: RewardSpec
    wall_seconds: dict[str, float] = field(default_factory=dict)


class YosoSearch:
    """Single-stage DNN/accelerator co-design, start to finish."""

    def __init__(
        self,
        dataset: SyntheticCifar,
        reward_spec: RewardSpec,
        config: YosoConfig | None = None,
        simulator: SystolicArraySimulator | None = None,
    ) -> None:
        self.dataset = dataset
        self.reward_spec = reward_spec
        self.config = config or YosoConfig()
        self.simulator = simulator or SystolicArraySimulator()
        self.hypernet: HyperNet | None = None
        self.samples: PerfDataset | None = None
        self.fast_evaluator: FastEvaluator | None = None
        self.batch_evaluator: BatchEvaluator | None = None
        self.search: ReinforceSearch | None = None
        self.store = None

    def _ensure_store(self):
        """Open the configured durable store once (or return ``None``)."""
        if self.store is None and self.config.store_path is not None:
            from ..store import ResultStore

            self.store = ResultStore(self.config.store_path, mode="a")
        return self.store

    def close_store(self) -> None:
        """Flush and close the durable store, if one was opened."""
        if self.store is not None:
            self.store.close()

    # -- Step 1 ----------------------------------------------------------
    def build_fast_evaluator(self) -> FastEvaluator:
        """Train the HyperNet and fit the GP predictors."""
        cfg = self.config
        rng = np.random.default_rng(cfg.seed)
        self.hypernet = HyperNet(
            num_cells=cfg.num_cells,
            stem_channels=cfg.stem_channels,
            num_classes=cfg.num_classes,
            rng=rng,
        )
        trainer = HyperNetTrainer(
            self.hypernet, epochs=cfg.hypernet_epochs, seed=cfg.seed
        )
        trainer.fit(self.dataset, batch_size=cfg.hypernet_batch)
        self.samples = collect_samples(
            cfg.predictor_samples,
            seed=cfg.seed + 1,
            simulator=self.simulator,
            num_cells=cfg.num_cells,
            stem_channels=cfg.stem_channels,
            image_size=self.dataset.image_size,
            num_classes=cfg.num_classes,
            store=self._ensure_store(),
        )
        self.fast_evaluator = FastEvaluator.from_samples(
            self.hypernet,
            self.dataset,
            self.samples,
            seed=cfg.seed,
            num_cells=cfg.num_cells,
            stem_channels=cfg.stem_channels,
            image_size=self.dataset.image_size,
            num_classes=cfg.num_classes,
            eval_batch=cfg.eval_batch,
        )
        return self.fast_evaluator

    # -- Step 2 ----------------------------------------------------------
    def run_search(self) -> SearchHistory:
        """Run the RL search with the (batched) fast evaluator."""
        if self.fast_evaluator is None:
            raise RuntimeError("call build_fast_evaluator() first (Step 1)")
        cfg = self.config
        controller = Controller(hidden_dim=cfg.controller_hidden, seed=cfg.seed)
        # Imported lazily: repro.parallel imports the evaluator module, so a
        # module-level import here would be circular via the package init.
        from ..parallel import create_evaluator

        self.batch_evaluator = create_evaluator(
            self.fast_evaluator, workers=cfg.workers
        )
        if self._ensure_store() is not None:
            self.batch_evaluator.attach_store(self.store)
        self.search = ReinforceSearch(
            controller,
            self.batch_evaluator.evaluate,
            self.reward_spec,
            lr=cfg.controller_lr,
            entropy_weight=cfg.entropy_weight,
            batch_episodes=cfg.search_batch,
            seed=cfg.seed,
            evaluate_batch=self.batch_evaluator.evaluate_many,
        )
        return self.search.run(cfg.search_iterations)

    # -- Step 3 ----------------------------------------------------------
    def finalize(self) -> list[RescoredCandidate]:
        """Accurately rescore the top-N candidates and rank them.

        Accuracy needs stand-alone training per candidate; at
        ``workers > 1`` those independent trainings shard across a
        :class:`~repro.parallel.TrainingPool` (dataset + recipe replicated
        once per worker, per-candidate deterministic seeds, results
        bit-identical to the serial loop).  The latency/energy ground
        truth for ALL top-N candidates comes from ONE batched
        :meth:`~repro.accel.simulator.SystolicArraySimulator.
        simulate_genotypes` call instead of N scalar per-layer walks (the
        batch engine matches the scalar simulator to relative 1e-9).
        """
        if self.search is None:
            raise RuntimeError("call run_search() first (Step 2)")
        cfg = self.config
        accurate = AccurateEvaluator(
            self.dataset,
            simulator=self.simulator,
            num_cells=cfg.num_cells,
            stem_channels=cfg.stem_channels,
            num_classes=cfg.num_classes,
            train_epochs=cfg.rescore_epochs,
            seed=cfg.seed,
            train_fast=cfg.train_fast,
        )
        if self._ensure_store() is not None:
            accurate.attach_store(self.store)
        top = self.search.history.top(cfg.topn)
        points = [sample.point() for sample in top]
        batch = self.simulator.simulate_genotypes(
            [(point.genotype, point.config) for point in points],
            num_cells=cfg.num_cells,
            stem_channels=cfg.stem_channels,
            image_size=self.dataset.image_size,
            num_classes=cfg.num_classes,
        )
        accuracies = accurate.train_accuracies(points, workers=cfg.workers)
        rescored: list[RescoredCandidate] = []
        for sample, point, accuracy, latency, energy in zip(
            top, points, accuracies, batch.latency_ms, batch.energy_mj
        ):
            evaluation = Evaluation(
                accuracy=accuracy,
                latency_ms=float(latency),
                energy_mj=float(energy),
            )
            rescored.append(
                RescoredCandidate(
                    sample=sample,
                    accurate=evaluation,
                    reward=self.reward_spec.reward(
                        evaluation.accuracy,
                        evaluation.latency_ms,
                        evaluation.energy_mj,
                    ),
                    meets_thresholds=self.reward_spec.meets_thresholds(
                        evaluation.latency_ms, evaluation.energy_mj
                    ),
                )
            )
        rescored.sort(key=lambda c: (c.meets_thresholds, c.reward), reverse=True)
        return rescored

    # -- all three steps ---------------------------------------------------
    def run(self) -> YosoResult:
        """Execute Steps 1-3 and return the final solution."""
        times: dict[str, float] = {}
        t0 = time.perf_counter()
        self.build_fast_evaluator()
        times["step1_fast_evaluator"] = time.perf_counter() - t0
        t0 = time.perf_counter()
        history = self.run_search()
        times["step2_search"] = time.perf_counter() - t0
        # Step 2 is the only pool consumer; release the workers before the
        # (training-heavy) rescoring step.  The evaluator stays usable —
        # a later batch would lazily respawn the pool.
        if hasattr(self.batch_evaluator, "close"):
            self.batch_evaluator.close()
        t0 = time.perf_counter()
        rescored = self.finalize()
        times["step3_rescoring"] = time.perf_counter() - t0
        # Every result from this run is durable before we hand back.
        self.close_store()
        return YosoResult(
            best=rescored[0],
            rescored=rescored,
            history=history,
            reward_spec=self.reward_spec,
            wall_seconds=times,
        )
