"""The LSTM policy over 44-token action sequences (Sec. III-C, IV-C).

The controller samples actions *"via a softmax classifier in an
autoregressive flow: when generating the i-th parameter, previously
generated parameters are fed as input.  At the initial step, we feed zero
as input."*  Logits are shaped with a temperature of 1.1 and a tanh
constant of 2.5 (Sec. IV-C) to prevent premature convergence, and the
sample entropy is exposed so the trainer can add the paper's 1e-4 entropy
bonus to the reward.

Every sequence position has its own output head (vocabulary sizes differ
per position) and its own embedding table for feeding the *previous* token
back in.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..nas.encoding import token_vocab_sizes
from ..nn.module import Module, Parameter
from .lstm import LSTMCell, LSTMState

__all__ = ["Controller", "SampledSequence"]


@dataclass
class SampledSequence:
    """One sampled action sequence plus everything needed for REINFORCE."""

    tokens: list[int]
    log_prob: float
    entropy: float
    # Per-step caches: (lstm_cache, softmax_probs, raw_logits, head_index).
    _caches: list[tuple]


class Controller(Module):
    """Autoregressive LSTM policy over the co-design action space."""

    def __init__(
        self,
        vocab_sizes: tuple[int, ...] | None = None,
        hidden_dim: int = 120,
        embedding_dim: int = 32,
        temperature: float = 1.1,
        tanh_constant: float = 2.5,
        seed: int = 0,
    ) -> None:
        super().__init__()
        rng = np.random.default_rng(seed)
        self.vocab_sizes = tuple(vocab_sizes or token_vocab_sizes())
        self.hidden_dim = hidden_dim
        self.embedding_dim = embedding_dim
        self.temperature = temperature
        self.tanh_constant = tanh_constant
        self.lstm = LSTMCell(embedding_dim, hidden_dim, rng)
        scale = 1.0 / np.sqrt(hidden_dim)
        #: per-position output heads: hidden -> vocab[t]
        self.heads = [
            Parameter(rng.uniform(-scale, scale, size=(hidden_dim, v)))
            for v in self.vocab_sizes
        ]
        self.head_biases = [
            Parameter(np.zeros(v), weight_decay=False) for v in self.vocab_sizes
        ]
        #: per-position embeddings of the *previous* token (position 0 gets
        #: a zero input vector, as in the paper).
        emb_scale = 1.0 / np.sqrt(embedding_dim)
        self.embeddings = [
            Parameter(rng.uniform(-emb_scale, emb_scale, size=(v, embedding_dim)))
            for v in self.vocab_sizes[:-1]
        ]

    # ------------------------------------------------------------------
    @property
    def sequence_length(self) -> int:
        return len(self.vocab_sizes)

    def _shaped_logits(self, h: np.ndarray, t: int) -> tuple[np.ndarray, np.ndarray]:
        raw = h @ self.heads[t].data + self.head_biases[t].data
        shaped = self.tanh_constant * np.tanh(raw / self.temperature)
        return raw, shaped

    def sample(self, rng: np.random.Generator) -> SampledSequence:
        """Sample one full action sequence from the current policy."""
        state = LSTMState.zeros(self.hidden_dim)
        x = np.zeros(self.embedding_dim)
        tokens: list[int] = []
        caches: list[tuple] = []
        log_prob = 0.0
        entropy = 0.0
        for t, vocab in enumerate(self.vocab_sizes):
            state, lstm_cache = self.lstm.step(x, state)
            raw, shaped = self._shaped_logits(state.h, t)
            probs = _softmax(shaped)
            token = int(rng.choice(vocab, p=probs))
            tokens.append(token)
            log_prob += float(np.log(probs[token] + 1e-12))
            entropy += float(-np.sum(probs * np.log(probs + 1e-12)))
            caches.append((lstm_cache, probs, raw, t))
            if t < self.sequence_length - 1:
                x = self.embeddings[t].data[token]
        return SampledSequence(tokens=tokens, log_prob=log_prob, entropy=entropy, _caches=caches)

    def log_prob_of(self, tokens: list[int]) -> float:
        """Log-probability of a fixed sequence under the current policy."""
        if len(tokens) != self.sequence_length:
            raise ValueError("token sequence has wrong length")
        state = LSTMState.zeros(self.hidden_dim)
        x = np.zeros(self.embedding_dim)
        total = 0.0
        for t, token in enumerate(tokens):
            state, _ = self.lstm.step(x, state)
            _, shaped = self._shaped_logits(state.h, t)
            probs = _softmax(shaped)
            total += float(np.log(probs[token] + 1e-12))
            if t < self.sequence_length - 1:
                x = self.embeddings[t].data[token]
        return total

    # ------------------------------------------------------------------
    def accumulate_policy_gradient(self, sample: SampledSequence, advantage: float) -> None:
        """Accumulate REINFORCE gradients for one episode (Eq. 4).

        The loss is ``-advantage * sum_t log p(a_t)``; gradients flow through
        the tanh/temperature logit shaping, the per-position heads, the LSTM
        (full BPTT) and the token embeddings.
        """
        dh_next = np.zeros(self.hidden_dim)
        dc_next = np.zeros(self.hidden_dim)
        for t in range(self.sequence_length - 1, -1, -1):
            lstm_cache, probs, raw, head_idx = sample._caches[t]
            token = sample.tokens[t]
            # d(-adv * log softmax(shaped))/d shaped = adv * (probs - onehot)
            d_shaped = advantage * probs
            d_shaped[token] -= advantage
            # Through shaped = C * tanh(raw / T).
            tanh_val = np.tanh(raw / self.temperature)
            d_raw = d_shaped * self.tanh_constant * (1.0 - tanh_val**2) / self.temperature
            h = lstm_cache_h(lstm_cache, self)
            self.heads[head_idx].grad += np.outer(h, d_raw)
            self.head_biases[head_idx].grad += d_raw
            dh = d_raw @ self.heads[head_idx].data.T + dh_next
            dx, dh_next, dc_next = self.lstm.backward_step(dh, dc_next, lstm_cache)
            if t > 0:
                prev_token = sample.tokens[t - 1]
                self.embeddings[t - 1].grad[prev_token] += dx


def lstm_cache_h(cache: tuple, controller: Controller) -> np.ndarray:
    """Recompute the hidden output of a cached LSTM step (h = o * tanh(c))."""
    _x, _h_prev, _c_prev, _i, _f, _g, o, tanh_c = cache
    return o * tanh_c


def _softmax(logits: np.ndarray) -> np.ndarray:
    z = logits - logits.max()
    e = np.exp(z)
    return e / e.sum()
