"""Random-search baseline (the comparison of Fig. 6(a)).

Uniformly samples co-design points from the same combined space and scores
them with the same evaluator and reward; the only difference from the RL
search is the absence of a learned policy.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from ..nas.encoding import CoDesignPoint, decode, random_sequence
from .evaluator import Evaluation
from .reinforce import SearchHistory, SearchSample
from .reward import RewardSpec

__all__ = ["RandomSearch"]


class RandomSearch:
    """Uniform sampling over the 44-token action space."""

    def __init__(
        self,
        evaluate: Callable[[CoDesignPoint], Evaluation],
        reward_spec: RewardSpec,
        seed: int = 0,
    ) -> None:
        self.evaluate = evaluate
        self.reward_spec = reward_spec
        self.rng = np.random.default_rng(seed)
        self.history = SearchHistory()

    def step(self) -> SearchSample:
        tokens = random_sequence(self.rng)
        point = decode(tokens, name=f"rand{len(self.history)}")
        evaluation = self.evaluate(point)
        reward = self.reward_spec.reward(
            evaluation.accuracy, evaluation.latency_ms, evaluation.energy_mj
        )
        sample = SearchSample(
            iteration=len(self.history),
            tokens=tuple(tokens),
            reward=reward,
            accuracy=evaluation.accuracy,
            latency_ms=evaluation.latency_ms,
            energy_mj=evaluation.energy_mj,
        )
        self.history.append(sample)
        return sample

    def run(self, iterations: int) -> SearchHistory:
        if iterations < 1:
            raise ValueError("iterations must be >= 1")
        while len(self.history) < iterations:
            self.step()
        return self.history
