"""Random-search baseline (the comparison of Fig. 6(a)).

Uniformly samples co-design points from the same combined space and scores
them with the same evaluator and reward; the only difference from the RL
search is the absence of a learned policy.  ``batch_size`` controls how
many candidates are drawn and scored per batched evaluator call — token
sampling is the only RNG consumer, so the history is identical for every
batch size.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from ..nas.encoding import CoDesignPoint, decode, random_sequence
from .evaluator import Evaluation
from .reinforce import SearchHistory, SearchSample
from .reward import RewardSpec

__all__ = ["RandomSearch"]


class RandomSearch:
    """Uniform sampling over the 44-token action space."""

    def __init__(
        self,
        evaluate: Callable[[CoDesignPoint], Evaluation],
        reward_spec: RewardSpec,
        seed: int = 0,
        batch_size: int = 1,
        evaluate_batch: Callable[[list[CoDesignPoint]], list[Evaluation]] | None = None,
    ) -> None:
        if batch_size < 1:
            raise ValueError("batch_size must be >= 1")
        self.evaluate = evaluate
        self.evaluate_batch = evaluate_batch
        self.reward_spec = reward_spec
        self.batch_size = batch_size
        self.rng = np.random.default_rng(seed)
        self.history = SearchHistory()

    # ------------------------------------------------------------------
    def _record(self, tokens: list[int], evaluation: Evaluation) -> SearchSample:
        sample = SearchSample(
            iteration=len(self.history),
            tokens=tuple(tokens),
            reward=self.reward_spec.reward(
                evaluation.accuracy, evaluation.latency_ms, evaluation.energy_mj
            ),
            accuracy=evaluation.accuracy,
            latency_ms=evaluation.latency_ms,
            energy_mj=evaluation.energy_mj,
        )
        self.history.append(sample)
        return sample

    def step(self) -> SearchSample:
        tokens = random_sequence(self.rng)
        point = decode(tokens, name=f"rand{len(self.history)}")
        return self._record(tokens, self.evaluate(point))

    def step_batch(self, n: int) -> list[SearchSample]:
        """Draw and score ``n`` candidates in one batched evaluator call."""
        if n < 1:
            raise ValueError("n must be >= 1")
        base = len(self.history)
        token_lists = [random_sequence(self.rng) for _ in range(n)]
        points = [
            decode(tokens, name=f"rand{base + j}")
            for j, tokens in enumerate(token_lists)
        ]
        if self.evaluate_batch is not None:
            evaluations = list(self.evaluate_batch(points))
        else:
            evaluations = [self.evaluate(point) for point in points]
        return [
            self._record(tokens, evaluation)
            for tokens, evaluation in zip(token_lists, evaluations)
        ]

    def run(self, iterations: int) -> SearchHistory:
        if iterations < 1:
            raise ValueError("iterations must be >= 1")
        while len(self.history) < iterations:
            if self.batch_size == 1:
                self.step()
            else:
                self.step_batch(min(self.batch_size, iterations - len(self.history)))
        return self.history
