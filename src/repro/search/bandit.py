"""Per-position multi-armed-bandit search baseline.

The second comparator the paper dismisses for high-dimensional spaces
(Sec. III-B): each of the 44 sequence positions is treated as an
independent UCB1 bandit over its token vocabulary.  The factorised
assumption is exactly what breaks in a coupled space — architecture and
hardware tokens interact — which is why the LSTM policy (which conditions
on the whole prefix) wins.  Implemented so that claim is measurable.
"""

from __future__ import annotations

import math
from typing import Callable

import numpy as np

from ..nas.encoding import CoDesignPoint, decode, token_vocab_sizes
from .evaluator import Evaluation
from .reinforce import SearchHistory, SearchSample
from .reward import RewardSpec

__all__ = ["BanditSearch"]


class BanditSearch:
    """Factorised UCB1 over token positions."""

    def __init__(
        self,
        evaluate: Callable[[CoDesignPoint], Evaluation],
        reward_spec: RewardSpec,
        exploration: float = 0.5,
        seed: int = 0,
    ) -> None:
        if exploration < 0:
            raise ValueError("exploration must be non-negative")
        self.evaluate = evaluate
        self.reward_spec = reward_spec
        self.exploration = exploration
        self.rng = np.random.default_rng(seed)
        self.vocab = token_vocab_sizes()
        self.history = SearchHistory()
        #: per-position arm statistics.
        self._counts = [np.zeros(v) for v in self.vocab]
        self._sums = [np.zeros(v) for v in self.vocab]

    # ------------------------------------------------------------------
    def _pick(self, position: int, total_pulls: int) -> int:
        counts = self._counts[position]
        # Play every untried arm first (random order).
        untried = np.flatnonzero(counts == 0)
        if len(untried):
            return int(self.rng.choice(untried))
        means = self._sums[position] / counts
        bonus = self.exploration * np.sqrt(np.log(max(total_pulls, 2)) / counts)
        scores = means + bonus
        best = np.flatnonzero(scores == scores.max())
        return int(self.rng.choice(best))

    def step(self) -> SearchSample:
        t = len(self.history) + 1
        tokens = [self._pick(i, t) for i in range(len(self.vocab))]
        point = decode(tokens, name=f"bandit{len(self.history)}")
        evaluation = self.evaluate(point)
        reward = self.reward_spec.reward(
            evaluation.accuracy, evaluation.latency_ms, evaluation.energy_mj
        )
        for i, tok in enumerate(tokens):
            self._counts[i][tok] += 1
            self._sums[i][tok] += reward
        sample = SearchSample(
            iteration=len(self.history),
            tokens=tuple(tokens),
            reward=reward,
            accuracy=evaluation.accuracy,
            latency_ms=evaluation.latency_ms,
            energy_mj=evaluation.energy_mj,
        )
        self.history.append(sample)
        return sample

    def run(self, iterations: int) -> SearchHistory:
        if iterations < 1:
            raise ValueError("iterations must be >= 1")
        while len(self.history) < iterations:
            self.step()
        return self.history

    def greedy_tokens(self) -> list[int]:
        """The current per-position empirical-mean argmax sequence."""
        tokens = []
        for counts, sums in zip(self._counts, self._sums):
            with np.errstate(invalid="ignore", divide="ignore"):
                means = np.where(counts > 0, sums / np.maximum(counts, 1), -np.inf)
            tokens.append(int(np.argmax(means)))
        return tokens
