"""Numpy LSTM cell with explicit backpropagation-through-time support.

The RL searcher is *"an LSTM with 120 hidden units"* (Sec. III-C).  This
module provides the cell primitive; :mod:`repro.search.controller` unrolls
it autoregressively over the 44 action positions and backpropagates the
REINFORCE loss through the stored step caches.
"""

from __future__ import annotations

import numpy as np

from ..nn.module import Module, Parameter

__all__ = ["LSTMCell", "LSTMState"]


class LSTMState:
    """Hidden and cell state of one LSTM step."""

    __slots__ = ("h", "c")

    def __init__(self, h: np.ndarray, c: np.ndarray) -> None:
        self.h = h
        self.c = c

    @classmethod
    def zeros(cls, hidden: int) -> "LSTMState":
        return cls(np.zeros(hidden), np.zeros(hidden))


class LSTMCell(Module):
    """Single-layer LSTM cell (gate order: input, forget, cell, output)."""

    def __init__(self, input_dim: int, hidden_dim: int, rng: np.random.Generator) -> None:
        super().__init__()
        self.input_dim = input_dim
        self.hidden_dim = hidden_dim
        scale = 1.0 / np.sqrt(hidden_dim)
        self.wx = Parameter(rng.uniform(-scale, scale, size=(input_dim, 4 * hidden_dim)))
        self.wh = Parameter(rng.uniform(-scale, scale, size=(hidden_dim, 4 * hidden_dim)))
        self.bias = Parameter(np.zeros(4 * hidden_dim), weight_decay=False)
        # Forget-gate bias starts at 1 (standard trick for gradient flow).
        self.bias.data[hidden_dim : 2 * hidden_dim] = 1.0

    # ------------------------------------------------------------------
    def step(self, x: np.ndarray, state: LSTMState) -> tuple[LSTMState, tuple]:
        """One time step.  Returns the new state and a backward cache."""
        h_dim = self.hidden_dim
        gates = x @ self.wx.data + state.h @ self.wh.data + self.bias.data
        i = _sigmoid(gates[:h_dim])
        f = _sigmoid(gates[h_dim : 2 * h_dim])
        g = np.tanh(gates[2 * h_dim : 3 * h_dim])
        o = _sigmoid(gates[3 * h_dim :])
        c_new = f * state.c + i * g
        tanh_c = np.tanh(c_new)
        h_new = o * tanh_c
        cache = (x, state.h, state.c, i, f, g, o, tanh_c)
        return LSTMState(h_new, c_new), cache

    def backward_step(
        self, dh: np.ndarray, dc: np.ndarray, cache: tuple
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Backward through one step.

        ``dh``/``dc`` are gradients w.r.t. this step's output state; returns
        ``(dx, dh_prev, dc_prev)`` and accumulates parameter gradients.
        """
        x, h_prev, c_prev, i, f, g, o, tanh_c = cache
        do = dh * tanh_c
        dc_total = dc + dh * o * (1.0 - tanh_c**2)
        di = dc_total * g
        df = dc_total * c_prev
        dg = dc_total * i
        dc_prev = dc_total * f
        d_gates = np.concatenate(
            [
                di * i * (1.0 - i),
                df * f * (1.0 - f),
                dg * (1.0 - g**2),
                do * o * (1.0 - o),
            ]
        )
        self.wx.grad += np.outer(x, d_gates)
        self.wh.grad += np.outer(h_prev, d_gates)
        self.bias.grad += d_gates
        dx = d_gates @ self.wx.data.T
        dh_prev = d_gates @ self.wh.data.T
        return dx, dh_prev, dc_prev


def _sigmoid(x: np.ndarray) -> np.ndarray:
    return 1.0 / (1.0 + np.exp(-np.clip(x, -60.0, 60.0)))
