"""REINFORCE training of the controller (Eq. 3-4, Sec. IV-C).

The policy gradient uses a moving-average baseline to reduce variance
*"while keeping the bias unchanged"*, an entropy bonus of 1e-4 added to the
reward to sustain exploration, and Adam with learning rate 0.0035.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from ..nas.encoding import CoDesignPoint, decode
from ..nn.optim import Adam, clip_grad_norm
from .controller import Controller, SampledSequence
from .evaluator import Evaluation
from .reward import RewardSpec

__all__ = ["SearchSample", "SearchHistory", "ReinforceSearch"]


@dataclass(frozen=True)
class SearchSample:
    """One evaluated search iteration."""

    iteration: int
    tokens: tuple[int, ...]
    reward: float
    accuracy: float
    latency_ms: float
    energy_mj: float

    def point(self) -> CoDesignPoint:
        return decode(list(self.tokens), name=f"iter{self.iteration}")


@dataclass
class SearchHistory:
    """Full search trace plus convenience accessors."""

    samples: list[SearchSample] = field(default_factory=list)

    def append(self, sample: SearchSample) -> None:
        self.samples.append(sample)

    def __len__(self) -> int:
        return len(self.samples)

    def rewards(self) -> np.ndarray:
        return np.asarray([s.reward for s in self.samples])

    def best(self) -> SearchSample:
        if not self.samples:
            raise ValueError("empty history")
        return max(self.samples, key=lambda s: s.reward)

    def top(self, n: int) -> list[SearchSample]:
        """Top-n by reward with distinct token sequences."""
        ranked = sorted(self.samples, key=lambda s: s.reward, reverse=True)
        seen: set[tuple[int, ...]] = set()
        out: list[SearchSample] = []
        for s in ranked:
            if s.tokens in seen:
                continue
            seen.add(s.tokens)
            out.append(s)
            if len(out) == n:
                break
        return out

    def every(self, k: int) -> list[SearchSample]:
        """Every k-th sample (how the paper subsamples its Fig. 6 plots)."""
        return self.samples[:: max(k, 1)]

    def running_best_rewards(self) -> np.ndarray:
        return np.maximum.accumulate(self.rewards())


class ReinforceSearch:
    """The RL search loop of YOSO Step 2.

    ``batch_episodes`` rollouts are sampled per policy update; when an
    ``evaluate_batch`` callable is given (e.g.
    :meth:`repro.search.evaluator.BatchEvaluator.evaluate_many`) all
    rollouts of a step are scored in one batched call instead of one
    evaluator round-trip per rollout.  Candidate evaluation never touches
    the controller or the RNG, so batching changes wall-clock only — the
    sampled tokens, baseline updates and gradients are identical.
    """

    def __init__(
        self,
        controller: Controller,
        evaluate: Callable[[CoDesignPoint], Evaluation],
        reward_spec: RewardSpec,
        lr: float = 0.0035,
        baseline_decay: float = 0.95,
        entropy_weight: float = 1e-4,
        batch_episodes: int = 1,
        grad_clip: float = 10.0,
        seed: int = 0,
        evaluate_batch: Callable[[list[CoDesignPoint]], list[Evaluation]] | None = None,
    ) -> None:
        self.controller = controller
        self.evaluate = evaluate
        self.evaluate_batch = evaluate_batch
        self.reward_spec = reward_spec
        self.optimiser = Adam(controller.parameters(), lr=lr)
        self.baseline_decay = baseline_decay
        self.entropy_weight = entropy_weight
        self.batch_episodes = max(1, batch_episodes)
        self.grad_clip = grad_clip
        self.rng = np.random.default_rng(seed)
        self.baseline: float | None = None
        self.history = SearchHistory()

    # ------------------------------------------------------------------
    def _evaluate_points(self, points: list[CoDesignPoint]) -> list[Evaluation]:
        if self.evaluate_batch is not None:
            return list(self.evaluate_batch(points))
        return [self.evaluate(point) for point in points]

    def step(self) -> SearchSample:
        """Sample, evaluate and learn from ``batch_episodes`` episodes."""
        self.optimiser.zero_grad()
        base = len(self.history)
        episodes = [
            self.controller.sample(self.rng) for _ in range(self.batch_episodes)
        ]
        points = [
            decode(episode.tokens, name=f"iter{base + j}")
            for j, episode in enumerate(episodes)
        ]
        evaluations = self._evaluate_points(points)
        last: SearchSample | None = None
        for episode, evaluation in zip(episodes, evaluations):
            reward = self.reward_spec.reward(
                evaluation.accuracy, evaluation.latency_ms, evaluation.energy_mj
            )
            # Entropy bonus added to the reward (Sec. IV-C).
            shaped_reward = reward + self.entropy_weight * episode.entropy
            if self.baseline is None:
                self.baseline = shaped_reward
            advantage = shaped_reward - self.baseline
            self.baseline = (
                self.baseline_decay * self.baseline
                + (1.0 - self.baseline_decay) * shaped_reward
            )
            self.controller.accumulate_policy_gradient(episode, advantage)
            last = SearchSample(
                iteration=len(self.history),
                tokens=tuple(episode.tokens),
                reward=reward,
                accuracy=evaluation.accuracy,
                latency_ms=evaluation.latency_ms,
                energy_mj=evaluation.energy_mj,
            )
            self.history.append(last)
        clip_grad_norm(self.controller.parameters(), self.grad_clip)
        self.optimiser.step()
        assert last is not None
        return last

    def run(self, iterations: int) -> SearchHistory:
        """Run the search for ``iterations`` evaluated candidates."""
        if iterations < 1:
            raise ValueError("iterations must be >= 1")
        while len(self.history) < iterations:
            self.step()
        return self.history
