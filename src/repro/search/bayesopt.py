"""Bayesian-optimisation baseline search.

Sec. III-B motivates the LSTM/RL searcher by noting that *"typical search
methods such as Bayesian Optimization [and] Bandit algorithms behave like
random search in high-dimensional search spaces."*  This module implements
that comparator so the claim is testable: a GP surrogate over the reward
with an expected-improvement acquisition, maximised by scoring a pool of
random candidate sequences per iteration (the standard discrete-space BO
loop).
"""

from __future__ import annotations

import math
from typing import Callable

import numpy as np

from ..nas.encoding import CoDesignPoint, decode, random_sequence
from ..predict.features import feature_vector
from ..predict.gp import GaussianProcessRegressor
from .evaluator import Evaluation
from .reinforce import SearchHistory, SearchSample
from .reward import RewardSpec

__all__ = ["BayesianOptSearch", "expected_improvement"]


def expected_improvement(
    mean: np.ndarray, std: np.ndarray, best: float, xi: float = 0.01
) -> np.ndarray:
    """EI acquisition for maximisation: E[max(f - best - xi, 0)]."""
    std = np.maximum(std, 1e-12)
    z = (mean - best - xi) / std
    cdf = 0.5 * (1.0 + _erf_vec(z / math.sqrt(2.0)))
    pdf = np.exp(-0.5 * z * z) / math.sqrt(2.0 * math.pi)
    return (mean - best - xi) * cdf + std * pdf


def _erf_vec(x: np.ndarray) -> np.ndarray:
    from scipy.special import erf

    return erf(x)


class BayesianOptSearch:
    """GP + expected-improvement search over the joint co-design space.

    The surrogate works on the same feature encoding the performance
    predictors use; candidates are proposed by uniformly sampling a pool of
    token sequences and picking the EI maximiser.  The first
    ``n_initial`` iterations are pure random exploration.

    ``batch_size`` > 1 proposes the top-B EI candidates of each pool and
    scores them in one batched evaluator call (greedy q-EI).
    """

    def __init__(
        self,
        evaluate: Callable[[CoDesignPoint], Evaluation],
        reward_spec: RewardSpec,
        n_initial: int = 10,
        pool_size: int = 64,
        refit_every: int = 5,
        seed: int = 0,
        feature_kwargs: dict | None = None,
        batch_size: int = 1,
        evaluate_batch: Callable[[list[CoDesignPoint]], list[Evaluation]] | None = None,
    ) -> None:
        if n_initial < 2:
            raise ValueError("n_initial must be >= 2 (the GP needs data)")
        if batch_size < 1:
            raise ValueError("batch_size must be >= 1")
        self.evaluate = evaluate
        self.evaluate_batch = evaluate_batch
        self.reward_spec = reward_spec
        self.n_initial = n_initial
        self.pool_size = pool_size
        self.refit_every = max(1, refit_every)
        self.batch_size = batch_size
        self.rng = np.random.default_rng(seed)
        self.feature_kwargs = feature_kwargs or {}
        self.history = SearchHistory()
        self._features: list[np.ndarray] = []
        self._rewards: list[float] = []
        self._gp: GaussianProcessRegressor | None = None
        self._since_fit = 0

    # ------------------------------------------------------------------
    def _propose_batch(self, n: int) -> list[list[int]]:
        """Top-``n`` EI candidates from one scored pool (n=1: the maximiser)."""
        if len(self._rewards) < self.n_initial or self._gp is None:
            return [random_sequence(self.rng) for _ in range(n)]
        pool = [random_sequence(self.rng) for _ in range(self.pool_size)]
        feats = np.stack(
            [
                feature_vector(decode(tokens), **self.feature_kwargs)
                for tokens in pool
            ]
        )
        mean, std = self._gp.predict_with_std(feats)
        ei = expected_improvement(mean, std, best=max(self._rewards))
        if n == 1:
            return [pool[int(np.argmax(ei))]]
        order = np.argsort(ei)[::-1][: min(n, len(pool))]
        picked = [pool[int(i)] for i in order]
        while len(picked) < n:  # pool smaller than the batch: pad randomly
            picked.append(random_sequence(self.rng))
        return picked

    def _propose(self) -> list[int]:
        return self._propose_batch(1)[0]

    def _maybe_refit(self) -> None:
        self._since_fit += 1
        have_enough = len(self._rewards) >= self.n_initial
        stale = self._gp is None or self._since_fit >= self.refit_every
        if have_enough and stale and np.ptp(self._rewards) > 0:
            gp = GaussianProcessRegressor(optimise=False, length_scale=3.0,
                                          noise_var=0.05)
            gp.fit(np.stack(self._features), np.asarray(self._rewards))
            self._gp = gp
            self._since_fit = 0

    def step(self) -> SearchSample:
        return self.step_batch(1)[0]

    def step_batch(self, n: int) -> list[SearchSample]:
        """Propose, score and absorb ``n`` candidates in one round."""
        if n < 1:
            raise ValueError("n must be >= 1")
        base = len(self.history)
        token_lists = self._propose_batch(n)
        points = [
            decode(tokens, name=f"bo{base + j}")
            for j, tokens in enumerate(token_lists)
        ]
        if self.evaluate_batch is not None:
            evaluations = list(self.evaluate_batch(points))
        else:
            evaluations = [self.evaluate(point) for point in points]
        samples: list[SearchSample] = []
        for tokens, point, evaluation in zip(token_lists, points, evaluations):
            reward = self.reward_spec.reward(
                evaluation.accuracy, evaluation.latency_ms, evaluation.energy_mj
            )
            self._features.append(feature_vector(point, **self.feature_kwargs))
            self._rewards.append(reward)
            self._maybe_refit()
            sample = SearchSample(
                iteration=len(self.history),
                tokens=tuple(tokens),
                reward=reward,
                accuracy=evaluation.accuracy,
                latency_ms=evaluation.latency_ms,
                energy_mj=evaluation.energy_mj,
            )
            self.history.append(sample)
            samples.append(sample)
        return samples

    def run(self, iterations: int) -> SearchHistory:
        if iterations < 1:
            raise ValueError("iterations must be >= 1")
        while len(self.history) < iterations:
            if self.batch_size == 1:
                self.step()
            else:
                self.step_batch(min(self.batch_size, iterations - len(self.history)))
        return self.history
