"""Bayesian-optimisation baseline search.

Sec. III-B motivates the LSTM/RL searcher by noting that *"typical search
methods such as Bayesian Optimization [and] Bandit algorithms behave like
random search in high-dimensional search spaces."*  This module implements
that comparator so the claim is testable: a GP surrogate over the reward
with an expected-improvement acquisition, maximised by scoring a pool of
random candidate sequences per iteration (the standard discrete-space BO
loop).
"""

from __future__ import annotations

import math
from typing import Callable

import numpy as np

from ..nas.encoding import CoDesignPoint, decode, random_sequence
from ..predict.features import feature_vector
from ..predict.gp import GaussianProcessRegressor
from .evaluator import Evaluation
from .reinforce import SearchHistory, SearchSample
from .reward import RewardSpec

__all__ = ["BayesianOptSearch", "expected_improvement"]


def expected_improvement(
    mean: np.ndarray, std: np.ndarray, best: float, xi: float = 0.01
) -> np.ndarray:
    """EI acquisition for maximisation: E[max(f - best - xi, 0)]."""
    std = np.maximum(std, 1e-12)
    z = (mean - best - xi) / std
    cdf = 0.5 * (1.0 + _erf_vec(z / math.sqrt(2.0)))
    pdf = np.exp(-0.5 * z * z) / math.sqrt(2.0 * math.pi)
    return (mean - best - xi) * cdf + std * pdf


def _erf_vec(x: np.ndarray) -> np.ndarray:
    from scipy.special import erf

    return erf(x)


class BayesianOptSearch:
    """GP + expected-improvement search over the joint co-design space.

    The surrogate works on the same feature encoding the performance
    predictors use; candidates are proposed by uniformly sampling a pool of
    token sequences and picking the EI maximiser.  The first
    ``n_initial`` iterations are pure random exploration.
    """

    def __init__(
        self,
        evaluate: Callable[[CoDesignPoint], Evaluation],
        reward_spec: RewardSpec,
        n_initial: int = 10,
        pool_size: int = 64,
        refit_every: int = 5,
        seed: int = 0,
        feature_kwargs: dict | None = None,
    ) -> None:
        if n_initial < 2:
            raise ValueError("n_initial must be >= 2 (the GP needs data)")
        self.evaluate = evaluate
        self.reward_spec = reward_spec
        self.n_initial = n_initial
        self.pool_size = pool_size
        self.refit_every = max(1, refit_every)
        self.rng = np.random.default_rng(seed)
        self.feature_kwargs = feature_kwargs or {}
        self.history = SearchHistory()
        self._features: list[np.ndarray] = []
        self._rewards: list[float] = []
        self._gp: GaussianProcessRegressor | None = None
        self._since_fit = 0

    # ------------------------------------------------------------------
    def _propose(self) -> list[int]:
        if len(self._rewards) < self.n_initial or self._gp is None:
            return random_sequence(self.rng)
        pool = [random_sequence(self.rng) for _ in range(self.pool_size)]
        feats = np.stack(
            [
                feature_vector(decode(tokens), **self.feature_kwargs)
                for tokens in pool
            ]
        )
        mean, std = self._gp.predict_with_std(feats)
        ei = expected_improvement(mean, std, best=max(self._rewards))
        return pool[int(np.argmax(ei))]

    def _maybe_refit(self) -> None:
        self._since_fit += 1
        have_enough = len(self._rewards) >= self.n_initial
        stale = self._gp is None or self._since_fit >= self.refit_every
        if have_enough and stale and np.ptp(self._rewards) > 0:
            gp = GaussianProcessRegressor(optimise=False, length_scale=3.0,
                                          noise_var=0.05)
            gp.fit(np.stack(self._features), np.asarray(self._rewards))
            self._gp = gp
            self._since_fit = 0

    def step(self) -> SearchSample:
        tokens = self._propose()
        point = decode(tokens, name=f"bo{len(self.history)}")
        evaluation = self.evaluate(point)
        reward = self.reward_spec.reward(
            evaluation.accuracy, evaluation.latency_ms, evaluation.energy_mj
        )
        self._features.append(feature_vector(point, **self.feature_kwargs))
        self._rewards.append(reward)
        self._maybe_refit()
        sample = SearchSample(
            iteration=len(self.history),
            tokens=tuple(tokens),
            reward=reward,
            accuracy=evaluation.accuracy,
            latency_ms=evaluation.latency_ms,
            energy_mj=evaluation.energy_mj,
        )
        self.history.append(sample)
        return sample

    def run(self, iterations: int) -> SearchHistory:
        if iterations < 1:
            raise ValueError("iterations must be >= 1")
        while len(self.history) < iterations:
            self.step()
        return self.history
