"""Candidate evaluation: the fast surrogate path and the accurate path.

Step 1 of YOSO builds the :class:`FastEvaluator` — HyperNet-inherited
weights for accuracy (one test run instead of full training) plus the two
Gaussian-process predictors for latency and energy (instead of simulation).
Step 3 rescoring uses the :class:`AccurateEvaluator` — stand-alone training
plus the full analytical simulator — on the top-N candidates only.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..accel.simulator import SystolicArraySimulator
from ..nas.encoding import CoDesignPoint
from ..nas.hypernet import HyperNet
from ..nas.network import CellNetwork
from ..nas.train import train_network
from ..nn.data import SyntheticCifar
from ..predict.dataset import PerfDataset
from ..predict.features import feature_vector
from ..predict.gp import GaussianProcessRegressor

__all__ = ["Evaluation", "FastEvaluator", "AccurateEvaluator"]


@dataclass(frozen=True)
class Evaluation:
    """Measured (or predicted) metrics of one co-design point."""

    accuracy: float
    latency_ms: float
    energy_mj: float

    def __post_init__(self) -> None:
        if not 0.0 <= self.accuracy <= 1.0:
            raise ValueError(f"accuracy {self.accuracy} out of [0, 1]")


class FastEvaluator:
    """HyperNet accuracy + GP latency/energy (Step 1 artefacts, used in Step 2)."""

    def __init__(
        self,
        hypernet: HyperNet,
        val_images: np.ndarray,
        val_labels: np.ndarray,
        latency_gp: GaussianProcessRegressor,
        energy_gp: GaussianProcessRegressor,
        num_cells: int = 6,
        stem_channels: int = 16,
        image_size: int = 32,
        num_classes: int = 10,
        eval_batch: int = 64,
        cache_size: int = 4096,
    ) -> None:
        self.hypernet = hypernet
        self.val_images = val_images
        self.val_labels = val_labels
        self.latency_gp = latency_gp
        self.energy_gp = energy_gp
        self.num_cells = num_cells
        self.stem_channels = stem_channels
        self.image_size = image_size
        self.num_classes = num_classes
        self.eval_batch = eval_batch
        self.cache_size = cache_size
        # Accuracy depends only on the genotype (not the hardware config),
        # so it gets its own cache — the controller frequently re-pairs a
        # converged architecture with different hardware tokens.
        self._acc_cache: dict[str, float] = {}
        self._cache: dict[str, Evaluation] = {}

    # ------------------------------------------------------------------
    @classmethod
    def from_samples(
        cls,
        hypernet: HyperNet,
        dataset: SyntheticCifar,
        samples: PerfDataset,
        seed: int = 0,
        **kwargs,
    ) -> "FastEvaluator":
        """Fit the two GPs on collected simulator samples and assemble."""
        latency_gp = GaussianProcessRegressor(seed=seed)
        latency_gp.fit(samples.x, samples.latency_ms)
        energy_gp = GaussianProcessRegressor(seed=seed + 1)
        energy_gp.fit(samples.x, samples.energy_mj)
        return cls(
            hypernet,
            dataset.val.images,
            dataset.val.labels,
            latency_gp,
            energy_gp,
            **kwargs,
        )

    def evaluate(self, point: CoDesignPoint) -> Evaluation:
        """Predict accuracy/latency/energy of one candidate (cached)."""
        geno_key = point.genotype.to_json()
        key = geno_key + "|" + point.config.describe()
        hit = self._cache.get(key)
        if hit is not None:
            return hit
        accuracy = self._acc_cache.get(geno_key)
        if accuracy is None:
            accuracy = self.hypernet.evaluate(
                point.genotype,
                self.val_images,
                self.val_labels,
                batch_size=self.eval_batch,
            )
            if len(self._acc_cache) < self.cache_size:
                self._acc_cache[geno_key] = accuracy
        features = feature_vector(
            point,
            num_cells=self.num_cells,
            stem_channels=self.stem_channels,
            image_size=self.image_size,
            num_classes=self.num_classes,
        )[None, :]
        latency = float(self.latency_gp.predict(features)[0])
        energy = float(self.energy_gp.predict(features)[0])
        result = Evaluation(
            accuracy=accuracy,
            latency_ms=max(latency, 1e-6),
            energy_mj=max(energy, 1e-6),
        )
        if len(self._cache) < self.cache_size:
            self._cache[key] = result
        return result


class AccurateEvaluator:
    """Full training + accurate simulation (Step 3 rescoring)."""

    def __init__(
        self,
        dataset: SyntheticCifar,
        simulator: SystolicArraySimulator | None = None,
        num_cells: int = 6,
        stem_channels: int = 16,
        num_classes: int = 10,
        train_epochs: int = 70,
        batch_size: int = 64,
        seed: int = 0,
    ) -> None:
        self.dataset = dataset
        self.simulator = simulator or SystolicArraySimulator()
        self.num_cells = num_cells
        self.stem_channels = stem_channels
        self.num_classes = num_classes
        self.train_epochs = train_epochs
        self.batch_size = batch_size
        self.seed = seed

    def evaluate(self, point: CoDesignPoint) -> Evaluation:
        """Train the candidate from scratch and simulate it accurately."""
        rng = np.random.default_rng(self.seed)
        network = CellNetwork(
            point.genotype,
            num_cells=self.num_cells,
            stem_channels=self.stem_channels,
            num_classes=self.num_classes,
            rng=rng,
        )
        result = train_network(
            network,
            self.dataset,
            epochs=self.train_epochs,
            batch_size=self.batch_size,
            seed=self.seed,
        )
        report = self.simulator.simulate_genotype(
            point.genotype,
            point.config,
            num_cells=self.num_cells,
            stem_channels=self.stem_channels,
            image_size=self.dataset.image_size,
            num_classes=self.num_classes,
        )
        return Evaluation(
            accuracy=result.val_accuracy,
            latency_ms=report.latency_ms,
            energy_mj=report.energy_mj,
        )
