"""Candidate evaluation: the fast surrogate path and the accurate path.

Step 1 of YOSO builds the :class:`FastEvaluator` — HyperNet-inherited
weights for accuracy (one test run instead of full training) plus the two
Gaussian-process predictors for latency and energy (instead of simulation).
Step 3 rescoring uses the :class:`AccurateEvaluator` — stand-alone training
plus the full analytical simulator — on the top-N candidates only.

:class:`BatchEvaluator` wraps a fast evaluator with the batched scoring
path the searches use: B candidates per call, one batched GP prediction
per metric instead of B scalar ones, per-genotype reuse of the accuracy
measurement and feature prefix, and a shared encoding-keyed LRU cache.
"""

from __future__ import annotations

import time
from collections import OrderedDict
from dataclasses import dataclass
from typing import Iterable, Sequence

import numpy as np

from ..accel.simulator import SystolicArraySimulator
from ..nas.encoding import (
    DNN_TOKENS,
    SEQUENCE_LENGTH,
    CoDesignPoint,
    decode,
    encode,
    encode_genotype,
)
from ..nas.genotype import Genotype
from ..nas.hypernet import HyperNet
from ..nas.network import CellNetwork
from ..nas.train import train_network
from ..nn.data import SyntheticCifar
from ..obs.registry import get_registry
from ..obs.tracing import get_tracer
from ..predict.dataset import PerfDataset
from ..predict.features import config_features, feature_vector, genotype_features
from ..predict.gp import GaussianProcessRegressor

__all__ = ["Evaluation", "FastEvaluator", "BatchEvaluator", "AccurateEvaluator"]

# Module-level registry handles — deliberately NOT instance attributes:
# AccurateEvaluator and FastEvaluator instances are pickled to worker
# processes, and metric objects hold locks.  Worker processes get their
# own zeroed registry; its counts are local to the worker and dropped by
# design (the parent's registry tells the parent-side story).
_REGISTRY = get_registry()
_M_EVAL_CALLS = _REGISTRY.counter("evaluator.calls")
_M_EVAL_LOOKUPS = _REGISTRY.counter("evaluator.lookups")
_M_EVAL_HITS = _REGISTRY.counter("evaluator.hits")
_M_EVAL_MISSES = _REGISTRY.counter("evaluator.misses")
_M_EVAL_STORE_HITS = _REGISTRY.counter("evaluator.store_hits")
_M_EVAL_CALL_S = _REGISTRY.histogram("evaluator.call_s")
_M_TRAIN_RUNS = _REGISTRY.counter("training.runs")
_M_TRAIN_RUN_S = _REGISTRY.histogram("training.run_s")


@dataclass(frozen=True)
class Evaluation:
    """Measured (or predicted) metrics of one co-design point."""

    accuracy: float
    latency_ms: float
    energy_mj: float

    def __post_init__(self) -> None:
        if not 0.0 <= self.accuracy <= 1.0:
            raise ValueError(f"accuracy {self.accuracy} out of [0, 1]")


class FastEvaluator:
    """HyperNet accuracy + GP latency/energy (Step 1 artefacts, used in Step 2)."""

    def __init__(
        self,
        hypernet: HyperNet,
        val_images: np.ndarray,
        val_labels: np.ndarray,
        latency_gp: GaussianProcessRegressor,
        energy_gp: GaussianProcessRegressor,
        num_cells: int = 6,
        stem_channels: int = 16,
        image_size: int = 32,
        num_classes: int = 10,
        eval_batch: int = 64,
        cache_size: int = 4096,
    ) -> None:
        self.hypernet = hypernet
        self.val_images = val_images
        self.val_labels = val_labels
        self.latency_gp = latency_gp
        self.energy_gp = energy_gp
        self.num_cells = num_cells
        self.stem_channels = stem_channels
        self.image_size = image_size
        self.num_classes = num_classes
        self.eval_batch = eval_batch
        self.cache_size = cache_size
        # Accuracy depends only on the genotype (not the hardware config),
        # so it gets its own cache — the controller frequently re-pairs a
        # converged architecture with different hardware tokens.  Keys are
        # the frozen cell genotypes themselves (NOT ``to_json``, which
        # embeds the per-iteration name and would never hit).
        self._acc_cache: dict[tuple, float] = {}
        self._cache: dict[tuple, Evaluation] = {}

    # ------------------------------------------------------------------
    @classmethod
    def from_samples(
        cls,
        hypernet: HyperNet,
        dataset: SyntheticCifar,
        samples: PerfDataset,
        seed: int = 0,
        **kwargs,
    ) -> "FastEvaluator":
        """Fit the two GPs on collected simulator samples and assemble."""
        latency_gp = GaussianProcessRegressor(seed=seed)
        latency_gp.fit(samples.x, samples.latency_ms)
        energy_gp = GaussianProcessRegressor(seed=seed + 1)
        energy_gp.fit(samples.x, samples.energy_mj)
        return cls(
            hypernet,
            dataset.val.images,
            dataset.val.labels,
            latency_gp,
            energy_gp,
            **kwargs,
        )

    def evaluate_accuracies(self, genotypes: Sequence[Genotype]) -> list[float]:
        """Inherited-weights accuracy for a whole population, batched.

        Returns one accuracy per input genotype, in input order.  Cached
        genotypes are served from the accuracy cache; ALL uncached ones are
        measured with a single :meth:`~repro.nas.hypernet.HyperNet.evaluate_many`
        call (grouped cell forwards over the stacked population) instead of
        one scalar test run each.  Each measured value equals the scalar
        :meth:`~repro.nas.hypernet.HyperNet.evaluate` result (the batched
        forward is accuracy-exact up to argmax ties at float round-off —
        never observed in practice — and batch-order invariant), so mixing
        scalar and batched calls on one evaluator does not yield
        conflicting cache entries.
        """
        keys = [(g.normal, g.reduce) for g in genotypes]
        fresh: dict[tuple, Genotype] = {}
        for key, genotype in zip(keys, genotypes):
            if key not in self._acc_cache and key not in fresh:
                fresh[key] = genotype
        measured: dict[tuple, float] = {}
        if fresh:
            accuracies = self.hypernet.evaluate_many(
                list(fresh.values()),
                self.val_images,
                self.val_labels,
                batch_size=self.eval_batch,
            )
            for key, accuracy in zip(fresh, accuracies):
                measured[key] = accuracy
                if len(self._acc_cache) < self.cache_size:
                    self._acc_cache[key] = accuracy
        return [
            measured[key] if key in measured else self._acc_cache[key]
            for key in keys
        ]

    def evaluate(self, point: CoDesignPoint) -> Evaluation:
        """Predict accuracy/latency/energy of one candidate (cached)."""
        geno_key = (point.genotype.normal, point.genotype.reduce)
        key = (geno_key, point.config)
        hit = self._cache.get(key)
        if hit is not None:
            return hit
        accuracy = self._acc_cache.get(geno_key)
        if accuracy is None:
            accuracy = self.hypernet.evaluate(
                point.genotype,
                self.val_images,
                self.val_labels,
                batch_size=self.eval_batch,
            )
            if len(self._acc_cache) < self.cache_size:
                self._acc_cache[geno_key] = accuracy
        features = feature_vector(
            point,
            num_cells=self.num_cells,
            stem_channels=self.stem_channels,
            image_size=self.image_size,
            num_classes=self.num_classes,
        )[None, :]
        latency = float(self.latency_gp.predict(features)[0])
        energy = float(self.energy_gp.predict(features)[0])
        result = Evaluation(
            accuracy=accuracy,
            latency_ms=max(latency, 1e-6),
            energy_mj=max(energy, 1e-6),
        )
        if len(self._cache) < self.cache_size:
            self._cache[key] = result
        return result


class BatchEvaluator:
    """Batched candidate scoring with a shared encoding-keyed LRU cache.

    Wraps a :class:`FastEvaluator` and scores B candidates per call:

    * results are cached under the candidate's 44-token action-sequence
      encoding in a true LRU (the fast evaluator's dicts stop inserting
      when full; this one evicts the least recently used entry instead);
    * accuracy is measured once per *unique genotype* in the batch, and
      every accuracy-cache miss in a call is measured by ONE batched
      HyperNet forward (:meth:`repro.nas.hypernet.HyperNet.evaluate_many`)
      — a cold-cache population of N fresh architectures costs one grouped
      call, not N scalar test runs;
    * the genotype-dependent feature prefix is cached per genotype, so a
      converged architecture re-paired with new hardware tokens only pays
      for the cheap hardware feature suffix;
    * latency and energy come from ONE batched GP prediction per metric
      instead of one kernel evaluation per candidate.

    ``evaluate_tokens`` skips decoding cached candidates entirely, which is
    the entry point the token-space searches use.

    Optionally a durable :class:`repro.store.ResultStore` sits *behind*
    the LRU as a tier-2 cache (:meth:`attach_store`): misses consult the
    store before computing, and fresh results are appended to it.  Store
    hits return the repr-round-tripped floats bit-exactly (``==`` the
    values originally computed); cold values computed alongside store
    hits see only the already-documented batched-GP composition drift
    (relative 1e-9).  With no store attached, behaviour — including the
    ``hits``/``misses`` counters, which remain LRU-tier-only — is
    byte-identical to a store-less evaluator.
    """

    def __init__(self, fast: FastEvaluator, cache_size: int = 16384) -> None:
        if cache_size < 1:
            raise ValueError("cache_size must be >= 1")
        self.fast = fast
        self.cache_size = cache_size
        self._lru: OrderedDict[tuple[int, ...], Evaluation] = OrderedDict()
        self._acc_lru: OrderedDict[tuple[int, ...], float] = OrderedDict()
        self._feat_lru: OrderedDict[tuple[int, ...], np.ndarray] = OrderedDict()
        self.hits = 0
        self.misses = 0
        self._store = None
        self._store_namespace: str | None = None
        #: Tier-2 counters: LRU misses that the durable store served
        #: (``store_hits``) vs. had to be computed (``store_misses``).
        #: Off-grid 3-tuple keys are not store-eligible and count toward
        #: neither.
        self.store_hits = 0
        self.store_misses = 0

    # ------------------------------------------------------------------
    @property
    def store(self):
        """The attached :class:`repro.store.ResultStore`, or ``None``."""
        return self._store

    @property
    def store_namespace(self) -> str | None:
        """The namespace this evaluator reads/writes in the store."""
        return self._store_namespace

    def attach_store(self, store, namespace: str | None = None) -> None:
        """Attach a durable tier-2 result store behind the LRU.

        ``namespace`` defaults to ``"eval:" + fast_evaluator_fingerprint``
        — a content hash of the HyperNet weights, GP fits, validation
        subset and evaluation knobs — so persisted results are only ever
        served back to a bit-identical producing context.
        """
        if namespace is None:
            from ..store import fast_evaluator_fingerprint

            namespace = "eval:" + fast_evaluator_fingerprint(self.fast)
        self._store = store
        self._store_namespace = namespace

    def detach_store(self) -> None:
        """Detach the store (the store itself is not closed)."""
        self._store = None
        self._store_namespace = None

    # ------------------------------------------------------------------
    @staticmethod
    def _key_of(point: CoDesignPoint) -> tuple:
        """Canonical cache key: the token encoding when the point is on the
        search grids, otherwise the frozen (cells, config) objects (a valid
        AcceleratorConfig need not lie on the Table 1 choice lists)."""
        try:
            return tuple(encode(point))
        except ValueError:
            return (point.genotype.normal, point.genotype.reduce, point.config)

    @staticmethod
    def _geno_key_of(key: tuple) -> tuple:
        """The genotype-only part of a cache key (either key flavour)."""
        return key[:DNN_TOKENS] if len(key) != 3 else key[:2]

    def evaluate(self, point: CoDesignPoint) -> Evaluation:
        """Scalar convenience entry point (drop-in for FastEvaluator)."""
        return self.evaluate_many([point])[0]

    def evaluate_many(self, points: Sequence[CoDesignPoint]) -> list[Evaluation]:
        """Score a batch of co-design points (cached, order-preserving).

        Accepts any number of points, including duplicates and mixed
        on-grid/off-grid configurations; returns one :class:`Evaluation`
        per input point, in input order.  Duplicates of one candidate
        within a batch are materialised once and share the same result
        object.  The evaluations themselves match per-point
        :meth:`FastEvaluator.evaluate` calls: accuracy exactly (same
        HyperNet numbers, batched or not), latency/energy to relative
        1e-9 (batched vs scalar GP prediction).
        """
        keys = [self._key_of(point) for point in points]
        by_key = {key: point for key, point in zip(keys, points)}
        results = self._materialise(keys, by_key)
        return [results[key] for key in keys]

    def evaluate_tokens(
        self, token_seqs: Iterable[Sequence[int]]
    ) -> list[Evaluation]:
        """Score a batch of 44-token sequences; cache hits skip decoding.

        Same semantics and parity guarantees as :meth:`evaluate_many`,
        keyed directly on the 44-token action-sequence encoding so the
        token-space searches never build :class:`CoDesignPoint` objects
        for cached candidates.
        """
        keys = [tuple(tokens) for tokens in token_seqs]
        results = self._materialise(keys, by_key=None)
        return [results[key] for key in keys]

    # ------------------------------------------------------------------
    @staticmethod
    def _lru_put(lru: OrderedDict, key, value, cap: int) -> None:
        lru[key] = value
        lru.move_to_end(key)
        while len(lru) > cap:
            lru.popitem(last=False)

    def _materialise(
        self,
        keys: Sequence[tuple],
        by_key: dict[tuple, CoDesignPoint] | None,
    ) -> dict[tuple, Evaluation]:
        """Instrumented shell around :meth:`_resolve`: one span plus
        registry counters per batched call, mirrored as deltas of the
        instance counters so both accountings always agree."""
        hits0, misses0 = self.hits, self.misses
        store_hits0 = self.store_hits
        t0 = time.perf_counter()
        with get_tracer().span(
            "evaluator.evaluate_many", points=len(keys)
        ) as span:
            results = self._resolve(keys, by_key)
            span.set(
                hits=self.hits - hits0,
                misses=self.misses - misses0,
            )
        _M_EVAL_CALL_S.observe(time.perf_counter() - t0)
        _M_EVAL_CALLS.inc()
        _M_EVAL_LOOKUPS.inc(len(keys))
        _M_EVAL_HITS.inc(self.hits - hits0)
        _M_EVAL_MISSES.inc(self.misses - misses0)
        _M_EVAL_STORE_HITS.inc(self.store_hits - store_hits0)
        return results

    def _resolve(
        self,
        keys: Sequence[tuple],
        by_key: dict[tuple, CoDesignPoint] | None,
    ) -> dict[tuple, Evaluation]:
        """Resolve every key, batching all miss computations.

        Returns a key -> Evaluation mapping covering the whole request; the
        LRU is a cache on top of it, so results survive even when the batch
        holds more unique candidates than ``cache_size``.
        """
        results: dict[tuple, Evaluation] = {}
        missing: list[tuple] = []
        for key in keys:
            if key in self._lru:
                self.hits += 1
                self._lru.move_to_end(key)
                results[key] = self._lru[key]
            elif key in results:
                # Intra-batch duplicate of a miss: one materialisation
                # serves it, which is a hit for accounting purposes.
                self.hits += 1
            else:
                self.misses += 1
                results[key] = None  # type: ignore[assignment]  # placeholder
                missing.append(key)
        if not missing:
            return results
        store = self._store
        if store is not None:
            # Tier 2: the durable store.  Only canonical 44-token keys are
            # store-eligible (off-grid 3-tuple keys are process-local
            # objects).  A hit is the repr-round-tripped original floats,
            # so it is bit-exact (``==``) with the cold computation.
            still_missing: list[tuple] = []
            with get_tracer().span("store.lookup", keys=len(missing)) as span:
                for key in missing:
                    values = (
                        store.get(self._store_namespace, key)
                        if len(key) == SEQUENCE_LENGTH
                        else None
                    )
                    if values is not None and len(values) == 3:
                        self.store_hits += 1
                        result = Evaluation(
                            accuracy=values[0],
                            latency_ms=values[1],
                            energy_mj=values[2],
                        )
                        results[key] = result
                        self._lru_put(self._lru, key, result, self.cache_size)
                    else:
                        if len(key) == SEQUENCE_LENGTH:
                            self.store_misses += 1
                        still_missing.append(key)
                span.set(hits=len(missing) - len(still_missing))
            missing = still_missing
            if not missing:
                return results
        fast = self.fast
        points = [
            by_key[key] if by_key is not None else decode(list(key))
            for key in missing
        ]
        geno_keys = [self._geno_key_of(key) for key in missing]
        accuracies, features = self._miss_inputs(points, geno_keys)
        # The GP prediction always runs in the parent over the full merged
        # feature matrix, so sharded accuracy/feature computation (see
        # repro.parallel) cannot perturb the latency/energy numbers.
        latencies = fast.latency_gp.predict_batch(features)
        energies = fast.energy_gp.predict_batch(features)
        for key, accuracy, latency, energy in zip(
            missing, accuracies, latencies, energies
        ):
            result = Evaluation(
                accuracy=accuracy,
                latency_ms=max(float(latency), 1e-6),
                energy_mj=max(float(energy), 1e-6),
            )
            results[key] = result
            self._lru_put(self._lru, key, result, self.cache_size)
            if store is not None and len(key) == SEQUENCE_LENGTH:
                store.append(
                    self._store_namespace,
                    key,
                    (result.accuracy, result.latency_ms, result.energy_mj),
                )
        return results

    def _miss_inputs(
        self, points: Sequence[CoDesignPoint], geno_keys: Sequence[tuple]
    ) -> tuple[list[float], np.ndarray]:
        """Accuracies and stacked feature rows for the missing points.

        This is the single-process implementation — and the hook
        :class:`repro.parallel.ParallelEvaluator` overrides to shard the
        work across processes.  Cold-cache accuracy for the whole batch
        goes through the fast evaluator's batched path (ONE grouped
        HyperNet forward for every genotype missing from the accuracy LRU
        — not a scalar test run per candidate).  A local map pins this
        batch's values (cached hits are snapshotted up front) so results
        survive even when inserting the fresh ones evicts them from a
        too-small LRU mid-batch.
        """
        fast = self.fast
        fresh: dict[tuple, Genotype] = {}
        measured: dict[tuple, float] = {}
        for geno_key, point in zip(geno_keys, points):
            if geno_key in measured or geno_key in fresh:
                continue
            if geno_key in self._acc_lru:
                measured[geno_key] = self._acc_lru[geno_key]
                self._acc_lru.move_to_end(geno_key)
            else:
                fresh[geno_key] = point.genotype
        if fresh:
            batch_acc = fast.evaluate_accuracies(list(fresh.values()))
            for geno_key, accuracy in zip(fresh, batch_acc):
                measured[geno_key] = accuracy
                self._lru_put(self._acc_lru, geno_key, accuracy, self.cache_size)
        accuracies: list[float] = []
        rows: list[np.ndarray] = []
        for point, geno_key in zip(points, geno_keys):
            accuracies.append(measured[geno_key])
            geno_feats = self._feat_lru.get(geno_key)
            if geno_feats is None:
                geno_feats = genotype_features(
                    point.genotype,
                    num_cells=fast.num_cells,
                    stem_channels=fast.stem_channels,
                    image_size=fast.image_size,
                    num_classes=fast.num_classes,
                )
                self._lru_put(self._feat_lru, geno_key, geno_feats, self.cache_size)
            else:
                self._feat_lru.move_to_end(geno_key)
            rows.append(np.concatenate([geno_feats, config_features(point.config)]))
        return accuracies, np.stack(rows)

    # ------------------------------------------------------------------
    @property
    def hit_rate(self) -> float:
        """Fraction of lookups served from the LRU (0 before any lookup)."""
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    @property
    def store_hit_rate(self) -> float:
        """Fraction of store-eligible LRU misses the durable store served."""
        total = self.store_hits + self.store_misses
        return self.store_hits / total if total else 0.0


class AccurateEvaluator:
    """Full training + accurate simulation (Step 3 rescoring).

    ``train_fast=True`` runs every stand-alone training under the
    compact-cache training kernels (:func:`repro.nn.layers.train_fast`) —
    same recipe, bounded backward state, gradients matching the standard
    kernels at relative 1e-6.  Off by default for paper fidelity.
    """

    def __init__(
        self,
        dataset: SyntheticCifar,
        simulator: SystolicArraySimulator | None = None,
        num_cells: int = 6,
        stem_channels: int = 16,
        num_classes: int = 10,
        train_epochs: int = 70,
        batch_size: int = 64,
        seed: int = 0,
        train_fast: bool = False,
    ) -> None:
        self.dataset = dataset
        self.simulator = simulator or SystolicArraySimulator()
        self.num_cells = num_cells
        self.stem_channels = stem_channels
        self.num_classes = num_classes
        self.train_epochs = train_epochs
        self.batch_size = batch_size
        self.seed = seed
        self.train_fast = train_fast
        self._store = None
        self._store_namespace: str | None = None
        #: Durable-store counters over stand-alone trainings: persisted
        #: accuracies reused vs. trainings actually run with a store
        #: attached.
        self.store_hits = 0
        self.store_misses = 0

    # ------------------------------------------------------------------
    @property
    def store(self):
        """The attached :class:`repro.store.ResultStore`, or ``None``."""
        return self._store

    @property
    def store_namespace(self) -> str | None:
        """The namespace this evaluator reads/writes in the store."""
        return self._store_namespace

    def attach_store(self, store, namespace: str | None = None) -> None:
        """Attach a durable store of stand-alone training accuracies.

        Records are keyed by the 40 genotype tokens plus the training
        seed; ``namespace`` defaults to ``"train:" +
        accurate_evaluator_fingerprint`` (dataset arrays + recipe knobs,
        seed excluded — it is part of each key), so persisted accuracies
        are only reused under a bit-identical dataset and recipe.
        """
        if namespace is None:
            from ..store import accurate_evaluator_fingerprint

            namespace = "train:" + accurate_evaluator_fingerprint(self)
        self._store = store
        self._store_namespace = namespace

    def detach_store(self) -> None:
        """Detach the store (the store itself is not closed)."""
        self._store = None
        self._store_namespace = None

    def __getstate__(self) -> dict:
        """Pickle without the store: worker replicas (TrainingPool ships
        one evaluator per worker) must not inherit the parent's file
        handle or writer lock.  Hit/miss partitioning happens in the
        parent before dispatch, so workers never need the store."""
        state = self.__dict__.copy()
        state["_store"] = None
        state["_store_namespace"] = None
        return state

    def train_accuracy(self, point: CoDesignPoint, seed: int | None = None) -> float:
        """Stand-alone training accuracy of one candidate (no simulation).

        Split out of :meth:`evaluate` so Step-3 rescoring can train each
        top-N candidate individually (accuracy genuinely needs per-model
        training) while batching ALL their latency/energy simulations
        into one :meth:`~repro.accel.simulator.SystolicArraySimulator.
        simulate_genotypes` call.  ``seed`` overrides the evaluator seed
        for one candidate; each call is deterministic and independent of
        every other call, which is what lets
        :meth:`train_accuracies` shard candidates across worker processes
        with bit-identical results.

        With a durable store attached, a persisted accuracy for this
        (genotype, seed) is returned bit-exactly instead of retraining,
        and a fresh training result is appended for the next process.
        """
        seed = self.seed if seed is None else seed
        store = self._store
        store_key = None
        if store is not None:
            try:
                store_key = (*encode_genotype(point.genotype), seed)
            except ValueError:
                store_key = None  # off-grid genotype: not store-eligible
            if store_key is not None:
                values = store.get(self._store_namespace, store_key)
                if values is not None:
                    self.store_hits += 1
                    return values[0]
                self.store_misses += 1
        t0 = time.perf_counter()
        with get_tracer().span("training.run", seed=seed):
            rng = np.random.default_rng(seed)
            network = CellNetwork(
                point.genotype,
                num_cells=self.num_cells,
                stem_channels=self.stem_channels,
                num_classes=self.num_classes,
                rng=rng,
                train_fast=self.train_fast,
            )
            result = train_network(
                network,
                self.dataset,
                epochs=self.train_epochs,
                batch_size=self.batch_size,
                seed=seed,
            )
        _M_TRAIN_RUNS.inc()
        _M_TRAIN_RUN_S.observe(time.perf_counter() - t0)
        if store is not None and store_key is not None:
            store.append(self._store_namespace, store_key, (result.val_accuracy,))
        return result.val_accuracy

    def train_accuracies(
        self,
        points: Sequence[CoDesignPoint],
        workers: int = 1,
        seeds: Sequence[int] | None = None,
        **pool_kwargs,
    ) -> list[float]:
        """Stand-alone training accuracy of many candidates, optionally
        sharded across a worker pool.

        ``workers <= 1`` trains serially in-process; anything larger ships
        this evaluator once per worker (:class:`repro.parallel.training.
        TrainingPool`) and runs the independent per-candidate trainings
        concurrently.  Every candidate keeps its own deterministic seed
        (``seeds[i]`` or the evaluator seed), so sharded results equal the
        serial results exactly at any worker count.
        """
        # Imported lazily: repro.parallel imports this module, so a
        # module-level import here would be circular via the package init.
        from ..parallel.training import train_accuracies

        return train_accuracies(
            self, points, workers=workers, seeds=seeds, **pool_kwargs
        )

    def evaluate(self, point: CoDesignPoint) -> Evaluation:
        """Train the candidate from scratch and simulate it accurately."""
        accuracy = self.train_accuracy(point)
        report = self.simulator.simulate_genotype(
            point.genotype,
            point.config,
            num_cells=self.num_cells,
            stem_channels=self.stem_channels,
            image_size=self.dataset.image_size,
            num_classes=self.num_classes,
        )
        return Evaluation(
            accuracy=accuracy,
            latency_ms=report.latency_ms,
            energy_mj=report.energy_mj,
        )
