"""Fig. 6 — the RL search strategy.

(a) RL vs random search on the balanced composite reward (alpha1 0.5,
omega1 -0.4, alpha2 0.5, omega2 -0.4), sub-sampled every 10th iteration;
(b) the energy-focused preset steering samples toward the high
accuracy-energy-score region; (c) the latency-focused preset doing the
same for latency.  Pareto-front proximity is quantified so the "gradually
approaches the Pareto front" claim is testable.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..search.controller import Controller
from ..search.random_search import RandomSearch
from ..search.reinforce import ReinforceSearch, SearchHistory
from ..search.reward import BALANCED, ENERGY_FOCUS, LATENCY_FOCUS, RewardSpec
from .common import ExperimentContext, get_context, scaled_reward


def search_lr(context: ExperimentContext, lr: float | None) -> float:
    """Controller learning rate for a scale.

    The paper trains with Adam at 0.0035 over >=10^4 iterations; scaled-down
    runs use proportionally fewer iterations, so the demo/smoke default is
    raised to keep the learning signal visible within the shorter budget.
    """
    if lr is not None:
        return lr
    return 0.0035 if context.scale.name == "paper" else 0.015

__all__ = [
    "Fig6aResult",
    "Fig6TradeoffResult",
    "run_fig6a",
    "run_fig6_tradeoff",
    "pareto_front",
    "mean_distance_to_front",
]


def pareto_front(points: np.ndarray) -> np.ndarray:
    """Non-dominated subset of ``(cost, quality)`` points.

    A point dominates another if it has lower cost **and** higher quality.
    Returns the front sorted by cost.
    """
    if points.ndim != 2 or points.shape[1] != 2:
        raise ValueError("expected an (n, 2) array of (cost, quality) points")
    order = np.lexsort((-points[:, 1], points[:, 0]))
    front: list[np.ndarray] = []
    best_quality = -np.inf
    for idx in order:
        cost, quality = points[idx]
        if quality > best_quality:
            front.append(points[idx])
            best_quality = quality
    return np.asarray(front)


def mean_distance_to_front(points: np.ndarray, front: np.ndarray) -> float:
    """Mean Euclidean distance from each point to its nearest front point.

    Coordinates are normalised by the front's span so cost and quality are
    commensurate.
    """
    if len(front) == 0:
        raise ValueError("empty front")
    span = np.maximum(front.max(axis=0) - front.min(axis=0), 1e-9)
    p = points / span
    f = front / span
    d2 = (
        np.sum(p * p, axis=1)[:, None]
        + np.sum(f * f, axis=1)[None, :]
        - 2.0 * p @ f.T
    )
    return float(np.sqrt(np.maximum(d2, 0.0).min(axis=1)).mean())


@dataclass
class Fig6aResult:
    """RL vs random search traces."""

    rl: SearchHistory
    random: SearchHistory
    subsample: int

    @property
    def rl_best(self) -> float:
        return float(self.rl.rewards().max())

    @property
    def random_best(self) -> float:
        return float(self.random.rewards().max())

    def rl_curve(self) -> np.ndarray:
        return np.asarray([s.reward for s in self.rl.every(self.subsample)])

    def random_curve(self) -> np.ndarray:
        return np.asarray([s.reward for s in self.random.every(self.subsample)])

    def rl_tail_mean(self, frac: float = 0.25) -> float:
        """Mean reward of the last ``frac`` of RL iterations."""
        rewards = self.rl.rewards()
        k = max(1, int(len(rewards) * frac))
        return float(rewards[-k:].mean())

    def random_tail_mean(self, frac: float = 0.25) -> float:
        rewards = self.random.rewards()
        k = max(1, int(len(rewards) * frac))
        return float(rewards[-k:].mean())


def run_fig6a(
    scale_name: str = "demo",
    seed: int = 0,
    context: ExperimentContext | None = None,
    iterations: int | None = None,
    lr: float | None = None,
) -> Fig6aResult:
    """Regenerate Fig. 6(a): RL vs random on the balanced reward."""
    context = context or get_context(scale_name, seed)
    n = iterations if iterations is not None else context.scale.search_iterations
    spec = scaled_reward(BALANCED, context)
    controller = Controller(seed=seed)
    # Score through the shared BatchEvaluator: identical trajectories (the
    # parity tests pin batched == scalar scoring), but candidate repeats
    # hit the LRU and cold misses use the batched GP/HyperNet paths — the
    # report CLI surfaces the resulting hit rates per stage.
    evaluator = context.batch_evaluator
    rl = ReinforceSearch(
        controller, evaluator.evaluate, spec,
        lr=search_lr(context, lr), seed=seed,
        evaluate_batch=evaluator.evaluate_many,
    ).run(n)
    # Random search is history-invariant in batch_size (token sampling is
    # its only RNG consumer), so draw candidates 16 at a time: one batched
    # scoring call per chunk — and real shards for the parallel engine
    # when the context runs with workers > 1.
    random = RandomSearch(
        evaluator.evaluate, spec, seed=seed + 1,
        batch_size=min(16, n),
        evaluate_batch=evaluator.evaluate_many,
    ).run(n)
    return Fig6aResult(rl=rl, random=random, subsample=10)


@dataclass
class Fig6TradeoffResult:
    """One trade-off search (Fig. 6(b) or (c))."""

    history: SearchHistory
    spec: RewardSpec
    metric: str  # "energy_mj" or "latency_ms"
    subsample: int

    def scatter(self) -> np.ndarray:
        """(cost, accuracy) pairs of the sub-sampled trace."""
        samples = self.history.every(self.subsample)
        return np.asarray(
            [(getattr(s, self.metric), s.accuracy) for s in samples]
        )

    def front(self) -> np.ndarray:
        return pareto_front(
            np.asarray(
                [(getattr(s, self.metric), s.accuracy) for s in self.history.samples]
            )
        )

    def front_distance_by_phase(self, phases: int = 3) -> list[float]:
        """Mean distance to the final Pareto front per search phase.

        A decreasing sequence is the quantitative form of "gradually
        approaches the region close to the Pareto front".
        """
        front = self.front()
        pts = np.asarray(
            [(getattr(s, self.metric), s.accuracy) for s in self.history.samples]
        )
        chunks = np.array_split(pts, phases)
        return [mean_distance_to_front(chunk, front) for chunk in chunks if len(chunk)]


def run_fig6_tradeoff(
    which: str,
    scale_name: str = "demo",
    seed: int = 0,
    context: ExperimentContext | None = None,
    iterations: int | None = None,
    lr: float | None = None,
) -> Fig6TradeoffResult:
    """Regenerate Fig. 6(b) (``which="energy"``) or 6(c) (``which="latency"``)."""
    if which not in ("energy", "latency"):
        raise ValueError("which must be 'energy' or 'latency'")
    context = context or get_context(scale_name, seed)
    n = iterations if iterations is not None else context.scale.search_iterations
    preset = ENERGY_FOCUS if which == "energy" else LATENCY_FOCUS
    spec = scaled_reward(preset, context)
    controller = Controller(seed=seed + 2)
    history = ReinforceSearch(
        controller, context.batch_evaluator.evaluate, spec,
        lr=search_lr(context, lr), seed=seed + 2,
        evaluate_batch=context.batch_evaluator.evaluate_many,
    ).run(n)
    return Fig6TradeoffResult(
        history=history,
        spec=spec,
        metric="energy_mj" if which == "energy" else "latency_ms",
        subsample=20,
    )
