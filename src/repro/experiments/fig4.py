"""Fig. 4 — comparison of regression models for hardware performance
prediction, plus the speed-vs-simulation study of Sec. III-E.

The paper collects 3600 simulator samples (3000 train / 600 test), fits six
regression families and reports MSE per model; the Gaussian process wins
and achieves "nearly 2000x speed improvement with less than 4% accuracy
loss" over the simulator.  :func:`run_fig4` reproduces the whole study on
both targets (energy and latency).
"""

from __future__ import annotations

import time
from dataclasses import dataclass

from ..predict import all_regressors
from ..predict.dataset import collect_samples
from ..predict.metrics import mean_relative_error, mse, r2, spearman
from ..scale import get_scale
from .common import format_table

__all__ = ["PredictorRow", "Fig4Result", "run_fig4"]


@dataclass(frozen=True)
class PredictorRow:
    """One bar of Fig. 4 (per target metric)."""

    model: str
    target: str  # "energy" or "latency"
    mse: float
    r2: float
    spearman: float
    relative_error: float
    fit_seconds: float
    predict_seconds_per_sample: float
    speedup_vs_simulator: float


@dataclass
class Fig4Result:
    """All rows plus the sampling statistics."""

    rows: list[PredictorRow]
    n_train: int
    n_test: int
    sim_seconds_per_sample: float

    def best(self, target: str) -> PredictorRow:
        """Lowest-MSE model for a target (the paper's selection criterion)."""
        candidates = [r for r in self.rows if r.target == target]
        if not candidates:
            raise ValueError(f"no rows for target {target!r}")
        return min(candidates, key=lambda r: r.mse)

    def to_text(self) -> str:
        headers = ["model", "target", "MSE", "R^2", "rho", "rel.err", "speedup"]
        rows = [
            [
                r.model,
                r.target,
                f"{r.mse:.3e}",
                f"{r.r2:.3f}",
                f"{r.spearman:.3f}",
                f"{100 * r.relative_error:.1f}%",
                f"{r.speedup_vs_simulator:.0f}x",
            ]
            for r in self.rows
        ]
        return format_table(headers, rows)


def run_fig4(scale_name: str = "demo", seed: int = 0) -> Fig4Result:
    """Regenerate Fig. 4: train/test every regressor on simulator samples."""
    scale = get_scale(scale_name)
    samples = collect_samples(
        scale.predictor_samples,
        seed=seed,
        num_cells=scale.hypernet_cells,
        stem_channels=scale.hypernet_channels,
        image_size=scale.image_size,
    )
    train, test = samples.split(scale.predictor_train)
    rows: list[PredictorRow] = []
    for target, y_train, y_test in (
        ("energy", train.energy_mj, test.energy_mj),
        ("latency", train.latency_ms, test.latency_ms),
    ):
        for regressor in all_regressors(seed=seed):
            t0 = time.perf_counter()
            regressor.fit(train.x, y_train)
            fit_s = time.perf_counter() - t0
            t0 = time.perf_counter()
            pred = regressor.predict(test.x)
            predict_s = (time.perf_counter() - t0) / len(test)
            rows.append(
                PredictorRow(
                    model=regressor.name,
                    target=target,
                    mse=mse(y_test, pred),
                    r2=r2(y_test, pred),
                    spearman=spearman(y_test, pred),
                    relative_error=mean_relative_error(y_test, pred),
                    fit_seconds=fit_s,
                    predict_seconds_per_sample=predict_s,
                    speedup_vs_simulator=samples.sim_seconds_per_sample
                    / max(predict_s, 1e-12),
                )
            )
    return Fig4Result(
        rows=rows,
        n_train=len(train),
        n_test=len(test),
        sim_seconds_per_sample=samples.sim_seconds_per_sample,
    )
