"""Fig. 5 — effectiveness of the HyperNet accuracy evaluator.

(a) the HyperNet training curve: per epoch, the accuracy of a randomly
sampled sub-model (exactly how the paper tracks supernet progress);
(b) the correlation between HyperNet-inherited validation accuracy and the
stand-alone fully-trained validation accuracy of random sub-models (the
paper uses 130 models at 70 epochs each).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy import stats

from ..nas.hypernet import EpochStats
from ..nas.network import CellNetwork
from ..nas.train import train_network
from ..predict.metrics import spearman
from .common import ExperimentContext, format_table, get_context

__all__ = ["Fig5aResult", "Fig5bResult", "run_fig5a", "run_fig5b"]


@dataclass
class Fig5aResult:
    """The HyperNet training curve."""

    epochs: list[int]
    accuracy: list[float]
    loss: list[float]

    @property
    def final_accuracy(self) -> float:
        return self.accuracy[-1]

    def improved(self) -> bool:
        """Did training improve over the first epoch (the Fig. 5(a) shape)?"""
        return self.accuracy[-1] > self.accuracy[0]


@dataclass
class Fig5bResult:
    """HyperNet-inherited vs stand-alone accuracy for random sub-models."""

    hypernet_accuracy: np.ndarray
    standalone_accuracy: np.ndarray
    pearson_r: float
    spearman_rho: float

    def to_text(self) -> str:
        headers = ["model", "hypernet acc", "stand-alone acc"]
        rows = [
            [f"random-{i}", f"{h:.3f}", f"{s:.3f}"]
            for i, (h, s) in enumerate(
                zip(self.hypernet_accuracy, self.standalone_accuracy)
            )
        ]
        table = format_table(headers, rows)
        return (
            f"{table}\n"
            f"pearson r = {self.pearson_r:.3f}, spearman rho = {self.spearman_rho:.3f}"
        )


def run_fig5a(
    scale_name: str = "demo",
    seed: int = 0,
    context: ExperimentContext | None = None,
) -> Fig5aResult:
    """Regenerate Fig. 5(a) from the shared context's training history."""
    context = context or get_context(scale_name, seed)
    history: list[EpochStats] = context.hypernet_history
    return Fig5aResult(
        epochs=[h.epoch for h in history],
        accuracy=[h.accuracy for h in history],
        loss=[h.loss for h in history],
    )


def run_fig5b(
    scale_name: str = "demo",
    seed: int = 0,
    context: ExperimentContext | None = None,
    n_models: int | None = None,
) -> Fig5bResult:
    """Regenerate Fig. 5(b): accuracy correlation over random sub-models."""
    context = context or get_context(scale_name, seed)
    scale = context.scale
    n = n_models if n_models is not None else scale.correlation_models
    rng = np.random.default_rng(seed + 17)
    hyper_accs: list[float] = []
    alone_accs: list[float] = []
    for i in range(n):
        genotype = context.hypernet.sample_genotype(rng, name=f"corr{i}")
        hyper_accs.append(
            context.hypernet.evaluate(
                genotype,
                context.dataset.val.images,
                context.dataset.val.labels,
                batch_size=min(128, scale.val_size),
            )
        )
        network = CellNetwork(
            genotype,
            num_cells=scale.hypernet_cells,
            stem_channels=scale.hypernet_channels,
            num_classes=context.dataset.num_classes,
            rng=np.random.default_rng(seed + 1000 + i),
            train_fast=context.train_fast,
        )
        result = train_network(
            network,
            context.dataset,
            epochs=scale.standalone_epochs,
            batch_size=scale.hypernet_batch,
            seed=seed + i,
        )
        alone_accs.append(result.val_accuracy)
    hyper = np.asarray(hyper_accs)
    alone = np.asarray(alone_accs)
    if np.ptp(hyper) < 1e-12 or np.ptp(alone) < 1e-12:
        pearson = 0.0
    else:
        pearson = float(stats.pearsonr(hyper, alone).statistic)
    return Fig5bResult(
        hypernet_accuracy=hyper,
        standalone_accuracy=alone,
        pearson_r=pearson,
        spearman_rho=spearman(hyper, alone),
    )
