"""Terminal plotting for the paper's figures.

The reproduction is headless, so figures are rendered as ASCII/Unicode
charts: line charts for training/search curves (Fig. 5(a), 6(a)) and
scatter plots for the trade-off clouds (Fig. 5(b), 6(b), 6(c)).  The
benchmark and example scripts print these so a run visibly regenerates the
*figures*, not just the numbers behind them.
"""

from __future__ import annotations

import math
from typing import Sequence

import numpy as np

__all__ = ["line_chart", "scatter_chart", "histogram"]

_LEVELS = " .:-=+*#%@"


def _normalise(values: np.ndarray, lo: float, hi: float, steps: int) -> np.ndarray:
    span = hi - lo
    if span <= 0:
        return np.zeros(len(values), dtype=int)
    scaled = (values - lo) / span * (steps - 1)
    return np.clip(np.round(scaled).astype(int), 0, steps - 1)


def line_chart(
    series: dict[str, Sequence[float]],
    width: int = 70,
    height: int = 14,
    title: str = "",
    y_label: str = "",
    x_label: str = "",
) -> str:
    """Render one or more line series on a shared axis.

    Each series is resampled to ``width`` columns; up to four series get
    distinct glyphs.
    """
    if not series:
        raise ValueError("no series to plot")
    glyphs = "ox+*"
    all_vals = np.concatenate([np.asarray(v, dtype=float) for v in series.values()])
    if len(all_vals) == 0:
        raise ValueError("empty series")
    lo, hi = float(all_vals.min()), float(all_vals.max())
    if math.isclose(lo, hi):
        hi = lo + 1.0
    grid = [[" "] * width for _ in range(height)]
    for (name, values), glyph in zip(series.items(), glyphs):
        vals = np.asarray(values, dtype=float)
        if len(vals) == 0:
            continue
        # Resample to the plot width.
        idx = np.linspace(0, len(vals) - 1, width)
        resampled = np.interp(idx, np.arange(len(vals)), vals)
        rows = _normalise(resampled, lo, hi, height)
        for col, row in enumerate(rows):
            grid[height - 1 - row][col] = glyph
    lines = []
    if title:
        lines.append(title)
    lines.append(f"{hi:10.4g} ┤" + "".join(grid[0]))
    for row in grid[1:-1]:
        lines.append(" " * 10 + " │" + "".join(row))
    lines.append(f"{lo:10.4g} ┤" + "".join(grid[-1]))
    lines.append(" " * 10 + " └" + "─" * width)
    legend = "   ".join(
        f"{glyph}={name}" for (name, _), glyph in zip(series.items(), glyphs)
    )
    footer = legend
    if x_label:
        footer += f"   (x: {x_label})"
    if y_label:
        footer += f"   (y: {y_label})"
    lines.append(" " * 12 + footer)
    return "\n".join(lines)


def scatter_chart(
    x: Sequence[float],
    y: Sequence[float],
    width: int = 60,
    height: int = 18,
    title: str = "",
    x_label: str = "",
    y_label: str = "",
    highlight: Sequence[tuple[float, float]] | None = None,
) -> str:
    """Render a density scatter plot; ``highlight`` points are drawn as ``●``."""
    xs = np.asarray(x, dtype=float)
    ys = np.asarray(y, dtype=float)
    if xs.shape != ys.shape or xs.size == 0:
        raise ValueError("x and y must be equal-length, non-empty")
    x_lo, x_hi = float(xs.min()), float(xs.max())
    y_lo, y_hi = float(ys.min()), float(ys.max())
    if math.isclose(x_lo, x_hi):
        x_hi = x_lo + 1.0
    if math.isclose(y_lo, y_hi):
        y_hi = y_lo + 1.0
    counts = np.zeros((height, width), dtype=int)
    cols = _normalise(xs, x_lo, x_hi, width)
    rows = _normalise(ys, y_lo, y_hi, height)
    for c, r in zip(cols, rows):
        counts[height - 1 - r][c] += 1
    peak = max(counts.max(), 1)
    grid = [
        [
            _LEVELS[min(len(_LEVELS) - 1, int(math.ceil(c / peak * (len(_LEVELS) - 1))))]
            for c in row
        ]
        for row in counts
    ]
    if highlight:
        hx = np.asarray([p[0] for p in highlight])
        hy = np.asarray([p[1] for p in highlight])
        hcols = _normalise(hx, x_lo, x_hi, width)
        hrows = _normalise(hy, y_lo, y_hi, height)
        for c, r in zip(hcols, hrows):
            grid[height - 1 - r][c] = "●"
    lines = []
    if title:
        lines.append(title)
    lines.append(f"{y_hi:10.4g} ┤" + "".join(grid[0]))
    for row in grid[1:-1]:
        lines.append(" " * 10 + " │" + "".join(row))
    lines.append(f"{y_lo:10.4g} ┤" + "".join(grid[-1]))
    lines.append(" " * 10 + " └" + "─" * width)
    lines.append(
        " " * 12 + f"{x_lo:.4g} .. {x_hi:.4g}"
        + (f"   (x: {x_label})" if x_label else "")
        + (f"   (y: {y_label})" if y_label else "")
        + ("   ●=highlight" if highlight else "")
    )
    return "\n".join(lines)


def histogram(
    values: Sequence[float],
    bins: int = 12,
    width: int = 50,
    title: str = "",
) -> str:
    """Render a horizontal-bar histogram."""
    vals = np.asarray(values, dtype=float)
    if vals.size == 0:
        raise ValueError("empty values")
    counts, edges = np.histogram(vals, bins=bins)
    peak = max(counts.max(), 1)
    lines = [title] if title else []
    for count, lo, hi in zip(counts, edges[:-1], edges[1:]):
        bar = "█" * int(round(count / peak * width))
        lines.append(f"{lo:10.4g} – {hi:10.4g} │{bar} {count}")
    return "\n".join(lines)
