"""Experiment harness: one module per paper table/figure.

Each ``run_*`` function regenerates the corresponding result at a chosen
scale (``paper`` / ``demo`` / ``smoke``) and returns a structured object the
benchmarks print and assert on.  See DESIGN.md for the experiment index and
EXPERIMENTS.md for paper-vs-measured numbers.
"""

from .ablation import SearchStrategyAblation, run_search_strategy_ablation
from .common import (
    ExperimentContext,
    clear_context_cache,
    demo_thresholds,
    format_table,
    get_context,
    scaled_reward,
)
from .fig4 import Fig4Result, PredictorRow, run_fig4
from .fig5 import Fig5aResult, Fig5bResult, run_fig5a, run_fig5b
from .fig6 import (
    Fig6aResult,
    Fig6TradeoffResult,
    mean_distance_to_front,
    pareto_front,
    run_fig6_tradeoff,
    run_fig6a,
)
from .table2 import Table2Result, Table2Row, run_table2
from .thresholds import ThresholdCell, ThresholdSweep, run_threshold_sweep

__all__ = [
    "SearchStrategyAblation",
    "run_search_strategy_ablation",
    "ExperimentContext",
    "get_context",
    "clear_context_cache",
    "demo_thresholds",
    "scaled_reward",
    "format_table",
    "run_fig4",
    "Fig4Result",
    "PredictorRow",
    "run_fig5a",
    "run_fig5b",
    "Fig5aResult",
    "Fig5bResult",
    "run_fig6a",
    "run_fig6_tradeoff",
    "Fig6aResult",
    "Fig6TradeoffResult",
    "pareto_front",
    "mean_distance_to_front",
    "run_table2",
    "Table2Result",
    "Table2Row",
    "run_threshold_sweep",
    "ThresholdSweep",
    "ThresholdCell",
]
