"""Shared experiment context and helpers.

Every figure/table harness needs the same expensive artefacts (dataset,
trained HyperNet, simulator samples, GP predictors).  :func:`get_context`
builds them once per (scale, seed) and caches them for the process, so a
benchmark session trains the HyperNet a single time.

Thresholds: the paper uses t_eer = 9 mJ and t_lat = 1.2 ms for CIFAR-scale
networks.  Demo-scale networks are smaller, so :func:`demo_thresholds`
derives equivalent mid-range thresholds — the median latency/energy of a
random sample of co-design points — which screen the space the same way
the paper's values do.
"""

from __future__ import annotations

import atexit
import os
from dataclasses import dataclass, replace

import numpy as np

from ..accel.config import random_config
from ..accel.simulator import SystolicArraySimulator
from ..nas.hypernet import EpochStats, HyperNet, HyperNetTrainer
from ..nas.space import DnnSpace
from ..nn.data import SyntheticCifar
from ..parallel import create_evaluator
from ..predict.dataset import PerfDataset, collect_samples
from ..scale import ExperimentScale, get_scale
from ..search.evaluator import BatchEvaluator, FastEvaluator
from ..search.reward import PAPER_T_EER_MJ, PAPER_T_LAT_MS, RewardSpec

__all__ = [
    "ExperimentContext",
    "get_context",
    "clear_context_cache",
    "demo_thresholds",
    "scaled_reward",
    "format_table",
]


@dataclass
class ExperimentContext:
    """Everything the experiment harnesses share."""

    scale: ExperimentScale
    seed: int
    dataset: SyntheticCifar
    simulator: SystolicArraySimulator
    hypernet: HyperNet
    hypernet_history: list[EpochStats]
    samples: PerfDataset
    fast_evaluator: FastEvaluator
    batch_evaluator: BatchEvaluator
    t_lat_ms: float
    t_eer_mj: float
    #: Worker processes behind ``batch_evaluator`` (1 = in-process).  Also
    #: the shard width for the harnesses' stand-alone training pools
    #: (table2's training rescore path).
    workers: int = 1
    #: Run the harnesses' stand-alone trainings (fig5b correlation models,
    #: table2 training rescore) under the compact-cache training kernels.
    #: Off by default for paper fidelity.
    train_fast: bool = False
    #: The durable tier-2 result store behind the evaluator caches
    #: (``--store PATH``), or ``None``.  Shared by every context built on
    #: the same path in this process (single-writer file).
    store: object | None = None

    @property
    def num_cells(self) -> int:
        return self.scale.hypernet_cells

    @property
    def stem_channels(self) -> int:
        return self.scale.hypernet_channels


_CACHE: dict[tuple[str, int, int, bool, str | None], ExperimentContext] = {}

#: Open ResultStore instances by absolute path.  The store enforces
#: single-writer locking, so every context built on one path in this
#: process must share ONE open instance rather than reopening the file.
_STORES: dict[str, object] = {}


def _get_store(store_path: str | None):
    """The process-wide writer instance for ``store_path`` (or ``None``)."""
    if store_path is None:
        return None
    from ..store import ResultStore

    path = os.path.abspath(store_path)
    store = _STORES.get(path)
    if store is None or getattr(store, "closed", False):
        store = ResultStore(path, mode="a")
        _STORES[path] = store
    return store


def clear_context_cache() -> None:
    """Drop cached contexts (tests use this to force rebuilds).

    Parallel-backed contexts shut their worker pools down first, and any
    open durable stores are flushed and closed (reopening the same path
    later loads the persisted records back), so clearing never leaks
    processes or file locks.
    """
    for context in _CACHE.values():
        if hasattr(context.batch_evaluator, "close"):
            context.batch_evaluator.close()
    _CACHE.clear()
    for store in _STORES.values():
        store.close()
    _STORES.clear()


# Cached parallel-backed contexts hold live worker pools; shut them down
# when the process ends.  (Pools respawn lazily, so a closed context that
# is looked up again keeps working.)
atexit.register(clear_context_cache)


def demo_thresholds(
    scale: ExperimentScale,
    simulator: SystolicArraySimulator | None = None,
    n_probe: int = 24,
    seed: int = 1234,
) -> tuple[float, float]:
    """Mid-range (median) latency/energy thresholds for a given scale.

    At paper scale the paper's own values are returned unchanged.
    """
    if scale.name == "paper":
        return PAPER_T_LAT_MS, PAPER_T_EER_MJ
    sim = simulator or SystolicArraySimulator()
    rng = np.random.default_rng(seed)
    space = DnnSpace()
    pairs = [
        (space.sample(rng), random_config(rng)) for _ in range(n_probe)
    ]
    batch = sim.simulate_genotypes(
        pairs,
        num_cells=scale.hypernet_cells,
        stem_channels=scale.hypernet_channels,
        image_size=scale.image_size,
    )
    return float(np.median(batch.latency_ms)), float(np.median(batch.energy_mj))


def scaled_reward(spec: RewardSpec, context: "ExperimentContext") -> RewardSpec:
    """A preset reward re-thresholded for the context's scale."""
    return spec.scaled(context.t_lat_ms, context.t_eer_mj)


def get_context(
    scale_name: str = "demo",
    seed: int = 0,
    workers: int = 1,
    train_fast: bool = False,
    store_path: str | None = None,
) -> ExperimentContext:
    """Build (or fetch) the shared experiment context for a scale.

    ``workers > 1`` backs the shared batch evaluator with the sharded
    multi-process engine (:func:`repro.parallel.create_evaluator`), so
    every experiment harness' candidate scoring fans out across worker
    processes — with bit-identical results — and the harnesses'
    stand-alone training pools shard their top-N trainings the same way.
    ``train_fast=True`` runs those trainings under the compact-cache
    training kernels (docs/PERFORMANCE.md, "Training path").  The
    expensive Step-1 artefacts (trained HyperNet, simulator samples, GP
    fits) are cached per (scale, seed) and *shared* across worker counts
    and kernel modes: only the evaluator wrapper / flags differ, so
    asking for a new ``workers`` or ``train_fast`` value on an
    already-built context is near-free.

    ``store_path`` opens (or reuses, same path) a durable
    :class:`repro.store.ResultStore` as the tier-2 cache: Step-1 sample
    collection reuses persisted simulator ground truth, and the shared
    batch evaluator consults/fills the store behind its LRU — so a warm
    store makes a fresh process's context build and searches largely
    replay persisted results (``yoso ... --store PATH``).
    """
    store_key = os.path.abspath(store_path) if store_path is not None else None
    key = (scale_name, seed, workers, train_fast, store_key)
    if key in _CACHE:
        return _CACHE[key]
    store = _get_store(store_path)
    for (cached_scale, cached_seed, *_rest), base in _CACHE.items():
        if cached_scale == scale_name and cached_seed == seed:
            batch_evaluator = create_evaluator(
                base.fast_evaluator, workers=workers
            )
            if store is not None:
                batch_evaluator.attach_store(store)
            context = replace(
                base,
                batch_evaluator=batch_evaluator,
                workers=workers,
                train_fast=train_fast,
                store=store,
            )
            _CACHE[key] = context
            return context
    scale = get_scale(scale_name)
    dataset = SyntheticCifar(
        image_size=scale.image_size,
        train_size=scale.train_size,
        val_size=scale.val_size,
        test_size=scale.test_size,
        seed=seed,
    )
    simulator = SystolicArraySimulator()
    rng = np.random.default_rng(seed)
    hypernet = HyperNet(
        num_cells=scale.hypernet_cells,
        stem_channels=scale.hypernet_channels,
        num_classes=dataset.num_classes,
        rng=rng,
    )
    trainer = HyperNetTrainer(hypernet, epochs=scale.hypernet_epochs, seed=seed)
    trainer.fit(dataset, batch_size=scale.hypernet_batch)
    samples = collect_samples(
        scale.predictor_samples,
        seed=seed + 1,
        simulator=simulator,
        num_cells=scale.hypernet_cells,
        stem_channels=scale.hypernet_channels,
        image_size=scale.image_size,
        num_classes=dataset.num_classes,
        store=store,
    )
    # Evaluate search candidates on a fixed validation subset: large enough
    # to rank sub-models, small enough for thousands of search iterations.
    subset = min(96, scale.val_size)
    fast_evaluator = FastEvaluator.from_samples(
        hypernet,
        dataset,
        samples,
        seed=seed,
        num_cells=scale.hypernet_cells,
        stem_channels=scale.hypernet_channels,
        image_size=scale.image_size,
        num_classes=dataset.num_classes,
        eval_batch=subset,
    )
    fast_evaluator.val_images = dataset.val.images[:subset]
    fast_evaluator.val_labels = dataset.val.labels[:subset]
    t_lat, t_eer = demo_thresholds(scale, simulator=simulator)
    batch_evaluator = create_evaluator(fast_evaluator, workers=workers)
    if store is not None:
        batch_evaluator.attach_store(store)
    context = ExperimentContext(
        scale=scale,
        seed=seed,
        dataset=dataset,
        simulator=simulator,
        hypernet=hypernet,
        hypernet_history=trainer.history,
        samples=samples,
        fast_evaluator=fast_evaluator,
        # One shared batched scorer (LRU + batched GP + batched HyperNet
        # accuracy) so every experiment harness — and the report CLI's
        # efficiency table — sees the same hits/misses accounting.  At
        # workers > 1 it is the sharded multi-process engine.
        batch_evaluator=batch_evaluator,
        t_lat_ms=t_lat,
        t_eer_mj=t_eer,
        workers=workers,
        train_fast=train_fast,
        store=store,
    )
    _CACHE[key] = context
    return context


def format_table(headers: list[str], rows: list[list[str]]) -> str:
    """Render an aligned plain-text table (benchmark/report output)."""
    widths = [len(h) for h in headers]
    for row in rows:
        if len(row) != len(headers):
            raise ValueError("row width does not match headers")
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    def fmt(cells: list[str]) -> str:
        return "  ".join(c.ljust(w) for c, w in zip(cells, widths)).rstrip()
    sep = "  ".join("-" * w for w in widths)
    return "\n".join([fmt(headers), sep, *(fmt(r) for r in rows)])
