"""One-shot report generator: every experiment, one markdown document.

``python -m repro.experiments.report --scale smoke`` regenerates all paper
artefacts at the chosen scale and emits a self-contained markdown report —
the executable counterpart of EXPERIMENTS.md.  Useful for re-validating the
reproduction on a new machine or after model changes.
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import Callable

from .ablation import STRATEGIES, run_search_strategy_ablation
from .common import ExperimentContext, format_table, get_context
from .fig4 import run_fig4
from .fig5 import run_fig5a, run_fig5b
from .fig6 import run_fig6_tradeoff, run_fig6a
from .table2 import run_table2

__all__ = ["generate_report"]


def generate_report(
    scale_name: str = "smoke",
    seed: int = 0,
    context: ExperimentContext | None = None,
    iterations: int | None = None,
    correlation_models: int | None = None,
    workers: int = 1,
    endpoint: str | None = None,
    store_path: str | None = None,
    retry_max: int | None = None,
    deadline_s: float | None = None,
    fallback_local: bool = False,
) -> str:
    """Run every experiment and return the combined markdown report.

    Besides the paper artefacts, the report ends with an **evaluator
    efficiency** section: wall-clock seconds per stage plus the shared
    :class:`~repro.search.evaluator.BatchEvaluator` cache accounting
    (lookups / hits / hit-rate per stage, cumulative hit rate overall) —
    see EXPERIMENTS.md for how to read the columns.  ``workers > 1``
    shards candidate scoring across that many worker processes (results
    are bit-identical; a parallel-engine line is appended to the
    efficiency section).  ``workers`` only applies when ``context`` is
    None — an explicit context brings its own evaluator, and the report
    describes THAT context's engine.

    ``endpoint`` (``"host:port"``) switches candidate scoring to a live
    :mod:`repro.service` search service: the local Step-1 artefacts
    (HyperNet, thresholds) are still built, but every ``evaluate_many``
    goes over the wire through a
    :class:`~repro.service.client.RemoteEvaluator` — results are
    bit-identical to local scoring, and the efficiency section reports
    the *service's* scheduler/coalescing stats instead of a local pool.

    ``store_path`` (``--store``) opens a durable result store behind the
    evaluator LRU; the efficiency section then adds the tier-2 accounting
    line (store hits / eligible misses and the on-disk record count), and
    a report re-run on the same path replays persisted results
    bit-identically.  Only applies when ``context`` is None, like
    ``workers``.

    Endpoint-mode resilience knobs (see docs/RESILIENCE.md):
    ``retry_max`` overrides the client's max attempts per request
    (``1`` disables retries), ``deadline_s`` sets a per-request time
    budget, and ``fallback_local`` keeps the report running through a
    dead service by scoring on the local evaluator while the circuit
    breaker is open — results are identical either way, because
    evaluation is deterministic.
    """
    if endpoint is not None:
        from dataclasses import replace

        from ..service import RemoteEvaluator

        # ``workers`` still matters with an endpoint: candidate scoring
        # goes remote, but the harnesses' local stand-alone training
        # pools (table2's rescore path) shard by context.workers.
        base = context or get_context(
            scale_name, seed, workers=workers, store_path=store_path
        )
        retry = None
        if retry_max is not None:
            from ..resilience import RetryPolicy

            retry = RetryPolicy(max_attempts=retry_max)
        fallback = base.batch_evaluator if fallback_local else None
        # Close the connection on every exit path — a failing experiment
        # must not leak the client socket (and the server's reader task).
        with RemoteEvaluator(
            endpoint, retry=retry, deadline_s=deadline_s, fallback=fallback
        ) as remote:
            return _generate(
                replace(base, batch_evaluator=remote),
                seed, scale_name, iterations, correlation_models,
                remote=remote, endpoint=endpoint,
            )
    context = context or get_context(
        scale_name, seed, workers=workers, store_path=store_path
    )
    return _generate(
        context, seed, scale_name, iterations, correlation_models,
        remote=None, endpoint=None,
    )


def _generate(
    context: ExperimentContext,
    seed: int,
    scale_name: str,
    iterations: int | None,
    correlation_models: int | None,
    remote,
    endpoint: str | None,
) -> str:
    scale = context.scale
    evaluator = context.batch_evaluator
    n_iter = iterations if iterations is not None else scale.search_iterations
    n_corr = (
        correlation_models
        if correlation_models is not None
        else scale.correlation_models
    )
    stage_rows: list[list[str]] = []

    def counters() -> tuple[int, int]:
        """(hits, misses) — one consistent snapshot per observation (a
        remote evaluator answers from a single stats round-trip)."""
        if remote is not None:
            return remote.counters()
        return evaluator.hits, evaluator.misses

    def staged(name: str, fn: Callable):
        """Run one report stage, recording duration and cache deltas."""
        hits0, misses0 = counters()
        t0 = time.perf_counter()
        result = fn()
        seconds = time.perf_counter() - t0
        hits1, misses1 = counters()
        hits = hits1 - hits0
        lookups = hits + misses1 - misses0
        rate = f"{100.0 * hits / lookups:.1f}%" if lookups else "-"
        stage_rows.append(
            [name, f"{seconds:.2f}", str(lookups), str(hits), rate]
        )
        return result

    parts: list[str] = [
        f"# YOSO reproduction report — scale `{scale.name}`, seed {seed}",
        "",
        f"Thresholds: t_lat = {context.t_lat_ms:.4f} ms, "
        f"t_eer = {context.t_eer_mj:.4f} mJ.",
    ]

    # Fig. 4.
    fig4 = staged("fig4", lambda: run_fig4(scale_name, seed=seed))
    parts += ["", "## Fig. 4 — performance-predictor comparison", "",
              "```", fig4.to_text(), "```",
              f"Best energy predictor: **{fig4.best('energy').model}**; "
              f"best latency predictor: **{fig4.best('latency').model}**."]

    # Fig. 5.
    fig5a = staged("fig5a", lambda: run_fig5a(scale_name, seed, context=context))
    parts += ["", "## Fig. 5(a) — HyperNet training", "",
              "epoch accuracies: "
              + ", ".join(f"{a:.3f}" for a in fig5a.accuracy)]
    fig5b = staged(
        "fig5b",
        lambda: run_fig5b(scale_name, seed, context=context, n_models=n_corr),
    )
    parts += ["", "## Fig. 5(b) — inherited vs stand-alone accuracy", "",
              f"pearson r = {fig5b.pearson_r:.3f}, "
              f"spearman rho = {fig5b.spearman_rho:.3f} over {n_corr} models"]

    # Fig. 6.
    fig6a = staged(
        "fig6a",
        lambda: run_fig6a(scale_name, seed, context=context, iterations=n_iter),
    )
    parts += ["", "## Fig. 6(a) — RL vs random search", "",
              f"RL: best {fig6a.rl_best:.4f}, tail-mean {fig6a.rl_tail_mean():.4f}; "
              f"random: best {fig6a.random_best:.4f}, "
              f"tail-mean {fig6a.random_tail_mean():.4f}"]
    for which, label in (("energy", "Fig. 6(b)"), ("latency", "Fig. 6(c)")):
        tr = staged(
            f"fig6-{which}",
            lambda which=which: run_fig6_tradeoff(
                which, scale_name, seed, context=context, iterations=n_iter
            ),
        )
        distances = tr.front_distance_by_phase()
        parts += ["", f"## {label} — accuracy-{which} trade-off", "",
                  "distance to Pareto front by phase: "
                  + " -> ".join(f"{d:.4f}" for d in distances)]

    # Table 2 / Fig. 7.
    table2 = staged(
        "table2",
        lambda: run_table2(scale_name, seed, context=context, iterations=n_iter),
    )
    parts += ["", "## Table 2 / Fig. 7 — two-stage comparison", "",
              "```", table2.to_text(), "```",
              f"executed two-stage / Yoso_eer energy ratio: "
              f"{table2.nas_energy_ratio():.2f}x; "
              f"latency ratio: {table2.nas_latency_ratio():.2f}x"]

    # Search-strategy ablation.
    ablation = staged(
        "ablation",
        lambda: run_search_strategy_ablation(
            scale_name, seed, context=context, iterations=max(10, n_iter // 2)
        ),
    )
    rows = [
        [which, f"{ablation.best(which):.4f}", f"{ablation.tail_mean(which):.4f}"]
        for which in STRATEGIES
    ]
    parts += ["", "## Search-strategy ablation", "", "```",
              format_table(["strategy", "best", "tail-mean"], rows), "```"]

    # Evaluator efficiency (ROADMAP item: surface hit_rate + durations).
    final_hits, final_misses = counters()
    total = final_hits + final_misses
    rate = final_hits / total if total else 0.0
    parts += ["", "## Evaluator efficiency", "",
              f"BatchEvaluator cumulative hit rate: "
              f"{100.0 * rate:.1f}% "
              f"({final_hits} hits / {total} lookups; "
              f"cache size {evaluator.cache_size})",
              "", "```",
              format_table(
                  ["stage", "seconds", "lookups", "hits", "hit-rate"],
                  stage_rows,
              ),
              "```"]
    store = getattr(evaluator, "store", None)
    if store is not None:
        s_hits = evaluator.store_hits
        s_total = s_hits + evaluator.store_misses
        s_rate = 100.0 * s_hits / s_total if s_total else 0.0
        parts += ["",
                  f"Durable store (tier 2): {s_hits} of {s_total} eligible "
                  f"LRU misses served from disk ({s_rate:.1f}% tier-2 hit "
                  f"rate); {len(store)} records in {store.path} "
                  f"({store.size_bytes} bytes, {store.appends} appended "
                  f"this run)."]
    if remote is not None:
        # A dead backend must not fail the report when a fallback served
        # the run — degrade the service line like the scoring calls did
        # (see docs/RESILIENCE.md, "--fallback-local").
        try:
            stats = remote.service_stats()
        except (ConnectionError, TimeoutError, OSError) as exc:
            res = remote.resilience_stats()
            breaker = res.get("breaker") or {}
            parts += ["",
                      f"Search service: endpoint {endpoint} unreachable "
                      f"({type(exc).__name__}); {res['fallback_calls']} "
                      f"scoring calls served by the local fallback "
                      f"evaluator (circuit breaker "
                      f"{breaker.get('state', 'n/a')}, "
                      f"{breaker.get('opens', 0)} opens, "
                      f"{res['retries']} request retries)."]
        else:
            sched = stats["scheduler"]
            service = stats["service"]
            ratio = sched["coalescing_ratio"]
            parts += ["",
                      f"Search service: endpoint {endpoint}, "
                      f"{service['requests']} requests over "
                      f"{service['connections']} connections; scheduler ran "
                      f"{sched['ticks']} ticks for {sched['requests']} submitted "
                      f"requests ({sched['points_in']} points, "
                      f"largest batch {sched['largest_batch']}, "
                      f"{sched['errors']} errors"
                      + (f", {ratio:.2f} requests/tick" if ratio else "")
                      + f"); peak in-flight {service['peak_inflight_points']} / "
                      f"{service['max_inflight_points']} budget points."]
    elif context.workers > 1:
        pool = getattr(evaluator, "pool", None)
        threshold = getattr(evaluator, "dispatch_threshold", None)
        if threshold is None:
            threshold_desc = "the dispatch threshold"
        else:
            kind = (
                "adaptive"
                if getattr(evaluator, "tuner", None) is not None
                else "fixed"
            )
            threshold_desc = f"the {kind} dispatch threshold of {threshold}"
        if pool is None:
            parts += ["",
                      f"Parallel engine: {context.workers} workers configured, "
                      f"pool never spawned (every batch stayed below "
                      f"{threshold_desc} — see docs/PERFORMANCE.md)."]
        else:
            parts += ["",
                      f"Parallel engine: {context.workers} workers, "
                      f"{pool.batches} dispatched batches "
                      f"({pool.items} cold genotypes sharded), "
                      f"{pool.restarts} pool restarts, "
                      f"replication payload "
                      f"{pool.payload_bytes / 1e6:.1f} MB/worker; "
                      f"{threshold_desc} applied."]

    # Machine-readable metrics (repro.obs registry snapshot — the
    # service's own registry in endpoint mode, this process's otherwise).
    # Inside a json fence so downstream tooling can parse the block
    # straight out of the report.
    import json as _json

    from ..obs import get_registry
    if remote is not None:
        metrics = remote.metrics()
    else:
        metrics = get_registry().snapshot()
    parts += ["", "## Metrics", "",
              "Registry snapshot (see docs/OBSERVABILITY.md for the "
              "schema" + (", sampled from the remote service" if remote
                          is not None else "") + "):",
              "", "```json",
              _json.dumps(metrics, indent=2, sort_keys=True),
              "```"]
    return "\n".join(parts) + "\n"


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", default="smoke", choices=["smoke", "demo"])
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--iterations", type=int, default=None)
    parser.add_argument("--workers", type=int, default=1,
                        help="worker processes for candidate scoring "
                             "(1 = in-process; results are bit-identical)")
    parser.add_argument("--endpoint", default=None, metavar="HOST:PORT",
                        help="score candidates against a running "
                             "`yoso serve` search service instead of "
                             "in-process (bit-identical results)")
    parser.add_argument("--store", default=None, metavar="PATH",
                        help="durable result-store file (repro.store): "
                             "persisted results are replayed bit-identically "
                             "and the efficiency section reports the tier-2 "
                             "hit accounting")
    parser.add_argument("--trace-out", default=None, metavar="PATH",
                        help="enable span tracing and append one JSON line "
                             "per span to PATH (default: tracing off)")
    parser.add_argument("--retry-max", type=int, default=None,
                        help="endpoint mode: max attempts per request "
                             "(default: the client's standard retry policy; "
                             "1 disables retries — docs/RESILIENCE.md)")
    parser.add_argument("--deadline-s", type=float, default=None,
                        help="endpoint mode: per-request time budget; a "
                             "blown budget raises DeadlineExceeded instead "
                             "of hanging")
    parser.add_argument("--fallback-local", action="store_true",
                        help="endpoint mode: when the service is unreachable "
                             "(circuit breaker open), score on the local "
                             "evaluator instead of failing — results are "
                             "identical, only latency changes")
    parser.add_argument("--output", default=None,
                        help="write the report here instead of stdout")
    args = parser.parse_args(argv)
    if args.trace_out:
        from ..obs import configure_tracing

        configure_tracing(enabled=True, sink_path=args.trace_out)
    report = generate_report(args.scale, args.seed, iterations=args.iterations,
                             workers=args.workers, endpoint=args.endpoint,
                             store_path=args.store,
                             retry_max=args.retry_max,
                             deadline_s=args.deadline_s,
                             fallback_local=args.fallback_local)
    if args.output:
        with open(args.output, "w") as handle:
            handle.write(report)
        print(f"wrote {args.output}")
    else:
        print(report)
    return 0


if __name__ == "__main__":
    sys.exit(main())
