"""Ablation harnesses for the design choices the paper calls out.

1. **Search strategy** (Sec. III-B): the paper chooses an LSTM/RL searcher
   over Bayesian optimisation and bandit/random methods, arguing the latter
   "behave like random search in high-dimensional search space".
   :func:`run_search_strategy_ablation` runs RL, BO and random search with
   the same evaluator, reward and budget.

2. **HyperNet sampling policy** (Sec. III-D): uniform vs biased path
   sampling (see ``benchmarks/test_ablation_sampling.py`` which uses
   :meth:`repro.nas.space.DnnSpace.sample_biased`).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..search.bandit import BanditSearch
from ..search.bayesopt import BayesianOptSearch
from ..search.controller import Controller
from ..search.evolution import EvolutionSearch
from ..search.random_search import RandomSearch
from ..search.reinforce import ReinforceSearch, SearchHistory
from ..search.reward import BALANCED
from .common import ExperimentContext, get_context, scaled_reward
from .fig6 import search_lr

__all__ = ["SearchStrategyAblation", "run_search_strategy_ablation", "STRATEGIES"]

#: Strategy names in report order.
STRATEGIES: tuple[str, ...] = ("rl", "random", "bayesopt", "evolution", "bandit")


@dataclass
class SearchStrategyAblation:
    """Histories of the five strategies under identical conditions."""

    rl: SearchHistory
    random: SearchHistory
    bayesopt: SearchHistory
    evolution: SearchHistory
    bandit: SearchHistory
    iterations: int

    def tail_mean(self, which: str, frac: float = 0.25) -> float:
        history: SearchHistory = getattr(self, which)
        rewards = history.rewards()
        k = max(1, int(len(rewards) * frac))
        return float(rewards[-k:].mean())

    def best(self, which: str) -> float:
        return float(getattr(self, which).rewards().max())

    def summary(self) -> dict[str, dict[str, float]]:
        return {
            which: {"best": self.best(which), "tail_mean": self.tail_mean(which)}
            for which in STRATEGIES
        }


def run_search_strategy_ablation(
    scale_name: str = "demo",
    seed: int = 0,
    context: ExperimentContext | None = None,
    iterations: int | None = None,
) -> SearchStrategyAblation:
    """RL vs random vs Bayesian optimisation on the same fast evaluator."""
    context = context or get_context(scale_name, seed)
    n = iterations if iterations is not None else context.scale.search_iterations
    spec = scaled_reward(BALANCED, context)
    feature_kwargs = dict(
        num_cells=context.scale.hypernet_cells,
        stem_channels=context.scale.hypernet_channels,
        image_size=context.scale.image_size,
    )
    # All strategies score through the shared BatchEvaluator (batched
    # GP/HyperNet on misses, LRU on repeats); trajectories are unchanged —
    # the batch parity tests pin batched scoring to the scalar path.
    evaluator = context.batch_evaluator
    rl = ReinforceSearch(
        Controller(seed=seed + 31),
        evaluator.evaluate,
        spec,
        lr=search_lr(context, None),
        seed=seed + 31,
        evaluate_batch=evaluator.evaluate_many,
    ).run(n)
    # batch_size is history-invariant for random search (see
    # repro.search.random_search); chunked draws feed the batched scorer
    # real populations — sharded across workers in parallel contexts.
    random = RandomSearch(
        evaluator.evaluate, spec, seed=seed + 32,
        batch_size=min(16, n),
        evaluate_batch=evaluator.evaluate_many,
    ).run(n)
    bayes = BayesianOptSearch(
        evaluator.evaluate,
        spec,
        n_initial=max(5, n // 10),
        pool_size=48,
        refit_every=5,
        seed=seed + 33,
        feature_kwargs=feature_kwargs,
        evaluate_batch=evaluator.evaluate_many,
    ).run(n)
    evolution = EvolutionSearch(
        evaluator.evaluate,
        spec,
        population_size=max(4, n // 10),
        tournament_size=max(2, n // 40),
        seed=seed + 34,
        evaluate_batch=evaluator.evaluate_many,
    ).run(n)
    bandit = BanditSearch(
        evaluator.evaluate, spec, seed=seed + 35
    ).run(n)
    return SearchStrategyAblation(
        rl=rl, random=random, bayesopt=bayes, evolution=evolution,
        bandit=bandit, iterations=n,
    )
