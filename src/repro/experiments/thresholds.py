"""Threshold-sensitivity study (an extension of Sec. IV-A).

The paper fixes one operating point — t_eer = 9 mJ, t_lat = 1.2 ms — and
notes that *"the coefficients in Eq. 2 can be adjusted to guide the search
toward different optimal regions, as preferred by different users and
scenarios."*  The thresholds are the other user knob: with negative
exponents, a tighter threshold steepens the penalty around it and drags the
optimum toward cheaper designs.

:func:`run_threshold_sweep` quantifies this *without* re-running searches:
it scores a fixed candidate pool (simulator ground truth) under a grid of
threshold settings and reports which co-design wins at each, plus summary
monotonicity statistics.  The harness doubles as a user tool for picking
thresholds before launching an expensive search.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..accel.config import random_config
from ..accel.simulator import SystolicArraySimulator
from ..nas.encoding import CoDesignPoint
from ..nas.space import DnnSpace
from ..search.reward import RewardSpec
from .common import ExperimentContext, get_context

__all__ = ["ThresholdCell", "ThresholdSweep", "run_threshold_sweep"]


@dataclass(frozen=True)
class ThresholdCell:
    """The winner at one (t_lat, t_eer) grid point."""

    t_lat_ms: float
    t_eer_mj: float
    winner_index: int
    winner_latency_ms: float
    winner_energy_mj: float
    winner_accuracy: float
    winner_reward: float


@dataclass
class ThresholdSweep:
    """Grid of winners plus the candidate pool statistics."""

    cells: list[ThresholdCell]
    pool_size: int
    base_spec: RewardSpec

    def winners(self) -> set[int]:
        return {c.winner_index for c in self.cells}

    def energy_under_tight_vs_loose_eer(self) -> tuple[float, float]:
        """Mean winner energy at the tightest vs loosest energy threshold."""
        eers = sorted({c.t_eer_mj for c in self.cells})
        tight = [c.winner_energy_mj for c in self.cells if c.t_eer_mj == eers[0]]
        loose = [c.winner_energy_mj for c in self.cells if c.t_eer_mj == eers[-1]]
        return float(np.mean(tight)), float(np.mean(loose))

    def latency_under_tight_vs_loose_lat(self) -> tuple[float, float]:
        """Mean winner latency at the tightest vs loosest latency threshold."""
        lats = sorted({c.t_lat_ms for c in self.cells})
        tight = [c.winner_latency_ms for c in self.cells if c.t_lat_ms == lats[0]]
        loose = [c.winner_latency_ms for c in self.cells if c.t_lat_ms == lats[-1]]
        return float(np.mean(tight)), float(np.mean(loose))


def run_threshold_sweep(
    scale_name: str = "demo",
    seed: int = 0,
    context: ExperimentContext | None = None,
    pool_size: int = 64,
    factors: tuple[float, ...] = (0.6, 1.0, 1.6),
    accuracy_model: str = "hypernet",
) -> ThresholdSweep:
    """Score a random candidate pool under a grid of threshold settings.

    ``factors`` scale the context's calibrated thresholds in both
    dimensions (a 3x3 grid by default).  ``accuracy_model`` is
    ``"hypernet"`` (inherited-weight evaluation; slower) or ``"uniform"``
    (all candidates share accuracy 1 — isolates the hardware side).
    """
    if pool_size < 2:
        raise ValueError("pool_size must be >= 2")
    context = context or get_context(scale_name, seed)
    scale = context.scale
    rng = np.random.default_rng(seed + 77)
    space = DnnSpace()
    sim: SystolicArraySimulator = context.simulator
    pool: list[tuple[float, float, float]] = []  # (accuracy, latency, energy)
    for i in range(pool_size):
        point = CoDesignPoint(
            genotype=space.sample(rng, name=f"sweep{i}"), config=random_config(rng)
        )
        report = sim.simulate_genotype(
            point.genotype,
            point.config,
            num_cells=scale.hypernet_cells,
            stem_channels=scale.hypernet_channels,
            image_size=scale.image_size,
            num_classes=context.dataset.num_classes,
        )
        if accuracy_model == "hypernet":
            accuracy = context.hypernet.evaluate(
                point.genotype,
                context.fast_evaluator.val_images,
                context.fast_evaluator.val_labels,
                batch_size=context.fast_evaluator.eval_batch,
            )
        elif accuracy_model == "uniform":
            accuracy = 1.0
        else:
            raise ValueError("accuracy_model must be 'hypernet' or 'uniform'")
        pool.append((accuracy, report.latency_ms, report.energy_mj))

    base = RewardSpec(
        0.5, -0.4, 0.5, -0.4,
        t_lat_ms=context.t_lat_ms, t_eer_mj=context.t_eer_mj, name="sweep",
    )
    cells: list[ThresholdCell] = []
    for f_lat in factors:
        for f_eer in factors:
            spec = base.scaled(context.t_lat_ms * f_lat, context.t_eer_mj * f_eer)
            # Hard screening first (Sec. IV-A: failing designs are screened
            # out); the composite reward ranks the survivors.  If nothing
            # survives, fall back to the full pool.
            feasible = [
                i for i, (_, lat, eer) in enumerate(pool)
                if spec.meets_thresholds(lat, eer)
            ]
            indices = feasible if feasible else list(range(len(pool)))
            rewards = {
                i: (spec.reward(pool[i][0], pool[i][1], pool[i][2])
                    if pool[i][0] > 0 else 0.0)
                for i in indices
            }
            idx = max(rewards, key=rewards.get)
            acc, lat, eer = pool[idx]
            cells.append(
                ThresholdCell(
                    t_lat_ms=spec.t_lat_ms,
                    t_eer_mj=spec.t_eer_mj,
                    winner_index=idx,
                    winner_latency_ms=lat,
                    winner_energy_mj=eer,
                    winner_accuracy=acc,
                    winner_reward=rewards[idx],
                )
            )
    return ThresholdSweep(cells=cells, pool_size=pool_size, base_spec=base)
