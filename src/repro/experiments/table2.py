"""Table 2 and Fig. 7 — single-stage YOSO vs the two-stage method.

Two-stage side: each representative network (NASNet-A, DARTS v1/v2,
AmoebaNet-A, ENASNet, PNASNet re-expressed in the YOSO space) gets its
accuracy evaluated and *every* accelerator configuration enumerated to pick
its best hardware (Sec. IV-D).

YOSO side: two full searches — ``Yoso_eer`` with the energy-focused reward
and ``Yoso_lat`` with the latency-focused reward — followed by top-N
accurate rescoring, as in the paper.

Fig. 7 normalises every row's energy and latency to the YOSO results; the
paper reports 1.42x-2.29x energy reduction (vs Yoso_eer) and 1.79x-3.07x
latency reduction (vs Yoso_lat) at the same level of precision.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..baselines.genotypes import TWO_STAGE_BASELINES
from ..nas.genotype import Genotype
from ..search.controller import Controller
from ..search.evaluator import AccurateEvaluator, Evaluation
from ..search.reinforce import ReinforceSearch
from ..search.reward import ENERGY_FOCUS, LATENCY_FOCUS, RewardSpec
from ..search.two_stage import run_two_stage, two_stage_nas
from .common import ExperimentContext, format_table, get_context, scaled_reward
from .fig6 import search_lr

__all__ = ["Table2Row", "Table2Result", "run_table2"]


@dataclass(frozen=True)
class Table2Row:
    """One row of Table 2 (ours measured; paper columns kept for context)."""

    model: str
    method: str  # "two-stage" or "single-stage"
    search_gpu_days: float | None
    paper_test_error: float | None
    test_error: float
    energy_mj: float
    latency_ms: float
    configuration: str


@dataclass
class Table2Result:
    """All rows plus the Fig. 7 normalised ratios."""

    rows: list[Table2Row]
    t_lat_ms: float
    t_eer_mj: float

    # ------------------------------------------------------------------
    def row(self, model: str) -> Table2Row:
        for r in self.rows:
            if r.model.lower() == model.lower():
                return r
        raise KeyError(f"no row for {model!r}")

    def two_stage_rows(self) -> list[Table2Row]:
        """Published-architecture two-stage rows (context columns)."""
        return [r for r in self.rows if r.method == "two-stage"]

    def nas_rows(self) -> list[Table2Row]:
        """Executed two-stage rows (accuracy-only NAS + HW enumeration)."""
        return [r for r in self.rows if r.method == "two-stage-nas"]

    def energy_ratios(self) -> dict[str, float]:
        """Fig. 7: baseline energy / Yoso_eer energy (paper: 1.42x-2.29x)."""
        ref = self.row("Yoso_eer").energy_mj
        return {r.model: r.energy_mj / ref for r in self.two_stage_rows()}

    def latency_ratios(self) -> dict[str, float]:
        """Fig. 7: baseline latency / Yoso_lat latency (paper: 1.79x-3.07x)."""
        ref = self.row("Yoso_lat").latency_ms
        return {r.model: r.latency_ms / ref for r in self.two_stage_rows()}

    def nas_energy_ratio(self) -> float:
        """Executed two-stage energy / Yoso_eer energy (accuracy-matched)."""
        return self.row("TwoStage_energy").energy_mj / self.row("Yoso_eer").energy_mj

    def nas_latency_ratio(self) -> float:
        """Executed two-stage latency / Yoso_lat latency (accuracy-matched)."""
        return self.row("TwoStage_latency").latency_ms / self.row("Yoso_lat").latency_ms

    def reward_of(self, model: str, spec: RewardSpec) -> float:
        """Eq. 2 composite score of one row under a given reward preset."""
        row = self.row(model)
        return spec.reward(
            1.0 - row.test_error / 100.0, row.latency_ms, row.energy_mj
        )

    def to_text(self) -> str:
        headers = [
            "Model",
            "Search (GPU*day)",
            "Paper err%",
            "Err%",
            "Energy (mJ)",
            "Latency (ms)",
            "Configuration",
        ]
        body = [
            [
                r.model,
                "-" if r.search_gpu_days is None else f"{r.search_gpu_days:g}",
                "-" if r.paper_test_error is None else f"{r.paper_test_error:.2f}",
                f"{r.test_error:.1f}",
                f"{r.energy_mj:.3f}",
                f"{r.latency_ms:.3f}",
                r.configuration,
            ]
            for r in self.rows
        ]
        ratios_e = self.energy_ratios()
        ratios_l = self.latency_ratios()
        fig7 = "\n".join(
            f"Fig7 {name}: energy x{ratios_e[name]:.2f}, latency x{ratios_l[name]:.2f}"
            for name in ratios_e
        )
        return format_table(headers, body) + "\n" + fig7


def _yoso_row(
    name: str,
    preset: RewardSpec,
    objective_seed: int,
    context: ExperimentContext,
    iterations: int,
    topn: int,
    restarts: int = 1,
    rescorer: AccurateEvaluator | None = None,
    training_pool=None,
) -> Table2Row:
    """One YOSO search (Step 2 + Step 3 rescoring via accurate simulation).

    ``restarts`` independent controller runs share the iteration budget's
    top-N pool — the demo-scale stand-in for the paper's single 5x10^6-
    iteration search, whose top-10 candidates effectively cover many policy
    bassins.

    With a ``rescorer`` (an :class:`~repro.search.evaluator.
    AccurateEvaluator`, built once by :func:`run_table2`), rescored
    accuracy comes from stand-alone training of every pooled candidate
    (the paper's actual Step 3) — sharded over ``training_pool`` when one
    is provided, each candidate seeded with this row's objective seed;
    the default keeps the cheaper full-split HyperNet re-measurement that
    demo-scale Table 2 runs have always used.
    """
    spec = scaled_reward(preset, context)
    candidates = []
    # Candidate scoring goes through the shared batch evaluator (LRU +
    # batched GP/HyperNet, sharded across workers when the context is
    # parallel-backed).  Trajectories match the former scalar
    # fast_evaluator path bit-for-bit: with batch_episodes=1 each step
    # scores ONE point, and a single-row predict_batch call IS the scalar
    # GP predict on the identical feature row (accuracy is exact by the
    # evaluate_many parity property).
    evaluator = context.batch_evaluator
    for k in range(max(1, restarts)):
        seed_k = objective_seed + 100 * k
        controller = Controller(seed=seed_k)
        history = ReinforceSearch(
            controller, evaluator.evaluate, spec,
            lr=search_lr(context, None), seed=seed_k,
            evaluate_batch=evaluator.evaluate_many,
        ).run(iterations)
        candidates.extend(history.top(topn))
    # Step 3: accurate rescoring of the pooled top-N.  Accuracy is either
    # re-measured on the full validation split (one grouped HyperNet
    # forward for the whole pool — the demo default) or, with
    # ``rescore_training``, measured by per-candidate stand-alone training
    # sharded across the context's workers; latency/energy come from ONE
    # batched simulator call instead of a per-candidate scalar walk.
    best_eval: Evaluation | None = None
    best_reward = -np.inf
    best_config = None
    scale = context.scale
    points = [sample.point() for sample in candidates]
    if rescorer is not None:
        # The per-objective seed rides in the jobs, so one shared
        # evaluator/pool (its replica pickled once) serves every row.
        accuracies = rescorer.train_accuracies(
            points,
            workers=context.workers,
            seeds=[objective_seed] * len(points),
            pool=training_pool,
        )
    else:
        accuracies = context.hypernet.evaluate_many(
            [point.genotype for point in points],
            context.dataset.val.images,
            context.dataset.val.labels,
            batch_size=min(128, scale.val_size),
        )
    sims = context.simulator.simulate_genotypes(
        [(point.genotype, point.config) for point in points],
        num_cells=scale.hypernet_cells,
        stem_channels=scale.hypernet_channels,
        image_size=scale.image_size,
        num_classes=context.dataset.num_classes,
    )
    for point, accuracy, latency, energy in zip(
        points, accuracies, sims.latency_ms, sims.energy_mj
    ):
        latency = float(latency)
        energy = float(energy)
        reward = spec.reward(accuracy, latency, energy)
        # Threshold screening first (Sec. IV-A), composite score second.
        key = (spec.meets_thresholds(latency, energy), reward)
        if best_eval is None or key > (
            spec.meets_thresholds(best_eval.latency_ms, best_eval.energy_mj),
            best_reward,
        ):
            best_eval = Evaluation(accuracy, latency, energy)
            best_reward = reward
            best_config = point.config
    assert best_eval is not None and best_config is not None
    return Table2Row(
        model=name,
        method="single-stage",
        search_gpu_days=0.5,  # the paper's reported YOSO search cost
        paper_test_error=None,
        test_error=100.0 * (1.0 - best_eval.accuracy),
        energy_mj=best_eval.energy_mj,
        latency_ms=best_eval.latency_ms,
        configuration=best_config.describe(),
    )


def run_table2(
    scale_name: str = "demo",
    seed: int = 0,
    context: ExperimentContext | None = None,
    iterations: int | None = None,
    topn: int | None = None,
    rescore_training: bool = False,
) -> Table2Result:
    """Regenerate Table 2 (and the Fig. 7 ratios) end to end.

    ``rescore_training=True`` rescored YOSO rows train every pooled top-N
    candidate stand-alone (sharded across ``context.workers``, using the
    context's ``train_fast`` kernels) instead of re-measuring through the
    HyperNet — the paper's actual Step 3, at demo-scale training cost.
    """
    context = context or get_context(scale_name, seed)
    scale = context.scale
    n_iter = iterations if iterations is not None else scale.search_iterations
    n_top = topn if topn is not None else scale.topn
    spec_bal = scaled_reward(ENERGY_FOCUS, context)

    def accuracy_of(genotype: Genotype) -> float:
        return context.hypernet.evaluate(
            genotype,
            context.dataset.val.images,
            context.dataset.val.labels,
            batch_size=min(128, scale.val_size),
        )

    two_stage = run_two_stage(
        context.simulator,
        accuracy_of,
        objective="reward",
        reward_spec=spec_bal,
        num_cells=scale.hypernet_cells,
        stem_channels=scale.hypernet_channels,
        image_size=scale.image_size,
        num_classes=context.dataset.num_classes,
    )
    rows = [
        Table2Row(
            model=r.model,
            method="two-stage",
            search_gpu_days=r.search_gpu_days,
            paper_test_error=r.paper_test_error,
            test_error=r.test_error,
            energy_mj=r.energy_mj,
            latency_ms=r.latency_ms,
            configuration=r.config.describe(),
        )
        for r in two_stage
    ]
    # Executed two-stage flow: accuracy-only NAS (same fast accuracy signal
    # and sample budget as one YOSO search) followed by HW enumeration.
    def fast_accuracy_of(genotype: Genotype) -> float:
        return context.hypernet.evaluate(
            genotype,
            context.fast_evaluator.val_images,
            context.fast_evaluator.val_labels,
            batch_size=context.fast_evaluator.eval_batch,
        )

    for objective in ("energy", "latency"):
        nas_row = two_stage_nas(
            fast_accuracy_of,
            context.simulator,
            objective=objective,
            reward_spec=spec_bal,
            nas_samples=n_iter,
            seed=seed + 21,
            num_cells=scale.hypernet_cells,
            stem_channels=scale.hypernet_channels,
            image_size=scale.image_size,
            num_classes=context.dataset.num_classes,
        )
        assert nas_row.genotype is not None
        # Report accuracy on the same (full) validation split as YOSO's
        # Step 3 rescoring, so the precision comparison is fair.
        full_accuracy = accuracy_of(nas_row.genotype)
        rows.append(
            Table2Row(
                model=nas_row.model,
                method="two-stage-nas",
                search_gpu_days=None,
                paper_test_error=None,
                test_error=100.0 * (1.0 - full_accuracy),
                energy_mj=nas_row.energy_mj,
                latency_ms=nas_row.latency_ms,
                configuration=nas_row.config.describe(),
            )
        )
    # Two policy restarts per objective at reduced scales (see _yoso_row).
    restarts = 1 if scale.name == "paper" else 2
    # ONE rescorer (and, at workers > 1, one training pool replicating
    # it) serves both YOSO rows: the dataset + recipe are identical
    # across rows — only the per-candidate seeds differ, and those ride
    # in the jobs — so the evaluator is built once and the pool spawn +
    # replication cost is paid once, not per row.
    rescorer = None
    training_pool = None
    if rescore_training:
        rescorer = AccurateEvaluator(
            context.dataset,
            simulator=context.simulator,
            num_cells=scale.hypernet_cells,
            stem_channels=scale.hypernet_channels,
            num_classes=context.dataset.num_classes,
            train_epochs=scale.standalone_epochs,
            seed=seed,
            train_fast=context.train_fast,
        )
        if context.store is not None:
            # Persisted trained accuracies (keyed genotype tokens + seed)
            # are reused bit-exactly; worker replicas never see the store
            # (hit partitioning happens in the parent).
            rescorer.attach_store(context.store)
        if context.workers > 1:
            from ..parallel import TrainingPool

            training_pool = TrainingPool(rescorer, context.workers)
    try:
        rows.append(_yoso_row("Yoso_lat", LATENCY_FOCUS, seed + 11, context,
                              n_iter, n_top, restarts=restarts,
                              rescorer=rescorer,
                              training_pool=training_pool))
        rows.append(_yoso_row("Yoso_eer", ENERGY_FOCUS, seed + 12, context,
                              n_iter, n_top, restarts=restarts,
                              rescorer=rescorer,
                              training_pool=training_pool))
    finally:
        if training_pool is not None:
            training_pool.close()
    return Table2Result(rows=rows, t_lat_ms=context.t_lat_ms, t_eer_mj=context.t_eer_mj)
