"""Energy and timing constants for the systolic-array model.

The values follow the well-known Eyeriss / TETRIS energy hierarchy for a
16-bit datapath: a register-file access costs about the same as a MAC, a
global-buffer access ~6x that, and a DRAM access ~200x.  Static (leakage)
power scales with the amount of instantiated hardware, which is what makes
over-provisioned configurations lose on energy even when they win on
latency.

Absolute numbers are normalised, not process-calibrated: the reproduction
targets the *relative* behaviour of configurations (see DESIGN.md).
"""

from __future__ import annotations

from dataclasses import dataclass

from .config import AcceleratorConfig

__all__ = ["EnergyModel", "DEFAULT_ENERGY_MODEL"]


@dataclass(frozen=True)
class EnergyModel:
    """Per-event energy costs (picojoules) and clocking assumptions."""

    mac_pj: float = 1.0  # one 16-bit multiply-accumulate
    rbuf_pj: float = 0.9  # one register-file word access
    gbuf_pj: float = 6.0  # one global-buffer word access
    dram_pj: float = 200.0  # one DRAM word access
    freq_mhz: float = 1000.0  # core clock
    dram_bw_bytes_per_cycle: float = 16.0  # DRAM bandwidth at the core clock
    # Leakage coefficients (pJ per cycle per unit of hardware).
    leak_per_pe_pj: float = 0.02
    leak_per_gbuf_kb_pj: float = 0.05
    leak_per_rbuf_byte_per_pe_pj: float = 2e-5

    def leakage_pj_per_cycle(self, config: AcceleratorConfig) -> float:
        """Static energy burned per clock cycle by a configuration."""
        return (
            self.leak_per_pe_pj * config.num_pes
            + self.leak_per_gbuf_kb_pj * config.gbuf_kb
            + self.leak_per_rbuf_byte_per_pe_pj * config.rbuf_bytes * config.num_pes
        )

    def cycles_to_ms(self, cycles: float) -> float:
        return cycles / (self.freq_mhz * 1e3)


DEFAULT_ENERGY_MODEL = EnergyModel()
