"""Spatial-mapping models for the four dataflows (Table 1).

For each dataflow we model (a) how well a layer's dimensions fill the
two-dimensional PE array — the *utilisation* — and (b) how often each
datatype is reused at the PE register level before it must be refetched
from the global buffer — the *local reuse* factors.  This is the standard
taxonomy of Chen et al. (Eyeriss, ISCA'16) that the paper's simulator
(`nn_dataflow`) implements cycle-accurately; here it is analytical.

* **WS** (weight stationary): weights pinned in PE registers; maps input
  channels on rows, output channels on columns.  Weight reuse scales with
  the number of output pixels while resident (capped by r_buf capacity).
* **OS** (output stationary): partial sums pinned; maps the output plane on
  the array.  Psum reuse is the full reduction depth.
* **RS** (row stationary): filter rows x output rows on the array; both
  ifmap rows and filter rows enjoy convolutional reuse.
* **NLR** (no local reuse): flexible mapping with all operands streamed
  from the global buffer — high utilisation, no register-level reuse.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from .config import AcceleratorConfig, Dataflow
from .workload import WORD_BYTES, LayerWorkload

__all__ = ["MappingProfile", "spatial_map", "fold_utilisation"]


@dataclass(frozen=True)
class MappingProfile:
    """Result of spatially mapping one layer onto the PE array.

    Attributes
    ----------
    utilisation:
        Fraction of PE-cycles doing useful work, in ``(0, 1]``.
    ifmap_reuse, weight_reuse, psum_reuse:
        Register-level reuse factor per datatype (>= 1).  Global-buffer
        reads per MAC for a datatype are ``1 / reuse``.
    """

    utilisation: float
    ifmap_reuse: float
    weight_reuse: float
    psum_reuse: float

    def __post_init__(self) -> None:
        if not 0.0 < self.utilisation <= 1.0:
            raise ValueError(f"utilisation {self.utilisation} out of (0, 1]")
        if min(self.ifmap_reuse, self.weight_reuse, self.psum_reuse) < 1.0:
            raise ValueError("reuse factors must be >= 1")


def fold_utilisation(dim: int, lanes: int) -> float:
    """Utilisation of ``lanes`` parallel lanes processing a ``dim``-sized loop.

    The loop is folded into ``ceil(dim / lanes)`` passes; the last pass may
    be partially filled, giving ``dim / (ceil(dim/lanes) * lanes)``.
    """
    if dim < 1 or lanes < 1:
        raise ValueError("dim and lanes must be positive")
    return dim / (math.ceil(dim / lanes) * lanes)


def _pair_utilisation(dim_r: int, dim_c: int, config: AcceleratorConfig) -> float:
    return fold_utilisation(dim_r, config.pe_rows) * fold_utilisation(dim_c, config.pe_cols)


def _rbuf_capacity_factor(config: AcceleratorConfig, resident_words: float) -> float:
    """Degradation of stationary reuse when r_buf can't hold the resident set."""
    rbuf_words = config.rbuf_bytes / WORD_BYTES
    if resident_words <= 0:
        return 1.0
    return min(1.0, rbuf_words / resident_words)


def spatial_map(layer: LayerWorkload, config: AcceleratorConfig) -> MappingProfile:
    """Map ``layer`` onto ``config`` under the configured dataflow."""
    k = layer.out_channels
    c = layer.in_channels
    oh = ow = layer.out_size
    r = layer.kernel
    rs = r * r
    flow = config.dataflow
    depthwise_like = layer.kind in ("dwconv", "pool")

    if flow == Dataflow.WS:
        if depthwise_like:
            # No cross-channel reduction: channels on rows, output rows on cols.
            util = _pair_utilisation(c, oh, config)
            ifmap_multicast = 1.0
        else:
            util = _pair_utilisation(c, k, config)
            ifmap_multicast = min(k, config.pe_cols)
        cap = _rbuf_capacity_factor(config, rs)
        weight_reuse = max(1.0, oh * ow * cap)
        ifmap_reuse = max(1.0, float(ifmap_multicast))
        psum_reuse = max(1.0, rs * min(c, config.pe_rows))
    elif flow == Dataflow.OS:
        util = _pair_utilisation(oh, ow, config)
        psum_reuse = max(1.0, float(rs if depthwise_like else c * rs))
        weight_reuse = max(
            1.0, float(min(oh, config.pe_rows) * min(ow, config.pe_cols))
        )
        cap = _rbuf_capacity_factor(config, rs)
        stride_sq = layer.stride * layer.stride
        ifmap_reuse = max(1.0, (rs / stride_sq) * cap)
    elif flow == Dataflow.RS:
        # Filter rows on array rows (replicated to fill), output rows on cols.
        copies = max(1, config.pe_rows // r) if r <= config.pe_rows else 1
        rows_used = min(config.pe_rows, r * copies)
        util_rows = rows_used / config.pe_rows
        repl_dim = oh if depthwise_like else k
        util_rows *= min(1.0, repl_dim / copies) if copies > 1 else 1.0
        util = max(1e-3, util_rows * fold_utilisation(oh, config.pe_cols))
        cap = _rbuf_capacity_factor(config, r + layer.in_size // max(1, layer.stride))
        ifmap_reuse = max(1.0, r * cap)  # each ifmap row feeds r filter rows
        weight_reuse = max(1.0, min(oh, config.pe_cols) * cap)
        psum_reuse = max(1.0, float(rs))
    elif flow == Dataflow.NLR:
        if depthwise_like:
            util = _pair_utilisation(c, oh, config)
        else:
            util = _pair_utilisation(k, oh, config)
        ifmap_reuse = weight_reuse = psum_reuse = 1.0
    else:  # pragma: no cover - config validation prevents this
        raise ValueError(f"unknown dataflow {flow!r}")

    return MappingProfile(
        utilisation=min(1.0, max(1e-4, util)),
        ifmap_reuse=ifmap_reuse,
        weight_reuse=weight_reuse,
        psum_reuse=psum_reuse,
    )
