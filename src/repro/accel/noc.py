"""Network-on-chip (array interconnect) traffic model — optional extension.

Eyeriss-style systolic arrays move operands over row/column buses; the hop
count per delivered word depends on how the dataflow maps loops onto the
array.  This module estimates NoC energy per layer as

    noc_pj = words_injected * mean_hops * e_hop

where ``words_injected`` is the global-buffer read traffic (each word read
from the buffer is injected into the array) and ``mean_hops`` reflects the
delivery pattern: multicast along a full row/column costs ~half the array
span on average; unicast to a single PE costs the full span.

This term is deliberately **off by default** in the simulator
(``SystolicArraySimulator(include_noc=True)`` enables it): the paper's
baseline model does not resolve interconnect energy, and keeping the default
behaviour stable lets the Fig. 4/Table 2 numbers stand.  The extension makes
large PE arrays pay a realistic communication cost, strengthening the
latency/energy trade-off the co-search exploits.

The model has two equivalent evaluation paths: the scalar per-layer methods
used by :class:`~repro.accel.simulator.SystolicArraySimulator`, and the
``*_arrays`` vectorised counterparts the batch engine
(:mod:`repro.accel.batch`) calls so NoC-aware hardware sweeps run at full
batch speed.  Both compute the same formulas; parity is pinned at relative
1e-9 by the batch test suite.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .config import AcceleratorConfig, Dataflow
from .dataflow import MappingProfile
from .workload import WORD_BYTES, LayerWorkload

__all__ = ["NocModel", "DEFAULT_NOC_MODEL"]


@dataclass(frozen=True)
class NocModel:
    """Per-hop energy and dataflow-specific delivery patterns."""

    hop_pj: float = 0.05  # energy to move one word one PE hop

    # ------------------------------------------------------------------
    def mean_hops(self, config: AcceleratorConfig) -> dict[str, float]:
        """Mean delivery hop count per datatype for each dataflow.

        Multicast along a bus reaches all targets in ``span`` hops for the
        whole group (amortised ``span / targets`` per consumer, modelled as
        ``span / 2`` per injected word); unicast pays the mean Manhattan
        distance ``(rows + cols) / 2 / 2``.
        """
        rows, cols = config.pe_rows, config.pe_cols
        row_multicast = rows / 2.0
        col_multicast = cols / 2.0
        unicast = (rows + cols) / 4.0
        flow = config.dataflow
        if flow == Dataflow.WS:
            # ifmaps broadcast along output-channel columns, weights loaded
            # once per tile (unicast), psums accumulate along rows.
            return {"ifmap": col_multicast, "weight": unicast, "psum": row_multicast}
        if flow == Dataflow.OS:
            # weights broadcast to the whole output tile, ifmaps shifted
            # between neighbours (cheap), psums stay put.
            return {"ifmap": 1.0, "weight": (rows + cols) / 2.0, "psum": 0.0}
        if flow == Dataflow.RS:
            # row-stationary: diagonal ifmap delivery, horizontal weight
            # reuse, vertical psum accumulation.
            return {"ifmap": unicast, "weight": col_multicast, "psum": row_multicast}
        # NLR: everything unicast from the global buffer.
        return {"ifmap": unicast, "weight": unicast, "psum": unicast}

    def layer_energy_pj(
        self,
        layer: LayerWorkload,
        config: AcceleratorConfig,
        mapping: MappingProfile,
    ) -> float:
        """NoC energy for one layer under a given spatial mapping."""
        hops = self.mean_hops(config)
        macs = layer.macs
        ifmap_words = macs / mapping.ifmap_reuse
        weight_words = (macs / mapping.weight_reuse) if layer.weight_bytes else 0.0
        psum_words = 2.0 * macs / mapping.psum_reuse
        total_hop_words = (
            ifmap_words * hops["ifmap"]
            + weight_words * hops["weight"]
            + psum_words * hops["psum"]
        )
        return total_hop_words * self.hop_pj

    # ------------------------------------------------------------------
    # Vectorised counterparts (used by repro.accel.batch)
    # ------------------------------------------------------------------

    def mean_hops_arrays(
        self, pe_rows: np.ndarray, pe_cols: np.ndarray, flow_codes: np.ndarray
    ) -> dict[str, np.ndarray]:
        """Vectorised :meth:`mean_hops` over per-layer arrays.

        ``flow_codes`` uses the batch engine's dataflow coding
        (``WS=0, OS=1, RS=2, NLR=3`` — :data:`repro.accel.batch._FLOW_CODES`).
        Formulas mirror the scalar branches exactly, so the batch NoC
        energies agree with the scalar simulator to round-off.
        """
        rows = pe_rows.astype(np.float64)
        cols = pe_cols.astype(np.float64)
        row_multicast = rows / 2.0
        col_multicast = cols / 2.0
        unicast = (rows + cols) / 4.0
        flows = [flow_codes == 0, flow_codes == 1, flow_codes == 2]
        ones = np.ones_like(rows)
        return {
            "ifmap": np.select(
                flows, [col_multicast, ones, unicast], default=unicast
            ),
            "weight": np.select(
                flows, [unicast, (rows + cols) / 2.0, col_multicast],
                default=unicast,
            ),
            "psum": np.select(
                flows, [row_multicast, np.zeros_like(rows), row_multicast],
                default=unicast,
            ),
        }

    def energy_pj_arrays(
        self,
        macs: np.ndarray,
        has_weights: np.ndarray,
        ifmap_reuse: np.ndarray,
        weight_reuse: np.ndarray,
        psum_reuse: np.ndarray,
        pe_rows: np.ndarray,
        pe_cols: np.ndarray,
        flow_codes: np.ndarray,
    ) -> np.ndarray:
        """Vectorised :meth:`layer_energy_pj` over flat layer arrays.

        All inputs are arrays of one value per flat layer (``macs`` and the
        reuse factors from the batch spatial mapping, the config columns
        repeated out to the layer axis); ``has_weights`` masks the weight
        traffic of weightless (pooling) layers, mirroring the scalar
        ``layer.weight_bytes`` check.  Returns NoC picojoules per layer.
        """
        hops = self.mean_hops_arrays(pe_rows, pe_cols, flow_codes)
        ifmap_words = macs / ifmap_reuse
        weight_words = np.where(has_weights, macs / weight_reuse, 0.0)
        psum_words = 2.0 * macs / psum_reuse
        total_hop_words = (
            ifmap_words * hops["ifmap"]
            + weight_words * hops["weight"]
            + psum_words * hops["psum"]
        )
        return total_hop_words * self.hop_pj


DEFAULT_NOC_MODEL = NocModel()
