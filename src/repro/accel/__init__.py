"""Systolic-array accelerator substrate.

The reproduction's equivalent of the paper's modified ``nn_dataflow``
simulator: a configuration space (Table 1), per-layer workload extraction,
dataflow spatial-mapping models (WS/OS/RS/NLR), a global-buffer tiling
mapper, and an analytical latency/energy simulator used as the ground-truth
oracle for the Gaussian-process predictors.
"""

from .config import (
    DATAFLOW_CHOICES,
    GBUF_KB_CHOICES,
    PE_CHOICES,
    RBUF_B_CHOICES,
    AcceleratorConfig,
    Dataflow,
    enumerate_configs,
    hw_space_size,
    random_config,
)
from .dataflow import MappingProfile, spatial_map
from .energy import DEFAULT_ENERGY_MODEL, EnergyModel
from .mapper import Tiling, choose_tiling
from .batch import BatchSimResult, flatten_workloads, simulate_flat
from .simulator import (
    EnergyBreakdown,
    LayerReport,
    NetworkReport,
    SystolicArraySimulator,
)
from .workload import WORD_BYTES, LayerWorkload, network_workloads, reduction_positions

__all__ = [
    "AcceleratorConfig",
    "Dataflow",
    "PE_CHOICES",
    "GBUF_KB_CHOICES",
    "RBUF_B_CHOICES",
    "DATAFLOW_CHOICES",
    "enumerate_configs",
    "hw_space_size",
    "random_config",
    "MappingProfile",
    "spatial_map",
    "EnergyModel",
    "DEFAULT_ENERGY_MODEL",
    "Tiling",
    "choose_tiling",
    "LayerReport",
    "EnergyBreakdown",
    "NetworkReport",
    "BatchSimResult",
    "flatten_workloads",
    "simulate_flat",
    "SystolicArraySimulator",
    "LayerWorkload",
    "network_workloads",
    "reduction_positions",
    "WORD_BYTES",
]
