"""Vectorised batch evaluation of the analytical simulator.

The scalar path (:class:`repro.accel.simulator.SystolicArraySimulator`)
walks every layer in Python: one ``spatial_map`` call, one ``choose_tiling``
grid sweep and one energy roll-up per layer.  That is fine for a single
point but dominates wall-clock when a search scores hundreds of
(network, configuration) candidates per step, or when the two-stage
baseline enumerates all 800 hardware configurations for a fixed network.

This module evaluates a whole *batch* of points at once: every layer of
every point is flattened into numpy arrays, the four dataflow mapping
models and the tiling sweep are computed as array math across the entire
flat layer list, and per-point totals come from segment sums.  The formulas
mirror :mod:`repro.accel.dataflow`, :mod:`repro.accel.mapper` and
:mod:`repro.accel.simulator` operation for operation, so batch results
agree with the scalar simulator to floating-point round-off (the parity
tests pin this at relative 1e-9).

Tiling candidates are additionally deduplicated on their inputs
``(ifmap, weight, ofmap, gbuf)`` before the grid sweep — when one network
is swept across many configurations the same few dozen tuples repeat
hundreds of times, so the dominant (layers x grid) computation shrinks by
that factor.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Sequence

import numpy as np

from .config import AcceleratorConfig, Dataflow
from .energy import EnergyModel
from .mapper import _GBUF_USABLE, _NC, _NK, _NS
from .workload import _POOL_OP_COST, WORD_BYTES, LayerWorkload

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (noc is optional)
    from .noc import NocModel

__all__ = ["BatchSimResult", "flatten_workloads", "simulate_flat"]

#: Layer-kind codes used in the flat arrays.
_KIND_CODES = {"conv": 0, "dwconv": 1, "pool": 2, "linear": 3}
#: Dataflow codes used in the flat arrays.
_FLOW_CODES = {Dataflow.WS: 0, Dataflow.OS: 1, Dataflow.RS: 2, Dataflow.NLR: 3}

#: Maximum unique tiling rows per chunk of the (rows x grid) sweep, bounding
#: peak memory at ~2048 * 1000 * 8 B = 16 MB per intermediate array.
_TILING_CHUNK = 2048

#: Fixed per-layer launch/drain overhead in cycles.  Defined here (rather
#: than in :mod:`repro.accel.simulator`, which imports this module) so the
#: scalar and batch paths share one constant.
_LAYER_OVERHEAD_CYCLES = 500.0


@dataclass(frozen=True)
class BatchSimResult:
    """Per-point aggregate simulation results (arrays of length B).

    The batch engine intentionally returns aggregates only — materialising
    per-layer :class:`~repro.accel.simulator.LayerReport` objects would cost
    more than the simulation itself.  Use the scalar simulator when the
    per-layer breakdown of a specific point is needed.
    """

    latency_ms: np.ndarray
    energy_mj: np.ndarray
    total_macs: np.ndarray
    total_dram_bytes: np.ndarray

    def __len__(self) -> int:
        return len(self.latency_ms)


@dataclass(frozen=True)
class _FlatLayers:
    """Structure-of-arrays layer batch plus per-point segment starts."""

    starts: np.ndarray  # (B,) index of each point's first flat layer
    kind: np.ndarray  # (N,) int codes from _KIND_CODES
    in_channels: np.ndarray
    out_channels: np.ndarray
    in_size: np.ndarray
    kernel: np.ndarray
    stride: np.ndarray
    batch: np.ndarray


def _layer_columns(layers: Sequence[LayerWorkload]) -> np.ndarray:
    """Gather one layer list into a (L, 7) int64 matrix."""
    return np.array(
        [
            (
                _KIND_CODES[l.kind],
                l.in_channels,
                l.out_channels,
                l.in_size,
                l.kernel,
                l.stride,
                l.batch,
            )
            for l in layers
        ],
        dtype=np.int64,
    )


def flatten_workloads(
    workload_lists: Sequence[Sequence[LayerWorkload]],
) -> _FlatLayers:
    """Concatenate per-point layer lists into flat arrays with segment starts."""
    lengths = [len(layers) for layers in workload_lists]
    if any(n == 0 for n in lengths):
        raise ValueError("empty workload list")
    if len(set(map(id, workload_lists))) == 1 and len(workload_lists) > 1:
        # One shared layer list broadcast over B points: gather once, tile.
        cols = np.tile(_layer_columns(workload_lists[0]), (len(workload_lists), 1))
    else:
        cols = np.concatenate([_layer_columns(layers) for layers in workload_lists])
    starts = np.concatenate(([0], np.cumsum(lengths)[:-1]))
    return _FlatLayers(
        starts=starts,
        kind=cols[:, 0],
        in_channels=cols[:, 1],
        out_channels=cols[:, 2],
        in_size=cols[:, 3],
        kernel=cols[:, 4],
        stride=cols[:, 5],
        batch=cols[:, 6],
    )


# ---------------------------------------------------------------------------
# Derived layer shapes (vectorised LayerWorkload properties)
# ---------------------------------------------------------------------------


def _derived_shapes(flat: _FlatLayers) -> dict[str, np.ndarray]:
    """Vectorised macs / out_size / footprint formulas of LayerWorkload."""
    kind = flat.kind
    c, k = flat.in_channels, flat.out_channels
    r, stride, batch = flat.kernel, flat.stride, flat.batch
    is_linear = kind == _KIND_CODES["linear"]
    out_size = np.where(
        is_linear, 1, np.maximum(1, (flat.in_size + stride - 1) // stride)
    )
    plane = out_size * out_size
    # Integer MAC counts are exact below 2^53, so float conversion is too.
    conv_macs = k * c * r**2 * plane
    dw_macs = c * r**2 * plane + k * c * plane
    pool_ops = c * r**2 * plane
    lin_macs = c * k
    per_image = np.select(
        [kind == 0, kind == 1, kind == 2],
        [
            conv_macs.astype(np.float64),
            dw_macs.astype(np.float64),
            pool_ops.astype(np.float64) * _POOL_OP_COST,
        ],
        default=lin_macs.astype(np.float64),
    )
    macs = per_image * batch
    weight_bytes = (
        np.select(
            [kind == 0, kind == 1, kind == 3],
            [k * c * r**2, c * r**2 + c * k, c * k],
            default=0,
        )
        * WORD_BYTES
    )
    ifmap_bytes = (
        np.where(is_linear, c, c * flat.in_size**2) * WORD_BYTES * batch
    )
    ofmap_bytes = np.where(is_linear, k, k * plane) * WORD_BYTES * batch
    return {
        "out_size": out_size,
        "macs": macs,
        "weight_bytes": weight_bytes.astype(np.float64),
        "ifmap_bytes": ifmap_bytes.astype(np.float64),
        "ofmap_bytes": ofmap_bytes.astype(np.float64),
    }


# ---------------------------------------------------------------------------
# Spatial mapping (vectorised repro.accel.dataflow.spatial_map)
# ---------------------------------------------------------------------------


def _fold(dim: np.ndarray, lanes: np.ndarray) -> np.ndarray:
    """Vectorised ``fold_utilisation``: dim / (ceil(dim/lanes) * lanes)."""
    return dim / (np.ceil(dim / lanes) * lanes)


def _spatial_map_arrays(
    flat: _FlatLayers,
    shapes: dict[str, np.ndarray],
    pe_rows: np.ndarray,
    pe_cols: np.ndarray,
    rbuf_bytes: np.ndarray,
    flow: np.ndarray,
) -> dict[str, np.ndarray]:
    """Utilisation and reuse factors for every flat layer at once.

    All four dataflow branches are evaluated over the full arrays and
    selected by the per-layer flow code — 4x redundant arithmetic, but each
    branch is pure array math, which is far cheaper than masked scatters.
    """
    c = flat.in_channels.astype(np.float64)
    k = flat.out_channels.astype(np.float64)
    oh = shapes["out_size"].astype(np.float64)
    r = flat.kernel.astype(np.float64)
    rs = r * r
    stride = flat.stride.astype(np.float64)
    rows = pe_rows.astype(np.float64)
    cols = pe_cols.astype(np.float64)
    dw = (flat.kind == _KIND_CODES["dwconv"]) | (flat.kind == _KIND_CODES["pool"])
    rbuf_words = rbuf_bytes / WORD_BYTES

    def cap_factor(resident: np.ndarray) -> np.ndarray:
        return np.where(resident <= 0, 1.0, np.minimum(1.0, rbuf_words / resident))

    # -- WS -------------------------------------------------------------
    ws_util = np.where(
        dw, _fold(c, rows) * _fold(oh, cols), _fold(c, rows) * _fold(k, cols)
    )
    ws_cap = cap_factor(rs)
    ws_weight = np.maximum(1.0, oh * oh * ws_cap)
    ws_ifmap = np.maximum(1.0, np.where(dw, 1.0, np.minimum(k, cols)))
    ws_psum = np.maximum(1.0, rs * np.minimum(c, rows))
    # -- OS -------------------------------------------------------------
    os_util = _fold(oh, rows) * _fold(oh, cols)
    os_psum = np.maximum(1.0, np.where(dw, rs, c * rs))
    os_weight = np.maximum(1.0, np.minimum(oh, rows) * np.minimum(oh, cols))
    os_cap = cap_factor(rs)
    os_ifmap = np.maximum(1.0, (rs / (stride * stride)) * os_cap)
    # -- RS -------------------------------------------------------------
    copies = np.where(r <= rows, np.maximum(1, pe_rows // flat.kernel), 1).astype(
        np.float64
    )
    rows_used = np.minimum(rows, r * copies)
    util_rows = rows_used / rows
    repl_dim = np.where(dw, oh, k)
    util_rows = util_rows * np.where(
        copies > 1, np.minimum(1.0, repl_dim / copies), 1.0
    )
    rs_util = np.maximum(1e-3, util_rows * _fold(oh, cols))
    rs_resident = r + (flat.in_size // np.maximum(1, flat.stride)).astype(np.float64)
    rs_cap = cap_factor(rs_resident)
    rs_ifmap = np.maximum(1.0, r * rs_cap)
    rs_weight = np.maximum(1.0, np.minimum(oh, cols) * rs_cap)
    rs_psum = np.maximum(1.0, rs)
    # -- NLR ------------------------------------------------------------
    nlr_util = np.where(
        dw, _fold(c, rows) * _fold(oh, cols), _fold(k, rows) * _fold(oh, cols)
    )
    ones = np.ones_like(c)

    flows = [flow == 0, flow == 1, flow == 2]
    util = np.select(flows, [ws_util, os_util, rs_util], default=nlr_util)
    return {
        "utilisation": np.minimum(1.0, np.maximum(1e-4, util)),
        "ifmap_reuse": np.select(flows, [ws_ifmap, os_ifmap, rs_ifmap], default=ones),
        "weight_reuse": np.select(
            flows, [ws_weight, os_weight, rs_weight], default=ones
        ),
        "psum_reuse": np.select(flows, [ws_psum, os_psum, rs_psum], default=ones),
    }


# ---------------------------------------------------------------------------
# Tiling (vectorised repro.accel.mapper.choose_tiling)
# ---------------------------------------------------------------------------


def _tiling_dram_bytes(
    ifmap: np.ndarray, weight: np.ndarray, ofmap: np.ndarray, gbuf_bytes: np.ndarray
) -> np.ndarray:
    """Minimum-traffic DRAM bytes per flat layer (deduplicated grid sweep)."""
    rows = np.column_stack((ifmap, weight, ofmap, gbuf_bytes))
    uniq, inverse = np.unique(rows, axis=0, return_inverse=True)
    out = np.empty(len(uniq), dtype=np.float64)
    for lo in range(0, len(uniq), _TILING_CHUNK):
        chunk = uniq[lo : lo + _TILING_CHUNK]
        u_if = chunk[:, 0][:, None]
        u_w = chunk[:, 1][:, None]
        u_of = chunk[:, 2][:, None]
        budget = (chunk[:, 3] * _GBUF_USABLE)[:, None]
        grid_ncns = (_NC * _NS)[None, :]
        grid_ncnk = (_NC * _NK)[None, :]
        grid_nkns = (_NK * _NS)[None, :]
        tile_set = u_if / grid_ncns + u_w / grid_ncnk + u_of / grid_nkns
        feasible = tile_set <= budget
        t_weight = u_w * _NS[None, :]
        t_ifmap = u_if * _NK[None, :]
        t_ofmap = u_of * (2 * _NC - 1)[None, :]
        traffic = t_weight + t_ifmap + t_ofmap
        masked = np.where(feasible, traffic, np.inf)
        best = np.argmin(masked, axis=1)
        # Infeasible rows fall back to the finest blocking (scalar parity).
        best = np.where(feasible.any(axis=1), best, len(_NC) - 1)
        take = np.arange(len(chunk))
        out[lo : lo + _TILING_CHUNK] = (
            t_ifmap[take, best] + t_weight[take, best] + t_ofmap[take, best]
        )
    return out[inverse]


# ---------------------------------------------------------------------------
# Full batch simulation
# ---------------------------------------------------------------------------


def simulate_flat(
    workload_lists: Sequence[Sequence[LayerWorkload]],
    configs: Sequence[AcceleratorConfig],
    energy_model: EnergyModel,
    noc_model: "NocModel | None" = None,
) -> BatchSimResult:
    """Simulate ``B`` (layers, config) points with one pass of array math.

    ``workload_lists`` holds one layer list per point (``len == len(configs)``;
    lists may be ragged — points need not share a layer count).  Passing a
    ``noc_model`` adds the array-interconnect energy term as vectorised
    array math (:meth:`repro.accel.noc.NocModel.energy_pj_arrays`), matching
    ``SystolicArraySimulator(include_noc=True)`` to round-off — NoC-aware
    sweeps run at full batch speed, not through a scalar fallback.
    Returns per-point aggregate arrays of length ``B``
    (:class:`BatchSimResult`); parity with the scalar simulator is pinned
    at relative 1e-9 by the test suite.
    """
    if len(workload_lists) != len(configs):
        raise ValueError(
            f"{len(workload_lists)} workload lists but {len(configs)} configs"
        )
    if not configs:
        raise ValueError("empty batch")
    flat = flatten_workloads(workload_lists)
    shapes = _derived_shapes(flat)
    em = energy_model

    # Per-point config columns, repeated out to the flat layer axis.
    lengths = np.diff(np.append(flat.starts, len(flat.kind)))
    pe_rows_pt = np.array([c.pe_rows for c in configs], dtype=np.int64)
    pe_cols_pt = np.array([c.pe_cols for c in configs], dtype=np.int64)
    gbuf_pt = np.array([c.gbuf_bytes for c in configs], dtype=np.float64)
    rbuf_pt = np.array([c.rbuf_bytes for c in configs], dtype=np.float64)
    flow_pt = np.array([_FLOW_CODES[c.dataflow] for c in configs], dtype=np.int64)
    leak_pt = np.array(
        [em.leakage_pj_per_cycle(c) for c in configs], dtype=np.float64
    )
    rep = np.repeat(np.arange(len(configs)), lengths)

    mapping = _spatial_map_arrays(
        flat,
        shapes,
        pe_rows_pt[rep],
        pe_cols_pt[rep],
        rbuf_pt[rep],
        flow_pt[rep],
    )
    num_pes = (pe_rows_pt * pe_cols_pt).astype(np.float64)[rep]
    macs = shapes["macs"]

    compute_cycles = macs / (num_pes * mapping["utilisation"])
    dram_bytes = _tiling_dram_bytes(
        shapes["ifmap_bytes"], shapes["weight_bytes"], shapes["ofmap_bytes"], gbuf_pt[rep]
    )
    dram_cycles = dram_bytes / em.dram_bw_bytes_per_cycle
    cycles = np.maximum(compute_cycles, dram_cycles) + _LAYER_OVERHEAD_CYCLES

    gbuf_words = macs / mapping["ifmap_reuse"] + 2.0 * macs / mapping["psum_reuse"]
    gbuf_words = gbuf_words + np.where(
        shapes["weight_bytes"] > 0, macs / mapping["weight_reuse"], 0.0
    )
    gbuf_words = gbuf_words + dram_bytes / WORD_BYTES
    energy_pj = (
        macs * em.mac_pj
        + (3.0 * macs) * em.rbuf_pj
        + gbuf_words * em.gbuf_pj
        + (dram_bytes / WORD_BYTES) * em.dram_pj
        + leak_pt[rep] * cycles
    )
    if noc_model is not None:
        energy_pj = energy_pj + noc_model.energy_pj_arrays(
            macs=macs,
            has_weights=shapes["weight_bytes"] > 0,
            ifmap_reuse=mapping["ifmap_reuse"],
            weight_reuse=mapping["weight_reuse"],
            psum_reuse=mapping["psum_reuse"],
            pe_rows=pe_rows_pt[rep],
            pe_cols=pe_cols_pt[rep],
            flow_codes=flow_pt[rep],
        )

    cycles_total = np.add.reduceat(cycles, flat.starts)
    energy_total = np.add.reduceat(energy_pj, flat.starts)
    return BatchSimResult(
        latency_ms=em.cycles_to_ms(cycles_total),
        energy_mj=energy_total * 1e-9,
        total_macs=np.add.reduceat(macs, flat.starts),
        total_dram_bytes=np.add.reduceat(dram_bytes, flat.starts),
    )
