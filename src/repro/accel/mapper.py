"""Loop-tiling mapper: chooses how a layer is blocked through the global
buffer and derives the resulting DRAM traffic.

The classical three-way blocking is over input channels (``nc`` tiles),
output channels (``nk`` tiles) and the output plane (``ns`` spatial tiles).
A candidate tiling is feasible when one tile of each datatype fits in the
global buffer simultaneously.  DRAM traffic then follows the standard
reload model:

* weights are re-fetched once per spatial tile        -> ``weight * ns``
* ifmaps are re-fetched once per output-channel tile  -> ``ifmap * nk``
* psums spill once per extra input-channel tile       -> ``ofmap * (2*nc - 1)``

The mapper enumerates a small candidate grid and returns the tiling with the
lowest DRAM traffic (the dominant energy term), which is what an energy-aware
compiler would pick.  An infeasible layer (working set larger than any
tiling allows) falls back to streaming everything, i.e. the worst tiling.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .config import AcceleratorConfig
from .workload import LayerWorkload

__all__ = ["Tiling", "choose_tiling", "TILE_GRID"]

#: Candidate tile counts per blocked dimension.
TILE_GRID: tuple[int, ...] = (1, 2, 3, 4, 6, 8, 12, 16, 24, 32)

#: Fraction of the global buffer usable for tiles (the rest is double-
#: buffering/control overhead).
_GBUF_USABLE = 0.9


@dataclass(frozen=True)
class Tiling:
    """A chosen blocking and its DRAM traffic."""

    nc: int  # input-channel tile count
    nk: int  # output-channel tile count
    ns: int  # spatial tile count
    dram_ifmap_bytes: float
    dram_weight_bytes: float
    dram_ofmap_bytes: float
    feasible: bool

    @property
    def dram_bytes(self) -> float:
        return self.dram_ifmap_bytes + self.dram_weight_bytes + self.dram_ofmap_bytes


# Precomputed cartesian grid (vectorised feasibility/traffic evaluation).
_NC, _NK, _NS = (g.ravel() for g in np.meshgrid(TILE_GRID, TILE_GRID, TILE_GRID, indexing="ij"))


def choose_tiling(layer: LayerWorkload, config: AcceleratorConfig) -> Tiling:
    """Pick the minimum-DRAM-traffic feasible tiling for ``layer``."""
    ifmap = float(layer.ifmap_bytes)
    weight = float(layer.weight_bytes)
    ofmap = float(layer.ofmap_bytes)
    budget = config.gbuf_bytes * _GBUF_USABLE

    # Tile working set per candidate (vectorised over the grid).
    tile_set = ifmap / (_NC * _NS) + weight / (_NC * _NK) + ofmap / (_NK * _NS)
    feasible = tile_set <= budget
    # Traffic per candidate.  Weights may be absent (pooling): no reloads.
    t_weight = weight * _NS
    t_ifmap = ifmap * _NK
    t_ofmap = ofmap * (2 * _NC - 1)
    traffic = t_weight + t_ifmap + t_ofmap
    if feasible.any():
        masked = np.where(feasible, traffic, np.inf)
        best = int(np.argmin(masked))
        return Tiling(
            nc=int(_NC[best]),
            nk=int(_NK[best]),
            ns=int(_NS[best]),
            dram_ifmap_bytes=float(t_ifmap[best]),
            dram_weight_bytes=float(t_weight[best]),
            dram_ofmap_bytes=float(t_ofmap[best]),
            feasible=True,
        )
    # Nothing fits: stream at the finest blocking (pessimistic fallback).
    worst = len(_NC) - 1
    return Tiling(
        nc=int(_NC[worst]),
        nk=int(_NK[worst]),
        ns=int(_NS[worst]),
        dram_ifmap_bytes=float(t_ifmap[worst]),
        dram_weight_bytes=float(t_weight[worst]),
        dram_ofmap_bytes=float(t_ofmap[worst]),
        feasible=False,
    )
