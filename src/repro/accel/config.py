"""Systolic-array accelerator configuration space (Table 1 of the paper).

The configurable parameters before the accelerator design is finalised:

* ``Processing Element (PE)`` — PE array size, range 8x8 ... 16x32.
* ``g_buf``  — global (L2) buffer size, range 108 ... 1024 KB.
* ``r_buf``  — per-PE register buffer size, range 64 ... 1024 bytes.
* ``data_flow`` — weight stationary (WS), output stationary (OS),
  row stationary (RS) or no local reuse (NLR).

The discrete choice lists below cover every value that appears in Table 2
of the paper (16x32, 14x16, 16x20, 16x16 PE arrays; 108/196/256/512 KB
global buffers; 128/256/512/1024 B register buffers; all four dataflows),
giving an enumerable hardware space for the two-stage baseline.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Iterator

__all__ = [
    "Dataflow",
    "AcceleratorConfig",
    "PE_CHOICES",
    "GBUF_KB_CHOICES",
    "RBUF_B_CHOICES",
    "DATAFLOW_CHOICES",
    "enumerate_configs",
    "hw_space_size",
    "random_config",
]


class Dataflow:
    """Dataflow identifiers (string enum kept simple for serialisation)."""

    WS = "WS"  # weight stationary
    OS = "OS"  # output stationary
    RS = "RS"  # row stationary
    NLR = "NLR"  # no local reuse

    ALL = (WS, OS, RS, NLR)


#: PE array geometries (rows, cols); spans the paper's 8x8 ... 16x32 range.
PE_CHOICES: tuple[tuple[int, int], ...] = (
    (8, 8),
    (8, 16),
    (12, 16),
    (14, 16),
    (16, 16),
    (16, 20),
    (16, 24),
    (16, 32),
)

#: Global buffer sizes in KB (paper range 108 ... 1024 KB).
GBUF_KB_CHOICES: tuple[int, ...] = (108, 196, 256, 512, 1024)

#: Register (per-PE local) buffer sizes in bytes (paper range 64 ... 1024 B).
RBUF_B_CHOICES: tuple[int, ...] = (64, 128, 256, 512, 1024)

DATAFLOW_CHOICES: tuple[str, ...] = Dataflow.ALL


@dataclass(frozen=True)
class AcceleratorConfig:
    """One point in the accelerator design space."""

    pe_rows: int
    pe_cols: int
    gbuf_kb: int
    rbuf_bytes: int
    dataflow: str

    def __post_init__(self) -> None:
        if self.pe_rows < 1 or self.pe_cols < 1:
            raise ValueError("PE array dimensions must be positive")
        if self.gbuf_kb < 1:
            raise ValueError("global buffer must be at least 1 KB")
        if self.rbuf_bytes < 1:
            raise ValueError("register buffer must be at least 1 byte")
        if self.dataflow not in Dataflow.ALL:
            raise ValueError(
                f"unknown dataflow {self.dataflow!r}; choose from {Dataflow.ALL}"
            )

    # ------------------------------------------------------------------
    @property
    def num_pes(self) -> int:
        return self.pe_rows * self.pe_cols

    @property
    def gbuf_bytes(self) -> int:
        return self.gbuf_kb * 1024

    def describe(self) -> str:
        """Table-2 style description, e.g. ``16*32/512KB/512B/OS``."""
        return (
            f"{self.pe_rows}*{self.pe_cols}/{self.gbuf_kb}KB/"
            f"{self.rbuf_bytes}B/{self.dataflow}"
        )

    def to_dict(self) -> dict:
        return {
            "pe_rows": self.pe_rows,
            "pe_cols": self.pe_cols,
            "gbuf_kb": self.gbuf_kb,
            "rbuf_bytes": self.rbuf_bytes,
            "dataflow": self.dataflow,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "AcceleratorConfig":
        return cls(**data)


def enumerate_configs() -> Iterator[AcceleratorConfig]:
    """Every point of the discrete hardware space (two-stage enumeration)."""
    for (rows, cols), gbuf, rbuf, flow in itertools.product(
        PE_CHOICES, GBUF_KB_CHOICES, RBUF_B_CHOICES, DATAFLOW_CHOICES
    ):
        yield AcceleratorConfig(rows, cols, gbuf, rbuf, flow)


def hw_space_size() -> int:
    """Number of distinct hardware configurations."""
    return len(PE_CHOICES) * len(GBUF_KB_CHOICES) * len(RBUF_B_CHOICES) * len(DATAFLOW_CHOICES)


def random_config(rng) -> AcceleratorConfig:
    """Uniformly sample one hardware configuration."""
    rows, cols = PE_CHOICES[int(rng.integers(0, len(PE_CHOICES)))]
    return AcceleratorConfig(
        pe_rows=rows,
        pe_cols=cols,
        gbuf_kb=GBUF_KB_CHOICES[int(rng.integers(0, len(GBUF_KB_CHOICES)))],
        rbuf_bytes=RBUF_B_CHOICES[int(rng.integers(0, len(RBUF_B_CHOICES)))],
        dataflow=DATAFLOW_CHOICES[int(rng.integers(0, len(DATAFLOW_CHOICES)))],
    )
