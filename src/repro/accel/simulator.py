"""Analytical systolic-array performance simulator.

This is the reproduction's stand-in for the paper's modified ``nn_dataflow``
(TETRIS) simulator: it measures latency (ms) and energy (mJ) of a network on
a configured accelerator, layer by layer.  Per layer it combines

1. the dataflow spatial mapping (:mod:`repro.accel.dataflow`) — PE
   utilisation and register-level reuse,
2. the global-buffer tiling (:mod:`repro.accel.mapper`) — DRAM traffic, and
3. the energy model (:mod:`repro.accel.energy`) — per-event costs plus
   leakage over the layer's runtime.

Latency per layer is ``max(compute cycles, DRAM cycles)`` (perfect
double-buffering overlap) plus a fixed per-layer launch overhead.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

import numpy as np

from .batch import _LAYER_OVERHEAD_CYCLES, BatchSimResult, simulate_flat
from .config import AcceleratorConfig
from .dataflow import MappingProfile, spatial_map
from .energy import DEFAULT_ENERGY_MODEL, EnergyModel
from .mapper import Tiling, choose_tiling
from .workload import WORD_BYTES, LayerWorkload, network_workloads

__all__ = [
    "BatchSimResult",
    "EnergyBreakdown",
    "LayerReport",
    "NetworkReport",
    "SystolicArraySimulator",
]

@dataclass(frozen=True)
class EnergyBreakdown:
    """Energy split by component (picojoules), Eyeriss-style."""

    mac_pj: float
    rbuf_pj: float
    gbuf_pj: float
    dram_pj: float
    leakage_pj: float
    noc_pj: float = 0.0

    @property
    def total_pj(self) -> float:
        return (
            self.mac_pj + self.rbuf_pj + self.gbuf_pj + self.dram_pj
            + self.leakage_pj + self.noc_pj
        )

    def fractions(self) -> dict[str, float]:
        """Per-component share of the total (sums to 1)."""
        total = max(self.total_pj, 1e-30)
        return {
            "mac": self.mac_pj / total,
            "rbuf": self.rbuf_pj / total,
            "gbuf": self.gbuf_pj / total,
            "dram": self.dram_pj / total,
            "leakage": self.leakage_pj / total,
            "noc": self.noc_pj / total,
        }


@dataclass(frozen=True)
class LayerReport:
    """Per-layer simulation result."""

    name: str
    macs: float
    utilisation: float
    compute_cycles: float
    dram_cycles: float
    cycles: float
    dram_bytes: float
    energy_pj: float
    mapping: MappingProfile
    tiling: Tiling
    breakdown: EnergyBreakdown


@dataclass(frozen=True)
class NetworkReport:
    """Whole-network simulation result."""

    layers: tuple[LayerReport, ...]
    latency_ms: float
    energy_mj: float
    total_macs: float
    total_dram_bytes: float

    @property
    def energy_per_mac_pj(self) -> float:
        return self.energy_mj * 1e9 / max(self.total_macs, 1.0)

    @property
    def mean_utilisation(self) -> float:
        """MAC-weighted mean PE-array utilisation across layers."""
        total = sum(r.macs for r in self.layers)
        if total <= 0:
            return 0.0
        return sum(r.utilisation * r.macs for r in self.layers) / total

    def top_energy_layers(self, n: int = 5) -> list[LayerReport]:
        """The ``n`` most energy-hungry layers (profiling aid)."""
        return sorted(self.layers, key=lambda r: r.energy_pj, reverse=True)[:n]

    def energy_breakdown(self) -> EnergyBreakdown:
        """Whole-network energy split by component."""
        return EnergyBreakdown(
            mac_pj=sum(r.breakdown.mac_pj for r in self.layers),
            rbuf_pj=sum(r.breakdown.rbuf_pj for r in self.layers),
            gbuf_pj=sum(r.breakdown.gbuf_pj for r in self.layers),
            dram_pj=sum(r.breakdown.dram_pj for r in self.layers),
            leakage_pj=sum(r.breakdown.leakage_pj for r in self.layers),
            noc_pj=sum(r.breakdown.noc_pj for r in self.layers),
        )

    def to_text(self, top: int = 5) -> str:
        """Human-readable summary with a per-layer energy breakdown."""
        lines = [
            f"latency   : {self.latency_ms:.4f} ms",
            f"energy    : {self.energy_mj:.4f} mJ "
            f"({self.energy_per_mac_pj:.2f} pJ/MAC)",
            f"MACs      : {self.total_macs:.3e}",
            f"DRAM      : {self.total_dram_bytes / 1024:.1f} KiB",
            f"mean util : {100 * self.mean_utilisation:.1f}%",
            f"top {top} layers by energy:",
        ]
        for r in self.top_energy_layers(top):
            lines.append(
                f"  {r.name:36s} {r.energy_pj * 1e-9:.5f} mJ "
                f"util={100 * r.utilisation:.0f}% "
                f"dram={r.dram_bytes / 1024:.1f} KiB"
            )
        return "\n".join(lines)


class SystolicArraySimulator:
    """Ground-truth oracle mapping (network, config) -> latency & energy.

    ``include_noc=True`` adds the array-interconnect energy term of
    :mod:`repro.accel.noc` (off by default to keep the baseline model
    faithful to the paper's; see the NoC module docstring).
    """

    def __init__(
        self,
        energy_model: EnergyModel | None = None,
        include_noc: bool = False,
        noc_model=None,
    ) -> None:
        self.energy_model = energy_model or DEFAULT_ENERGY_MODEL
        self.include_noc = include_noc
        if include_noc:
            from .noc import DEFAULT_NOC_MODEL

            self.noc_model = noc_model or DEFAULT_NOC_MODEL
        else:
            self.noc_model = noc_model

    # ------------------------------------------------------------------
    def simulate_layer(self, layer: LayerWorkload, config: AcceleratorConfig) -> LayerReport:
        """Simulate one layer on one configuration."""
        em = self.energy_model
        mapping = spatial_map(layer, config)
        tiling = choose_tiling(layer, config)
        macs = layer.macs

        compute_cycles = macs / (config.num_pes * mapping.utilisation)
        dram_bytes = tiling.dram_bytes
        dram_cycles = dram_bytes / em.dram_bw_bytes_per_cycle
        cycles = max(compute_cycles, dram_cycles) + _LAYER_OVERHEAD_CYCLES

        # Global-buffer word accesses per datatype: 1/ reuse per MAC, psums
        # need a read and a write.  Weightless layers skip the weight term.
        gbuf_words = macs / mapping.ifmap_reuse + 2.0 * macs / mapping.psum_reuse
        if layer.weight_bytes > 0:
            gbuf_words += macs / mapping.weight_reuse
        # DRAM refills also pass through the global buffer once.
        gbuf_words += dram_bytes / WORD_BYTES
        # Register-file traffic: every MAC moves ~3 operands at the RF level.
        rbuf_words = 3.0 * macs

        noc_pj = 0.0
        if self.include_noc and self.noc_model is not None:
            noc_pj = self.noc_model.layer_energy_pj(layer, config, mapping)
        breakdown = EnergyBreakdown(
            mac_pj=macs * em.mac_pj,
            rbuf_pj=rbuf_words * em.rbuf_pj,
            gbuf_pj=gbuf_words * em.gbuf_pj,
            dram_pj=(dram_bytes / WORD_BYTES) * em.dram_pj,
            leakage_pj=em.leakage_pj_per_cycle(config) * cycles,
            noc_pj=noc_pj,
        )
        return LayerReport(
            name=layer.name,
            macs=macs,
            utilisation=mapping.utilisation,
            compute_cycles=compute_cycles,
            dram_cycles=dram_cycles,
            cycles=cycles,
            dram_bytes=dram_bytes,
            energy_pj=breakdown.total_pj,
            mapping=mapping,
            tiling=tiling,
            breakdown=breakdown,
        )

    # ------------------------------------------------------------------
    def simulate_network(
        self, layers: list[LayerWorkload], config: AcceleratorConfig
    ) -> NetworkReport:
        """Simulate a full per-layer workload list."""
        if not layers:
            raise ValueError("empty workload list")
        reports = tuple(self.simulate_layer(layer, config) for layer in layers)
        cycles = sum(r.cycles for r in reports)
        energy_pj = sum(r.energy_pj for r in reports)
        return NetworkReport(
            layers=reports,
            latency_ms=self.energy_model.cycles_to_ms(cycles),
            energy_mj=energy_pj * 1e-9,
            total_macs=sum(r.macs for r in reports),
            total_dram_bytes=sum(r.dram_bytes for r in reports),
        )

    # ------------------------------------------------------------------
    def simulate_many(
        self,
        workloads: Sequence[LayerWorkload] | Sequence[Sequence[LayerWorkload]],
        configs: Sequence[AcceleratorConfig],
    ) -> BatchSimResult:
        """Simulate a batch of (layers, config) points with array math.

        ``workloads`` is either one layer list — broadcast across every
        configuration, the two-stage enumeration pattern — or one layer
        list per configuration (ragged lists are fine).  Results match
        :meth:`simulate_network` to floating-point round-off, including
        with ``include_noc=True``: the NoC hop/energy model is evaluated
        as vectorised array math inside the batch engine, so NoC-aware
        sweeps enjoy the same speedup as the baseline model.  Only
        per-point aggregates are returned
        (see :class:`~repro.accel.batch.BatchSimResult`).
        """
        configs = list(configs)
        if not configs:
            raise ValueError("empty config batch")
        if workloads and isinstance(workloads[0], LayerWorkload):
            workload_lists: list[Sequence[LayerWorkload]] = [workloads] * len(configs)
        else:
            workload_lists = list(workloads)  # type: ignore[arg-type]
        if len(workload_lists) != len(configs):
            raise ValueError(
                f"{len(workload_lists)} workload lists but {len(configs)} configs"
            )
        return simulate_flat(
            workload_lists,
            configs,
            self.energy_model,
            noc_model=self.noc_model if self.include_noc else None,
        )

    # ------------------------------------------------------------------
    def simulate_genotypes(
        self,
        pairs: Sequence[tuple],
        num_cells: int = 6,
        stem_channels: int = 16,
        image_size: int = 32,
        num_classes: int = 10,
        batch: int = 1,
    ) -> BatchSimResult:
        """Batch counterpart of :meth:`simulate_genotype`.

        ``pairs`` is a sequence of ``(genotype, config)`` tuples (e.g.
        unpacked :class:`~repro.nas.encoding.CoDesignPoint` instances).
        """
        workload_lists = [
            network_workloads(
                genotype,
                num_cells=num_cells,
                stem_channels=stem_channels,
                image_size=image_size,
                num_classes=num_classes,
                batch=batch,
            )
            for genotype, _config in pairs
        ]
        return self.simulate_many(workload_lists, [config for _g, config in pairs])

    # ------------------------------------------------------------------
    def simulate_genotype(
        self,
        genotype,
        config: AcceleratorConfig,
        num_cells: int = 6,
        stem_channels: int = 16,
        image_size: int = 32,
        num_classes: int = 10,
        batch: int = 1,
    ) -> NetworkReport:
        """Convenience wrapper: expand a genotype and simulate it."""
        layers = network_workloads(
            genotype,
            num_cells=num_cells,
            stem_channels=stem_channels,
            image_size=image_size,
            num_classes=num_classes,
            batch=batch,
        )
        return self.simulate_network(layers, config)
