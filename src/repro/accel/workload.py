"""Layer workloads: the tensor shapes the accelerator model consumes.

A :class:`LayerWorkload` captures one operator instance (convolution,
depthwise convolution, pooling or the final classifier) with concrete
shapes.  :func:`network_workloads` walks a cell genotype exactly the way
:mod:`repro.nas.network` builds the trainable network, so the analytical
simulator and the numpy network agree on what is being accelerated.

The genotype argument is duck-typed (any object with ``normal`` / ``reduce``
cells of ``nodes`` with ``input1/input2/op1/op2``) to keep this package free
of imports from :mod:`repro.nas`.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["LayerWorkload", "network_workloads", "WORD_BYTES"]

#: Datapath word size in bytes (16-bit fixed point, as in TETRIS/nn_dataflow).
WORD_BYTES: int = 2

#: Relative compute cost of a pooling "op" vs a MAC (comparators are cheap).
_POOL_OP_COST: float = 0.25


@dataclass(frozen=True)
class LayerWorkload:
    """One operator with fully resolved shapes.

    Attributes
    ----------
    name:
        Human-readable identifier, e.g. ``"cell3.node4.op1:conv3x3"``.
    kind:
        ``"conv"`` | ``"dwconv"`` | ``"pool"`` | ``"linear"``.
    in_channels, out_channels:
        Channel counts (for pooling they are equal).
    in_size:
        Input spatial size (square feature maps).
    kernel, stride:
        Square window geometry; padding is SAME (size only shrinks by stride).
    batch:
        Inference batch size (the paper evaluates single-image inference,
        batch 1; larger batches amortise weight traffic).
    """

    name: str
    kind: str
    in_channels: int
    out_channels: int
    in_size: int
    kernel: int
    stride: int
    batch: int = 1

    def __post_init__(self) -> None:
        if self.kind not in ("conv", "dwconv", "pool", "linear"):
            raise ValueError(f"unknown layer kind {self.kind!r}")
        if min(self.in_channels, self.out_channels, self.in_size, self.kernel,
               self.stride, self.batch) < 1:
            raise ValueError(f"non-positive dimension in workload {self.name!r}")

    # -- derived shapes ----------------------------------------------------
    @property
    def out_size(self) -> int:
        """SAME-padded output spatial size."""
        if self.kind == "linear":
            return 1
        return max(1, (self.in_size + self.stride - 1) // self.stride)

    @property
    def macs(self) -> float:
        """Multiply-accumulate count (pooling counted at comparator cost)."""
        oh = ow = self.out_size
        if self.kind == "conv":
            per_image = self.out_channels * self.in_channels * self.kernel**2 * oh * ow
        elif self.kind == "dwconv":
            depthwise = self.in_channels * self.kernel**2 * oh * ow
            pointwise = self.out_channels * self.in_channels * oh * ow
            per_image = depthwise + pointwise
        elif self.kind == "pool":
            per_image = self.in_channels * self.kernel**2 * oh * ow * _POOL_OP_COST
        else:  # linear
            per_image = self.in_channels * self.out_channels
        return float(per_image) * self.batch

    @property
    def weight_bytes(self) -> int:
        if self.kind == "conv":
            count = self.out_channels * self.in_channels * self.kernel**2
        elif self.kind == "dwconv":
            count = self.in_channels * self.kernel**2 + self.in_channels * self.out_channels
        elif self.kind == "linear":
            count = self.in_channels * self.out_channels
        else:  # pooling has no weights
            count = 0
        return count * WORD_BYTES

    @property
    def ifmap_bytes(self) -> int:
        if self.kind == "linear":
            return self.in_channels * WORD_BYTES * self.batch
        return self.in_channels * self.in_size**2 * WORD_BYTES * self.batch

    @property
    def ofmap_bytes(self) -> int:
        if self.kind == "linear":
            return self.out_channels * WORD_BYTES * self.batch
        return self.out_channels * self.out_size**2 * WORD_BYTES * self.batch

    @property
    def total_bytes(self) -> int:
        return self.weight_bytes + self.ifmap_bytes + self.ofmap_bytes


# ---------------------------------------------------------------------------
# Genotype -> workload list
# ---------------------------------------------------------------------------


def network_workloads(
    genotype,
    num_cells: int = 6,
    stem_channels: int = 16,
    image_size: int = 32,
    num_classes: int = 10,
    batch: int = 1,
) -> list[LayerWorkload]:
    """Expand a genotype into the full per-layer workload list.

    Mirrors :class:`repro.nas.network.CellNetwork`: a 3x3 stem convolution,
    ``num_cells`` cells with reductions at 1/3 and 2/3 depth (channel count
    doubles at each reduction), per-cell 1x1 input preprocessing, the two ops
    of every computed node, and a final global-pool + linear classifier.
    """
    layers: list[LayerWorkload] = [
        LayerWorkload("stem", "conv", 3, stem_channels, image_size, 3, 1, batch)
    ]
    reduction_at = reduction_positions(num_cells)
    channels = stem_channels
    size = image_size
    # (channels, spatial size) of the two previous cell outputs.
    prev_prev = (stem_channels, image_size)
    prev = (stem_channels, image_size)
    for cell_idx in range(num_cells):
        is_reduction = cell_idx in reduction_at
        if is_reduction:
            channels *= 2
        cell = genotype.reduce if is_reduction else genotype.normal
        # 1x1 preprocessing of the two inputs to `channels` at `size`.
        for tag, (c_in, s_in) in (("pre0", prev_prev), ("pre1", prev)):
            stride = max(1, s_in // size)
            layers.append(
                LayerWorkload(
                    f"cell{cell_idx}.{tag}", "conv", c_in, channels, s_in, 1,
                    stride, batch,
                )
            )
        out_size = size // 2 if is_reduction else size
        for offset, node in enumerate(cell.nodes):
            node_idx = offset + 2
            for slot, (inp, op_name) in enumerate(
                ((node.input1, node.op1), (node.input2, node.op2)), start=1
            ):
                # In a reduction cell, edges fed by the cell inputs run at
                # stride 2; edges between computed nodes run at stride 1 and
                # already see the reduced size.
                from_input = inp < 2
                stride = 2 if (is_reduction and from_input) else 1
                in_size = size if (is_reduction and from_input) else out_size
                kind, kernel = _op_shape(op_name)
                layers.append(
                    LayerWorkload(
                        f"cell{cell_idx}.node{node_idx}.op{slot}:{op_name}",
                        kind,
                        channels,
                        channels,
                        in_size,
                        kernel,
                        stride,
                        batch,
                    )
                )
        loose = cell.loose_ends()
        prev_prev = prev
        prev = (channels * len(loose), out_size)
        size = out_size
    layers.append(
        LayerWorkload("classifier", "linear", prev[0], num_classes, 1, 1, 1, batch)
    )
    return layers


def reduction_positions(num_cells: int) -> tuple[int, ...]:
    """Indices of reduction cells: 1/3 and 2/3 depth (paper: 2 of 6 cells)."""
    if num_cells < 3:
        return (num_cells - 1,) if num_cells > 1 else ()
    return (num_cells // 3, (2 * num_cells) // 3)


def _op_shape(op_name: str) -> tuple[str, int]:
    """Map an op name to (workload kind, kernel size)."""
    table = {
        "conv3x3": ("conv", 3),
        "conv5x5": ("conv", 5),
        "dwconv3x3": ("dwconv", 3),
        "dwconv5x5": ("dwconv", 5),
        "maxpool3x3": ("pool", 3),
        "avgpool3x3": ("pool", 3),
    }
    try:
        return table[op_name]
    except KeyError:
        raise KeyError(f"unknown operation {op_name!r}") from None
