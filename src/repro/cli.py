"""Command-line interface: regenerate any paper artefact from the shell.

Usage (installed as ``python -m repro.cli`` or the ``yoso`` console script):

    yoso run      [--scale demo] [--seed 0]       # full 3-step pipeline
    yoso fig4     [--scale demo]                  # predictor comparison
    yoso fig5     [--scale demo] [--models 10]    # HyperNet effectiveness
    yoso fig6     [--scale demo] [--iterations N] # search strategy figures
    yoso table2   [--scale demo] [--iterations N] # two-stage comparison
    yoso space                                     # search-space statistics
    yoso serve    [--scale demo] [--port 7777]    # search-evaluation service
    yoso stats    HOST:PORT [--json]              # live service telemetry
    yoso lint     [PATHS] [--json] [--rule ID]    # invariant checker (repro.analysis)
"""

from __future__ import annotations

import argparse
import sys


def _add_common(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--scale", default="demo", choices=["smoke", "demo", "paper"])
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--workers", type=int, default=1,
        help="worker processes for candidate scoring and stand-alone "
             "training (1 = in-process; search/training-driven commands "
             "only, results are bit-identical)")
    parser.add_argument(
        "--train-fast", action="store_true",
        help="run stand-alone training under the compact-cache training "
             "kernels (same recipe, gradients match the standard kernels "
             "at rel 1e-6; default keeps the paper-fidelity kernels)")
    parser.add_argument(
        "--store", default=None, metavar="PATH",
        help="durable result-store file (repro.store): persisted "
             "simulator samples, fast evaluations and trained accuracies "
             "are replayed bit-identically and fresh results appended, so "
             "repeat runs and service restarts are warm (default: no "
             "store, byte-identical to store-less behaviour)")


def cmd_run(args: argparse.Namespace) -> int:
    from repro import quick_codesign

    result = quick_codesign(args.scale, seed=args.seed, workers=args.workers,
                            train_fast=args.train_fast, store=args.store)
    best = result.best
    print(f"final co-design : {best.point().describe()}")
    print(f"accuracy        : {best.accurate.accuracy:.3f}")
    print(f"latency         : {best.accurate.latency_ms:.4f} ms")
    print(f"energy          : {best.accurate.energy_mj:.4f} mJ")
    print(f"composite reward: {best.reward:.4f}")
    return 0


def cmd_fig4(args: argparse.Namespace) -> int:
    from repro.experiments.fig4 import run_fig4

    result = run_fig4(args.scale, seed=args.seed)
    print(result.to_text())
    best = result.best("energy")
    print(f"\nbest energy predictor: {best.model} (mse {best.mse:.3e})")
    return 0


def cmd_fig5(args: argparse.Namespace) -> int:
    from repro.experiments.common import get_context
    from repro.experiments.fig5 import run_fig5a, run_fig5b
    from repro.experiments.plotting import line_chart, scatter_chart

    context = get_context(args.scale, args.seed, workers=args.workers,
                          train_fast=args.train_fast, store_path=args.store)
    curve = run_fig5a(args.scale, args.seed, context=context)
    print(line_chart({"hypernet": curve.accuracy},
                     title="Fig 5(a): HyperNet training accuracy",
                     x_label="epoch", y_label="accuracy"))
    corr = run_fig5b(args.scale, args.seed, context=context, n_models=args.models)
    print()
    print(scatter_chart(corr.hypernet_accuracy, corr.standalone_accuracy,
                        title="Fig 5(b): inherited vs stand-alone accuracy",
                        x_label="hypernet", y_label="stand-alone"))
    print(f"\npearson r = {corr.pearson_r:.3f}, spearman rho = {corr.spearman_rho:.3f}")
    return 0


def cmd_fig6(args: argparse.Namespace) -> int:
    from repro.experiments.common import get_context
    from repro.experiments.fig6 import run_fig6_tradeoff, run_fig6a
    from repro.experiments.plotting import line_chart, scatter_chart

    context = get_context(args.scale, args.seed, workers=args.workers,
                          store_path=args.store)
    a = run_fig6a(args.scale, args.seed, context=context,
                  iterations=args.iterations)
    print(line_chart(
        {"RL": a.rl.running_best_rewards(), "random": a.random.running_best_rewards()},
        title="Fig 6(a): running-best composite score",
        x_label="iteration", y_label="reward",
    ))
    for which, label in (("energy", "Fig 6(b)"), ("latency", "Fig 6(c)")):
        t = run_fig6_tradeoff(which, args.scale, args.seed, context=context,
                              iterations=args.iterations)
        pts = t.scatter()
        front = t.front()
        print()
        print(scatter_chart(
            pts[:, 0], pts[:, 1],
            title=f"{label}: accuracy vs {which} (●=Pareto front)",
            x_label=which, y_label="accuracy",
            highlight=[tuple(p) for p in front],
        ))
        distances = t.front_distance_by_phase()
        print(f"distance to front by phase: "
              + " -> ".join(f"{d:.4f}" for d in distances))
    return 0


def cmd_table2(args: argparse.Namespace) -> int:
    from repro.experiments.common import get_context
    from repro.experiments.table2 import run_table2

    context = get_context(args.scale, args.seed, workers=args.workers,
                          train_fast=args.train_fast, store_path=args.store)
    result = run_table2(args.scale, args.seed, context=context,
                        iterations=args.iterations,
                        rescore_training=args.rescore_training)
    print(result.to_text())
    return 0


def cmd_serve(args: argparse.Namespace) -> int:
    from repro.experiments.common import get_context
    from repro.service import SearchService

    if args.trace_out:
        from repro.obs import configure_tracing

        configure_tracing(enabled=True, sink_path=args.trace_out)
    context = get_context(args.scale, args.seed, workers=args.workers,
                          store_path=args.store)
    service = SearchService(
        context.batch_evaluator,
        host=args.host,
        port=args.port,
        tick_s=args.tick_s,
        max_batch_points=args.max_batch_points,
        max_inflight_points=args.max_inflight,
        idle_timeout_s=args.idle_timeout_s,
        # The context opened the store (shared with sample collection) and
        # its atexit cleanup closes it; the service syncs it on drain.
        store=context.store,
    )
    # The context owns the evaluator (and its worker pool); the atexit
    # cleanup in repro.experiments.common closes it after the drain.
    service.run()
    return 0


def cmd_stats(args: argparse.Namespace) -> int:
    import json

    from repro.obs import render_stats
    from repro.service.client import ServiceClient

    retry = None
    if args.retry_max is not None:
        from repro.resilience import RetryPolicy

        retry = RetryPolicy(max_attempts=args.retry_max)
    with ServiceClient.connect(
        args.endpoint,
        timeout=args.timeout,
        retry=retry,
        deadline_s=args.deadline_s,
    ) as client:
        stats = client.stats()
    if args.json:
        print(json.dumps(stats, indent=2, sort_keys=True))
    else:
        print(render_stats(stats))
    return 0


def cmd_lint(args: argparse.Namespace) -> int:
    from repro.analysis.cli import run_lint

    return run_lint(args.paths, json_output=args.json, rules=args.rule or None)


def cmd_space(args: argparse.Namespace) -> int:
    from repro.accel.config import hw_space_size
    from repro.nas.encoding import token_vocab_sizes
    from repro.nas.space import DnnSpace, paper_space_size

    space = DnnSpace()
    print(f"DNN cell encodings       : {space.cell_count():.3e}")
    print(f"DNN genotypes            : {space.size():.3e}")
    print(f"paper's closed-form size : {paper_space_size():.3e}")
    print(f"hardware configurations  : {hw_space_size()}")
    print(f"joint co-design points   : {space.size() * hw_space_size():.3e}")
    vocab = token_vocab_sizes()
    print(f"action sequence          : {len(vocab)} tokens, vocab sizes {list(vocab)}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(prog="yoso", description=__doc__)
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("run", help="full 3-step co-design pipeline")
    _add_common(p)
    p.set_defaults(func=cmd_run)

    p = sub.add_parser("fig4", help="predictor comparison (Fig. 4)")
    _add_common(p)
    p.set_defaults(func=cmd_fig4)

    p = sub.add_parser("fig5", help="HyperNet effectiveness (Fig. 5)")
    _add_common(p)
    p.add_argument("--models", type=int, default=10)
    p.set_defaults(func=cmd_fig5)

    p = sub.add_parser("fig6", help="search-strategy figures (Fig. 6)")
    _add_common(p)
    p.add_argument("--iterations", type=int, default=None)
    p.set_defaults(func=cmd_fig6)

    p = sub.add_parser("table2", help="two-stage comparison (Table 2 / Fig. 7)")
    _add_common(p)
    p.add_argument("--iterations", type=int, default=None)
    p.add_argument(
        "--rescore-training", action="store_true",
        help="rescore the YOSO rows' top-N by stand-alone training "
             "(sharded across --workers) instead of the HyperNet "
             "re-measurement")
    p.set_defaults(func=cmd_table2)

    p = sub.add_parser(
        "serve",
        help="long-lived search-evaluation service (repro.service)")
    _add_common(p)
    p.add_argument("--host", default="127.0.0.1")
    p.add_argument("--port", type=int, default=7777,
                   help="TCP port (0 = OS-assigned, printed on startup)")
    p.add_argument("--tick-s", type=float, default=0.002,
                   help="coalescing window: how long the scheduler waits "
                        "after traffic arrives before batching (latency "
                        "floor vs batch size — see docs/PERFORMANCE.md)")
    p.add_argument("--max-batch-points", type=int, default=4096,
                   help="largest coalesced batch the scheduler runs at once")
    p.add_argument("--max-inflight", type=int, default=4096,
                   help="backpressure budget: points admitted concurrently "
                        "before further requests queue")
    p.add_argument("--trace-out", default=None, metavar="PATH",
                   help="enable span tracing and append one JSON line per "
                        "span to PATH (default: tracing off — zero-cost; "
                        "see docs/OBSERVABILITY.md)")
    p.add_argument("--idle-timeout-s", type=float, default=None,
                   help="disconnect a peer that sends nothing for this many "
                        "seconds (default: never) so dead clients cannot "
                        "pin server resources — see docs/RESILIENCE.md")
    p.set_defaults(func=cmd_serve)

    p = sub.add_parser(
        "stats",
        help="fetch and render a running service's telemetry "
             "(stats verb v2: counters, queue depths, latency histograms)")
    p.add_argument("endpoint", metavar="HOST:PORT",
                   help="service endpoint, e.g. 127.0.0.1:7777")
    p.add_argument("--json", action="store_true",
                   help="print the raw stats JSON instead of the rendering")
    p.add_argument("--timeout", type=float, default=30.0)
    p.add_argument("--retry-max", type=int, default=None,
                   help="max attempts for the stats request (default: the "
                        "client's standard retry policy; 1 disables retries "
                        "— see docs/RESILIENCE.md)")
    p.add_argument("--deadline-s", type=float, default=None,
                   help="total time budget for the request (connect + write "
                        "+ read + retries); a blown budget raises a typed "
                        "DeadlineExceeded instead of hanging")
    p.set_defaults(func=cmd_stats)

    p = sub.add_parser(
        "lint",
        help="run the repro.analysis invariant checker (determinism, "
             "replica-safety, lock discipline, error taxonomy, wire "
             "floats, bench schemas — see docs/ANALYSIS.md)")
    p.add_argument("paths", nargs="*", metavar="PATH",
                   help="files/directories to lint; *.json paths are "
                        "validated as bench reports (default: src tests "
                        "benchmarks plus every BENCH_*.json present)")
    p.add_argument("--json", action="store_true",
                   help="emit the stable sorted finding schema for CI diffing")
    p.add_argument("--rule", action="append", metavar="ID",
                   help="restrict to the given rule id (repeatable)")
    p.set_defaults(func=cmd_lint)

    p = sub.add_parser("space", help="search-space statistics")
    p.set_defaults(func=cmd_space)

    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
