"""Experiment scale presets.

The paper runs at GPU scale (300-epoch HyperNet, 10 000+ search iterations,
3600 simulator samples).  This reproduction runs on CPU, so each experiment
accepts an :class:`ExperimentScale`:

* ``PAPER``  — the exact parameters reported in the paper (documented here
  so every experiment states its ground truth; running them on CPU would
  take days).
* ``DEMO``   — the default for examples and benchmark runs: small enough to
  finish in minutes while preserving the qualitative shapes (RL > random,
  Pareto movement, GP fidelity, single-stage > two-stage).
* ``SMOKE``  — the tiniest functional setting, used by unit tests.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["ExperimentScale", "PAPER", "DEMO", "SMOKE", "get_scale"]


@dataclass(frozen=True)
class ExperimentScale:
    """All tunable sizes for the YOSO experiments at one scale."""

    name: str
    # Dataset
    image_size: int
    train_size: int
    val_size: int
    test_size: int
    # HyperNet (Sec. IV-B)
    hypernet_cells: int  # total cells (paper: 6 = 4 normal + 2 reduction)
    hypernet_channels: int  # stem channel count
    hypernet_epochs: int  # paper: 300
    hypernet_batch: int  # paper: 144
    # Search (Sec. IV-C/D)
    search_iterations: int  # paper: 10 000-12 000 plotted, 5e6 total
    topn: int  # paper: top-10 rescoring
    # Predictor (Sec. III-E)
    predictor_samples: int  # paper: 3600
    predictor_train: int  # paper: 3000
    # Fig. 5(b)
    correlation_models: int  # paper: 130
    standalone_epochs: int  # paper: 70

    def __post_init__(self) -> None:
        if self.predictor_train >= self.predictor_samples:
            raise ValueError("predictor_train must leave a test split")


PAPER = ExperimentScale(
    name="paper",
    image_size=32,
    train_size=50_000,
    val_size=5_000,
    test_size=10_000,
    hypernet_cells=6,
    hypernet_channels=16,
    hypernet_epochs=300,
    hypernet_batch=144,
    search_iterations=12_000,
    topn=10,
    predictor_samples=3600,
    predictor_train=3000,
    correlation_models=130,
    standalone_epochs=70,
)

DEMO = ExperimentScale(
    name="demo",
    image_size=16,
    train_size=1024,
    val_size=256,
    test_size=256,
    hypernet_cells=6,
    hypernet_channels=8,
    hypernet_epochs=12,
    hypernet_batch=64,
    search_iterations=300,
    topn=5,
    predictor_samples=240,
    predictor_train=200,
    correlation_models=12,
    standalone_epochs=3,
)

SMOKE = ExperimentScale(
    name="smoke",
    image_size=8,
    train_size=96,
    val_size=48,
    test_size=48,
    hypernet_cells=3,
    hypernet_channels=4,
    hypernet_epochs=1,
    hypernet_batch=32,
    search_iterations=20,
    topn=2,
    predictor_samples=40,
    predictor_train=30,
    correlation_models=3,
    standalone_epochs=1,
)

_SCALES = {s.name: s for s in (PAPER, DEMO, SMOKE)}


def get_scale(name: str) -> ExperimentScale:
    """Look up a scale preset by name (``paper`` / ``demo`` / ``smoke``)."""
    try:
        return _SCALES[name]
    except KeyError:
        raise ValueError(f"unknown scale {name!r}; choose from {sorted(_SCALES)}") from None
