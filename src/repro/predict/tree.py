"""Decision-tree and random-forest regressors for the Fig. 4 comparison.

The tree grows greedily on variance reduction with midpoint splits over a
quantile-subsampled candidate set; the forest bags bootstrap resamples and
restricts each split to a random feature subset (Breiman, 2001).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .base import Regressor

__all__ = ["DecisionTreeRegressor", "RandomForestRegressor"]


@dataclass
class _Node:
    value: float
    feature: int = -1
    threshold: float = 0.0
    left: "_Node | None" = None
    right: "_Node | None" = None

    @property
    def is_leaf(self) -> bool:
        return self.left is None


def _best_split(
    x: np.ndarray,
    y: np.ndarray,
    features: np.ndarray,
    min_leaf: int,
) -> tuple[int, float, float] | None:
    """Find the (feature, threshold) minimising child SSE; None if no gain."""
    n = len(y)
    base_sse = float(np.sum((y - y.mean()) ** 2))
    best: tuple[int, float, float] | None = None
    best_sse = base_sse - 1e-12
    for f in features:
        order = np.argsort(x[:, f], kind="stable")
        xs, ys = x[order, f], y[order]
        # Prefix sums for O(n) SSE evaluation of every split point.
        csum = np.cumsum(ys)
        csum2 = np.cumsum(ys * ys)
        total, total2 = csum[-1], csum2[-1]
        counts = np.arange(1, n)
        left_sse = csum2[:-1] - csum[:-1] ** 2 / counts
        right_counts = n - counts
        right_sum = total - csum[:-1]
        right_sse = (total2 - csum2[:-1]) - right_sum**2 / right_counts
        sse = left_sse + right_sse
        # Valid split points: leaves big enough and distinct x values.
        valid = (counts >= min_leaf) & (right_counts >= min_leaf) & (np.diff(xs) > 1e-12)
        if not valid.any():
            continue
        sse = np.where(valid, sse, np.inf)
        i = int(np.argmin(sse))
        if sse[i] < best_sse:
            best_sse = float(sse[i])
            best = (int(f), float(0.5 * (xs[i] + xs[i + 1])), best_sse)
    return best


class DecisionTreeRegressor(Regressor):
    """CART-style regression tree with variance-reduction splits."""

    name = "decision_tree"

    def __init__(
        self,
        max_depth: int = 8,
        min_leaf: int = 3,
        max_features: int | None = None,
        seed: int = 0,
    ) -> None:
        super().__init__()
        if max_depth < 1:
            raise ValueError("max_depth must be >= 1")
        self.max_depth = max_depth
        self.min_leaf = max(1, min_leaf)
        self.max_features = max_features
        self.seed = seed
        self._root: _Node | None = None
        self._rng = np.random.default_rng(seed)

    def _fit(self, x: np.ndarray, y: np.ndarray) -> None:
        self._root = self._grow(x, y, depth=0)

    def _grow(self, x: np.ndarray, y: np.ndarray, depth: int) -> _Node:
        node = _Node(value=float(y.mean()))
        if depth >= self.max_depth or len(y) < 2 * self.min_leaf or np.ptp(y) < 1e-12:
            return node
        d = x.shape[1]
        if self.max_features is not None and self.max_features < d:
            features = self._rng.choice(d, size=self.max_features, replace=False)
        else:
            features = np.arange(d)
        split = _best_split(x, y, features, self.min_leaf)
        if split is None:
            return node
        f, thr, _ = split
        mask = x[:, f] <= thr
        node.feature = f
        node.threshold = thr
        node.left = self._grow(x[mask], y[mask], depth + 1)
        node.right = self._grow(x[~mask], y[~mask], depth + 1)
        return node

    def _predict(self, x: np.ndarray) -> np.ndarray:
        assert self._root is not None
        out = np.empty(len(x))
        for i, row in enumerate(x):
            node = self._root
            while not node.is_leaf:
                node = node.left if row[node.feature] <= node.threshold else node.right
                assert node is not None
            out[i] = node.value
        return out


class RandomForestRegressor(Regressor):
    """Bagged ensemble of randomised regression trees."""

    name = "random_forest"

    def __init__(
        self,
        n_trees: int = 20,
        max_depth: int = 10,
        min_leaf: int = 2,
        seed: int = 0,
    ) -> None:
        super().__init__()
        if n_trees < 1:
            raise ValueError("n_trees must be >= 1")
        self.n_trees = n_trees
        self.max_depth = max_depth
        self.min_leaf = min_leaf
        self.seed = seed
        self._trees: list[DecisionTreeRegressor] = []

    def _fit(self, x: np.ndarray, y: np.ndarray) -> None:
        rng = np.random.default_rng(self.seed)
        n, d = x.shape
        max_features = max(1, int(np.ceil(d / 3)))
        self._trees = []
        for t in range(self.n_trees):
            idx = rng.integers(0, n, size=n)
            tree = DecisionTreeRegressor(
                max_depth=self.max_depth,
                min_leaf=self.min_leaf,
                max_features=max_features,
                seed=self.seed + 1000 + t,
            )
            # Bypass the outer scaling: data is already standardised here.
            tree._fit(x[idx], y[idx])
            self._trees.append(tree)

    def _predict(self, x: np.ndarray) -> np.ndarray:
        preds = np.stack([tree._predict(x) for tree in self._trees])
        return preds.mean(axis=0)
