"""Regression quality metrics used across the experiments."""

from __future__ import annotations

import numpy as np
from scipy import stats

__all__ = ["mse", "rmse", "mae", "r2", "spearman", "mean_relative_error"]


def _pair(y_true: np.ndarray, y_pred: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    a = np.asarray(y_true, dtype=np.float64).ravel()
    b = np.asarray(y_pred, dtype=np.float64).ravel()
    if a.shape != b.shape:
        raise ValueError(f"shape mismatch: {a.shape} vs {b.shape}")
    if a.size == 0:
        raise ValueError("empty inputs")
    return a, b


def mse(y_true: np.ndarray, y_pred: np.ndarray) -> float:
    """Mean squared error (the metric of Fig. 4)."""
    a, b = _pair(y_true, y_pred)
    return float(np.mean((a - b) ** 2))


def rmse(y_true: np.ndarray, y_pred: np.ndarray) -> float:
    return float(np.sqrt(mse(y_true, y_pred)))


def mae(y_true: np.ndarray, y_pred: np.ndarray) -> float:
    a, b = _pair(y_true, y_pred)
    return float(np.mean(np.abs(a - b)))


def r2(y_true: np.ndarray, y_pred: np.ndarray) -> float:
    """Coefficient of determination."""
    a, b = _pair(y_true, y_pred)
    ss_res = float(np.sum((a - b) ** 2))
    ss_tot = float(np.sum((a - a.mean()) ** 2))
    if ss_tot < 1e-300:
        return 1.0 if ss_res < 1e-300 else 0.0
    return 1.0 - ss_res / ss_tot


def spearman(y_true: np.ndarray, y_pred: np.ndarray) -> float:
    """Spearman rank correlation (used for the Fig. 5(b) ranking claim)."""
    a, b = _pair(y_true, y_pred)
    if np.ptp(a) < 1e-300 or np.ptp(b) < 1e-300:
        return 0.0
    rho = stats.spearmanr(a, b).statistic
    return float(rho) if np.isfinite(rho) else 0.0


def mean_relative_error(y_true: np.ndarray, y_pred: np.ndarray) -> float:
    """Mean |pred - true| / |true| — the paper's "<4% accuracy loss" metric."""
    a, b = _pair(y_true, y_pred)
    denom = np.maximum(np.abs(a), 1e-12)
    return float(np.mean(np.abs(a - b) / denom))
