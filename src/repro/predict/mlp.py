"""Small multilayer-perceptron regressor for the Fig. 4 comparison."""

from __future__ import annotations

import numpy as np

from .base import Regressor

__all__ = ["MLPRegressor"]


class MLPRegressor(Regressor):
    """Two-hidden-layer ReLU MLP trained with Adam on mean-squared error."""

    name = "mlp"

    def __init__(
        self,
        hidden: tuple[int, int] = (64, 32),
        epochs: int = 300,
        batch_size: int = 64,
        lr: float = 1e-3,
        weight_decay: float = 1e-5,
        seed: int = 0,
    ) -> None:
        super().__init__()
        self.hidden = hidden
        self.epochs = epochs
        self.batch_size = batch_size
        self.lr = lr
        self.weight_decay = weight_decay
        self.seed = seed
        self._weights: list[np.ndarray] = []
        self._biases: list[np.ndarray] = []

    # ------------------------------------------------------------------
    def _fit(self, x: np.ndarray, y: np.ndarray) -> None:
        rng = np.random.default_rng(self.seed)
        sizes = [x.shape[1], *self.hidden, 1]
        self._weights = [
            rng.normal(0.0, np.sqrt(2.0 / sizes[i]), size=(sizes[i], sizes[i + 1]))
            for i in range(len(sizes) - 1)
        ]
        self._biases = [np.zeros(sizes[i + 1]) for i in range(len(sizes) - 1)]
        m = [np.zeros_like(w) for w in self._weights] + [np.zeros_like(b) for b in self._biases]
        v = [np.zeros_like(w) for w in self._weights] + [np.zeros_like(b) for b in self._biases]
        t = 0
        n = len(y)
        for _epoch in range(self.epochs):
            order = rng.permutation(n)
            for start in range(0, n, self.batch_size):
                idx = order[start : start + self.batch_size]
                grads_w, grads_b = self._gradients(x[idx], y[idx])
                t += 1
                params = self._weights + self._biases
                grads = grads_w + grads_b
                for i, (p, g) in enumerate(zip(params, grads)):
                    g = g + self.weight_decay * p
                    m[i] = 0.9 * m[i] + 0.1 * g
                    v[i] = 0.999 * v[i] + 0.001 * g * g
                    m_hat = m[i] / (1 - 0.9**t)
                    v_hat = v[i] / (1 - 0.999**t)
                    p -= self.lr * m_hat / (np.sqrt(v_hat) + 1e-8)

    def _forward(self, x: np.ndarray) -> tuple[np.ndarray, list[np.ndarray]]:
        acts = [x]
        h = x
        for i, (w, b) in enumerate(zip(self._weights, self._biases)):
            h = h @ w + b
            if i < len(self._weights) - 1:
                h = np.maximum(h, 0.0)
            acts.append(h)
        return h.ravel(), acts

    def _gradients(
        self, x: np.ndarray, y: np.ndarray
    ) -> tuple[list[np.ndarray], list[np.ndarray]]:
        pred, acts = self._forward(x)
        delta = (2.0 / len(y)) * (pred - y)[:, None]
        grads_w: list[np.ndarray] = [np.zeros_like(w) for w in self._weights]
        grads_b: list[np.ndarray] = [np.zeros_like(b) for b in self._biases]
        for i in range(len(self._weights) - 1, -1, -1):
            grads_w[i] = acts[i].T @ delta
            grads_b[i] = delta.sum(axis=0)
            if i > 0:
                delta = (delta @ self._weights[i].T) * (acts[i] > 0)
        return grads_w, grads_b

    def _predict(self, x: np.ndarray) -> np.ndarray:
        pred, _ = self._forward(x)
        return pred
