"""Simulator sample collection for training the performance predictors.

Sec. III-E: *"We collect 3600 samples from the simulation ... every model is
built with 3000 training samples and tested on 600 testing samples."*
:func:`collect_samples` draws uniform co-design points, runs the analytical
simulator as ground truth and records wall-clock timings so the ~2000x
prediction-speedup claim can be measured rather than asserted.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np

from ..accel.config import random_config
from ..accel.simulator import SystolicArraySimulator
from ..accel.workload import network_workloads
from ..nas.encoding import CoDesignPoint, encode
from ..nas.space import DnnSpace
from .features import feature_vector

__all__ = ["PerfDataset", "collect_samples"]


@dataclass
class PerfDataset:
    """Features plus latency/energy ground truth for n co-design points."""

    x: np.ndarray  # (n, FEATURE_DIM)
    latency_ms: np.ndarray  # (n,)
    energy_mj: np.ndarray  # (n,)
    points: list[CoDesignPoint]
    #: Per-sample cost of the *scalar* simulator (measured on a probe) —
    #: the per-candidate oracle a predictor replaces in a search loop;
    #: this is the denominator of the paper's ~2000x speedup claim.
    sim_seconds_per_sample: float
    #: Amortised per-sample cost of the vectorised batch simulation that
    #: actually collected this dataset (see ``repro.accel.batch``).
    batch_sim_seconds_per_sample: float = 0.0

    def __len__(self) -> int:
        return len(self.latency_ms)

    def split(self, n_train: int) -> tuple["PerfDataset", "PerfDataset"]:
        """Deterministic head/tail split (samples are already i.i.d.)."""
        if not 0 < n_train < len(self):
            raise ValueError(f"n_train must be in (0, {len(self)})")
        head = PerfDataset(
            self.x[:n_train],
            self.latency_ms[:n_train],
            self.energy_mj[:n_train],
            self.points[:n_train],
            self.sim_seconds_per_sample,
            self.batch_sim_seconds_per_sample,
        )
        tail = PerfDataset(
            self.x[n_train:],
            self.latency_ms[n_train:],
            self.energy_mj[n_train:],
            self.points[n_train:],
            self.sim_seconds_per_sample,
            self.batch_sim_seconds_per_sample,
        )
        return head, tail


def collect_samples(
    n: int,
    seed: int = 0,
    simulator: SystolicArraySimulator | None = None,
    num_cells: int = 6,
    stem_channels: int = 16,
    image_size: int = 32,
    num_classes: int = 10,
    store=None,
    store_namespace: str | None = None,
) -> PerfDataset:
    """Sample ``n`` co-design points and simulate each one.

    With a durable :class:`repro.store.ResultStore`, persisted
    ``(latency, energy)`` ground truth is reused bit-exactly and only the
    missing points are simulated (fresh values are appended) — this is
    how the GP predictors warm-start across processes: a fresh search
    rebuilds the same sample set without re-paying the simulation.
    ``store_namespace`` defaults to ``"sim:" + samples_fingerprint``,
    scoping records to the simulator's energy/NoC model and the network
    expansion dims.
    """
    if n < 1:
        raise ValueError("n must be >= 1")
    rng = np.random.default_rng(seed)
    sim = simulator or SystolicArraySimulator()
    space = DnnSpace()
    points = [
        CoDesignPoint(
            genotype=space.sample(rng, name=f"sample{i}"), config=random_config(rng)
        )
        for i in range(n)
    ]
    # One layer expansion per point, shared between the batched simulation
    # and the workload-statistics features.
    workload_lists = [
        network_workloads(
            point.genotype,
            num_cells=num_cells,
            stem_channels=stem_channels,
            image_size=image_size,
            num_classes=num_classes,
        )
        for point in points
    ]
    # Probe the scalar oracle on a few points so the Fig. 4 speedup column
    # keeps comparing prediction against the per-candidate simulator call
    # it replaces (ground truth itself comes from the batch engine below).
    n_probe = min(8, n)
    t0 = time.perf_counter()
    for layers, point in zip(workload_lists[:n_probe], points[:n_probe]):
        sim.simulate_network(layers, point.config)
    scalar_time = (time.perf_counter() - t0) / n_probe
    latency = np.empty(n, dtype=float)
    energy = np.empty(n, dtype=float)
    keys: list[tuple | None] = [None] * n
    miss_idx = list(range(n))
    if store is not None:
        if store_namespace is None:
            from ..store import samples_fingerprint

            store_namespace = "sim:" + samples_fingerprint(
                sim, num_cells, stem_channels, image_size, num_classes
            )
        miss_idx = []
        for i, point in enumerate(points):
            try:
                keys[i] = tuple(encode(point))
            except ValueError:
                keys[i] = None  # off-grid: not store-eligible
            values = (
                store.get(store_namespace, keys[i])
                if keys[i] is not None
                else None
            )
            if values is not None and len(values) == 2:
                latency[i], energy[i] = values
            else:
                miss_idx.append(i)
    sim_time = 0.0
    if miss_idx:
        t0 = time.perf_counter()
        batch = sim.simulate_many(
            [workload_lists[i] for i in miss_idx],
            [points[i].config for i in miss_idx],
        )
        sim_time = time.perf_counter() - t0
        for pos, i in enumerate(miss_idx):
            latency[i] = float(batch.latency_ms[pos])
            energy[i] = float(batch.energy_mj[pos])
            if store is not None and keys[i] is not None:
                store.append(store_namespace, keys[i], (latency[i], energy[i]))
    xs = [
        feature_vector(
            point,
            num_cells=num_cells,
            stem_channels=stem_channels,
            image_size=image_size,
            num_classes=num_classes,
            layers=layers,
        )
        for point, layers in zip(points, workload_lists)
    ]
    return PerfDataset(
        x=np.stack(xs),
        latency_ms=latency,
        energy_mj=energy,
        points=points,
        sim_seconds_per_sample=scalar_time,
        batch_sim_seconds_per_sample=sim_time / n,
    )
