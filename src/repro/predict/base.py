"""Shared regressor interface and input/target standardisation."""

from __future__ import annotations

import numpy as np

__all__ = ["Regressor", "Standardizer"]


class Standardizer:
    """Per-feature affine normalisation fit on the training set."""

    def __init__(self) -> None:
        self.mean: np.ndarray | None = None
        self.std: np.ndarray | None = None

    def fit(self, x: np.ndarray) -> "Standardizer":
        x = np.atleast_2d(np.asarray(x, dtype=np.float64))
        self.mean = x.mean(axis=0)
        std = x.std(axis=0)
        std[std < 1e-12] = 1.0  # constant features pass through unchanged
        self.std = std
        return self

    def transform(self, x: np.ndarray) -> np.ndarray:
        if self.mean is None or self.std is None:
            raise RuntimeError("Standardizer used before fit")
        return (np.asarray(x, dtype=np.float64) - self.mean) / self.std

    def fit_transform(self, x: np.ndarray) -> np.ndarray:
        return self.fit(x).transform(x)


class Regressor:
    """Common interface: ``fit(X, y)`` then ``predict(X) -> y_hat``.

    Subclasses implement ``_fit`` / ``_predict`` on standardised inputs and
    zero-mean targets; this base class handles the scaling bookkeeping so
    every model sees comparably conditioned data (important for GP/MLP).
    """

    #: Human-readable name used in the Fig. 4 comparison table.
    name: str = "base"

    def __init__(self) -> None:
        self._x_scaler = Standardizer()
        self._y_mean = 0.0
        self._y_scale = 1.0
        self._fitted = False

    # -- public API ------------------------------------------------------
    def fit(self, x: np.ndarray, y: np.ndarray) -> "Regressor":
        x = np.atleast_2d(np.asarray(x, dtype=np.float64))
        y = np.asarray(y, dtype=np.float64).ravel()
        if len(x) != len(y):
            raise ValueError(f"X has {len(x)} rows but y has {len(y)}")
        if len(y) < 2:
            raise ValueError("need at least two training samples")
        xs = self._x_scaler.fit_transform(x)
        self._y_mean = float(y.mean())
        self._y_scale = float(y.std()) or 1.0
        ys = (y - self._y_mean) / self._y_scale
        self._fit(xs, ys)
        self._fitted = True
        return self

    def predict(self, x: np.ndarray) -> np.ndarray:
        if not self._fitted:
            raise RuntimeError(f"{self.name} regressor used before fit")
        xs = self._x_scaler.transform(np.atleast_2d(np.asarray(x, dtype=np.float64)))
        return self._predict(xs) * self._y_scale + self._y_mean

    def predict_batch(self, x: np.ndarray, chunk_size: int | None = None) -> np.ndarray:
        """Predict a whole (n, d) batch in one call, optionally chunked.

        This is the uniform batch entry point the evaluators use: every
        regressor accepts a matrix, and ``chunk_size`` bounds the working
        set of models whose per-query memory grows with the batch (the GP
        materialises an (n, n_train) kernel block per call).
        """
        x = np.atleast_2d(np.asarray(x, dtype=np.float64))
        if chunk_size is not None and chunk_size < 1:
            raise ValueError("chunk_size must be >= 1")
        if chunk_size is None or len(x) <= chunk_size:
            return self.predict(x)
        return np.concatenate(
            [self.predict(x[lo : lo + chunk_size]) for lo in range(0, len(x), chunk_size)]
        )

    # -- subclass hooks ----------------------------------------------------
    def _fit(self, x: np.ndarray, y: np.ndarray) -> None:
        raise NotImplementedError

    def _predict(self, x: np.ndarray) -> np.ndarray:
        raise NotImplementedError
