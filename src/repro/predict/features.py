"""Feature extraction for the hardware performance predictors.

Sec. III-E: *"the DNN model and configuration parameters are the input
variables in these prediction models."*  We encode a co-design point as a
fixed-length real vector combining

* DNN structure: per-cell-type operation histograms, loose-end counts, and
  how many edges attach to the cell inputs (depth proxy);
* cheap aggregate workload statistics (log MACs / weight / activation
  footprints) computed from the layer expansion — these are what make the
  regression problem well-posed at small sample counts;
* hardware configuration: PE geometry, buffer sizes, one-hot dataflow.
"""

from __future__ import annotations

import math

import numpy as np

from ..accel.config import DATAFLOW_CHOICES, AcceleratorConfig
from ..accel.workload import network_workloads
from ..nas.encoding import CoDesignPoint
from ..nas.genotype import Genotype
from ..nas.ops import OP_NAMES

__all__ = [
    "feature_vector",
    "genotype_features",
    "config_features",
    "feature_names",
    "FEATURE_DIM",
]


def feature_names(
    num_cells: int = 6, stem_channels: int = 16, image_size: int = 32
) -> list[str]:
    """Ordered names of every feature produced by :func:`feature_vector`."""
    names = [f"normal.{op}" for op in OP_NAMES]
    names += [f"reduce.{op}" for op in OP_NAMES]
    names += [
        "normal.loose",
        "reduce.loose",
        "normal.input_edges",
        "reduce.input_edges",
        "log_macs",
        "log_weight_bytes",
        "log_act_bytes",
        "num_layers",
        "pe_rows",
        "pe_cols",
        "log_num_pes",
        "log_gbuf_kb",
        "log_rbuf_bytes",
    ]
    names += [f"dataflow.{flow}" for flow in DATAFLOW_CHOICES]
    return names


FEATURE_DIM: int = len(feature_names())


def genotype_features(
    genotype: Genotype,
    num_cells: int = 6,
    stem_channels: int = 16,
    image_size: int = 32,
    num_classes: int = 10,
    layers=None,
) -> np.ndarray:
    """The genotype-dependent prefix of the feature vector.

    Independent of the hardware configuration, so batch evaluators cache it
    per genotype while the search re-pairs architectures with new hardware
    tokens.  ``layers`` accepts a precomputed workload expansion to avoid
    walking the genotype twice when the caller already has one.
    """
    feats: list[float] = []
    for cell in (genotype.normal, genotype.reduce):
        counts = cell.op_counts()
        feats.extend(float(counts[name]) for name in OP_NAMES)
    feats.append(float(len(genotype.normal.loose_ends())))
    feats.append(float(len(genotype.reduce.loose_ends())))
    for cell in (genotype.normal, genotype.reduce):
        input_edges = sum(
            (1 if node.input1 < 2 else 0) + (1 if node.input2 < 2 else 0)
            for node in cell.nodes
        )
        feats.append(float(input_edges))
    if layers is None:
        layers = network_workloads(
            genotype,
            num_cells=num_cells,
            stem_channels=stem_channels,
            image_size=image_size,
            num_classes=num_classes,
        )
    total_macs = sum(l.macs for l in layers)
    total_weights = sum(l.weight_bytes for l in layers)
    total_act = sum(l.ifmap_bytes + l.ofmap_bytes for l in layers)
    feats.append(math.log(max(total_macs, 1.0)))
    feats.append(math.log(max(total_weights, 1.0)))
    feats.append(math.log(max(total_act, 1.0)))
    feats.append(float(len(layers)))
    return np.asarray(feats, dtype=np.float64)


def config_features(config: AcceleratorConfig) -> np.ndarray:
    """The hardware-dependent suffix of the feature vector."""
    feats = [
        float(config.pe_rows),
        float(config.pe_cols),
        math.log(config.num_pes),
        math.log(config.gbuf_kb),
        math.log(config.rbuf_bytes),
    ]
    feats.extend(1.0 if config.dataflow == flow else 0.0 for flow in DATAFLOW_CHOICES)
    return np.asarray(feats, dtype=np.float64)


def feature_vector(
    point: CoDesignPoint,
    num_cells: int = 6,
    stem_channels: int = 16,
    image_size: int = 32,
    num_classes: int = 10,
    layers=None,
) -> np.ndarray:
    """Encode one co-design point as a float vector of length FEATURE_DIM."""
    return np.concatenate(
        [
            genotype_features(
                point.genotype,
                num_cells=num_cells,
                stem_channels=stem_channels,
                image_size=image_size,
                num_classes=num_classes,
                layers=layers,
            ),
            config_features(point.config),
        ]
    )
