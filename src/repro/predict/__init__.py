"""Machine-learning performance predictors (Sec. III-E, Fig. 4).

Six regression families compared on simulator samples; the Gaussian process
(RBF kernel) wins on MSE and becomes YOSO's latency/energy predictor.
"""

from .base import Regressor, Standardizer
from .dataset import PerfDataset, collect_samples
from .features import (
    FEATURE_DIM,
    config_features,
    feature_names,
    feature_vector,
    genotype_features,
)
from .gp import GaussianProcessRegressor, rbf_kernel
from .kernelridge import KernelRidgeRegressor
from .knn import KNNRegressor
from .linear import LinearRegressor, PolynomialRidgeRegressor, RidgeRegressor
from .metrics import mae, mean_relative_error, mse, r2, rmse, spearman
from .mlp import MLPRegressor
from .tree import DecisionTreeRegressor, RandomForestRegressor

__all__ = [
    "Regressor",
    "Standardizer",
    "PerfDataset",
    "collect_samples",
    "feature_vector",
    "genotype_features",
    "config_features",
    "feature_names",
    "FEATURE_DIM",
    "GaussianProcessRegressor",
    "rbf_kernel",
    "KernelRidgeRegressor",
    "KNNRegressor",
    "LinearRegressor",
    "RidgeRegressor",
    "PolynomialRidgeRegressor",
    "DecisionTreeRegressor",
    "RandomForestRegressor",
    "MLPRegressor",
    "mse",
    "rmse",
    "mae",
    "r2",
    "spearman",
    "mean_relative_error",
]


def all_regressors(seed: int = 0, extended: bool = False) -> list[Regressor]:
    """The six-model lineup of Fig. 4 (fresh instances).

    ``extended=True`` adds the kernel-ridge control regressor (not part of
    the paper's comparison; see :mod:`repro.predict.kernelridge`).
    """
    models: list[Regressor] = [
        LinearRegressor(),
        RidgeRegressor(alpha=1.0),
        PolynomialRidgeRegressor(alpha=1.0),
        KNNRegressor(k=5),
        RandomForestRegressor(n_trees=20, seed=seed),
        GaussianProcessRegressor(seed=seed),
    ]
    if extended:
        models.append(KernelRidgeRegressor())
    return models
