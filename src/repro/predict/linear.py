"""Linear-family regressors for the Fig. 4 model comparison."""

from __future__ import annotations

import numpy as np

from .base import Regressor

__all__ = ["LinearRegressor", "RidgeRegressor", "PolynomialRidgeRegressor"]


class LinearRegressor(Regressor):
    """Ordinary least squares via ``lstsq`` (minimum-norm solution)."""

    name = "linear"

    def __init__(self) -> None:
        super().__init__()
        self._coef: np.ndarray | None = None
        self._intercept = 0.0

    def _fit(self, x: np.ndarray, y: np.ndarray) -> None:
        xb = np.hstack([x, np.ones((len(x), 1))])
        sol, *_ = np.linalg.lstsq(xb, y, rcond=None)
        self._coef = sol[:-1]
        self._intercept = float(sol[-1])

    def _predict(self, x: np.ndarray) -> np.ndarray:
        assert self._coef is not None
        return x @ self._coef + self._intercept


class RidgeRegressor(Regressor):
    """L2-regularised linear regression (closed form)."""

    name = "ridge"

    def __init__(self, alpha: float = 1.0) -> None:
        super().__init__()
        if alpha < 0:
            raise ValueError("alpha must be non-negative")
        self.alpha = alpha
        self._coef: np.ndarray | None = None
        self._intercept = 0.0

    def _fit(self, x: np.ndarray, y: np.ndarray) -> None:
        n, d = x.shape
        gram = x.T @ x + self.alpha * np.eye(d)
        self._coef = np.linalg.solve(gram, x.T @ y)
        # Targets are centred by the base class; intercept stays 0 in the
        # standardised space but is kept explicit for clarity.
        self._intercept = float(y.mean() - x.mean(axis=0) @ self._coef)

    def _predict(self, x: np.ndarray) -> np.ndarray:
        assert self._coef is not None
        return x @ self._coef + self._intercept


def _poly2_expand(x: np.ndarray) -> np.ndarray:
    """Degree-2 polynomial feature expansion (squares + pairwise products)."""
    n, d = x.shape
    cols = [x, x * x]
    for i in range(d):
        cols.append(x[:, i : i + 1] * x[:, i + 1 :])
    return np.hstack(cols)


class PolynomialRidgeRegressor(Regressor):
    """Ridge regression on degree-2 polynomial features."""

    name = "poly2_ridge"

    def __init__(self, alpha: float = 1.0) -> None:
        super().__init__()
        self.alpha = alpha
        self._inner = RidgeRegressor(alpha=alpha)

    def _fit(self, x: np.ndarray, y: np.ndarray) -> None:
        self._inner.fit(_poly2_expand(x), y)

    def _predict(self, x: np.ndarray) -> np.ndarray:
        return self._inner.predict(_poly2_expand(x))
