"""Kernel ridge regression — an extension regressor beyond the Fig. 4 six.

KRR shares the GP's RBF kernel but replaces the probabilistic treatment
with plain Tikhonov regularisation; it is the natural control for the
question "does the GP win because of the kernel or because of the
marginal-likelihood hyper-parameter fit?" (answer, per the extended
predictor study: mostly the hyper-parameter fit).
"""

from __future__ import annotations

import numpy as np
from scipy.linalg import cho_factor, cho_solve

from .base import Regressor
from .gp import rbf_kernel

__all__ = ["KernelRidgeRegressor"]


class KernelRidgeRegressor(Regressor):
    """RBF-kernel ridge regression with optional length-scale grid search."""

    name = "kernel_ridge"

    def __init__(
        self,
        alpha: float = 0.05,
        length_scale: float = 3.0,
        tune: bool = True,
        length_scale_grid: tuple[float, ...] = (1.0, 2.0, 3.0, 5.0, 8.0),
        folds: int = 3,
    ) -> None:
        super().__init__()
        if alpha <= 0:
            raise ValueError("alpha must be positive")
        self.alpha = alpha
        self.length_scale = length_scale
        self.tune = tune
        self.length_scale_grid = length_scale_grid
        self.folds = max(2, folds)
        self._x_train: np.ndarray | None = None
        self._dual: np.ndarray | None = None

    # ------------------------------------------------------------------
    def _solve(self, x: np.ndarray, y: np.ndarray, length_scale: float) -> np.ndarray:
        k = rbf_kernel(x, x, length_scale, 1.0)
        k[np.diag_indices_from(k)] += self.alpha
        c, lower = cho_factor(k, lower=True)
        return cho_solve((c, lower), y)

    def _cv_error(self, x: np.ndarray, y: np.ndarray, length_scale: float) -> float:
        n = len(y)
        fold_size = max(1, n // self.folds)
        total = 0.0
        for f in range(self.folds):
            lo, hi = f * fold_size, min((f + 1) * fold_size, n)
            if hi <= lo:
                continue
            mask = np.ones(n, dtype=bool)
            mask[lo:hi] = False
            if mask.sum() < 2:
                continue
            dual = self._solve(x[mask], y[mask], length_scale)
            pred = rbf_kernel(x[~mask], x[mask], length_scale, 1.0) @ dual
            total += float(np.sum((pred - y[~mask]) ** 2))
        return total

    def _fit(self, x: np.ndarray, y: np.ndarray) -> None:
        if self.tune and len(y) >= 2 * self.folds:
            errors = {
                ls: self._cv_error(x, y, ls) for ls in self.length_scale_grid
            }
            self.length_scale = min(errors, key=errors.get)
        self._x_train = x
        self._dual = self._solve(x, y, self.length_scale)

    def _predict(self, x: np.ndarray) -> np.ndarray:
        assert self._x_train is not None and self._dual is not None
        return rbf_kernel(x, self._x_train, self.length_scale, 1.0) @ self._dual
