"""Gaussian-process regression with an RBF kernel (Sec. III-E, Eq. 7-8).

The paper's hardware performance predictor:

    y = f(lambda) + eps,   f ~ GP(mu, K),   eps ~ N(0, sigma_n^2)
    K(x, x') = sigma_f^2 * exp(-||x - x'||^2 / (2 * ell^2))

Hyper-parameters ``(ell, sigma_f, sigma_n)`` are fit by maximising the log
marginal likelihood with multi-start L-BFGS over log-parameters.  Exact
inference via Cholesky factorisation; ``predict_with_std`` exposes the
posterior variance (useful for sampling-efficiency studies).
"""

from __future__ import annotations

import numpy as np
from scipy import optimize
from scipy.linalg import cho_factor, cho_solve, cholesky

from .base import Regressor

__all__ = ["GaussianProcessRegressor", "rbf_kernel"]


def rbf_kernel(
    xa: np.ndarray, xb: np.ndarray, length_scale: float, signal_var: float
) -> np.ndarray:
    """The RBF (squared-exponential) covariance of Eq. 8."""
    if length_scale <= 0 or signal_var <= 0:
        raise ValueError("kernel hyper-parameters must be positive")
    sq = (
        np.sum(xa * xa, axis=1)[:, None]
        + np.sum(xb * xb, axis=1)[None, :]
        - 2.0 * xa @ xb.T
    )
    np.maximum(sq, 0.0, out=sq)
    return signal_var * np.exp(-0.5 * sq / (length_scale**2))


class GaussianProcessRegressor(Regressor):
    """Exact GP regressor; the model the paper selects for both predictors."""

    name = "gaussian_process"

    def __init__(
        self,
        length_scale: float = 3.0,
        signal_var: float = 1.0,
        noise_var: float = 0.01,
        optimise: bool = True,
        n_restarts: int = 2,
        seed: int = 0,
    ) -> None:
        super().__init__()
        self.length_scale = length_scale
        self.signal_var = signal_var
        self.noise_var = noise_var
        self.optimise = optimise
        self.n_restarts = n_restarts
        self.seed = seed
        self._x_train: np.ndarray | None = None
        self._alpha: np.ndarray | None = None
        self._chol: np.ndarray | None = None
        self.log_marginal_likelihood_: float = -np.inf

    # ------------------------------------------------------------------
    def _fit(self, x: np.ndarray, y: np.ndarray) -> None:
        self._x_train = x
        if self.optimise:
            self._optimise_hyperparameters(x, y)
        k = rbf_kernel(x, x, self.length_scale, self.signal_var)
        k[np.diag_indices_from(k)] += self.noise_var + 1e-10
        c, lower = cho_factor(k, lower=True)
        self._chol = c
        self._alpha = cho_solve((c, lower), y)
        self.log_marginal_likelihood_ = self._lml_from_chol(c, y)

    def _predict(self, x: np.ndarray) -> np.ndarray:
        mean, _ = self._posterior(x, with_std=False)
        return mean

    def predict_with_std(self, x: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Posterior mean and standard deviation in original target units."""
        if not self._fitted:
            raise RuntimeError("GP used before fit")
        xs = self._x_scaler.transform(np.atleast_2d(np.asarray(x, dtype=np.float64)))
        mean, std = self._posterior(xs, with_std=True)
        return mean * self._y_scale + self._y_mean, std * self._y_scale

    # ------------------------------------------------------------------
    def _posterior(self, x: np.ndarray, with_std: bool) -> tuple[np.ndarray, np.ndarray]:
        assert self._x_train is not None and self._alpha is not None
        ks = rbf_kernel(x, self._x_train, self.length_scale, self.signal_var)
        mean = ks @ self._alpha
        if not with_std:
            return mean, np.zeros(0)
        assert self._chol is not None
        v = cho_solve((self._chol, True), ks.T)
        prior = self.signal_var
        var = prior - np.sum(ks * v.T, axis=1)
        np.maximum(var, 1e-12, out=var)
        return mean, np.sqrt(var)

    @staticmethod
    def _lml_from_chol(chol: np.ndarray, y: np.ndarray) -> float:
        alpha = cho_solve((chol, True), y)
        n = len(y)
        return float(
            -0.5 * y @ alpha - np.sum(np.log(np.diag(chol))) - 0.5 * n * np.log(2 * np.pi)
        )

    def _optimise_hyperparameters(self, x: np.ndarray, y: np.ndarray) -> None:
        """Multi-start L-BFGS over log(ell, sigma_f^2, sigma_n^2)."""

        def neg_lml(log_params: np.ndarray) -> float:
            ell, sf, sn = np.exp(log_params)
            try:
                k = rbf_kernel(x, x, ell, sf)
                k[np.diag_indices_from(k)] += sn + 1e-10
                c = cholesky(k, lower=True)
            except np.linalg.LinAlgError:
                return 1e12
            return -self._lml_from_chol(c, y)

        rng = np.random.default_rng(self.seed)
        starts = [np.log([self.length_scale, self.signal_var, self.noise_var])]
        for _ in range(self.n_restarts):
            starts.append(
                np.log(
                    [
                        float(np.exp(rng.uniform(np.log(0.5), np.log(20.0)))),
                        float(np.exp(rng.uniform(np.log(0.1), np.log(5.0)))),
                        float(np.exp(rng.uniform(np.log(1e-4), np.log(0.5)))),
                    ]
                )
            )
        best_val, best_params = np.inf, starts[0]
        for start in starts:
            result = optimize.minimize(
                neg_lml, start, method="L-BFGS-B", options={"maxiter": 50}
            )
            if result.fun < best_val:
                best_val, best_params = float(result.fun), result.x
        self.length_scale, self.signal_var, self.noise_var = (
            float(v) for v in np.exp(best_params)
        )
