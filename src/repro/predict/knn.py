"""k-nearest-neighbour regressor for the Fig. 4 model comparison."""

from __future__ import annotations

import numpy as np

from .base import Regressor

__all__ = ["KNNRegressor"]


class KNNRegressor(Regressor):
    """Distance-weighted k-NN regression in standardised feature space."""

    name = "knn"

    def __init__(self, k: int = 5) -> None:
        super().__init__()
        if k < 1:
            raise ValueError("k must be >= 1")
        self.k = k
        self._x: np.ndarray | None = None
        self._y: np.ndarray | None = None

    def _fit(self, x: np.ndarray, y: np.ndarray) -> None:
        self._x = x
        self._y = y

    def _predict(self, x: np.ndarray) -> np.ndarray:
        assert self._x is not None and self._y is not None
        k = min(self.k, len(self._y))
        sq = (
            np.sum(x * x, axis=1)[:, None]
            + np.sum(self._x * self._x, axis=1)[None, :]
            - 2.0 * x @ self._x.T
        )
        np.maximum(sq, 0.0, out=sq)
        idx = np.argpartition(sq, k - 1, axis=1)[:, :k]
        dists = np.sqrt(np.take_along_axis(sq, idx, axis=1))
        weights = 1.0 / (dists + 1e-9)
        weights /= weights.sum(axis=1, keepdims=True)
        return np.sum(self._y[idx] * weights, axis=1)
