"""Shared host-capability reporting for the benchmark writers.

Every ``BENCH_*.json`` records whether the host had enough CPUs for the
benchmark's concurrency to mean anything (``degraded_host``) alongside
the raw ``cpu_count``.  Each bench file used to compute both inline with
slightly different spellings; this module is the one shared definition.
"""

from __future__ import annotations

import os

__all__ = ["cpu_budget", "host_info"]


def cpu_budget() -> int:
    """CPUs actually available to this process.

    ``sched_getaffinity`` respects cgroup/taskset limits (what CI
    containers actually grant); ``os.cpu_count`` is the fallback where
    affinity is unsupported.
    """
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux fallback
        return os.cpu_count() or 1


def host_info(required_cpus: int) -> dict:
    """The shared ``cpu_count`` / ``degraded_host`` fields for a bench JSON.

    ``degraded_host`` is True when the host has fewer CPUs than the
    benchmark's peak concurrency needs — timing-derived numbers from such
    a run measure contention, not the code under test.
    """
    cpus = cpu_budget()
    return {"cpu_count": cpus, "degraded_host": cpus < required_cpus}
