"""Lightweight request tracing: spans, trace ids, ring buffer, JSONL sink.

A *span* is one named, timed step of a request (``client.evaluate_many``,
``scheduler.batch``, ``pool.shard``, ``store.lookup``); spans carrying
the same ``trace_id`` belong to one request, and ``parent_id`` links them
into a tree.  The API is a context manager::

    with get_tracer().span("evaluator.evaluate_many", points=64) as span:
        ...
        span.set(misses=n_missing)

Propagation model (why there are three mechanisms):

* **Within a thread** — a :mod:`contextvars` variable holds the current
  ``(trace_id, span_id)``, so nested spans pick up their parent with no
  plumbing.
* **Across threads and the wire** — explicit ``(trace_id, parent_id)``
  pairs travel with the work: the NDJSON protocol carries an optional
  ``trace`` field, and :meth:`MicroBatchScheduler.submit` accepts a
  trace context alongside the points (the scheduler thread that runs the
  batch is not the thread that submitted it).
* **Across processes** — worker tasks receive the ids as plain args,
  build span *dicts* locally, and return them with the result; the
  parent merges them into its own tracer on harvest
  (:meth:`Tracer.ingest`).  Worker processes never write sinks.

Zero-cost-by-default: the tracer starts disabled, and a disabled tracer
hands out one shared no-op span (:data:`NULL_SPAN`) — no allocation, no
clock reads, no contextvar writes on the warm path.  Finished spans land
in a bounded in-memory ring (for tests and the ``yoso stats`` CLI) and,
when configured, one JSONL line per span in a sink file (``--trace-out``).
"""

from __future__ import annotations

import contextvars
import json
import threading
import time
import uuid
from collections import deque
from typing import IO, Iterable, Mapping

__all__ = [
    "Span",
    "Tracer",
    "NULL_SPAN",
    "get_tracer",
    "configure_tracing",
    "current_context",
    "new_trace_id",
    "new_span_id",
    "worker_span",
]

#: (trace_id, span_id) of the innermost active span on this thread/task.
_CURRENT: contextvars.ContextVar[tuple[str, str] | None] = contextvars.ContextVar(
    "repro_obs_span", default=None
)


def new_trace_id() -> str:
    """A fresh 32-hex-char trace id."""
    return uuid.uuid4().hex


def new_span_id() -> str:
    """A fresh 16-hex-char span id."""
    return uuid.uuid4().hex[:16]


def current_context() -> tuple[str, str] | None:
    """The innermost active ``(trace_id, span_id)`` on this thread, if any."""
    return _CURRENT.get()


class Span:
    """One named, timed step of a request (a context manager).

    ``start_s`` is wall-clock (for cross-process ordering in sinks);
    ``duration_s`` comes from ``perf_counter`` (monotonic, so durations
    are immune to clock steps).  Extra attributes attach via constructor
    kwargs or :meth:`set` and land in :meth:`to_dict` under ``"attrs"``.
    """

    __slots__ = (
        "name",
        "trace_id",
        "span_id",
        "parent_id",
        "start_s",
        "duration_s",
        "attrs",
        "_tracer",
        "_t0",
        "_token",
    )

    def __init__(
        self,
        tracer: "Tracer",
        name: str,
        trace_id: str,
        parent_id: str | None,
        attrs: dict,
    ) -> None:
        self.name = name
        self.trace_id = trace_id
        self.span_id = new_span_id()
        self.parent_id = parent_id
        self.start_s = 0.0
        self.duration_s = 0.0
        self.attrs = attrs
        self._tracer = tracer
        self._t0 = 0.0
        self._token: contextvars.Token | None = None

    def set(self, **attrs) -> None:
        """Attach attributes to the span (merged into ``attrs``)."""
        self.attrs.update(attrs)

    def to_dict(self) -> dict:
        """JSON-safe pure-data form (what the sink and ring hold)."""
        span = {
            "name": self.name,
            "trace": self.trace_id,
            "span": self.span_id,
            "parent": self.parent_id,
            "start_s": self.start_s,
            "duration_s": self.duration_s,
        }
        if self.attrs:
            span["attrs"] = dict(self.attrs)
        return span

    def __enter__(self) -> "Span":
        self.start_s = time.time()
        self._t0 = time.perf_counter()
        self._token = _CURRENT.set((self.trace_id, self.span_id))
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.duration_s = time.perf_counter() - self._t0
        if exc_type is not None:
            self.attrs.setdefault("error", exc_type.__name__)
        if self._token is not None:
            _CURRENT.reset(self._token)
            self._token = None
        self._tracer._finish(self)


class _NullSpan:
    """The shared no-op span a disabled tracer hands out.

    Everything a real span exposes exists here as a constant or no-op, so
    instrumented code never branches on "is tracing on" — it just uses
    whatever span it was given.  ``trace_id is None`` is the one honest
    signal ("this request is not traced") callers may check before paying
    for propagation plumbing.
    """

    __slots__ = ()

    name = ""
    trace_id = None
    span_id = None
    parent_id = None
    start_s = 0.0
    duration_s = 0.0
    attrs: dict = {}

    def set(self, **attrs) -> None:
        pass

    def to_dict(self) -> dict:
        return {}

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc_info) -> None:
        pass


#: The one shared no-op span (allocation-free disabled path).
NULL_SPAN = _NullSpan()


class Tracer:
    """Creates spans and collects the finished ones (ring + optional sink).

    Disabled (the default) it returns :data:`NULL_SPAN` from every
    :meth:`span` call and drops everything else — the instrumented warm
    path pays one attribute check.  Enabled, finished spans append to a
    bounded ring buffer (``deque(maxlen=ring_size)``) and, if a sink path
    is configured, one JSON line each to that file (opened lazily,
    line-buffered appends under the tracer lock).
    """

    def __init__(self, ring_size: int = 4096) -> None:
        self.enabled = False
        self._lock = threading.Lock()
        self._ring: deque[dict] = deque(maxlen=ring_size)
        self._sink_path: str | None = None
        self._sink: IO[str] | None = None

    # -- configuration ---------------------------------------------------
    def configure(
        self,
        enabled: bool | None = None,
        sink_path: str | None | object = ...,
        ring_size: int | None = None,
    ) -> None:
        """Reconfigure in place (only the arguments given change).

        Setting a sink implies enabling is still explicit — a sink with
        tracing off writes nothing.  Changing ``ring_size`` re-bounds the
        ring, keeping the most recent spans.
        """
        with self._lock:
            if enabled is not None:
                self.enabled = bool(enabled)
            if sink_path is not ...:
                if self._sink is not None:
                    self._sink.close()
                    self._sink = None
                self._sink_path = sink_path  # type: ignore[assignment]
            if ring_size is not None:
                self._ring = deque(self._ring, maxlen=ring_size)

    # -- span creation ---------------------------------------------------
    def span(
        self,
        name: str,
        trace_id: str | None = None,
        parent_id: str | None = None,
        **attrs,
    ):
        """A context-manager span, or :data:`NULL_SPAN` when disabled.

        With no explicit ids the span nests under the thread's current
        span (same trace, parent = current span), or starts a fresh trace
        at the root.  Explicit ``trace_id``/``parent_id`` (from the wire
        or a cross-thread handoff) win over the ambient context.
        """
        if not self.enabled:
            return NULL_SPAN
        if trace_id is None:
            current = _CURRENT.get()
            if current is not None:
                trace_id, parent_id = current
            else:
                trace_id = new_trace_id()
        return Span(self, name, trace_id, parent_id, attrs)

    def record(
        self,
        name: str,
        trace_id: str | None,
        parent_id: str | None,
        start_s: float,
        duration_s: float,
        **attrs,
    ) -> None:
        """Emit an already-measured span (e.g. per-request queue wait,
        timed with plain floats where a context manager cannot wrap the
        interval).  No-op when disabled or the request was untraced."""
        if not self.enabled or trace_id is None:
            return
        span = {
            "name": name,
            "trace": trace_id,
            "span": new_span_id(),
            "parent": parent_id,
            "start_s": start_s,
            "duration_s": duration_s,
        }
        if attrs:
            span["attrs"] = attrs
        self._emit(span)

    def record_ago(
        self,
        name: str,
        trace_id: str | None,
        parent_id: str | None,
        ago_s: float,
        **attrs,
    ) -> None:
        """Emit a span that *ended now* and lasted ``ago_s`` seconds.

        Callers measure the interval with ``perf_counter`` deltas and
        never touch the wall clock themselves — the one wall-clock read
        anchoring the span happens here, inside obs, so instrumented
        modules stay clock-free (the determinism-wallclock lint rule).
        No-op when disabled or the request was untraced."""
        if not self.enabled or trace_id is None:
            return
        self.record(name, trace_id, parent_id, time.time() - ago_s, ago_s, **attrs)

    def ingest(self, span_dicts: Iterable[Mapping]) -> None:
        """Merge spans built elsewhere (worker processes return span
        dicts with their results; the parent ingests them on harvest)."""
        if not self.enabled:
            return
        for span in span_dicts:
            self._emit(dict(span))

    # -- collection ------------------------------------------------------
    def _finish(self, span: Span) -> None:
        if self.enabled:
            self._emit(span.to_dict())

    def _emit(self, span_dict: dict) -> None:
        with self._lock:
            self._ring.append(span_dict)
            if self._sink_path is not None:
                if self._sink is None:
                    self._sink = open(self._sink_path, "a", buffering=1)
                self._sink.write(
                    json.dumps(span_dict, sort_keys=True, separators=(",", ":"))
                    + "\n"
                )

    def spans(self) -> list[dict]:
        """The ring buffer's contents, oldest first."""
        with self._lock:
            return list(self._ring)

    def clear(self) -> None:
        """Empty the ring buffer (the sink file is left alone)."""
        with self._lock:
            self._ring.clear()

    def close(self) -> None:
        """Flush and close the sink file, if one was opened."""
        with self._lock:
            if self._sink is not None:
                self._sink.close()
                self._sink = None


def worker_span(
    name: str,
    trace_id: str,
    parent_id: str | None,
    fn,
    **attrs,
) -> tuple:
    """Run ``fn()`` and return ``(result, span_dict)`` measuring it.

    The cross-process span builder: worker processes hold a fresh
    (disabled) global tracer, so instead of a :class:`Span` they build
    the plain dict form and ship it home with the result for
    :meth:`Tracer.ingest`.  Both clock reads (the wall anchor and the
    ``perf_counter`` duration) live here in obs, keeping worker task
    modules clock-free for the determinism-wallclock lint rule.
    """
    start_s = time.time()
    t0 = time.perf_counter()
    result = fn()
    span = {
        "name": name,
        "trace": trace_id,
        "span": new_span_id(),
        "parent": parent_id,
        "start_s": start_s,
        "duration_s": time.perf_counter() - t0,
    }
    if attrs:
        span["attrs"] = dict(attrs)
    return result, span


#: The process-wide tracer (disabled until :func:`configure_tracing`).
_DEFAULT = Tracer()


def get_tracer() -> Tracer:
    """The process-wide default :class:`Tracer`."""
    return _DEFAULT


def configure_tracing(
    enabled: bool | None = None,
    sink_path: str | None | object = ...,
    ring_size: int | None = None,
) -> Tracer:
    """Configure and return the process-wide tracer (see
    :meth:`Tracer.configure`)."""
    _DEFAULT.configure(enabled=enabled, sink_path=sink_path, ring_size=ring_size)
    return _DEFAULT
