"""Process-wide metrics registry: named counters, gauges and histograms.

The observability substrate every subsystem reports into — the scheduler,
worker pools, evaluators, the durable store and the service all register
metrics here under per-subsystem namespaces (``"scheduler.ticks"``,
``"pool.restarts"``, ``"service.latency_s.evaluate_many"``, ...).  One
process-wide default registry (:func:`get_registry`) keeps the hot paths
trivial: a subsystem fetches its metric objects once at import time and
then increments them with no name lookups.

Design constraints (and why):

* **Thread-safe.**  Metrics are updated from the asyncio loop, the
  scheduler thread, search threads and pool-harvest code paths at once;
  every mutation holds the metric's lock (a plain ``threading.Lock`` —
  the critical sections are a handful of float ops).
* **Bounded, fixed histogram buckets.**  Latency histograms use a fixed
  log-spaced boundary ladder (:data:`LATENCY_BUCKETS_S`, parsed from
  decimal literals so every process on every platform builds bit-equal
  boundaries).  Fixed buckets make snapshots deterministic in *shape*
  and mergeable across workers and service backends: merging is
  bucket-wise addition (:func:`merge_snapshots`), never re-binning.
* **Snapshots are pure data.**  :meth:`MetricsRegistry.snapshot` returns
  plain dicts/lists/floats — JSON-safe, and floats survive the wire
  bit-exactly under the repo's repr-round-trip discipline (``json``
  serialises floats with ``repr``), so the service ``stats`` verb can
  ship a snapshot without a codec.
* **Zero-cost-by-default.**  Metric updates never change computed
  results (they only count and time), and the whole registry has a kill
  switch (:meth:`MetricsRegistry.set_enabled`) under which every update
  is a single attribute check — what ``benchmarks/test_obs_bench.py``
  uses to measure the instrumented-vs-uninstrumented overhead ratio
  recorded in ``BENCH_obs.json``.
"""

from __future__ import annotations

import math
import threading
from bisect import bisect_left
from typing import Iterable, Mapping

__all__ = [
    "LATENCY_BUCKETS_S",
    "COUNT_BUCKETS",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "get_registry",
    "histogram_quantile",
    "merge_snapshots",
]

#: Fixed log-spaced latency boundaries (seconds): three per decade from
#: 1 microsecond to 100 seconds.  Parsed from decimal literals — not
#: computed with ``10 ** x`` — so every worker/backend builds bit-equal
#: boundaries regardless of platform ``libm`` and merged snapshots line
#: up bucket for bucket.
LATENCY_BUCKETS_S: tuple[float, ...] = tuple(
    float(f"{mantissa}e{exponent}")
    for exponent in range(-6, 2)
    for mantissa in ("1", "2.15", "4.64")
) + (100.0,)

#: Power-of-two boundaries for size-ish histograms (batch points, shard
#: items): 1, 2, 4, ... 4096 — the scheduler's max_batch_points default.
COUNT_BUCKETS: tuple[float, ...] = tuple(float(2**k) for k in range(13))


class Counter:
    """A monotonically increasing named count (thread-safe)."""

    __slots__ = ("name", "_lock", "_value", "_enabled_ref")

    def __init__(self, name: str, enabled_ref: list[bool]) -> None:
        self.name = name
        self._lock = threading.Lock()
        self._value = 0
        self._enabled_ref = enabled_ref

    def inc(self, n: int = 1) -> None:
        if not self._enabled_ref[0]:
            return
        with self._lock:
            self._value += n

    @property
    def value(self) -> int:
        return self._value

    def _reset(self) -> None:
        with self._lock:
            self._value = 0


class Gauge:
    """A point-in-time named value (thread-safe; last write wins)."""

    __slots__ = ("name", "_lock", "_value", "_enabled_ref")

    def __init__(self, name: str, enabled_ref: list[bool]) -> None:
        self.name = name
        self._lock = threading.Lock()
        self._value = 0.0
        self._enabled_ref = enabled_ref

    def set(self, value: float) -> None:
        if not self._enabled_ref[0]:
            return
        with self._lock:
            self._value = float(value)

    @property
    def value(self) -> float:
        return self._value

    def _reset(self) -> None:
        with self._lock:
            self._value = 0.0


class Histogram:
    """Bounded-bucket distribution of observed values (thread-safe).

    ``buckets`` are fixed upper boundaries (``value <= le`` lands in the
    first matching bucket); values beyond the last boundary count in the
    overflow bucket, so memory is bounded no matter what is observed.
    ``sum``/``min``/``max`` are tracked exactly alongside the counts.
    """

    __slots__ = (
        "name",
        "_lock",
        "_boundaries",
        "_counts",
        "_overflow",
        "_count",
        "_sum",
        "_min",
        "_max",
        "_enabled_ref",
    )

    def __init__(
        self,
        name: str,
        enabled_ref: list[bool],
        buckets: Iterable[float] = LATENCY_BUCKETS_S,
    ) -> None:
        boundaries = tuple(float(b) for b in buckets)
        if not boundaries or list(boundaries) != sorted(set(boundaries)):
            raise ValueError("buckets must be a non-empty increasing sequence")
        self.name = name
        self._lock = threading.Lock()
        self._boundaries = boundaries
        self._counts = [0] * len(boundaries)
        self._overflow = 0
        self._count = 0
        self._sum = 0.0
        self._min = math.inf
        self._max = -math.inf
        self._enabled_ref = enabled_ref

    @property
    def boundaries(self) -> tuple[float, ...]:
        return self._boundaries

    def observe(self, value: float) -> None:
        if not self._enabled_ref[0]:
            return
        value = float(value)
        index = bisect_left(self._boundaries, value)
        with self._lock:
            if index < len(self._counts):
                self._counts[index] += 1
            else:
                self._overflow += 1
            self._count += 1
            self._sum += value
            if value < self._min:
                self._min = value
            if value > self._max:
                self._max = value

    @property
    def count(self) -> int:
        return self._count

    def snapshot(self) -> dict:
        """Pure-data state: count/sum/min/max plus sparse bucket counts."""
        with self._lock:
            buckets = [
                [le, count]
                for le, count in zip(self._boundaries, self._counts)
                if count
            ]
            return {
                "count": self._count,
                "sum": self._sum,
                "min": self._min if self._count else None,
                "max": self._max if self._count else None,
                "buckets": buckets,
                "overflow": self._overflow,
            }

    def _reset(self) -> None:
        with self._lock:
            self._counts = [0] * len(self._boundaries)
            self._overflow = 0
            self._count = 0
            self._sum = 0.0
            self._min = math.inf
            self._max = -math.inf


class MetricsRegistry:
    """Named metric objects with get-or-create semantics and one snapshot.

    Metric names are dotted ``"subsystem.metric"`` strings; registering
    the same name twice returns the same object (so module-level handles
    and ad-hoc lookups share state), and registering a name as two
    different metric kinds is an error rather than a silent shadow.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._metrics: dict[str, Counter | Gauge | Histogram] = {}
        # A one-element list so every metric shares the flag by reference
        # (flipping it flips the whole registry without touching metrics).
        self._enabled = [True]

    # -- enable/disable --------------------------------------------------
    @property
    def enabled(self) -> bool:
        return self._enabled[0]

    def set_enabled(self, enabled: bool) -> None:
        """Registry kill switch: when off, every update is a no-op (one
        attribute check on the hot path) and values freeze in place."""
        self._enabled[0] = bool(enabled)

    # -- registration ----------------------------------------------------
    def _get_or_create(self, name: str, kind, factory):
        with self._lock:
            metric = self._metrics.get(name)
            if metric is None:
                metric = factory()
                self._metrics[name] = metric
            elif not isinstance(metric, kind):
                raise TypeError(
                    f"metric {name!r} is already registered as "
                    f"{type(metric).__name__}, not {kind.__name__}"
                )
            return metric

    def counter(self, name: str) -> Counter:
        return self._get_or_create(
            name, Counter, lambda: Counter(name, self._enabled)
        )

    def gauge(self, name: str) -> Gauge:
        return self._get_or_create(name, Gauge, lambda: Gauge(name, self._enabled))

    def histogram(
        self, name: str, buckets: Iterable[float] = LATENCY_BUCKETS_S
    ) -> Histogram:
        return self._get_or_create(
            name, Histogram, lambda: Histogram(name, self._enabled, buckets)
        )

    # -- snapshot / reset ------------------------------------------------
    def snapshot(self) -> dict:
        """JSON-safe pure-data state of every registered metric.

        Keys are sorted so two snapshots of identical state serialise to
        identical bytes; floats are plain Python floats (``json`` writes
        them with ``repr``, the repo's wire-exact discipline).
        """
        with self._lock:
            metrics = sorted(self._metrics.items())
        counters: dict[str, int] = {}
        gauges: dict[str, float] = {}
        histograms: dict[str, dict] = {}
        for name, metric in metrics:
            if isinstance(metric, Counter):
                counters[name] = metric.value
            elif isinstance(metric, Gauge):
                gauges[name] = metric.value
            else:
                histograms[name] = metric.snapshot()
        return {
            "counters": counters,
            "gauges": gauges,
            "histograms": histograms,
        }

    def reset(self) -> None:
        """Zero every metric *in place* (objects and handles stay valid).

        Test/tooling hook — production code never resets; counters are
        lifetime-monotonic by contract.
        """
        with self._lock:
            metrics = list(self._metrics.values())
        for metric in metrics:
            metric._reset()


def merge_snapshots(*snapshots: Mapping) -> dict:
    """Merge registry snapshots from several workers/backends into one.

    Counters and histogram buckets add (fixed boundaries make bucket-wise
    addition exact); gauges keep the last snapshot's value (point-in-time
    semantics); min/max combine.  The result has the same shape as
    :meth:`MetricsRegistry.snapshot`, so merging is associative and the
    merged form can itself be merged again.
    """
    counters: dict[str, int] = {}
    gauges: dict[str, float] = {}
    histograms: dict[str, dict] = {}
    for snap in snapshots:
        for name, value in snap.get("counters", {}).items():
            counters[name] = counters.get(name, 0) + value
        for name, value in snap.get("gauges", {}).items():
            gauges[name] = value
        for name, hist in snap.get("histograms", {}).items():
            merged = histograms.get(name)
            if merged is None:
                histograms[name] = {
                    "count": hist["count"],
                    "sum": hist["sum"],
                    "min": hist["min"],
                    "max": hist["max"],
                    "buckets": [list(b) for b in hist["buckets"]],
                    "overflow": hist["overflow"],
                }
                continue
            merged["count"] += hist["count"]
            merged["sum"] += hist["sum"]
            for bound in ("min", "max"):
                values = [
                    v for v in (merged[bound], hist[bound]) if v is not None
                ]
                if values:
                    merged[bound] = (
                        min(values) if bound == "min" else max(values)
                    )
            merged["overflow"] += hist["overflow"]
            by_le = {le: count for le, count in merged["buckets"]}
            for le, count in hist["buckets"]:
                by_le[le] = by_le.get(le, 0) + count
            merged["buckets"] = [list(item) for item in sorted(by_le.items())]
    return {"counters": counters, "gauges": gauges, "histograms": histograms}


def histogram_quantile(hist: Mapping, q: float) -> float | None:
    """Upper-bound estimate of the ``q``-quantile from a histogram snapshot.

    Returns the smallest bucket boundary whose cumulative count reaches
    ``q * count`` (the classic bucketed-quantile read), the recorded max
    for observations beyond the last boundary, or ``None`` when empty.
    """
    if not 0.0 <= q <= 1.0:
        raise ValueError("q must be in [0, 1]")
    count = hist.get("count", 0)
    if not count:
        return None
    target = q * count
    cumulative = 0
    for le, bucket_count in hist.get("buckets", []):
        cumulative += bucket_count
        if cumulative >= target:
            return float(le)
    return hist.get("max")


#: The process-wide default registry every subsystem reports into.
_DEFAULT = MetricsRegistry()


def get_registry() -> MetricsRegistry:
    """The process-wide default :class:`MetricsRegistry`."""
    return _DEFAULT
