"""repro.obs — unified observability: metrics registry + request tracing.

Two process-wide singletons every subsystem shares:

* :func:`get_registry` — named counters / gauges / bounded-bucket
  histograms with a pure-data, mergeable :meth:`~repro.obs.registry.
  MetricsRegistry.snapshot` (surfaced by the service ``stats`` verb and
  the ``yoso stats`` CLI).
* :func:`get_tracer` — context-manager spans with trace ids that follow
  a request from :class:`~repro.service.client.ServiceClient` through
  the scheduler's coalescing window, pool shard dispatch and store
  lookups (disabled by default; enable with :func:`configure_tracing`).

Plus :func:`host_info`, the shared ``cpu_count``/``degraded_host``
helper for the ``BENCH_*.json`` writers.  See ``docs/OBSERVABILITY.md``.
"""

from .host import cpu_budget, host_info
from .registry import (
    COUNT_BUCKETS,
    LATENCY_BUCKETS_S,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    get_registry,
    histogram_quantile,
    merge_snapshots,
)
from .render import format_seconds, render_metrics, render_stats
from .tracing import (
    NULL_SPAN,
    Span,
    Tracer,
    configure_tracing,
    current_context,
    get_tracer,
    new_span_id,
    new_trace_id,
)

__all__ = [
    "COUNT_BUCKETS",
    "LATENCY_BUCKETS_S",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NULL_SPAN",
    "Span",
    "Tracer",
    "configure_tracing",
    "cpu_budget",
    "current_context",
    "format_seconds",
    "get_registry",
    "get_tracer",
    "histogram_quantile",
    "host_info",
    "merge_snapshots",
    "new_span_id",
    "new_trace_id",
    "render_metrics",
    "render_stats",
]
