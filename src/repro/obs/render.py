"""Text rendering of stats/metrics snapshots for the ``yoso stats`` CLI.

Pure formatting — takes the pure-data dicts the service ``stats`` verb
returns (see :meth:`repro.service.server.SearchService.stats`) and
renders an aligned, human-scannable report.  Histograms show count /
mean / p50 / p99 (quantiles are bucket-boundary upper bounds from
:func:`repro.obs.registry.histogram_quantile`).
"""

from __future__ import annotations

from typing import Mapping

from .registry import histogram_quantile

__all__ = ["render_metrics", "render_stats", "format_seconds"]


def format_seconds(value: float | None) -> str:
    """A latency with a readable unit (``17.3us`` / ``4.2ms`` / ``1.31s``)."""
    if value is None:
        return "-"
    if value < 1e-3:
        return f"{value * 1e6:.1f}us"
    if value < 1.0:
        return f"{value * 1e3:.1f}ms"
    return f"{value:.2f}s"


def _render_section(title: str, rows: list[tuple[str, str]], out: list[str]) -> None:
    if not rows:
        return
    out.append(title)
    width = max(len(key) for key, _ in rows)
    for key, value in rows:
        out.append(f"  {key.ljust(width)}  {value}")


def render_metrics(snapshot: Mapping) -> str:
    """Render a registry snapshot (counters / gauges / histograms)."""
    out: list[str] = []
    counters = snapshot.get("counters", {})
    gauges = snapshot.get("gauges", {})
    histograms = snapshot.get("histograms", {})
    _render_section(
        "counters", [(k, str(v)) for k, v in sorted(counters.items())], out
    )
    if out and gauges:
        out.append("")
    _render_section(
        "gauges", [(k, f"{v:g}") for k, v in sorted(gauges.items())], out
    )
    rows: list[tuple[str, str]] = []
    for name, hist in sorted(histograms.items()):
        count = hist.get("count", 0)
        if not count:
            rows.append((name, "count=0"))
            continue
        mean = hist.get("sum", 0.0) / count
        p50 = histogram_quantile(hist, 0.50)
        p99 = histogram_quantile(hist, 0.99)
        if name.endswith("_s") or "_s." in name:
            stat = (
                f"count={count} mean={format_seconds(mean)} "
                f"p50<={format_seconds(p50)} p99<={format_seconds(p99)}"
            )
        else:
            stat = f"count={count} mean={mean:.1f} p50<={p50:g} p99<={p99:g}"
        rows.append((name, stat))
    if out and rows:
        out.append("")
    _render_section("histograms", rows, out)
    return "\n".join(out) if out else "(no metrics recorded)"


def render_stats(stats: Mapping) -> str:
    """Render a full service ``stats`` snapshot: the classic per-subsystem
    counter sections first, then the registry metrics block."""
    out: list[str] = []
    for section in ("service", "scheduler", "evaluator", "store"):
        data = stats.get(section)
        if not isinstance(data, Mapping):
            continue
        rows = []
        for key, value in sorted(data.items()):
            if isinstance(value, Mapping):
                inner = " ".join(
                    f"{k}={v}" for k, v in sorted(value.items())
                )
                rows.append((key, inner))
            elif isinstance(value, float):
                rows.append((key, f"{value:g}"))
            else:
                rows.append((key, str(value)))
        _render_section(section, rows, out)
        out.append("")
    metrics = stats.get("metrics")
    if isinstance(metrics, Mapping):
        out.append("metrics")
        block = render_metrics(metrics)
        out.extend("  " + line if line else "" for line in block.split("\n"))
    while out and not out[-1]:
        out.pop()
    return "\n".join(out)
