"""Numerical kernels for the numpy deep-learning substrate.

Every function here is a pure forward or backward computation on
``numpy.ndarray`` inputs.  Convolutions use an im2col lowering with the
column layout ``(N, C*K*K, OH*OW)``: building it only needs K*K contiguous
slice copies (no strided gathers), and the convolution itself becomes one
batched BLAS ``matmul`` whose output reshapes to NCHW for free.

Array layout is NCHW throughout; compute dtype is float32.
"""

from __future__ import annotations

import numpy as np

DTYPE = np.float32

__all__ = [
    "DTYPE",
    "im2col",
    "col2im",
    "conv2d_forward",
    "conv2d_backward",
    "depthwise_conv2d_forward",
    "depthwise_conv2d_backward",
    "maxpool2d_forward",
    "maxpool2d_backward",
    "avgpool2d_forward",
    "avgpool2d_backward",
    "relu_forward",
    "relu_backward",
    "batchnorm_forward",
    "batchnorm_backward",
    "linear_forward",
    "linear_backward",
    "softmax",
    "softmax_cross_entropy",
    "global_avgpool_forward",
    "global_avgpool_backward",
    "pad_same",
    "conv_out_size",
]


def conv_out_size(size: int, kernel: int, stride: int, pad: int) -> int:
    """Output spatial size of a convolution/pooling window sweep."""
    return (size + 2 * pad - kernel) // stride + 1


def pad_same(kernel: int) -> int:
    """Padding that preserves spatial size at stride 1 for odd kernels."""
    return (kernel - 1) // 2


def im2col(
    x: np.ndarray, kernel: int, stride: int, pad: int, pad_value: float = 0.0
) -> np.ndarray:
    """Lower sliding windows of ``x`` into column form.

    Parameters
    ----------
    x:
        Input of shape ``(N, C, H, W)``.
    kernel, stride, pad:
        Square window geometry.
    pad_value:
        Fill value for the padded border (``-inf`` for max pooling).

    Returns
    -------
    Array of shape ``(N, C * kernel * kernel, OH * OW)``.
    """
    n, c, h, w = x.shape
    oh = conv_out_size(h, kernel, stride, pad)
    ow = conv_out_size(w, kernel, stride, pad)
    if pad > 0:
        xp = np.full(
            (n, c, h + 2 * pad, w + 2 * pad), pad_value, dtype=x.dtype
        )
        xp[:, :, pad : pad + h, pad : pad + w] = x
    else:
        xp = x
    cols = np.empty((n, c, kernel, kernel, oh, ow), dtype=x.dtype)
    for ki in range(kernel):
        h_end = ki + stride * oh
        for kj in range(kernel):
            w_end = kj + stride * ow
            cols[:, :, ki, kj] = xp[:, :, ki:h_end:stride, kj:w_end:stride]
    return cols.reshape(n, c * kernel * kernel, oh * ow)


def col2im(
    cols: np.ndarray,
    x_shape: tuple[int, int, int, int],
    kernel: int,
    stride: int,
    pad: int,
) -> np.ndarray:
    """Inverse of :func:`im2col`: scatter-add columns back to image layout."""
    n, c, h, w = x_shape
    oh = conv_out_size(h, kernel, stride, pad)
    ow = conv_out_size(w, kernel, stride, pad)
    hp, wp = h + 2 * pad, w + 2 * pad
    x = np.zeros((n, c, hp, wp), dtype=cols.dtype)
    cols6 = cols.reshape(n, c, kernel, kernel, oh, ow)
    for ki in range(kernel):
        h_end = ki + stride * oh
        for kj in range(kernel):
            w_end = kj + stride * ow
            x[:, :, ki:h_end:stride, kj:w_end:stride] += cols6[:, :, ki, kj]
    if pad > 0:
        return x[:, :, pad : pad + h, pad : pad + w]
    return x


# ---------------------------------------------------------------------------
# Convolution
# ---------------------------------------------------------------------------


def conv2d_forward(
    x: np.ndarray, weight: np.ndarray, stride: int, pad: int
) -> tuple[np.ndarray, tuple]:
    """Standard convolution.

    ``weight`` has shape ``(K, C, R, S)`` with square ``R == S`` kernels.
    Returns ``(out, cache)`` with ``out`` of shape ``(N, K, OH, OW)``.
    """
    n, c, h, w = x.shape
    k, cw, r, s = weight.shape
    if cw != c or r != s:
        raise ValueError(f"weight shape {weight.shape} incompatible with input {x.shape}")
    cols = im2col(x, r, stride, pad)  # (N, C*R*S, P)
    w2 = weight.reshape(k, -1)
    out = np.matmul(w2, cols)  # (N, K, P)
    oh = conv_out_size(h, r, stride, pad)
    ow = conv_out_size(w, r, stride, pad)
    cache = (cols, x.shape, weight, stride, pad)
    return out.reshape(n, k, oh, ow), cache


def conv2d_backward(grad_out: np.ndarray, cache: tuple) -> tuple[np.ndarray, np.ndarray]:
    """Backward pass of :func:`conv2d_forward`.

    Returns ``(grad_x, grad_weight)``.
    """
    cols, x_shape, weight, stride, pad = cache
    k = weight.shape[0]
    r = weight.shape[2]
    n = grad_out.shape[0]
    g = grad_out.reshape(n, k, -1)  # (N, K, P)
    # grad_w[k, ckk] = sum_n g[n] @ cols[n].T
    grad_w = np.einsum("nkp,ncp->kc", g, cols, optimize=True).reshape(weight.shape)
    grad_cols = np.matmul(weight.reshape(k, -1).T, g)  # (N, C*R*S, P)
    grad_x = col2im(grad_cols, x_shape, r, stride, pad)
    return grad_x, grad_w


# ---------------------------------------------------------------------------
# Depthwise convolution
# ---------------------------------------------------------------------------


def depthwise_conv2d_forward(
    x: np.ndarray, weight: np.ndarray, stride: int, pad: int
) -> tuple[np.ndarray, tuple]:
    """Depthwise convolution: one ``(R, S)`` filter per input channel.

    ``weight`` has shape ``(C, R, S)``.  Returns ``(out, cache)`` with ``out``
    of shape ``(N, C, OH, OW)``.
    """
    n, c, h, w = x.shape
    cw, r, s = weight.shape
    if cw != c or r != s:
        raise ValueError(f"weight shape {weight.shape} incompatible with input {x.shape}")
    cols = im2col(x, r, stride, pad)  # (N, C*R*S, P)
    oh = conv_out_size(h, r, stride, pad)
    ow = conv_out_size(w, r, stride, pad)
    cols4 = cols.reshape(n, c, r * s, -1)
    out = np.einsum("nckp,ck->ncp", cols4, weight.reshape(c, r * s), optimize=True)
    cache = (cols, x.shape, weight, stride, pad)
    return out.reshape(n, c, oh, ow), cache


def depthwise_conv2d_backward(
    grad_out: np.ndarray, cache: tuple
) -> tuple[np.ndarray, np.ndarray]:
    """Backward pass of :func:`depthwise_conv2d_forward`."""
    cols, x_shape, weight, stride, pad = cache
    c, r, _ = weight.shape
    n = grad_out.shape[0]
    g = grad_out.reshape(n, c, -1)  # (N, C, P)
    cols4 = cols.reshape(n, c, r * r, -1)
    grad_w = np.einsum("ncp,nckp->ck", g, cols4, optimize=True).reshape(weight.shape)
    grad_cols = g[:, :, None, :] * weight.reshape(1, c, r * r, 1)
    grad_x = col2im(grad_cols.reshape(n, c * r * r, -1), x_shape, r, stride, pad)
    return grad_x, grad_w


# ---------------------------------------------------------------------------
# Pooling
# ---------------------------------------------------------------------------


def maxpool2d_forward(
    x: np.ndarray, kernel: int, stride: int, pad: int
) -> tuple[np.ndarray, tuple]:
    """Max pooling.  Padded cells are ``-inf`` so they never win the max."""
    n, c, h, w = x.shape
    oh = conv_out_size(h, kernel, stride, pad)
    ow = conv_out_size(w, kernel, stride, pad)
    cols = im2col(x, kernel, stride, pad, pad_value=-np.inf)
    cols4 = cols.reshape(n, c, kernel * kernel, oh * ow)
    arg = np.argmax(cols4, axis=2)  # (N, C, P)
    out = np.take_along_axis(cols4, arg[:, :, None, :], axis=2)[:, :, 0, :]
    cache = (arg, x.shape, kernel, stride, pad)
    return out.reshape(n, c, oh, ow), cache


def maxpool2d_backward(grad_out: np.ndarray, cache: tuple) -> np.ndarray:
    """Route gradients to the argmax cell of every window."""
    arg, x_shape, kernel, stride, pad = cache
    n, c, oh, ow = grad_out.shape
    cols4 = np.zeros((n, c, kernel * kernel, oh * ow), dtype=grad_out.dtype)
    np.put_along_axis(
        cols4, arg[:, :, None, :], grad_out.reshape(n, c, 1, -1), axis=2
    )
    return col2im(cols4.reshape(n, c * kernel * kernel, -1), x_shape, kernel, stride, pad)


def avgpool2d_forward(
    x: np.ndarray, kernel: int, stride: int, pad: int
) -> tuple[np.ndarray, tuple]:
    """Average pooling (count includes padded zeros, matching common practice)."""
    n, c, h, w = x.shape
    oh = conv_out_size(h, kernel, stride, pad)
    ow = conv_out_size(w, kernel, stride, pad)
    cols = im2col(x, kernel, stride, pad)
    cols4 = cols.reshape(n, c, kernel * kernel, oh * ow)
    out = cols4.mean(axis=2)
    cache = (x.shape, kernel, stride, pad)
    return out.reshape(n, c, oh, ow), cache


def avgpool2d_backward(grad_out: np.ndarray, cache: tuple) -> np.ndarray:
    """Spread gradients uniformly over each window."""
    x_shape, kernel, stride, pad = cache
    n, c, oh, ow = grad_out.shape
    kk = kernel * kernel
    g = grad_out.reshape(n, c, 1, oh * ow) / kk
    cols4 = np.broadcast_to(g, (n, c, kk, oh * ow))
    return col2im(
        np.ascontiguousarray(cols4).reshape(n, c * kk, -1), x_shape, kernel, stride, pad
    )


def global_avgpool_forward(x: np.ndarray) -> tuple[np.ndarray, tuple]:
    """Global average pool to shape ``(N, C)``."""
    out = x.mean(axis=(2, 3))
    return out, (x.shape,)


def global_avgpool_backward(grad_out: np.ndarray, cache: tuple) -> np.ndarray:
    (x_shape,) = cache
    n, c, h, w = x_shape
    return np.broadcast_to(
        (grad_out / (h * w))[:, :, None, None], x_shape
    ).astype(grad_out.dtype, copy=True)


# ---------------------------------------------------------------------------
# Pointwise / dense
# ---------------------------------------------------------------------------


def relu_forward(x: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    mask = x > 0
    return x * mask, mask


def relu_backward(grad_out: np.ndarray, mask: np.ndarray) -> np.ndarray:
    return grad_out * mask


def linear_forward(
    x: np.ndarray, weight: np.ndarray, bias: np.ndarray
) -> tuple[np.ndarray, tuple]:
    """Affine map ``x @ weight.T + bias`` with ``weight`` shape ``(out, in)``."""
    out = x @ weight.T + bias
    return out, (x, weight)


def linear_backward(
    grad_out: np.ndarray, cache: tuple
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    x, weight = cache
    grad_x = grad_out @ weight
    grad_w = grad_out.T @ x
    grad_b = grad_out.sum(axis=0)
    return grad_x, grad_w, grad_b


def batchnorm_forward(
    x: np.ndarray,
    gamma: np.ndarray,
    beta: np.ndarray,
    running_mean: np.ndarray,
    running_var: np.ndarray,
    momentum: float,
    eps: float,
    training: bool,
) -> tuple[np.ndarray, tuple | None]:
    """Batch normalisation over the channel axis of an NCHW tensor.

    In training mode the running statistics are updated in place and a cache
    for the backward pass is returned; in eval mode the cache is ``None``.
    """
    if training:
        mean = x.mean(axis=(0, 2, 3))
        var = x.var(axis=(0, 2, 3))
        running_mean *= 1.0 - momentum
        running_mean += momentum * mean
        running_var *= 1.0 - momentum
        running_var += momentum * var
    else:
        mean, var = running_mean, running_var
    inv_std = (1.0 / np.sqrt(var + eps)).astype(x.dtype)
    xhat = (x - mean.astype(x.dtype)[None, :, None, None]) * inv_std[None, :, None, None]
    out = gamma.astype(x.dtype)[None, :, None, None] * xhat
    out += beta.astype(x.dtype)[None, :, None, None]
    cache = (xhat, inv_std, gamma) if training else None
    return out, cache


def batchnorm_backward(
    grad_out: np.ndarray, cache: tuple
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Backward pass of training-mode batch norm."""
    xhat, inv_std, gamma = cache
    n, c, h, w = grad_out.shape
    m = n * h * w
    grad_gamma = (grad_out * xhat).sum(axis=(0, 2, 3))
    grad_beta = grad_out.sum(axis=(0, 2, 3))
    gxhat = grad_out * gamma.astype(grad_out.dtype)[None, :, None, None]
    sum_g = gxhat.sum(axis=(0, 2, 3), keepdims=True)
    sum_gx = (gxhat * xhat).sum(axis=(0, 2, 3), keepdims=True)
    grad_x = (gxhat - sum_g / m - xhat * sum_gx / m) * inv_std[None, :, None, None]
    return grad_x, grad_gamma, grad_beta


def softmax(logits: np.ndarray, axis: int = -1) -> np.ndarray:
    """Numerically stable softmax."""
    z = logits - logits.max(axis=axis, keepdims=True)
    e = np.exp(z)
    return e / e.sum(axis=axis, keepdims=True)


def softmax_cross_entropy(
    logits: np.ndarray, labels: np.ndarray
) -> tuple[float, np.ndarray]:
    """Mean cross-entropy loss and gradient w.r.t. logits.

    ``labels`` are integer class indices of shape ``(N,)``.
    """
    n = logits.shape[0]
    probs = softmax(np.asarray(logits, dtype=np.float64), axis=1)
    eps = 1e-12
    loss = float(-np.log(probs[np.arange(n), labels] + eps).mean())
    grad = probs
    grad[np.arange(n), labels] -= 1.0
    grad /= n
    return loss, grad.astype(logits.dtype)
