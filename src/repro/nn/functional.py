"""Numerical kernels for the numpy deep-learning substrate.

Every function here is a pure forward or backward computation on
``numpy.ndarray`` inputs.  Convolutions use an im2col lowering with the
column layout ``(N, C*K*K, OH*OW)``: building it only needs K*K contiguous
slice copies (no strided gathers), and the convolution itself becomes one
batched BLAS ``matmul`` whose output reshapes to NCHW for free.

Array layout is NCHW throughout; compute dtype is float32.
"""

from __future__ import annotations

import numpy as np

DTYPE = np.float32

__all__ = [
    "DTYPE",
    "im2col",
    "col2im",
    "conv2d_forward",
    "conv2d_backward",
    "depthwise_conv2d_forward",
    "depthwise_conv2d_backward",
    "maxpool2d_forward",
    "maxpool2d_backward",
    "avgpool2d_forward",
    "avgpool2d_backward",
    "conv2d_infer",
    "depthwise_conv2d_infer",
    "maxpool2d_infer",
    "avgpool2d_infer",
    "batchnorm_infer",
    "conv2d_forward_fast",
    "conv2d_backward_fast",
    "depthwise_conv2d_forward_fast",
    "depthwise_conv2d_backward_fast",
    "maxpool2d_forward_fast",
    "maxpool2d_backward_fast",
    "avgpool2d_forward_fast",
    "avgpool2d_backward_fast",
    "batchnorm_forward_fast",
    "batchnorm_backward_fast",
    "relu_forward",
    "relu_backward",
    "batchnorm_forward",
    "batchnorm_backward",
    "linear_forward",
    "linear_backward",
    "softmax",
    "softmax_cross_entropy",
    "global_avgpool_forward",
    "global_avgpool_backward",
    "pad_same",
    "conv_out_size",
]


def conv_out_size(size: int, kernel: int, stride: int, pad: int) -> int:
    """Output spatial size of a convolution/pooling window sweep."""
    return (size + 2 * pad - kernel) // stride + 1


def pad_same(kernel: int) -> int:
    """Padding that preserves spatial size at stride 1 for odd kernels."""
    return (kernel - 1) // 2


def im2col(
    x: np.ndarray, kernel: int, stride: int, pad: int, pad_value: float = 0.0
) -> np.ndarray:
    """Lower sliding windows of ``x`` into column form.

    Parameters
    ----------
    x:
        Input of shape ``(N, C, H, W)``.
    kernel, stride, pad:
        Square window geometry.
    pad_value:
        Fill value for the padded border (``-inf`` for max pooling).

    Returns
    -------
    Array of shape ``(N, C * kernel * kernel, OH * OW)``.
    """
    n, c, h, w = x.shape
    oh = conv_out_size(h, kernel, stride, pad)
    ow = conv_out_size(w, kernel, stride, pad)
    if pad > 0:
        xp = np.full(
            (n, c, h + 2 * pad, w + 2 * pad), pad_value, dtype=x.dtype
        )
        xp[:, :, pad : pad + h, pad : pad + w] = x
    else:
        xp = x
    cols = np.empty((n, c, kernel, kernel, oh, ow), dtype=x.dtype)
    for ki in range(kernel):
        h_end = ki + stride * oh
        for kj in range(kernel):
            w_end = kj + stride * ow
            cols[:, :, ki, kj] = xp[:, :, ki:h_end:stride, kj:w_end:stride]
    return cols.reshape(n, c * kernel * kernel, oh * ow)


def col2im(
    cols: np.ndarray,
    x_shape: tuple[int, int, int, int],
    kernel: int,
    stride: int,
    pad: int,
) -> np.ndarray:
    """Inverse of :func:`im2col`: scatter-add columns back to image layout."""
    n, c, h, w = x_shape
    oh = conv_out_size(h, kernel, stride, pad)
    ow = conv_out_size(w, kernel, stride, pad)
    hp, wp = h + 2 * pad, w + 2 * pad
    x = np.zeros((n, c, hp, wp), dtype=cols.dtype)
    cols6 = cols.reshape(n, c, kernel, kernel, oh, ow)
    for ki in range(kernel):
        h_end = ki + stride * oh
        for kj in range(kernel):
            w_end = kj + stride * ow
            x[:, :, ki:h_end:stride, kj:w_end:stride] += cols6[:, :, ki, kj]
    if pad > 0:
        return x[:, :, pad : pad + h, pad : pad + w]
    return x


# ---------------------------------------------------------------------------
# Convolution
# ---------------------------------------------------------------------------


def conv2d_forward(
    x: np.ndarray, weight: np.ndarray, stride: int, pad: int
) -> tuple[np.ndarray, tuple]:
    """Standard convolution.

    ``weight`` has shape ``(K, C, R, S)`` with square ``R == S`` kernels.
    Returns ``(out, cache)`` with ``out`` of shape ``(N, K, OH, OW)``.
    """
    n, c, h, w = x.shape
    k, cw, r, s = weight.shape
    if cw != c or r != s:
        raise ValueError(f"weight shape {weight.shape} incompatible with input {x.shape}")
    cols = im2col(x, r, stride, pad)  # (N, C*R*S, P)
    w2 = weight.reshape(k, -1)
    out = np.matmul(w2, cols)  # (N, K, P)
    oh = conv_out_size(h, r, stride, pad)
    ow = conv_out_size(w, r, stride, pad)
    cache = (cols, x.shape, weight, stride, pad)
    return out.reshape(n, k, oh, ow), cache


def conv2d_backward(grad_out: np.ndarray, cache: tuple) -> tuple[np.ndarray, np.ndarray]:
    """Backward pass of :func:`conv2d_forward`.

    Returns ``(grad_x, grad_weight)``.
    """
    cols, x_shape, weight, stride, pad = cache
    k = weight.shape[0]
    r = weight.shape[2]
    n = grad_out.shape[0]
    g = grad_out.reshape(n, k, -1)  # (N, K, P)
    # grad_w[k, ckk] = sum_n g[n] @ cols[n].T
    grad_w = np.einsum("nkp,ncp->kc", g, cols, optimize=True).reshape(weight.shape)
    grad_cols = np.matmul(weight.reshape(k, -1).T, g)  # (N, C*R*S, P)
    grad_x = col2im(grad_cols, x_shape, r, stride, pad)
    return grad_x, grad_w


# ---------------------------------------------------------------------------
# Depthwise convolution
# ---------------------------------------------------------------------------


def depthwise_conv2d_forward(
    x: np.ndarray, weight: np.ndarray, stride: int, pad: int
) -> tuple[np.ndarray, tuple]:
    """Depthwise convolution: one ``(R, S)`` filter per input channel.

    ``weight`` has shape ``(C, R, S)``.  Returns ``(out, cache)`` with ``out``
    of shape ``(N, C, OH, OW)``.
    """
    n, c, h, w = x.shape
    cw, r, s = weight.shape
    if cw != c or r != s:
        raise ValueError(f"weight shape {weight.shape} incompatible with input {x.shape}")
    cols = im2col(x, r, stride, pad)  # (N, C*R*S, P)
    oh = conv_out_size(h, r, stride, pad)
    ow = conv_out_size(w, r, stride, pad)
    cols4 = cols.reshape(n, c, r * s, -1)
    out = np.einsum("nckp,ck->ncp", cols4, weight.reshape(c, r * s), optimize=True)
    cache = (cols, x.shape, weight, stride, pad)
    return out.reshape(n, c, oh, ow), cache


def depthwise_conv2d_backward(
    grad_out: np.ndarray, cache: tuple
) -> tuple[np.ndarray, np.ndarray]:
    """Backward pass of :func:`depthwise_conv2d_forward`."""
    cols, x_shape, weight, stride, pad = cache
    c, r, _ = weight.shape
    n = grad_out.shape[0]
    g = grad_out.reshape(n, c, -1)  # (N, C, P)
    cols4 = cols.reshape(n, c, r * r, -1)
    grad_w = np.einsum("ncp,nckp->ck", g, cols4, optimize=True).reshape(weight.shape)
    grad_cols = g[:, :, None, :] * weight.reshape(1, c, r * r, 1)
    grad_x = col2im(grad_cols.reshape(n, c * r * r, -1), x_shape, r, stride, pad)
    return grad_x, grad_w


# ---------------------------------------------------------------------------
# Pooling
# ---------------------------------------------------------------------------


def maxpool2d_forward(
    x: np.ndarray, kernel: int, stride: int, pad: int
) -> tuple[np.ndarray, tuple]:
    """Max pooling.  Padded cells are ``-inf`` so they never win the max."""
    n, c, h, w = x.shape
    oh = conv_out_size(h, kernel, stride, pad)
    ow = conv_out_size(w, kernel, stride, pad)
    cols = im2col(x, kernel, stride, pad, pad_value=-np.inf)
    cols4 = cols.reshape(n, c, kernel * kernel, oh * ow)
    arg = np.argmax(cols4, axis=2)  # (N, C, P)
    out = np.take_along_axis(cols4, arg[:, :, None, :], axis=2)[:, :, 0, :]
    cache = (arg, x.shape, kernel, stride, pad)
    return out.reshape(n, c, oh, ow), cache


def maxpool2d_backward(grad_out: np.ndarray, cache: tuple) -> np.ndarray:
    """Route gradients to the argmax cell of every window."""
    arg, x_shape, kernel, stride, pad = cache
    n, c, oh, ow = grad_out.shape
    cols4 = np.zeros((n, c, kernel * kernel, oh * ow), dtype=grad_out.dtype)
    np.put_along_axis(
        cols4, arg[:, :, None, :], grad_out.reshape(n, c, 1, -1), axis=2
    )
    return col2im(cols4.reshape(n, c * kernel * kernel, -1), x_shape, kernel, stride, pad)


def avgpool2d_forward(
    x: np.ndarray, kernel: int, stride: int, pad: int
) -> tuple[np.ndarray, tuple]:
    """Average pooling (count includes padded zeros, matching common practice)."""
    n, c, h, w = x.shape
    oh = conv_out_size(h, kernel, stride, pad)
    ow = conv_out_size(w, kernel, stride, pad)
    cols = im2col(x, kernel, stride, pad)
    cols4 = cols.reshape(n, c, kernel * kernel, oh * ow)
    out = cols4.mean(axis=2)
    cache = (x.shape, kernel, stride, pad)
    return out.reshape(n, c, oh, ow), cache


def avgpool2d_backward(grad_out: np.ndarray, cache: tuple) -> np.ndarray:
    """Spread gradients uniformly over each window."""
    x_shape, kernel, stride, pad = cache
    n, c, oh, ow = grad_out.shape
    kk = kernel * kernel
    g = grad_out.reshape(n, c, 1, oh * ow) / kk
    cols4 = np.broadcast_to(g, (n, c, kk, oh * ow))
    return col2im(
        np.ascontiguousarray(cols4).reshape(n, c * kk, -1), x_shape, kernel, stride, pad
    )


# ---------------------------------------------------------------------------
# Forward-only inference kernels
# ---------------------------------------------------------------------------
#
# The training kernels above materialise im2col columns (and argmax indices)
# because their backward passes need them.  Inference-only consumers — the
# batched HyperNet evaluation path — can use cheaper algorithms with the
# same numerics: pooling and depthwise convolution as k*k shifted
# view-reductions (no column tensor), 1x1 convolution as a plain matmul
# (its im2col is the identity).  Max pooling is bitwise-identical to the
# training kernel; average/depthwise accumulate the k*k terms in the same
# ascending window order, so they agree to float round-off.


#: The inference kernels accept either one ``(N, C, H, W)`` array or a
#: LIST of equally-shaped row blocks: grouped callers (the batched
#: HyperNet forward) hand over the per-path segments directly and the
#: kernels fuse the gather into their padding/ReLU pass — no separate
#: ``np.concatenate`` traversal.
Rows = "np.ndarray | list[np.ndarray]"


def _rows_shape(x) -> tuple[int, int, int, int]:
    """(N, C, H, W) of an array or list-of-row-blocks input."""
    if isinstance(x, list):
        c, h, w = x[0].shape[1:]
        return sum(p.shape[0] for p in x), c, h, w
    return x.shape


def _stack_rows(parts: list[np.ndarray], relu: bool = False) -> np.ndarray:
    """One gather pass over row blocks, optionally through ``maximum(., 0)``."""
    total = sum(p.shape[0] for p in parts)
    out = np.empty((total, *parts[0].shape[1:]), dtype=parts[0].dtype)
    lo = 0
    for p in parts:
        hi = lo + p.shape[0]
        if relu:
            np.maximum(p, 0.0, out=out[lo:hi])
        else:
            out[lo:hi] = p
        lo = hi
    return out


def _pad2d(x, pad: int, value: float = 0.0, relu: bool = False) -> np.ndarray:
    """Zero-copy when ``pad == 0`` (and no relu); otherwise a padded copy.

    ``relu=True`` fuses ``maximum(x, 0)`` into the padding copy — one pass
    instead of a separate ReLU allocation (the NAS ops are ReLU→conv, so
    the fusion applies to every convolution's input).  ``x`` may be a list
    of row blocks (see :data:`Rows`); the gather then rides the same pass.
    """
    if isinstance(x, list):
        if pad == 0:
            return _stack_rows(x, relu=relu)
        n, c, h, w = _rows_shape(x)
        xp = _empty_padded(n, c, h, w, pad, value, x[0].dtype)
        lo = 0
        for p in x:
            hi = lo + p.shape[0]
            view = xp[lo:hi, :, pad : pad + h, pad : pad + w]
            if relu:
                np.maximum(p, 0.0, out=view)
            else:
                view[...] = p
            lo = hi
        return xp
    if pad == 0:
        return np.maximum(x, 0.0) if relu else x
    n, c, h, w = x.shape
    xp = _empty_padded(n, c, h, w, pad, value, x.dtype)
    if relu:
        np.maximum(x, 0.0, out=xp[:, :, pad : pad + h, pad : pad + w])
    else:
        xp[:, :, pad : pad + h, pad : pad + w] = x
    return xp


def _empty_padded(
    n: int, c: int, h: int, w: int, pad: int, value: float, dtype
) -> np.ndarray:
    """Uninitialised padded buffer with only the border frame filled —
    the interior is about to be overwritten, so a full fill is wasted."""
    xp = np.empty((n, c, h + 2 * pad, w + 2 * pad), dtype=dtype)
    xp[:, :, :pad, :] = value
    xp[:, :, pad + h :, :] = value
    xp[:, :, pad : pad + h, :pad] = value
    xp[:, :, pad : pad + h, pad + w :] = value
    return xp


#: Window-tensor budget (float32 elements) for the chunked inference
#: convolutions: the K*K sliding-window copy of a whole stacked population
#: can exceed the last-level cache many times over, where the strided
#: gather slows down ~4x — chunking the batch axis keeps each copy
#: cache-sized.  Per-sample maths, so chunking never changes results.
_INFER_CHUNK_ELEMS = 1_500_000


def _window_view(xp: np.ndarray, kernel: int, stride: int, oh: int, ow: int) -> np.ndarray:
    """Zero-copy ``(N, C, K, K, OH, OW)`` sliding-window view of a padded input."""
    n, c = xp.shape[:2]
    sn, sc, sh, sw = xp.strides
    return np.lib.stride_tricks.as_strided(
        xp,
        shape=(n, c, kernel, kernel, oh, ow),
        strides=(sn, sc, sh, sw, sh * stride, sw * stride),
    )


def _infer_row_chunk(c: int, kernel: int, oh: int, ow: int) -> int:
    """Rows per chunk keeping the window tensor under the cache budget."""
    per_row = c * kernel * kernel * oh * ow
    return max(1, _INFER_CHUNK_ELEMS // max(per_row, 1))


def _pool_row_chunk(c: int, oh: int, ow: int) -> int:
    """Rows per chunk for the pooling kernels, whose working set is the
    padded input plus the output — no K*K column blow-up."""
    per_row = 2 * c * oh * ow
    return max(1, _INFER_CHUNK_ELEMS // max(per_row, 1))


def conv2d_infer(
    x, weight: np.ndarray, stride: int, pad: int, relu: bool = False
) -> np.ndarray:
    """Forward-only convolution; 1x1 kernels skip im2col entirely and larger
    kernels build the column tensor with one strided-view copy instead of the
    K*K slice loop (bitwise-identical columns), chunked along the batch axis
    so the copy stays cache-sized.  ``relu=True`` applies ``maximum(x, 0)``
    to the input as part of the padding pass (the ReLU→conv fusion); ``x``
    may be a list of row blocks (:data:`Rows`) gathered in that same pass."""
    k, c, r, s = weight.shape
    if r == 1 and pad == 0:
        if isinstance(x, list):
            src = _stack_rows(x, relu=relu)
        else:
            src = np.maximum(x, 0.0) if relu else x
        src = src if stride == 1 else src[:, :, ::stride, ::stride]
        n, _, h, w = src.shape
        cols = np.ascontiguousarray(src).reshape(n, c, h * w)
        out = np.empty((n, k, h * w), dtype=cols.dtype)
        np.matmul(weight.reshape(k, c), cols, out=out)
        return out.reshape(n, k, h, w)
    n, _, h, w = _rows_shape(x)
    oh = conv_out_size(h, r, stride, pad)
    ow = conv_out_size(w, r, stride, pad)
    xp = _pad2d(x, pad, relu=relu)
    w2 = weight.reshape(k, -1)
    out = np.empty((n, k, oh, ow), dtype=xp.dtype)
    step = _infer_row_chunk(c, r, oh, ow)
    for lo in range(0, n, step):
        win = _window_view(xp[lo : lo + step], r, stride, oh, ow)
        rows = win.shape[0]
        cols = np.ascontiguousarray(win).reshape(rows, c * r * r, oh * ow)
        np.matmul(
            w2, cols, out=out[lo : lo + step].reshape(rows, k, oh * ow)
        )
    return out


def depthwise_conv2d_infer(
    x, weight: np.ndarray, stride: int, pad: int, relu: bool = False
) -> np.ndarray:
    """Forward-only depthwise convolution: an einsum over the zero-copy
    sliding-window view, contracting the K*K window axes per channel,
    chunked along the batch axis to stay cache-sized.  ``relu=True`` fuses
    ``maximum(x, 0)`` into the padding pass; ``x`` may be a list of row
    blocks (:data:`Rows`) gathered in that same pass."""
    n, c, h, w = _rows_shape(x)
    cw, r, s = weight.shape
    if cw != c or r != s:
        raise ValueError(f"weight shape {weight.shape} incompatible with input (C={c})")
    oh = conv_out_size(h, r, stride, pad)
    ow = conv_out_size(w, r, stride, pad)
    xp = _pad2d(x, pad, relu=relu)
    out = np.empty((n, c, oh, ow), dtype=xp.dtype)
    # One (1, KK) x (KK, P) matmul per (row, channel): same contraction an
    # einsum would run, without re-deriving a contraction path per call.
    w3 = np.ascontiguousarray(weight.reshape(1, c, 1, r * r))
    step = _infer_row_chunk(c, r, oh, ow)
    for lo in range(0, n, step):
        win = _window_view(xp[lo : lo + step], r, stride, oh, ow)
        rows = win.shape[0]
        cols = np.ascontiguousarray(win).reshape(rows, c, r * r, oh * ow)
        np.matmul(
            w3, cols, out=out[lo : lo + step].reshape(rows, c, 1, oh * ow)
        )
    return out


def maxpool2d_infer(x, kernel: int, stride: int, pad: int) -> np.ndarray:
    """Forward-only max pooling, separably: a k*1 column max followed by a
    1*k row max — 2k shifted passes instead of k*k, bitwise-identical (max
    is associative/commutative).  Chunked along the batch axis to keep the
    passes cache-sized."""
    if isinstance(x, list):
        x = _stack_rows(x)
    n, c, h, w = x.shape
    oh = conv_out_size(h, kernel, stride, pad)
    ow = conv_out_size(w, kernel, stride, pad)
    out = np.empty((n, c, oh, ow), dtype=x.dtype)
    step = _pool_row_chunk(c, oh, ow)
    for lo in range(0, n, step):
        xp = _pad2d(x[lo : lo + step], pad, value=-np.inf)
        # Vertical reduction at full width (strided rows only) ...
        rows = xp[:, :, 0 : stride * oh : stride, :].copy()
        for ki in range(1, kernel):
            np.maximum(
                rows, xp[:, :, ki : ki + stride * oh : stride, :], out=rows
            )
        # ... then horizontal reduction of the row maxima.
        dst = out[lo : lo + step]
        dst[...] = rows[:, :, :, 0 : stride * ow : stride]
        for kj in range(1, kernel):
            np.maximum(
                dst, rows[:, :, :, kj : kj + stride * ow : stride], out=dst
            )
    return out


def avgpool2d_infer(x, kernel: int, stride: int, pad: int) -> np.ndarray:
    """Forward-only average pooling, separably: a k*1 column sum followed
    by a 1*k row sum — 2k shifted passes instead of k*k (the re-associated
    window sum agrees with the training kernel to float round-off).
    Chunked along the batch axis to keep the passes cache-sized."""
    if isinstance(x, list):
        x = _stack_rows(x)
    n, c, h, w = x.shape
    oh = conv_out_size(h, kernel, stride, pad)
    ow = conv_out_size(w, kernel, stride, pad)
    out = np.empty((n, c, oh, ow), dtype=x.dtype)
    step = _pool_row_chunk(c, oh, ow)
    for lo in range(0, n, step):
        xp = _pad2d(x[lo : lo + step], pad)
        rows = xp[:, :, 0 : stride * oh : stride, :].copy()
        for ki in range(1, kernel):
            rows += xp[:, :, ki : ki + stride * oh : stride, :]
        dst = out[lo : lo + step]
        dst[...] = rows[:, :, :, 0 : stride * ow : stride]
        for kj in range(1, kernel):
            dst += rows[:, :, :, kj : kj + stride * ow : stride]
        dst /= kernel * kernel
    return out


def batchnorm_infer(
    x: np.ndarray,
    gamma: np.ndarray,
    beta: np.ndarray,
    running_mean: np.ndarray,
    running_var: np.ndarray,
    momentum: float,
    eps: float,
    training: bool,
    segments: int = 1,
) -> np.ndarray:
    """Forward-only batch norm with per-segment statistics (no cache).

    The lean counterpart of :func:`batchnorm_forward`: one centred
    temporary feeds both the variance (reduced through einsum, no squared
    temporary) and the normalisation, and the affine is applied in place.
    Values match per-segment training-mode forwards to float round-off;
    running statistics receive one update with the across-segment mean.
    """
    if not training:
        out, _ = batchnorm_forward(
            x, gamma, beta, running_mean, running_var, momentum, eps, False
        )
        return out
    n, c, h, w = x.shape
    if n % segments:
        raise ValueError(f"batch of {n} rows does not split into {segments} segments")
    rows = n // segments
    xs = x.reshape(segments, rows, c, h, w)
    out = np.empty_like(xs)
    count = rows * h * w
    gamma32 = gamma.astype(x.dtype)
    beta32 = beta.astype(x.dtype)[None, None, :, None, None]
    mean_all = np.empty((segments, c), dtype=x.dtype)
    var_all = np.empty((segments, c), dtype=x.dtype)
    # Statistics are per segment, so chunking the segment axis is exact —
    # it just keeps the centred working set cache-sized.
    step = max(1, _INFER_CHUNK_ELEMS // max(rows * c * h * w, 1))
    for lo in range(0, segments, step):
        sub = xs[lo : lo + step]
        dst = out[lo : lo + step]
        mean = sub.mean(axis=(1, 3, 4))  # (chunk, C)
        np.subtract(
            sub, mean.astype(x.dtype)[:, None, :, None, None], out=dst
        )
        var = np.einsum("snchw,snchw->sc", dst, dst, optimize=True) / count
        mean_all[lo : lo + step] = mean
        var_all[lo : lo + step] = var
        inv_std = (1.0 / np.sqrt(var + eps)).astype(x.dtype)
        dst *= (inv_std * gamma32[None, :])[:, None, :, None, None]
        dst += beta32
    running_mean *= 1.0 - momentum
    running_mean += momentum * mean_all.mean(axis=0)
    running_var *= 1.0 - momentum
    running_var += momentum * var_all.mean(axis=0)
    return out.reshape(n, c, h, w)


def global_avgpool_forward(x: np.ndarray) -> tuple[np.ndarray, tuple]:
    """Global average pool to shape ``(N, C)``."""
    out = x.mean(axis=(2, 3))
    return out, (x.shape,)


def global_avgpool_backward(grad_out: np.ndarray, cache: tuple) -> np.ndarray:
    (x_shape,) = cache
    n, c, h, w = x_shape
    return np.broadcast_to(
        (grad_out / (h * w))[:, :, None, None], x_shape
    ).astype(grad_out.dtype, copy=True)


# ---------------------------------------------------------------------------
# Compact-cache training kernels (the `train_fast` mode)
# ---------------------------------------------------------------------------
#
# The standard training kernels above hold the full im2col column tensor
# (K*K times the input) from forward to backward.  The `*_fast` variants
# keep only O(input) state and adopt the inference tricks where a backward
# pass still exists:
#
# * pointwise (1x1) convolution never builds columns in either direction —
#   forward is one matmul on the (reshaped) input, backward is one matmul
#   plus an einsum, and grad_x for strided 1x1 is a direct scatter;
# * K>1 convolutions build columns with the one-copy sliding-window view,
#   chunked along the batch axis to stay cache-sized; the columns are
#   cached for backward only while they fit `_TRAIN_CACHE_ELEMS` (stored
#   float32), otherwise backward recomputes them chunk by chunk — the
#   per-layer cache is bounded instead of growing K*K-fold with the input;
# * pooling caches a boolean first-max mask (max) or nothing (average) and
#   runs backward as K*K shifted masked adds — no float column tensor, no
#   argmax/put_along_axis traversals.
#
# Numerics: conv/max-pool forwards are bitwise identical to the standard
# kernels (identical columns, per-sample matmul, associative max);
# depthwise/average forwards re-associate the window reduction and agree
# to float round-off.  Backward gradients match the standard kernels to
# float round-off (chunked or float32-demoted accumulation re-associates
# sums); `tests/test_nn_fast_kernels.py` pins parity at relative 1e-6.

#: Column-cache budget (elements) for the fast training convolutions: a
#: forward whose full column tensor fits is cached (float32) for backward
#: reuse; anything larger is recomputed chunk by chunk in backward.  Keeps
#: every layer's backward state under ~16 MB at any scale.
_TRAIN_CACHE_ELEMS = 4_000_000


def _train_cols(xp: np.ndarray, kernel: int, stride: int, oh: int, ow: int) -> np.ndarray:
    """Contiguous ``(N, C*K*K, OH*OW)`` columns via ONE sliding-window copy
    (bitwise-identical to :func:`im2col`, ~1.4x faster)."""
    n, c = xp.shape[:2]
    win = _window_view(xp, kernel, stride, oh, ow)
    return np.ascontiguousarray(win).reshape(n, c * kernel * kernel, oh * ow)


def conv2d_forward_fast(
    x: np.ndarray, weight: np.ndarray, stride: int, pad: int
) -> tuple[np.ndarray, tuple]:
    """Compact-cache convolution forward (same values as :func:`conv2d_forward`).

    The cache holds a *reference* to ``x`` (already alive in the caller)
    plus, for K>1 layers under the column budget, a float32 copy of the
    columns; it never holds the unbounded full-precision column tensor.
    """
    n, c, h, w = x.shape
    k, cw, r, s = weight.shape
    if cw != c or r != s:
        raise ValueError(f"weight shape {weight.shape} incompatible with input {x.shape}")
    oh = conv_out_size(h, r, stride, pad)
    ow = conv_out_size(w, r, stride, pad)
    if r == 1 and pad == 0:
        src = x if stride == 1 else x[:, :, ::stride, ::stride]
        cols = np.ascontiguousarray(src).reshape(n, c, oh * ow)
        out = np.matmul(weight.reshape(k, c), cols)
        return out.reshape(n, k, oh, ow), (x, weight, stride, pad, None)
    w2 = weight.reshape(k, -1)
    out = np.empty((n, k, oh, ow), dtype=x.dtype)
    total = n * c * r * r * oh * ow
    if total <= _TRAIN_CACHE_ELEMS:
        cols = _train_cols(_pad2d(x, pad), r, stride, oh, ow)
        np.matmul(w2, cols, out=out.reshape(n, k, oh * ow))
        stored = cols if cols.dtype == np.float32 else cols.astype(np.float32)
        return out, (x, weight, stride, pad, stored)
    step = _infer_row_chunk(c, r, oh, ow)
    for lo in range(0, n, step):
        cols = _train_cols(_pad2d(x[lo : lo + step], pad), r, stride, oh, ow)
        np.matmul(
            w2, cols, out=out[lo : lo + step].reshape(cols.shape[0], k, oh * ow)
        )
    return out, (x, weight, stride, pad, None)


def _grad_w_conv(g3: np.ndarray, cols: np.ndarray) -> np.ndarray:
    """``grad_w[k, q] = sum_n g3[n] @ cols[n].T`` — as one batched matmul
    plus a pairwise batch sum when the ``(N, K, Q)`` intermediate fits the
    cache budget (BLAS with a native transposed operand beats einsum's
    per-sample bmm dispatch by 2-3x at small Q), einsum otherwise."""
    n, k, _ = g3.shape
    q = cols.shape[1]
    if n * k * q <= _TRAIN_CACHE_ELEMS:
        return np.matmul(g3, cols.swapaxes(1, 2)).sum(axis=0)
    return np.einsum("nkp,nqp->kq", g3, cols, optimize=True)


def _grad_w_depthwise(g3: np.ndarray, cols4: np.ndarray) -> np.ndarray:
    """``grad_w[c, t] = sum_{n,p} g3[n,c,p] * cols4[n,c,t,p]`` — one batched
    matmul against the column tensor plus a pairwise batch sum (the
    ``(N, C, T, 1)`` intermediate is always tiny)."""
    return np.matmul(cols4, g3[:, :, :, None]).sum(axis=0)[:, :, 0]


def _conv_grad_x_s1(
    grad_out: np.ndarray, weight: np.ndarray, pad: int, h: int, w: int
) -> np.ndarray:
    """grad_x of a stride-1 convolution as a transposed convolution: ONE
    window copy of the padded output gradient and ONE matmul — no scattered
    col2im adds.  Mathematically identical to the col2im route (the dot
    products re-associate the same terms)."""
    n, k, oh, ow = grad_out.shape
    c, r = weight.shape[1], weight.shape[2]
    wflip = np.ascontiguousarray(
        weight[:, :, ::-1, ::-1].transpose(1, 0, 2, 3)
    ).reshape(c, k * r * r)
    gp = _pad2d(grad_out, r - 1 - pad)
    cols = _train_cols(gp, r, 1, h, w)
    return np.matmul(wflip, cols).reshape(n, c, h, w)


def _depthwise_grad_x_s1(
    grad_out: np.ndarray, weight: np.ndarray, pad: int, h: int, w: int
) -> np.ndarray:
    """grad_x of a stride-1 depthwise convolution as a transposed depthwise
    convolution (one window copy + one matmul per channel batch)."""
    n, c, oh, ow = grad_out.shape
    r = weight.shape[1]
    wflip = np.ascontiguousarray(weight[:, ::-1, ::-1]).reshape(1, c, 1, r * r)
    gp = _pad2d(grad_out, r - 1 - pad)
    cols = _train_cols(gp, r, 1, h, w).reshape(n, c, r * r, h * w)
    out = np.empty((n, c, 1, h * w), dtype=grad_out.dtype)
    np.matmul(wflip.astype(grad_out.dtype, copy=False), cols, out=out)
    return out.reshape(n, c, h, w)


def conv2d_backward_fast(
    grad_out: np.ndarray, cache: tuple
) -> tuple[np.ndarray, np.ndarray]:
    """Backward of :func:`conv2d_forward_fast`: columns are reused from the
    bounded cache or recomputed chunk by chunk — never held at full size —
    and stride-1 grad_x runs as a transposed convolution instead of the
    scattered col2im adds."""
    x, weight, stride, pad, stored = cache
    n, c, h, w = x.shape
    k = weight.shape[0]
    r = weight.shape[2]
    oh, ow = grad_out.shape[2], grad_out.shape[3]
    g = grad_out.reshape(n, k, oh * ow)
    if r == 1 and pad == 0:
        src = x if stride == 1 else x[:, :, ::stride, ::stride]
        xc = np.ascontiguousarray(src).reshape(n, c, oh * ow)
        grad_w = _grad_w_conv(g, xc).reshape(weight.shape)
        gx = np.matmul(weight.reshape(k, c).T, g)
        if stride == 1:
            return gx.reshape(n, c, h, w), grad_w
        grad_x = np.zeros_like(x)
        grad_x[:, :, ::stride, ::stride] = gx.reshape(n, c, oh, ow)
        return grad_x, grad_w
    transposed = stride == 1 and pad < r  # _pad2d needs r - 1 - pad >= 0
    if stored is not None:
        grad_w = _grad_w_conv(g, stored).reshape(weight.shape)
        if transposed:
            return _conv_grad_x_s1(grad_out, weight, pad, h, w), grad_w
        grad_cols = np.matmul(weight.reshape(k, -1).T, g)
        return col2im(grad_cols, x.shape, r, stride, pad), grad_w
    w2t = weight.reshape(k, -1).T
    grad_x = np.empty_like(x)
    grad_w = np.zeros((k, c * r * r), dtype=grad_out.dtype)
    step = _infer_row_chunk(c, r, oh, ow)
    for lo in range(0, n, step):
        hi = min(lo + step, n)
        cols = _train_cols(_pad2d(x[lo:hi], pad), r, stride, oh, ow)
        gc = g[lo:hi]
        grad_w += _grad_w_conv(gc, cols)
        if transposed:
            grad_x[lo:hi] = _conv_grad_x_s1(
                grad_out[lo:hi], weight, pad, h, w
            )
        else:
            grad_cols = np.matmul(w2t, gc)
            grad_x[lo:hi] = col2im(grad_cols, (hi - lo, c, h, w), r, stride, pad)
    return grad_x, grad_w.reshape(weight.shape).astype(weight.dtype, copy=False)


def depthwise_conv2d_forward_fast(
    x: np.ndarray, weight: np.ndarray, stride: int, pad: int
) -> tuple[np.ndarray, tuple]:
    """Compact-cache depthwise forward (values match
    :func:`depthwise_conv2d_forward` to float round-off)."""
    n, c, h, w = x.shape
    cw, r, s = weight.shape
    if cw != c or r != s:
        raise ValueError(f"weight shape {weight.shape} incompatible with input {x.shape}")
    oh = conv_out_size(h, r, stride, pad)
    ow = conv_out_size(w, r, stride, pad)
    w3 = np.ascontiguousarray(weight.reshape(1, c, 1, r * r)).astype(x.dtype, copy=False)
    out = np.empty((n, c, oh, ow), dtype=x.dtype)
    total = n * c * r * r * oh * ow
    if total <= _TRAIN_CACHE_ELEMS:
        cols = _train_cols(_pad2d(x, pad), r, stride, oh, ow)
        cols4 = cols.reshape(n, c, r * r, oh * ow)
        np.matmul(w3, cols4, out=out.reshape(n, c, 1, oh * ow))
        stored = cols if cols.dtype == np.float32 else cols.astype(np.float32)
        return out, (x, weight, stride, pad, stored)
    step = _infer_row_chunk(c, r, oh, ow)
    for lo in range(0, n, step):
        cols = _train_cols(_pad2d(x[lo : lo + step], pad), r, stride, oh, ow)
        rows = cols.shape[0]
        np.matmul(
            w3,
            cols.reshape(rows, c, r * r, oh * ow),
            out=out[lo : lo + step].reshape(rows, c, 1, oh * ow),
        )
    return out, (x, weight, stride, pad, None)


def depthwise_conv2d_backward_fast(
    grad_out: np.ndarray, cache: tuple
) -> tuple[np.ndarray, np.ndarray]:
    """Backward of :func:`depthwise_conv2d_forward_fast`."""
    x, weight, stride, pad, stored = cache
    n, c, h, w = x.shape
    r = weight.shape[1]
    oh, ow = grad_out.shape[2], grad_out.shape[3]
    g = grad_out.reshape(n, c, oh * ow)
    wcol = weight.reshape(1, c, r * r, 1)
    transposed = stride == 1 and pad < r  # _pad2d needs r - 1 - pad >= 0
    if stored is not None:
        cols4 = stored.reshape(n, c, r * r, oh * ow)
        grad_w = _grad_w_depthwise(g, cols4).reshape(weight.shape)
        if transposed:
            return _depthwise_grad_x_s1(grad_out, weight, pad, h, w), grad_w
        grad_cols = g[:, :, None, :] * wcol
        grad_x = col2im(grad_cols.reshape(n, c * r * r, -1), x.shape, r, stride, pad)
        return grad_x, grad_w
    grad_x = np.empty_like(x)
    grad_w = np.zeros((c, r * r), dtype=grad_out.dtype)
    step = _infer_row_chunk(c, r, oh, ow)
    for lo in range(0, n, step):
        hi = min(lo + step, n)
        cols = _train_cols(_pad2d(x[lo:hi], pad), r, stride, oh, ow)
        cols4 = cols.reshape(hi - lo, c, r * r, oh * ow)
        gc = g[lo:hi]
        grad_w += _grad_w_depthwise(gc, cols4)
        if transposed:
            grad_x[lo:hi] = _depthwise_grad_x_s1(
                grad_out[lo:hi], weight, pad, h, w
            )
        else:
            grad_cols = gc[:, :, None, :] * wcol
            grad_x[lo:hi] = col2im(
                grad_cols.reshape(hi - lo, c * r * r, -1),
                (hi - lo, c, h, w),
                r,
                stride,
                pad,
            )
    return grad_x, grad_w.reshape(weight.shape).astype(weight.dtype, copy=False)


def maxpool2d_forward_fast(
    x: np.ndarray, kernel: int, stride: int, pad: int
) -> tuple[np.ndarray, tuple]:
    """Compact-cache max pooling: separable forward (bitwise-identical to
    :func:`maxpool2d_forward`) plus a boolean first-max mask for backward —
    no float column tensor, no argmax traversal.

    The mask marks, per window, the first cell (in the standard kernel's
    ``(ki, kj)`` scan order) that attains the window maximum, so gradient
    routing is exactly the argmax routing of the standard kernel, ties
    included.
    """
    out = maxpool2d_infer(x, kernel, stride, pad)
    n, c, h, w = x.shape
    oh, ow = out.shape[2], out.shape[3]
    mask = np.empty((n, c, kernel * kernel, oh, ow), dtype=bool)
    step = _pool_row_chunk(c, oh, ow)
    for lo in range(0, n, step):
        hi = min(lo + step, n)
        xp = _pad2d(x[lo:hi], pad, value=-np.inf)
        target = out[lo:hi]
        taken = np.zeros((hi - lo, c, oh, ow), dtype=bool)
        idx = 0
        for ki in range(kernel):
            h_end = ki + stride * oh
            for kj in range(kernel):
                w_end = kj + stride * ow
                # Elementwise compare on the strided window view — no
                # column copies anywhere in the mask build.
                hit = xp[:, :, ki:h_end:stride, kj:w_end:stride] == target
                hit &= ~taken
                mask[lo:hi, :, idx] = hit
                taken |= hit
                idx += 1
    cache = (mask, x.shape, kernel, stride, pad)
    return out, cache


def _tap_span(k_off: int, stride: int, pad: int, size: int, out_size: int):
    """Valid output-index range [t0, t1) of one pooling tap: positions whose
    padded coordinate ``k_off + stride*t`` lands inside the unpadded image.
    Returns ``(t0, t1, lo)`` with ``lo`` the unpadded start coordinate."""
    t0 = max(0, -(-(pad - k_off) // stride))  # ceil division
    t1 = min(out_size, (pad + size - 1 - k_off) // stride + 1)
    return t0, t1, k_off + stride * t0 - pad


def maxpool2d_backward_fast(grad_out: np.ndarray, cache: tuple) -> np.ndarray:
    """Backward of :func:`maxpool2d_forward_fast`: K*K shifted masked adds,
    clipped to the unpadded image (same sums, in the same order, as the
    standard kernel's put_along_axis + col2im — taps landing in the padding
    are discarded there too).  The result is contiguous and no padded
    buffer is ever allocated."""
    mask, x_shape, kernel, stride, pad = cache
    n, c, h, w = x_shape
    oh, ow = grad_out.shape[2], grad_out.shape[3]
    gx = np.zeros((n, c, h, w), dtype=grad_out.dtype)
    scratch = np.empty((n, c, oh, ow), dtype=grad_out.dtype)
    idx = 0
    for ki in range(kernel):
        i0, i1, ilo = _tap_span(ki, stride, pad, h, oh)
        for kj in range(kernel):
            j0, j1, jlo = _tap_span(kj, stride, pad, w, ow)
            np.multiply(grad_out, mask[:, :, idx], out=scratch)
            gx[
                :,
                :,
                ilo : ilo + stride * (i1 - i0) : stride,
                jlo : jlo + stride * (j1 - j0) : stride,
            ] += scratch[:, :, i0:i1, j0:j1]
            idx += 1
    return gx


def avgpool2d_forward_fast(
    x: np.ndarray, kernel: int, stride: int, pad: int
) -> tuple[np.ndarray, tuple]:
    """Compact-cache average pooling: separable forward (matches
    :func:`avgpool2d_forward` to float round-off), geometry-only cache."""
    out = avgpool2d_infer(x, kernel, stride, pad)
    return out, (x.shape, kernel, stride, pad)


def avgpool2d_backward_fast(grad_out: np.ndarray, cache: tuple) -> np.ndarray:
    """Backward of :func:`avgpool2d_forward_fast`: K*K shifted adds of the
    uniformly spread gradient, clipped to the unpadded image — no broadcast
    column tensor, no padded buffer (bitwise-identical to
    :func:`avgpool2d_backward`, whose padding-region adds are discarded)."""
    x_shape, kernel, stride, pad = cache
    n, c, h, w = x_shape
    oh, ow = grad_out.shape[2], grad_out.shape[3]
    g = grad_out / (kernel * kernel)
    gx = np.zeros((n, c, h, w), dtype=grad_out.dtype)
    for ki in range(kernel):
        i0, i1, ilo = _tap_span(ki, stride, pad, h, oh)
        for kj in range(kernel):
            j0, j1, jlo = _tap_span(kj, stride, pad, w, ow)
            gx[
                :,
                :,
                ilo : ilo + stride * (i1 - i0) : stride,
                jlo : jlo + stride * (j1 - j0) : stride,
            ] += g[:, :, i0:i1, j0:j1]
    return gx


def batchnorm_forward_fast(
    x: np.ndarray,
    gamma: np.ndarray,
    beta: np.ndarray,
    running_mean: np.ndarray,
    running_var: np.ndarray,
    momentum: float,
    eps: float,
    training: bool,
) -> tuple[np.ndarray, tuple | None]:
    """Lean training-mode batch norm: the centred tensor is normalised in
    place (it becomes the cached ``xhat``) and the variance reduces through
    one einsum — three fewer full-size temporaries than
    :func:`batchnorm_forward`, same values to float round-off, same cache
    layout.  Eval mode delegates to the standard kernel."""
    if not training:
        return batchnorm_forward(
            x, gamma, beta, running_mean, running_var, momentum, eps, False
        )
    mean = x.mean(axis=(0, 2, 3))
    xhat = x - mean.astype(x.dtype)[None, :, None, None]
    # One scratch buffer serves the squared deviations AND the output; the
    # reductions go through numpy's pairwise-summing mean (an einsum would
    # accumulate sequentially and lose ~1e-3 of the float32 variance).
    scratch = np.square(xhat)
    var = scratch.mean(axis=(0, 2, 3))
    running_mean *= 1.0 - momentum
    running_mean += momentum * mean
    running_var *= 1.0 - momentum
    running_var += momentum * var
    inv_std = (1.0 / np.sqrt(var + eps)).astype(x.dtype)
    xhat *= inv_std[None, :, None, None]
    np.multiply(gamma.astype(x.dtype)[None, :, None, None], xhat, out=scratch)
    scratch += beta.astype(x.dtype)[None, :, None, None]
    return scratch, (xhat, inv_std, gamma)


def batchnorm_backward_fast(
    grad_out: np.ndarray, cache: tuple
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Backward of training-mode batch norm with ONE reused scratch buffer
    and in-place accumulation (``gxhat`` becomes grad_x) — three fewer
    full-size temporaries than :func:`batchnorm_backward`.  All reductions
    stay on numpy's pairwise-summing paths, so values match the standard
    kernel to float round-off; works on either forward's cache."""
    xhat, inv_std, gamma = cache
    n, c, h, w = grad_out.shape
    m = n * h * w
    dtype = grad_out.dtype
    scratch = grad_out * xhat
    grad_gamma = scratch.sum(axis=(0, 2, 3))
    grad_beta = grad_out.sum(axis=(0, 2, 3))
    gxhat = grad_out * gamma.astype(dtype)[None, :, None, None]
    sum_g = gxhat.sum(axis=(0, 2, 3))
    np.multiply(gxhat, xhat, out=scratch)
    sum_gx = scratch.sum(axis=(0, 2, 3))
    gxhat -= (sum_g / m).astype(dtype)[None, :, None, None]
    np.multiply(xhat, (sum_gx / m).astype(dtype)[None, :, None, None], out=scratch)
    gxhat -= scratch
    gxhat *= inv_std[None, :, None, None]
    return gxhat, grad_gamma.astype(gamma.dtype, copy=False), grad_beta


# ---------------------------------------------------------------------------
# Pointwise / dense
# ---------------------------------------------------------------------------


def relu_forward(x: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    mask = x > 0
    return x * mask, mask


def relu_backward(grad_out: np.ndarray, mask: np.ndarray) -> np.ndarray:
    return grad_out * mask


def linear_forward(
    x: np.ndarray, weight: np.ndarray, bias: np.ndarray
) -> tuple[np.ndarray, tuple]:
    """Affine map ``x @ weight.T + bias`` with ``weight`` shape ``(out, in)``."""
    out = x @ weight.T + bias
    return out, (x, weight)


def linear_backward(
    grad_out: np.ndarray, cache: tuple
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    x, weight = cache
    grad_x = grad_out @ weight
    grad_w = grad_out.T @ x
    grad_b = grad_out.sum(axis=0)
    return grad_x, grad_w, grad_b


def batchnorm_forward(
    x: np.ndarray,
    gamma: np.ndarray,
    beta: np.ndarray,
    running_mean: np.ndarray,
    running_var: np.ndarray,
    momentum: float,
    eps: float,
    training: bool,
    segments: int = 1,
) -> tuple[np.ndarray, tuple | None]:
    """Batch normalisation over the channel axis of an NCHW tensor.

    In training mode the running statistics are updated in place and a cache
    for the backward pass is returned; in eval mode the cache is ``None``.

    ``segments > 1`` (training mode only) treats the batch axis as that many
    equal-length contiguous sub-batches and normalises each with its own
    statistics.  This is how the batched HyperNet path stacks several
    sub-model evaluations into one call while keeping per-sub-model batch
    statistics identical to separate scalar forwards (round-off aside): the
    arithmetic per segment is exactly the ``segments == 1`` formula applied
    to that segment's rows.  The running statistics receive ONE update with
    the across-segment mean, and the path is forward-only — it returns no
    backward cache (evaluation never backpropagates).
    """
    if training and segments > 1:
        out = batchnorm_infer(
            x, gamma, beta, running_mean, running_var, momentum, eps, True,
            segments=segments,
        )
        return out, None
    if training:
        mean = x.mean(axis=(0, 2, 3))
        var = x.var(axis=(0, 2, 3))
        running_mean *= 1.0 - momentum
        running_mean += momentum * mean
        running_var *= 1.0 - momentum
        running_var += momentum * var
    else:
        mean, var = running_mean, running_var
    inv_std = (1.0 / np.sqrt(var + eps)).astype(x.dtype)
    xhat = (x - mean.astype(x.dtype)[None, :, None, None]) * inv_std[None, :, None, None]
    out = gamma.astype(x.dtype)[None, :, None, None] * xhat
    out += beta.astype(x.dtype)[None, :, None, None]
    cache = (xhat, inv_std, gamma) if training else None
    return out, cache


def batchnorm_backward(
    grad_out: np.ndarray, cache: tuple
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Backward pass of training-mode batch norm."""
    xhat, inv_std, gamma = cache
    n, c, h, w = grad_out.shape
    m = n * h * w
    grad_gamma = (grad_out * xhat).sum(axis=(0, 2, 3))
    grad_beta = grad_out.sum(axis=(0, 2, 3))
    gxhat = grad_out * gamma.astype(grad_out.dtype)[None, :, None, None]
    sum_g = gxhat.sum(axis=(0, 2, 3), keepdims=True)
    sum_gx = (gxhat * xhat).sum(axis=(0, 2, 3), keepdims=True)
    grad_x = (gxhat - sum_g / m - xhat * sum_gx / m) * inv_std[None, :, None, None]
    return grad_x, grad_gamma, grad_beta


def softmax(logits: np.ndarray, axis: int = -1) -> np.ndarray:
    """Numerically stable softmax."""
    z = logits - logits.max(axis=axis, keepdims=True)
    e = np.exp(z)
    return e / e.sum(axis=axis, keepdims=True)


def softmax_cross_entropy(
    logits: np.ndarray, labels: np.ndarray
) -> tuple[float, np.ndarray]:
    """Mean cross-entropy loss and gradient w.r.t. logits.

    ``labels`` are integer class indices of shape ``(N,)``.
    """
    n = logits.shape[0]
    probs = softmax(np.asarray(logits, dtype=np.float64), axis=1)
    eps = 1e-12
    loss = float(-np.log(probs[np.arange(n), labels] + eps).mean())
    grad = probs
    grad[np.arange(n), labels] -= 1.0
    grad /= n
    return loss, grad.astype(logits.dtype)
