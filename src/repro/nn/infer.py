"""Forward-only module execution for stacked sub-batch evaluation.

:func:`forward_infer` runs a module tree forward with the same numerics as
``module(x)`` but without building backward caches, using the inference
kernels of :mod:`repro.nn.functional` (pooling and depthwise convolution as
shifted view-reductions, 1x1 convolution as a plain matmul).  Its second
job is *segmented* batch normalisation: with ``segments > 1`` the batch
axis is treated as that many contiguous equal-length sub-batches, each
normalised with its own training-mode statistics.

This is the executor behind :meth:`repro.nas.hypernet.HyperNet.forward_many`
— several sub-model paths stacked into one call per candidate op, with each
path keeping the batch statistics it would have seen in a scalar forward.
Outputs match training-mode ``module(x)`` per segment to floating-point
round-off (max pooling, 1x1 convolutions and batch norm are
bitwise-identical; average/depthwise kernels re-associate the k*k window
sum).  Do NOT call ``module.backward`` after ``forward_infer`` — no caches
were written, and stale ones from an earlier training step would be
silently wrong.
"""

from __future__ import annotations

import numpy as np

from . import functional as F
from .layers import (
    AvgPool2d,
    BatchNorm2d,
    Conv2d,
    DepthwiseConv2d,
    GlobalAvgPool,
    Identity,
    Linear,
    MaxPool2d,
    ReLU,
    Sequential,
    SeparableConv2d,
    bn_segments,
)
from .module import Module

__all__ = ["forward_infer"]


def _conv_like(module: Module, x: np.ndarray, relu: bool) -> np.ndarray:
    """One convolution-ish module, optionally fusing a preceding ReLU."""
    if isinstance(module, SeparableConv2d):
        dw = module.depthwise
        x = F.depthwise_conv2d_infer(x, dw.weight.data, dw.stride, dw.pad, relu=relu)
        return _conv_like(module.pointwise, x, relu=False)
    if isinstance(module, Conv2d):
        return F.conv2d_infer(x, module.weight.data, module.stride, module.pad, relu=relu)
    assert isinstance(module, DepthwiseConv2d)
    return F.depthwise_conv2d_infer(
        x, module.weight.data, module.stride, module.pad, relu=relu
    )


def forward_infer(module: Module, x: np.ndarray, segments: int = 1) -> np.ndarray:
    """Forward ``x`` through ``module`` without backward caches.

    ``segments`` scopes batch normalisation only: every BatchNorm2d in the
    tree normalises each of the ``segments`` contiguous sub-batches of the
    batch axis independently (training mode), exactly as if the segments
    had been forwarded one at a time.  All other layers are per-sample
    maths, so stacking needs no special handling.  A ReLU immediately
    followed by a convolution inside a Sequential is fused into the
    convolution's padding pass.  Unknown module types fall back to their
    regular ``forward`` under a :func:`bn_segments` scope, so custom
    containers still evaluate correctly (their caches are then written as
    usual).
    """
    if isinstance(module, Sequential):
        children = module.modules
        i = 0
        while i < len(children):
            child = children[i]
            nxt = children[i + 1] if i + 1 < len(children) else None
            if isinstance(child, ReLU) and isinstance(
                nxt, (Conv2d, DepthwiseConv2d, SeparableConv2d)
            ):
                x = _conv_like(nxt, x, relu=True)
                i += 2
            else:
                x = forward_infer(child, x, segments)
                i += 1
        return x
    if isinstance(module, ReLU):
        if isinstance(x, list):
            return F._stack_rows(x, relu=True)
        return np.maximum(x, 0.0)
    if isinstance(module, (SeparableConv2d, Conv2d, DepthwiseConv2d)):
        return _conv_like(module, x, relu=False)
    if isinstance(x, list) and not isinstance(module, (MaxPool2d, AvgPool2d)):
        # Only the convolution/pooling kernels consume row-block lists
        # natively; everything else sees one gathered array.
        x = F._stack_rows(x)
    if isinstance(module, BatchNorm2d):
        return F.batchnorm_infer(
            x,
            module.gamma.data,
            module.beta.data,
            module.running_mean,
            module.running_var,
            module.momentum,
            module.eps,
            module.training,
            segments=segments,
        )
    if isinstance(module, MaxPool2d):
        return F.maxpool2d_infer(x, module.kernel, module.stride, module.pad)
    if isinstance(module, AvgPool2d):
        return F.avgpool2d_infer(x, module.kernel, module.stride, module.pad)
    if isinstance(module, GlobalAvgPool):
        return x.mean(axis=(2, 3))
    if isinstance(module, Linear):
        return x @ module.weight.data.T + module.bias.data
    if isinstance(module, Identity):
        return x
    with bn_segments(segments):
        return module(x)
