"""Layer library built on :mod:`repro.nn.functional`.

Layers cache forward intermediates on ``self`` and consume them in
``backward``; a layer instance therefore handles one forward/backward pair
at a time (standard for define-by-run training loops).
"""

from __future__ import annotations

from contextlib import contextmanager

import numpy as np

from . import functional as F
from .module import Module, Parameter, init_kaiming, init_ones, init_zeros

__all__ = [
    "bn_segments",
    "train_fast",
    "train_fast_enabled",
    "Conv2d",
    "DepthwiseConv2d",
    "SeparableConv2d",
    "BatchNorm2d",
    "ReLU",
    "MaxPool2d",
    "AvgPool2d",
    "GlobalAvgPool",
    "Linear",
    "Identity",
    "ReLUConvBN",
    "PoolBN",
    "FactorizedReduce",
    "Sequential",
]


#: Number of contiguous equal-length sub-batches every BatchNorm2d forward
#: should normalise independently (1 = plain batch norm).  Set via
#: :func:`bn_segments`; read at call time so the scope nests correctly.
_BN_SEGMENTS: int = 1


#: Whether conv/pool layers should run the compact-cache training kernels
#: (see the ``*_fast`` family in :mod:`repro.nn.functional`).  Off by
#: default for paper fidelity; set via :func:`train_fast`, read at forward
#: time so the scope nests correctly.
_TRAIN_FAST: bool = False


@contextmanager
def train_fast(enabled: bool = True):
    """Scope under which conv/pool layers use the compact-cache training
    kernels (``conv2d_forward_fast`` & friends).

    Inside the scope forwards keep only O(input) backward state — no full
    im2col column tensors, boolean first-max masks for pooling — and each
    layer's backward dispatches to the matching fast kernel (the choice is
    latched per forward, so a forward inside the scope pairs with the fast
    backward even if the scope has been exited in between).  Values match
    the standard kernels to float round-off (conv/max-pool forwards are
    bitwise identical); gradients agree at relative 1e-6 — see
    ``tests/test_nn_fast_kernels.py`` and docs/PERFORMANCE.md ("Training
    path").  The default mode everywhere stays the standard kernels.
    """
    global _TRAIN_FAST
    previous = _TRAIN_FAST
    _TRAIN_FAST = bool(enabled)
    try:
        yield
    finally:
        _TRAIN_FAST = previous


def train_fast_enabled() -> bool:
    """Whether the compact-cache training kernels are active in this scope."""
    return _TRAIN_FAST


@contextmanager
def bn_segments(segments: int):
    """Scope under which BatchNorm2d treats the batch axis as ``segments``
    independent contiguous sub-batches, each normalised with its own
    training-mode statistics.

    The batched HyperNet forward uses this to stack several sub-model
    paths into one op call without mixing their batch statistics — see
    :func:`repro.nn.functional.batchnorm_forward` for the exact semantics
    (per-segment parity with scalar forwards; forward-only, no backward
    cache).  Affects training-mode BN only; other layers are per-sample
    and need no scoping.
    """
    global _BN_SEGMENTS
    if segments < 1:
        raise ValueError("segments must be >= 1")
    previous = _BN_SEGMENTS
    _BN_SEGMENTS = segments
    try:
        yield
    finally:
        _BN_SEGMENTS = previous


class Conv2d(Module):
    """2-D convolution (no bias; networks always follow with BN)."""

    def __init__(
        self,
        in_channels: int,
        out_channels: int,
        kernel: int,
        stride: int = 1,
        pad: int | None = None,
        rng: np.random.Generator | None = None,
    ) -> None:
        super().__init__()
        rng = rng or np.random.default_rng(0)
        self.in_channels = in_channels
        self.out_channels = out_channels
        self.kernel = kernel
        self.stride = stride
        self.pad = F.pad_same(kernel) if pad is None else pad
        self.weight = Parameter(init_kaiming((out_channels, in_channels, kernel, kernel), rng))
        self._cache: tuple | None = None
        self._fast = False

    def forward(self, x: np.ndarray) -> np.ndarray:
        self._fast = _TRAIN_FAST
        if self._fast:
            if not self.training:  # no backward coming: skip the cache
                self._cache = None
                return F.conv2d_infer(x, self.weight.data, self.stride, self.pad)
            out, self._cache = F.conv2d_forward_fast(
                x, self.weight.data, self.stride, self.pad
            )
            return out
        out, self._cache = F.conv2d_forward(x, self.weight.data, self.stride, self.pad)
        return out

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        bwd = F.conv2d_backward_fast if self._fast else F.conv2d_backward
        grad_x, grad_w = bwd(grad_out, self._cache)
        self.weight.grad += grad_w
        return grad_x


class DepthwiseConv2d(Module):
    """Depthwise 2-D convolution: one filter per channel."""

    def __init__(
        self,
        channels: int,
        kernel: int,
        stride: int = 1,
        pad: int | None = None,
        rng: np.random.Generator | None = None,
    ) -> None:
        super().__init__()
        rng = rng or np.random.default_rng(0)
        self.channels = channels
        self.kernel = kernel
        self.stride = stride
        self.pad = F.pad_same(kernel) if pad is None else pad
        self.weight = Parameter(init_kaiming((channels, kernel, kernel), rng))
        self._cache: tuple | None = None
        self._fast = False

    def forward(self, x: np.ndarray) -> np.ndarray:
        self._fast = _TRAIN_FAST
        if self._fast:
            if not self.training:  # no backward coming: skip the cache
                self._cache = None
                return F.depthwise_conv2d_infer(
                    x, self.weight.data, self.stride, self.pad
                )
            out, self._cache = F.depthwise_conv2d_forward_fast(
                x, self.weight.data, self.stride, self.pad
            )
            return out
        out, self._cache = F.depthwise_conv2d_forward(
            x, self.weight.data, self.stride, self.pad
        )
        return out

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        bwd = (
            F.depthwise_conv2d_backward_fast if self._fast else F.depthwise_conv2d_backward
        )
        grad_x, grad_w = bwd(grad_out, self._cache)
        self.weight.grad += grad_w
        return grad_x


class SeparableConv2d(Module):
    """Depthwise-separable conv: depthwise k×k followed by pointwise 1×1."""

    def __init__(
        self,
        in_channels: int,
        out_channels: int,
        kernel: int,
        stride: int = 1,
        rng: np.random.Generator | None = None,
    ) -> None:
        super().__init__()
        rng = rng or np.random.default_rng(0)
        self.depthwise = DepthwiseConv2d(in_channels, kernel, stride=stride, rng=rng)
        self.pointwise = Conv2d(in_channels, out_channels, kernel=1, stride=1, pad=0, rng=rng)

    def forward(self, x: np.ndarray) -> np.ndarray:
        return self.pointwise(self.depthwise(x))

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        return self.depthwise.backward(self.pointwise.backward(grad_out))


class BatchNorm2d(Module):
    """Batch normalisation over channels of an NCHW tensor."""

    def __init__(self, channels: int, momentum: float = 0.1, eps: float = 1e-5) -> None:
        super().__init__()
        self.channels = channels
        self.momentum = momentum
        self.eps = eps
        self.gamma = Parameter(init_ones((channels,)), weight_decay=False)
        self.beta = Parameter(init_zeros((channels,)), weight_decay=False)
        self.running_mean = np.zeros(channels, dtype=np.float32)
        self.running_var = np.ones(channels, dtype=np.float32)
        self._cache: tuple | None = None
        self._fast = False

    def forward(self, x: np.ndarray) -> np.ndarray:
        self._fast = _TRAIN_FAST
        if self._fast and self.training and _BN_SEGMENTS == 1:
            out, self._cache = F.batchnorm_forward_fast(
                x,
                self.gamma.data,
                self.beta.data,
                self.running_mean,
                self.running_var,
                self.momentum,
                self.eps,
                self.training,
            )
            return out
        out, self._cache = F.batchnorm_forward(
            x,
            self.gamma.data,
            self.beta.data,
            self.running_mean,
            self.running_var,
            self.momentum,
            self.eps,
            self.training,
            segments=_BN_SEGMENTS,
        )
        return out

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        if self._cache is None:
            raise RuntimeError("backward called in eval mode")
        bwd = F.batchnorm_backward_fast if self._fast else F.batchnorm_backward
        grad_x, grad_gamma, grad_beta = bwd(grad_out, self._cache)
        self.gamma.grad += grad_gamma
        self.beta.grad += grad_beta
        return grad_x


class ReLU(Module):
    def __init__(self) -> None:
        super().__init__()
        self._mask: np.ndarray | None = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        if _TRAIN_FAST and not self.training:  # no backward coming: skip the mask
            self._mask = None
            return np.maximum(x, 0.0)
        out, self._mask = F.relu_forward(x)
        return out

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        return F.relu_backward(grad_out, self._mask)


class MaxPool2d(Module):
    def __init__(self, kernel: int = 3, stride: int = 1, pad: int | None = None) -> None:
        super().__init__()
        self.kernel = kernel
        self.stride = stride
        self.pad = F.pad_same(kernel) if pad is None else pad
        self._cache: tuple | None = None
        self._fast = False

    def forward(self, x: np.ndarray) -> np.ndarray:
        self._fast = _TRAIN_FAST
        if self._fast:
            if not self.training:  # no backward coming: skip the mask
                self._cache = None
                return F.maxpool2d_infer(x, self.kernel, self.stride, self.pad)
            out, self._cache = F.maxpool2d_forward_fast(
                x, self.kernel, self.stride, self.pad
            )
            return out
        out, self._cache = F.maxpool2d_forward(x, self.kernel, self.stride, self.pad)
        return out

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        bwd = F.maxpool2d_backward_fast if self._fast else F.maxpool2d_backward
        return bwd(grad_out, self._cache)


class AvgPool2d(Module):
    def __init__(self, kernel: int = 3, stride: int = 1, pad: int | None = None) -> None:
        super().__init__()
        self.kernel = kernel
        self.stride = stride
        self.pad = F.pad_same(kernel) if pad is None else pad
        self._cache: tuple | None = None
        self._fast = False

    def forward(self, x: np.ndarray) -> np.ndarray:
        self._fast = _TRAIN_FAST
        if self._fast and not self.training:
            self._cache = None
            return F.avgpool2d_infer(x, self.kernel, self.stride, self.pad)
        fwd = F.avgpool2d_forward_fast if self._fast else F.avgpool2d_forward
        out, self._cache = fwd(x, self.kernel, self.stride, self.pad)
        return out

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        bwd = F.avgpool2d_backward_fast if self._fast else F.avgpool2d_backward
        return bwd(grad_out, self._cache)


class GlobalAvgPool(Module):
    def __init__(self) -> None:
        super().__init__()
        self._cache: tuple | None = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        out, self._cache = F.global_avgpool_forward(x)
        return out

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        return F.global_avgpool_backward(grad_out, self._cache)


class Linear(Module):
    def __init__(
        self, in_features: int, out_features: int, rng: np.random.Generator | None = None
    ) -> None:
        super().__init__()
        rng = rng or np.random.default_rng(0)
        self.weight = Parameter(init_kaiming((out_features, in_features), rng))
        self.bias = Parameter(init_zeros((out_features,)), weight_decay=False)
        self._cache: tuple | None = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        out, self._cache = F.linear_forward(x, self.weight.data, self.bias.data)
        return out

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        grad_x, grad_w, grad_b = F.linear_backward(grad_out, self._cache)
        self.weight.grad += grad_w
        self.bias.grad += grad_b
        return grad_x


class Identity(Module):
    def forward(self, x: np.ndarray) -> np.ndarray:
        return x

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        return grad_out


class Sequential(Module):
    """Chain of modules executed in order."""

    def __init__(self, *modules: Module) -> None:
        super().__init__()
        self.modules = list(modules)

    def forward(self, x: np.ndarray) -> np.ndarray:
        for m in self.modules:
            x = m(x)
        return x

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        for m in reversed(self.modules):
            grad_out = m.backward(grad_out)
        return grad_out

    def __len__(self) -> int:
        return len(self.modules)

    def __getitem__(self, idx: int) -> Module:
        return self.modules[idx]


class ReLUConvBN(Sequential):
    """The standard NAS op wrapper: ReLU → Conv → BatchNorm."""

    def __init__(
        self,
        in_channels: int,
        out_channels: int,
        kernel: int,
        stride: int = 1,
        separable: bool = False,
        rng: np.random.Generator | None = None,
    ) -> None:
        conv: Module
        if separable:
            conv = SeparableConv2d(in_channels, out_channels, kernel, stride=stride, rng=rng)
        else:
            conv = Conv2d(in_channels, out_channels, kernel, stride=stride, rng=rng)
        super().__init__(ReLU(), conv, BatchNorm2d(out_channels))


class PoolBN(Sequential):
    """Pooling op with stride and a channel-matching 1×1 when needed."""

    def __init__(
        self,
        kind: str,
        in_channels: int,
        out_channels: int,
        kernel: int = 3,
        stride: int = 1,
        rng: np.random.Generator | None = None,
    ) -> None:
        pool: Module
        if kind == "max":
            pool = MaxPool2d(kernel, stride=stride)
        elif kind == "avg":
            pool = AvgPool2d(kernel, stride=stride)
        else:
            raise ValueError(f"unknown pool kind {kind!r}")
        modules: list[Module] = [pool]
        if in_channels != out_channels:
            modules.append(Conv2d(in_channels, out_channels, kernel=1, pad=0, rng=rng))
        modules.append(BatchNorm2d(out_channels))
        super().__init__(*modules)


class FactorizedReduce(Sequential):
    """1×1 strided conv used to align feature shapes across cell boundaries."""

    def __init__(
        self,
        in_channels: int,
        out_channels: int,
        stride: int = 2,
        rng: np.random.Generator | None = None,
    ) -> None:
        super().__init__(
            ReLU(),
            Conv2d(in_channels, out_channels, kernel=1, stride=stride, pad=0, rng=rng),
            BatchNorm2d(out_channels),
        )
