"""Checkpointing: save/load module state to ``.npz`` files.

Captures both the learnable :class:`~repro.nn.module.Parameter` tensors and
the non-learnable array buffers (batch-norm running statistics) in a
deterministic traversal order, so a freshly constructed module with the
same architecture can restore an exact snapshot.  Used to persist trained
HyperNets between the expensive Step 1 and repeated Step 2 searches.
"""

from __future__ import annotations

import os

import numpy as np

from .module import Module

__all__ = ["module_buffers", "save_module", "load_module"]


def module_buffers(module: Module) -> list[np.ndarray]:
    """Non-parameter array state (e.g. BN running stats), in deterministic order."""
    buffers: list[np.ndarray] = []
    seen: set[int] = set()
    for child in _walk_all_modules(module, seen):
        for name in sorted(vars(child)):
            value = getattr(child, name)
            if isinstance(value, np.ndarray) and not name.startswith("_"):
                buffers.append(value)
    return buffers


def _walk_all_modules(module: Module, seen: set[int]):
    if id(module) in seen:
        return
    seen.add(id(module))
    yield module
    inner: set[int] = set()
    for child in module._children(inner):
        if id(child) not in seen:
            seen.add(id(child))
            yield child


def save_module(module: Module, path: str) -> None:
    """Write every parameter and buffer of ``module`` to ``path`` (.npz)."""
    arrays: dict[str, np.ndarray] = {}
    for i, p in enumerate(module.parameters()):
        arrays[f"param_{i}"] = p.data
    for i, b in enumerate(module_buffers(module)):
        arrays[f"buffer_{i}"] = b
    directory = os.path.dirname(os.path.abspath(path))
    os.makedirs(directory, exist_ok=True)
    np.savez(path, **arrays)


def load_module(module: Module, path: str) -> None:
    """Restore a snapshot written by :func:`save_module` into ``module``.

    The module must have been constructed with the same architecture
    (identical parameter/buffer shapes in the same traversal order).
    """
    with np.load(path) as data:
        params = list(module.parameters())
        n_params = sum(1 for k in data.files if k.startswith("param_"))
        if n_params != len(params):
            raise ValueError(
                f"checkpoint has {n_params} parameters, module has {len(params)}"
            )
        for i, p in enumerate(params):
            saved = data[f"param_{i}"]
            if saved.shape != p.data.shape:
                raise ValueError(
                    f"param_{i}: checkpoint shape {saved.shape} != module "
                    f"shape {p.data.shape}"
                )
            p.data = saved.copy()
        buffers = module_buffers(module)
        n_buffers = sum(1 for k in data.files if k.startswith("buffer_"))
        if n_buffers != len(buffers):
            raise ValueError(
                f"checkpoint has {n_buffers} buffers, module has {len(buffers)}"
            )
        for i, b in enumerate(buffers):
            saved = data[f"buffer_{i}"]
            if saved.shape != b.shape:
                raise ValueError(
                    f"buffer_{i}: checkpoint shape {saved.shape} != module "
                    f"shape {b.shape}"
                )
            b[...] = saved
