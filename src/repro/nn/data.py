"""Synthetic CIFAR-10-like dataset.

The paper evaluates on CIFAR-10 (50 000 train / 10 000 test images of shape
3x32x32, 10 classes).  This repository runs offline, so we substitute a
procedurally generated dataset with the same tensor interface and a class
structure that convolutional networks can learn: each class is defined by an
oriented spatial grating (a texture) with a class-specific colour tint, with
random phase, amplitude jitter and additive noise so the task is non-trivial
and benefits from translation-tolerant feature extractors.

The substitution is documented in DESIGN.md: all YOSO experiments measure
*relative* accuracy (ranking of sub-models, accuracy/performance trade-offs),
which the synthetic task preserves.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

__all__ = ["SyntheticCifar", "BatchIterator", "random_crop_flip"]


@dataclass
class _Split:
    images: np.ndarray  # (N, 3, H, W) float64 in roughly [-1, 1]
    labels: np.ndarray  # (N,) int64

    def __len__(self) -> int:
        return len(self.labels)


class SyntheticCifar:
    """Procedurally generated 10-class image-classification dataset.

    Parameters
    ----------
    num_classes:
        Number of classes (paper: 10).
    image_size:
        Square spatial size (paper: 32; tests use smaller for speed).
    train_size, val_size, test_size:
        Number of examples per split.  The paper uses 50 000 / - / 10 000; we
        carve a validation split out explicitly because YOSO's reward uses
        validation accuracy.
    noise:
        Standard deviation of the additive pixel noise; larger values make
        the task harder (accuracy further from 100%).
    seed:
        Seed for both class-signature generation and example sampling.
    """

    def __init__(
        self,
        num_classes: int = 10,
        image_size: int = 32,
        train_size: int = 2000,
        val_size: int = 500,
        test_size: int = 500,
        noise: float = 0.6,
        seed: int = 0,
    ) -> None:
        if num_classes < 2:
            raise ValueError("need at least two classes")
        if image_size < 4:
            raise ValueError("image_size must be >= 4")
        self.num_classes = num_classes
        self.image_size = image_size
        self.noise = noise
        self.seed = seed
        rng = np.random.default_rng(seed)
        self._signatures = _class_signatures(num_classes, rng)
        self.train = self._generate(train_size, rng)
        self.val = self._generate(val_size, rng)
        self.test = self._generate(test_size, rng)

    # ------------------------------------------------------------------
    def _generate(self, n: int, rng: np.random.Generator) -> _Split:
        size = self.image_size
        labels = rng.integers(0, self.num_classes, size=n)
        images = np.empty((n, 3, size, size), dtype=np.float64)
        yy, xx = np.mgrid[0:size, 0:size].astype(np.float64)
        for i, label in enumerate(labels):
            sig = self._signatures[label]
            phase = rng.uniform(0.0, 2.0 * np.pi)
            amp = rng.uniform(0.7, 1.3)
            # Oriented grating with class frequency/orientation.
            wave = np.sin(
                sig["freq"] * (np.cos(sig["theta"]) * xx + np.sin(sig["theta"]) * yy)
                / size
                * 2.0
                * np.pi
                + phase
            )
            # Secondary blob localised at a class-specific (jittered) centre.
            cx = sig["cx"] * size + rng.normal(0.0, size * 0.08)
            cy = sig["cy"] * size + rng.normal(0.0, size * 0.08)
            blob = np.exp(-(((xx - cx) ** 2 + (yy - cy) ** 2) / (2.0 * (size * 0.18) ** 2)))
            pattern = amp * (0.7 * wave + 0.8 * blob)
            for ch in range(3):
                images[i, ch] = sig["tint"][ch] * pattern + sig["bias"][ch]
            images[i] += rng.normal(0.0, self.noise, size=(3, size, size))
        # Normalise globally to zero-mean unit-ish variance.
        images -= images.mean()
        images /= images.std() + 1e-8
        return _Split(images=images.astype(np.float32), labels=labels.astype(np.int64))

    # ------------------------------------------------------------------
    def batches(
        self,
        split: str = "train",
        batch_size: int = 64,
        shuffle: bool = True,
        augment: bool = False,
        rng: np.random.Generator | None = None,
    ) -> "BatchIterator":
        """Iterate minibatches of ``(images, labels)`` over a split."""
        data = getattr(self, split)
        return BatchIterator(data.images, data.labels, batch_size, shuffle, augment, rng)


def _class_signatures(num_classes: int, rng: np.random.Generator) -> list[dict]:
    """Draw the per-class texture parameters (orientation, frequency, colour)."""
    signatures = []
    for k in range(num_classes):
        signatures.append(
            {
                # Spread orientations/frequencies deterministically so classes
                # are distinguishable even for large num_classes.
                "theta": np.pi * k / num_classes + rng.normal(0.0, 0.05),
                "freq": 2.0 + 1.5 * (k % 5) + rng.normal(0.0, 0.1),
                "tint": 0.5 + 0.5 * rng.random(3),
                "bias": rng.normal(0.0, 0.3, size=3),
                "cx": 0.25 + 0.5 * rng.random(),
                "cy": 0.25 + 0.5 * rng.random(),
            }
        )
    return signatures


def random_crop_flip(
    images: np.ndarray, rng: np.random.Generator, pad: int = 2
) -> np.ndarray:
    """Standard random-crop (with zero padding) + horizontal-flip augmentation.

    Mirrors the paper's "standard random crop data augmentation".
    """
    n, c, h, w = images.shape
    padded = np.pad(images, ((0, 0), (0, 0), (pad, pad), (pad, pad)), mode="constant")
    out = np.empty_like(images)
    offsets = rng.integers(0, 2 * pad + 1, size=(n, 2))
    flips = rng.random(n) < 0.5
    for i in range(n):
        dy, dx = offsets[i]
        crop = padded[i, :, dy : dy + h, dx : dx + w]
        out[i] = crop[:, :, ::-1] if flips[i] else crop
    return out


class BatchIterator:
    """Reusable minibatch iterator with optional augmentation."""

    def __init__(
        self,
        images: np.ndarray,
        labels: np.ndarray,
        batch_size: int,
        shuffle: bool,
        augment: bool,
        rng: np.random.Generator | None,
    ) -> None:
        if len(images) != len(labels):
            raise ValueError("images and labels must have equal length")
        if batch_size < 1:
            raise ValueError("batch_size must be >= 1")
        self.images = images
        self.labels = labels
        self.batch_size = batch_size
        self.shuffle = shuffle
        self.augment = augment
        self.rng = rng or np.random.default_rng(0)

    def __iter__(self):
        n = len(self.labels)
        order = self.rng.permutation(n) if self.shuffle else np.arange(n)
        for start in range(0, n, self.batch_size):
            idx = order[start : start + self.batch_size]
            x = self.images[idx]
            if self.augment:
                x = random_crop_flip(x, self.rng)
            yield x, self.labels[idx]

    def __len__(self) -> int:
        n = len(self.labels)
        return (n + self.batch_size - 1) // self.batch_size
