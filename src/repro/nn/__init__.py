"""Numpy deep-learning substrate used to train and evaluate YOSO networks.

The paper implements its HyperNet and candidate networks in TensorFlow on a
GPU; this package provides the equivalent primitives (convolutions,
batch-norm, pooling, SGD/Adam, cosine LR schedule, data pipeline) in pure
numpy so the whole system runs offline on CPU.
"""

from . import functional
from .data import BatchIterator, SyntheticCifar, random_crop_flip
from .layers import (
    AvgPool2d,
    BatchNorm2d,
    Conv2d,
    DepthwiseConv2d,
    FactorizedReduce,
    GlobalAvgPool,
    Identity,
    Linear,
    MaxPool2d,
    PoolBN,
    ReLU,
    ReLUConvBN,
    SeparableConv2d,
    Sequential,
)
from .module import Module, Parameter
from .optim import SGD, Adam, CosineSchedule, clip_grad_norm
from .serialize import load_module, module_buffers, save_module

__all__ = [
    "functional",
    "SyntheticCifar",
    "BatchIterator",
    "random_crop_flip",
    "Module",
    "Parameter",
    "SGD",
    "Adam",
    "CosineSchedule",
    "clip_grad_norm",
    "save_module",
    "load_module",
    "module_buffers",
    "Conv2d",
    "DepthwiseConv2d",
    "SeparableConv2d",
    "BatchNorm2d",
    "ReLU",
    "MaxPool2d",
    "AvgPool2d",
    "GlobalAvgPool",
    "Linear",
    "Identity",
    "ReLUConvBN",
    "PoolBN",
    "FactorizedReduce",
    "Sequential",
]
