"""Optimisers and learning-rate schedules.

Matches the paper's training recipes: SGD with momentum 0.9 plus L2 weight
decay 4e-5 and a cosine learning-rate decay between 0.05 and 0.0001 for the
HyperNet (Sec. IV-B), and Adam with learning rate 0.0035 for the RL
controller (Sec. IV-C).
"""

from __future__ import annotations

import math
from typing import Iterable

import numpy as np

from .module import Parameter

__all__ = ["SGD", "Adam", "CosineSchedule", "clip_grad_norm"]


class SGD:
    """Stochastic gradient descent with classical momentum and weight decay.

    Weight decay is applied only to parameters flagged ``weight_decay=True``
    (i.e. convolution/linear weights, not batch-norm scale/shift), mirroring
    standard practice and the paper's L2 regularisation of 4e-5.
    """

    def __init__(
        self,
        parameters: Iterable[Parameter],
        lr: float = 0.05,
        momentum: float = 0.9,
        weight_decay: float = 4e-5,
        skip_zero_grad: bool = True,
    ) -> None:
        self.parameters = list(parameters)
        if not self.parameters:
            raise ValueError("optimiser received no parameters")
        self.lr = lr
        self.momentum = momentum
        self.weight_decay = weight_decay
        #: when True, parameters whose gradient is exactly zero are left
        #: untouched — required by the HyperNet's "only update the selected
        #: path" training rule (Sec. III-D).
        self.skip_zero_grad = skip_zero_grad
        self._velocity = [np.zeros_like(p.data) for p in self.parameters]

    def step(self) -> None:
        for p, v in zip(self.parameters, self._velocity):
            grad = p.grad
            if self.skip_zero_grad and not grad.any():
                continue
            if self.weight_decay and p.weight_decay:
                grad = grad + self.weight_decay * p.data
            v *= self.momentum
            v -= self.lr * grad
            p.data += v

    def zero_grad(self) -> None:
        for p in self.parameters:
            p.zero_grad()


class Adam:
    """Adam optimiser (Kingma & Ba, 2015)."""

    def __init__(
        self,
        parameters: Iterable[Parameter],
        lr: float = 0.0035,
        beta1: float = 0.9,
        beta2: float = 0.999,
        eps: float = 1e-8,
        weight_decay: float = 0.0,
    ) -> None:
        self.parameters = list(parameters)
        if not self.parameters:
            raise ValueError("optimiser received no parameters")
        self.lr = lr
        self.beta1 = beta1
        self.beta2 = beta2
        self.eps = eps
        self.weight_decay = weight_decay
        self._m = [np.zeros_like(p.data) for p in self.parameters]
        self._v = [np.zeros_like(p.data) for p in self.parameters]
        self._t = 0

    def step(self) -> None:
        self._t += 1
        bias1 = 1.0 - self.beta1**self._t
        bias2 = 1.0 - self.beta2**self._t
        for p, m, v in zip(self.parameters, self._m, self._v):
            grad = p.grad
            if self.weight_decay and p.weight_decay:
                grad = grad + self.weight_decay * p.data
            m *= self.beta1
            m += (1.0 - self.beta1) * grad
            v *= self.beta2
            v += (1.0 - self.beta2) * grad * grad
            m_hat = m / bias1
            v_hat = v / bias2
            p.data -= self.lr * m_hat / (np.sqrt(v_hat) + self.eps)

    def zero_grad(self) -> None:
        for p in self.parameters:
            p.zero_grad()


class CosineSchedule:
    """Cosine learning-rate decay from ``lr_max`` to ``lr_min``.

    The paper sweeps 0.05 → 0.0001 over the HyperNet training epochs.
    """

    def __init__(self, lr_max: float = 0.05, lr_min: float = 0.0001, total_steps: int = 300) -> None:
        if total_steps < 1:
            raise ValueError("total_steps must be >= 1")
        if lr_min > lr_max:
            raise ValueError("lr_min must not exceed lr_max")
        self.lr_max = lr_max
        self.lr_min = lr_min
        self.total_steps = total_steps

    def lr_at(self, step: int) -> float:
        """Learning rate for 0-indexed ``step`` (clamped to the last step)."""
        step = min(max(step, 0), self.total_steps - 1)
        if self.total_steps == 1:
            return self.lr_max
        frac = step / (self.total_steps - 1)
        return self.lr_min + 0.5 * (self.lr_max - self.lr_min) * (1.0 + math.cos(math.pi * frac))

    def apply(self, optimiser: SGD | Adam, step: int) -> float:
        lr = self.lr_at(step)
        optimiser.lr = lr
        return lr


def clip_grad_norm(parameters: Iterable[Parameter], max_norm: float) -> float:
    """Scale gradients in place so their global L2 norm is at most ``max_norm``.

    Returns the pre-clipping norm.
    """
    params = list(parameters)
    total = math.sqrt(sum(float(np.sum(p.grad * p.grad)) for p in params))
    if total > max_norm and total > 0.0:
        scale = max_norm / total
        for p in params:
            p.grad *= scale
    return total
