"""Module and Parameter containers for the numpy DNN substrate.

The framework is deliberately small: a :class:`Module` owns
:class:`Parameter` objects and child modules, exposes ``forward`` /
``backward`` with explicit caches, and supports train/eval mode switching.
There is no autograd tape — every layer implements its own backward, which
keeps the system transparent and easy to test against numerical gradients.
"""

from __future__ import annotations

from typing import Iterator

import numpy as np

__all__ = ["Parameter", "Module", "init_kaiming", "init_zeros", "init_ones"]


class Parameter:
    """A learnable tensor with an accumulated gradient."""

    __slots__ = ("data", "grad", "weight_decay")

    def __init__(self, data: np.ndarray, weight_decay: bool = True) -> None:
        self.data = np.asarray(data, dtype=np.float32)
        self.grad = np.zeros_like(self.data)
        #: whether L2 weight decay applies (disabled for BN scale/shift).
        self.weight_decay = weight_decay

    @property
    def shape(self) -> tuple[int, ...]:
        return self.data.shape

    def zero_grad(self) -> None:
        self.grad.fill(0.0)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Parameter(shape={self.data.shape})"


class Module:
    """Base class for all layers and networks."""

    def __init__(self) -> None:
        self.training = True

    # -- forward/backward protocol -------------------------------------
    def forward(self, x: np.ndarray) -> np.ndarray:
        raise NotImplementedError

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        raise NotImplementedError

    def __call__(self, x: np.ndarray) -> np.ndarray:
        return self.forward(x)

    # -- parameter traversal --------------------------------------------
    def parameters(self) -> Iterator[Parameter]:
        """Yield every :class:`Parameter` owned by this module tree."""
        seen: set[int] = set()
        yield from self._parameters(seen)

    def _parameters(self, seen: set[int]) -> Iterator[Parameter]:
        for value in self.__dict__.values():
            yield from _walk(value, seen)

    def zero_grad(self) -> None:
        for p in self.parameters():
            p.zero_grad()

    def num_parameters(self) -> int:
        """Total scalar parameter count."""
        return sum(p.data.size for p in self.parameters())

    # -- mode switching ---------------------------------------------------
    def train(self) -> "Module":
        self._set_mode(True)
        return self

    def eval(self) -> "Module":
        self._set_mode(False)
        return self

    def _set_mode(self, training: bool) -> None:
        self.training = training
        seen: set[int] = set()
        for child in self._children(seen):
            child.training = training

    def _children(self, seen: set[int]) -> Iterator["Module"]:
        for value in self.__dict__.values():
            yield from _walk_modules(value, seen)

    # -- state io -----------------------------------------------------------
    def state_arrays(self) -> list[np.ndarray]:
        """All parameters as a flat list (order is deterministic)."""
        return [p.data for p in self.parameters()]

    def load_state_arrays(self, arrays: list[np.ndarray]) -> None:
        params = list(self.parameters())
        if len(params) != len(arrays):
            raise ValueError(f"expected {len(params)} arrays, got {len(arrays)}")
        for p, a in zip(params, arrays):
            if p.data.shape != a.shape:
                raise ValueError(f"shape mismatch: {p.data.shape} vs {a.shape}")
            p.data = a.copy()


def _walk(value: object, seen: set[int]) -> Iterator[Parameter]:
    if isinstance(value, Parameter):
        if id(value) not in seen:
            seen.add(id(value))
            yield value
    elif isinstance(value, Module):
        if id(value) not in seen:
            seen.add(id(value))
            yield from value._parameters(seen)
    elif isinstance(value, (list, tuple)):
        for item in value:
            yield from _walk(item, seen)
    elif isinstance(value, dict):
        for item in value.values():
            yield from _walk(item, seen)


def _walk_modules(value: object, seen: set[int]) -> Iterator[Module]:
    if isinstance(value, Module):
        if id(value) not in seen:
            seen.add(id(value))
            yield value
            yield from value._children(seen)
    elif isinstance(value, (list, tuple)):
        for item in value:
            yield from _walk_modules(item, seen)
    elif isinstance(value, dict):
        for item in value.values():
            yield from _walk_modules(item, seen)


# ---------------------------------------------------------------------------
# Initialisers
# ---------------------------------------------------------------------------


def init_kaiming(shape: tuple[int, ...], rng: np.random.Generator) -> np.ndarray:
    """He-normal initialisation; fan-in is every axis but the first."""
    fan_in = int(np.prod(shape[1:])) if len(shape) > 1 else shape[0]
    std = np.sqrt(2.0 / max(fan_in, 1))
    return rng.normal(0.0, std, size=shape)


def init_zeros(shape: tuple[int, ...]) -> np.ndarray:
    return np.zeros(shape, dtype=np.float64)


def init_ones(shape: tuple[int, ...]) -> np.ndarray:
    return np.ones(shape, dtype=np.float64)
